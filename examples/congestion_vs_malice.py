#!/usr/bin/env python3
"""Protocol χ: telling malicious drops from congestion on a droptail queue.

Three TCP flows share a 1 Mbps bottleneck, overflowing its queue — real,
benign congestion.  χ learns the queue-prediction error during a clean
learning period, then watches per round.  Midway, the bottleneck router
is compromised and begins dropping the victim flow *only when its queue
is 90% full* — the attack crafted to hide inside congestion (Fig 6.7).
χ stays silent through the congestion and catches the attack.

Run:  python examples/congestion_vs_malice.py
"""

from repro.eval import build_scenario, droptail_spec
from repro.net import QueueConditionalDropAttack


def main() -> None:
    scenario = build_scenario(droptail_spec(tau=2.0))
    network, chi = scenario.network, scenario.chi

    # Learning period (attack-free): fit the q_error model (µ, σ).
    network.run(20.0)
    mu, sigma = chi.calibrate(scenario.target)
    print(f"learned q_error model: mu={mu:.0f} B, sigma={sigma:.0f} B")

    chi.schedule_rounds(10, 44)
    network.run(50.0)  # pure congestion
    attack = QueueConditionalDropAttack(["tcp1"], fill_threshold=0.90, seed=1)
    network.routers["r"].compromise = attack
    network.run(110.0)

    print(f"{'round':>5} {'drops':>5} {'cong.':>5} {'candidates':>10} "
          f"{'confidence':>10} alarm")
    for finding in chi.findings:
        if not finding.drops and not finding.alarmed:
            continue
        print(f"{finding.round_index:>5} {len(finding.drops):>5} "
              f"{finding.congestive_drops:>5} {finding.candidate_drops:>10} "
              f"{finding.max_single_confidence:>10.4f} "
              f"{'ALARM' if finding.alarmed else ''}")
    benign = [f for f in chi.findings if f.round_index < 25]
    attacked = [f for f in chi.findings if f.round_index >= 25]
    print(f"\nbenign rounds alarmed: {sum(f.alarmed for f in benign)} "
          f"(of {len(benign)}, with "
          f"{sum(f.congestive_drops for f in benign)} congestive drops)")
    print(f"attack detected: {any(f.alarmed for f in attacked)} "
          f"(ground truth: {len(attack.dropped)} malicious drops)")


if __name__ == "__main__":
    main()
