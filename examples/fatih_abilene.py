#!/usr/bin/env python3
"""Fatih on the Abilene backbone — the Fig 5.7 storyline.

OSPF-style daemons converge, Fatih validators arm, a compromised Kansas
City router starts dropping 20% of transit traffic, the detectors catch
it within one 5-second validation round, alerts flood, and the routing
daemons reroute around the suspected path-segments after the SPF delay —
visible as the New York <-> Sunnyvale RTT stepping from ~50 ms to ~56 ms.

Run:  python examples/fatih_abilene.py
"""

from repro.eval.experiments import fig5_7_fatih


def main() -> None:
    result = fig5_7_fatih()
    print("=== Fatih on Abilene (Fig 5.7) ===")
    print(f"routing converged at          {result.convergence_time:7.1f} s")
    print(f"Kansas City compromised at    {result.attack_time:7.1f} s")
    print(f"first detection at            {result.first_detection:7.1f} s "
          f"(+{result.detection_latency:.1f} s)")
    print(f"rerouted (SPF after alert) at {result.reroute_time:7.1f} s "
          f"(+{result.response_latency:.1f} s)")
    print(f"NY<->Sunnyvale RTT: {1000 * result.rtt_before:.1f} ms before, "
          f"{1000 * result.rtt_after:.1f} ms after")
    print("suspected path-segments:")
    for segment in result.suspected_segments:
        print("   ", " -> ".join(segment))
    assert all("KansasCity" in seg for seg in result.suspected_segments)
    print("every suspected segment contains the compromised router ✓")


if __name__ == "__main__":
    main()
