#!/usr/bin/env python3
"""Quickstart: catch a packet-dropping router with Protocol Πk+2.

Builds a five-router line network, runs a CBR flow end to end, compromises
the middle router so it silently drops 30% of the flow, and lets Πk+2
(k = 1: monitor every 3-path-segment from its ends) localize the fault.

Run:  python examples/quickstart.py
"""

from repro.crypto import KeyInfrastructure
from repro.core.pik2 import PiK2Config, ProtocolPiK2
from repro.core.segments import monitored_segments_pik2
from repro.core.summaries import PathOracle, SegmentMonitor, SummaryPolicy
from repro.dist.sync import RoundSchedule
from repro.net import chain
from repro.net.adversary import DropFlowAttack
from repro.net.router import Network
from repro.net.routing import install_static_routes
from repro.net.traffic import CBRSource


def main() -> None:
    # 1. A network: r1 - r2 - r3 - r4 - r5, with shortest-path routing.
    topology = chain(5)
    network = Network(topology)
    paths = install_static_routes(network)
    oracle = PathOracle(paths)

    # 2. Detection plumbing: a summary generator (tap), agreed rounds,
    #    keys, and the Πk+2 protocol over every monitored segment.
    schedule = RoundSchedule(tau=1.0)
    keys = KeyInfrastructure()
    monitor = SegmentMonitor(network, oracle, schedule,
                             policy=SummaryPolicy.CONTENT)
    network.add_tap(monitor)

    segments = set()
    for segs in monitored_segments_pik2(
            [tuple(p) for p in paths.values()], k=1).values():
        segments |= segs
    protocol = ProtocolPiK2(network, monitor, segments, keys, schedule,
                            config=PiK2Config(k=1, threshold=0))
    protocol.schedule_rounds(0, 4)

    # 3. Traffic plus a compromised router.
    flow = CBRSource(network, "r1", "r5", "webflow",
                     rate_bps=800_000, duration=5.0)
    network.routers["r3"].compromise = DropFlowAttack(
        ["webflow"], fraction=0.3, seed=7)

    # 4. Run and report.
    network.run(7.0)
    print(f"sent {flow.sent} packets, delivered {flow.received} "
          f"({flow.loss_count} lost)")
    for router in ("r1", "r5"):
        state = protocol.states[router]
        print(f"{router} suspects: {sorted(state.suspected_segments())}")
    suspicious = protocol.states["r1"].suspected_segments()
    assert any("r3" in seg for seg in suspicious), "r3 should be suspected"
    print("the faulty router r3 is inside every suspected segment ✓")


if __name__ == "__main__":
    main()
