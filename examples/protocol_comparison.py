#!/usr/bin/env python3
"""Why the specification matters: prior detectors vs the paper's.

Chapter 3's protocols each fail some part of the accuracy/completeness
specification.  This example replays the canonical failure of each on
the abstract path model, then shows WATCHERS' consorting-router hole and
the dissertation's fix:

* PERLMANd (per-hop acks):   colluding b, e *frame* the correct ⟨c, d⟩;
* SecTrace:                  a router that attacks after being validated
                             frames its downstream neighbours (Fig 3.7);
* AWERBUCH binary search:    accurate, log(M) rounds — but weak-complete;
* WATCHERS:                  consorting routers evade entirely (Fig 3.3)
                             until the timeout fix is applied.

Run:  python examples/protocol_comparison.py
"""

from repro.eval.experiments import (
    awerbuch_localization_demo,
    perlman_collusion_demo,
    sectrace_framing_demo,
    watchers_flaw_demo,
)


def main() -> None:
    perlman = perlman_collusion_demo()
    print("PERLMANd with colluding b,e on a-b-c-d-e-f:")
    print(f"  suspects {perlman.values['perlmand_suspected']} — a correct "
          f"link is framed: {perlman.values['perlmand_framed_correct_link']}")
    print(f"  (route-setup variant suspects the whole path "
          f"{perlman.values['route_setup_suspected']} — accurate, "
          f"imprecise)")

    sectrace = sectrace_framing_demo()
    print("\nSecTrace with b attacking after its validation round:")
    print(f"  detects {sectrace.values['detected']} — framing: "
          f"{sectrace.values['framed_correct_link']}")

    awerbuch = awerbuch_localization_demo()
    print("\nAWERBUCH binary search vs a persistent dropper:")
    print(f"  detects {awerbuch.values['detected']} in "
          f"{awerbuch.values['rounds']} rounds "
          f"(log2 bound {awerbuch.values['log2_bound']}); contains the "
          f"attacker: {awerbuch.values['contains_attacker']}")

    watchers = watchers_flaw_demo()
    print("\nWATCHERS vs consorting droppers r3,r4 (Fig 3.3):")
    print(f"  original protocol detects: "
          f"{watchers.values['original_detections'] or 'nothing'}")
    print(f"  with the dissertation's timeout fix: "
          f"{watchers.values['fixed_detections']} "
          f"(attacker caught: {watchers.values['fixed_detects_attacker']})")


if __name__ == "__main__":
    main()
