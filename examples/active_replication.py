#!/usr/bin/env python3
"""The ideal detector and why it is impractical (§2.3, Fig 2.1).

A replica r′ shadows router r: same inputs, recompute the outputs,
compare.  Three acts:

1. a correct router under congestion — the replica predicts every benign
   drop, zero discrepancies;
2. a compromised router — every class of tampering surfaces immediately;
3. the nondeterminism trap: a RED queue rolls dice.  Give the replica the
   router's RNG seed and it is exact; withhold it and a *correct* router
   drowns in false alarms — the paper's argument for traffic validation
   over active replication.

Run:  python examples/active_replication.py
"""

import random

from repro.core.replica import ReplicaDetector
from repro.net.adversary import ModifyAttack
from repro.net.queues import DropTailQueue, REDParams, REDQueue
from repro.net.router import Network
from repro.net.routing import install_static_routes
from repro.net.topology import MBPS, Topology
from repro.net.traffic import PoissonSource


def bottleneck_net(red=False, red_seed=42):
    topo = Topology("replica-demo")
    topo.add_link("s", "r", bandwidth=20 * MBPS, delay=0.001)
    topo.add_link("r", "d", bandwidth=1 * MBPS, delay=0.001,
                  queue_limit=20_000)
    params = REDParams(min_th=4_000, max_th=12_000, max_p=0.2,
                       weight=0.02, byte_mode=False)

    def qf(link):
        if red and link.src == "r" and link.dst == "d":
            return REDQueue(link.queue_limit, params=params,
                            rng=random.Random(red_seed))
        return DropTailQueue(link.queue_limit)

    net = Network(topo, queue_factory=qf)
    install_static_routes(net)
    return net


def main() -> None:
    # Act 1: honest router, real congestion.
    net = bottleneck_net()
    detector = ReplicaDetector(net, "r")
    net.add_tap(detector)
    PoissonSource(net, "s", "d", "f", rate_pps=200, duration=3.0, seed=1)
    net.run(6.0)
    drops = net.routers["r"].interfaces["d"].queue.drops
    print(f"act 1 — honest router: {drops} congestive drops, "
          f"{len(detector.compare())} discrepancies (all predicted)")

    # Act 2: a payload modifier.
    net = bottleneck_net()
    detector = ReplicaDetector(net, "r")
    net.add_tap(detector)
    net.routers["r"].compromise = ModifyAttack(fraction=0.2, seed=2)
    PoissonSource(net, "s", "d", "f", rate_pps=100, duration=3.0, seed=1)
    net.run(6.0)
    kinds = sorted({d.kind for d in detector.compare()})
    print(f"act 2 — modifier: {len(detector.compare())} discrepancies "
          f"({', '.join(kinds)})")

    # Act 3: RED nondeterminism.
    for shared in (True, False):
        net = bottleneck_net(red=True, red_seed=42)
        seeds = {("r", "d"): 42} if shared else None
        detector = ReplicaDetector(net, "r", red_seeds=seeds)
        net.add_tap(detector)
        PoissonSource(net, "s", "d", "f", rate_pps=160, duration=5.0,
                      seed=9)
        net.run(8.0)
        label = "shared RNG" if shared else "divergent RNG"
        print(f"act 3 — correct router, RED, {label}: "
              f"{len(detector.compare())} discrepancies")
    print("\nsame inputs, same router — the only difference is whether the")
    print("replica shares the randomization source (§2.3).")


if __name__ == "__main__":
    main()
