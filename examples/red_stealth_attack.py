#!/usr/bin/env python3
"""Catching a fine-grained attack hidden inside RED's own random drops.

A RED bottleneck drops hundreds of packets per minute *by design*.  The
compromised router adds a whisper of malice: it drops packets of two
selected flows only while the RED average queue exceeds 45,000 bytes —
exactly when RED drops are most plausible (Fig 6.12).  χ reconstructs the
average-queue trajectory, derives the RED drop probability every packet
faced, and flags the selected flows whose losses outrun their math.

Run:  python examples/red_stealth_attack.py
"""

from repro.eval import build_scenario, red_spec
from repro.net import REDAverageConditionalDropAttack


def main() -> None:
    scenario = build_scenario(red_spec(tau=5.0))
    network, chi = scenario.network, scenario.chi
    chi.schedule_rounds(1, 59)

    network.run(50.0)  # RED-only losses
    attack = REDAverageConditionalDropAttack(
        ["tcp1", "tcp2"], avg_threshold=45_000, seed=1)
    network.routers["r"].compromise = attack
    network.run(300.0)

    queue = scenario.bottleneck_queue
    print(f"RED queue dropped {queue.drops} packets itself; the attacker "
          f"added {len(attack.dropped)}")
    print(f"{'round':>5} {'drops':>5} {'agg conf':>9}  suspicious flows")
    for finding in chi.findings:
        flows = finding.suspicious_flows + finding.cumulative_flows
        if finding.round_index % 5 and not finding.alarmed:
            continue
        print(f"{finding.round_index:>5} {len(finding.drops):>5} "
              f"{finding.combined_confidence:>9.3f}  "
              f"{sorted(set(flows)) if flows else ''}"
              f"{'  <- ALARM' if finding.alarmed else ''}")
    benign = [f for f in chi.findings if f.round_index < 10]
    attacked = [f for f in chi.findings if f.round_index >= 10]
    print(f"\nfalse alarms during pure RED loss: "
          f"{sum(f.alarmed for f in benign)}")
    print(f"attack detected: {any(f.alarmed for f in attacked)}")


if __name__ == "__main__":
    main()
