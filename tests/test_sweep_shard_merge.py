"""Sharded sweep execution and manifest merging.

The load-bearing property: ``--shard 0/2`` + ``--shard 1/2`` +
``repro merge`` must reproduce the unsharded run *exactly* —
identical record order, identical ``aggregate.csv`` bytes.
"""

import json
import random

import pytest

from repro.__main__ import main
from repro.eval import registry
from repro.eval.registry import ExperimentSpec
from repro.sweep.artifacts import write_sweep_artifacts
from repro.sweep.grid import expand_grid, parse_shard, shard_specs
from repro.sweep.merge import (
    MergeError,
    load_manifest,
    merge_manifests,
    merge_sweep_dirs,
)
from repro.sweep.runner import SweepConfig
from repro.sweep.runner import run_sweep as _run_sweep

TOY = "toy-shard-test"


def run_sweep(experiment, **settings):
    """Keyword-style helper: every sweep here goes through SweepConfig."""
    return _run_sweep(experiment, SweepConfig(**settings))


def toy_experiment(scale: float = 1.0, seed: int = 0):
    rng = random.Random(seed)
    return {"value": scale * rng.random(), "seed": seed}


@pytest.fixture
def toy_registered():
    registry.register(ExperimentSpec(TOY, toy_experiment,
                                     lambda r: [str(r)]))
    yield TOY
    registry.unregister(TOY)


class TestShardSpecs:
    def test_partition_is_disjoint_and_complete(self):
        specs = expand_grid("exp", {}, {"a": [1, 2, 3]}, 4, 0)
        shards = [shard_specs(specs, i, 3) for i in range(3)]
        flat = [spec for shard in shards for spec in shard]
        assert sorted(s.run_key for s in flat) == \
            sorted(s.run_key for s in specs)
        keys = [set(s.run_key for s in shard) for shard in shards]
        assert not (keys[0] & keys[1] or keys[0] & keys[2]
                    or keys[1] & keys[2])

    def test_partition_is_deterministic(self):
        specs = expand_grid("exp", {}, {"a": [1, 2]}, 3, 7)
        assert shard_specs(specs, 1, 2) == shard_specs(specs, 1, 2)

    def test_single_shard_is_identity(self):
        specs = expand_grid("exp", {}, {}, 5, 0)
        assert shard_specs(specs, 0, 1) == specs

    def test_bad_shard_indices_rejected(self):
        specs = expand_grid("exp", {}, {}, 2, 0)
        with pytest.raises(ValueError):
            shard_specs(specs, 2, 2)
        with pytest.raises(ValueError):
            shard_specs(specs, 0, 0)

    def test_parse_shard(self):
        assert parse_shard("0/4") == (0, 4)
        assert parse_shard("3/4") == (3, 4)
        for bad in ("4/4", "-1/4", "1", "a/b", "1/0"):
            with pytest.raises(ValueError):
                parse_shard(bad)


def _run_shards(name, tmp_path, count, **kwargs):
    dirs = []
    for index in range(count):
        sweep = run_sweep(name, shard=(index, count),
                          cache_dir=str(tmp_path / f"cache{index}"),
                          **kwargs)
        out = tmp_path / f"shard{index}"
        write_sweep_artifacts(sweep, str(out))
        dirs.append(str(out))
    return dirs


class TestMergeIdentity:
    def test_sharded_merge_equals_unsharded(self, tmp_path, toy_registered):
        kwargs = dict(seeds=3, jobs=1, grid={"scale": [1.0, 2.0]},
                      root_seed=5)
        full = run_sweep(toy_registered,
                         cache_dir=str(tmp_path / "cache-full"), **kwargs)
        full_dir = tmp_path / "full"
        write_sweep_artifacts(full, str(full_dir))

        dirs = _run_shards(toy_registered, tmp_path, 2, **kwargs)
        merged = merge_sweep_dirs(dirs)
        merged_dir = tmp_path / "merged"
        write_sweep_artifacts(merged, str(merged_dir))

        # Record order and content match the unsharded run...
        assert [r["seed"] for r in merged.records] == \
            [r["seed"] for r in full.records]
        assert [r["result"] for r in merged.records] == \
            [r["result"] for r in full.records]
        # ...and aggregate.csv matches byte for byte.
        assert (merged_dir / "aggregate.csv").read_bytes() == \
            (full_dir / "aggregate.csv").read_bytes()
        assert merged.manifest()["aggregate"] == full.manifest()["aggregate"]

    def test_three_way_shard(self, tmp_path, toy_registered):
        kwargs = dict(seeds=4, jobs=1)
        full = run_sweep(toy_registered,
                         cache_dir=str(tmp_path / "cache-full"), **kwargs)
        dirs = _run_shards(toy_registered, tmp_path, 3, **kwargs)
        merged = merge_sweep_dirs(dirs)
        assert merged.aggregate == full.aggregate
        assert merged.n_runs == full.n_runs

    def test_merge_order_independent(self, tmp_path, toy_registered):
        kwargs = dict(seeds=4, jobs=1)
        dirs = _run_shards(toy_registered, tmp_path, 2, **kwargs)
        forward = merge_sweep_dirs(dirs)
        backward = merge_sweep_dirs(list(reversed(dirs)))
        assert [r["seed"] for r in forward.records] == \
            [r["seed"] for r in backward.records]
        assert forward.aggregate == backward.aggregate

    def test_merged_manifest_is_unsharded(self, tmp_path, toy_registered):
        dirs = _run_shards(toy_registered, tmp_path, 2, seeds=2, jobs=1)
        manifest = merge_sweep_dirs(dirs).manifest()
        assert manifest["shard"] is None
        assert manifest["n_runs"] == manifest["n_total"] == 2


class TestMergeValidation:
    def test_overlapping_shards_rejected(self, tmp_path, toy_registered):
        dirs = _run_shards(toy_registered, tmp_path, 2, seeds=2, jobs=1)
        with pytest.raises(MergeError, match="not disjoint"):
            merge_sweep_dirs([dirs[0], dirs[0], dirs[1]])

    def test_missing_cells_rejected(self, tmp_path, toy_registered):
        dirs = _run_shards(toy_registered, tmp_path, 2, seeds=4, jobs=1)
        with pytest.raises(MergeError, match="missing"):
            merge_sweep_dirs([dirs[0]])

    def test_mismatched_coordinates_rejected(self, tmp_path,
                                             toy_registered):
        a = _run_shards(toy_registered, tmp_path / "a", 2, seeds=2,
                        jobs=1, root_seed=0)
        b = _run_shards(toy_registered, tmp_path / "b", 2, seeds=2,
                        jobs=1, root_seed=9)
        with pytest.raises(MergeError, match="root_seed"):
            merge_sweep_dirs([a[0], b[1]])

    def test_missing_manifest_rejected(self, tmp_path):
        with pytest.raises(MergeError, match="no sweep.json"):
            load_manifest(str(tmp_path))

    def test_corrupt_manifest_rejected(self, tmp_path):
        (tmp_path / "sweep.json").write_text("{ nope")
        with pytest.raises(MergeError, match="unreadable"):
            load_manifest(str(tmp_path))

    def test_old_schema_rejected(self, tmp_path):
        (tmp_path / "sweep.json").write_text(
            json.dumps({"schema": "repro.sweep/v1"}))
        with pytest.raises(MergeError, match="not.*mergeable"):
            load_manifest(str(tmp_path))

    def test_empty_merge_rejected(self):
        with pytest.raises(MergeError, match="nothing to merge"):
            merge_manifests([])


class TestMergeCli:
    def test_shard_and_merge_via_cli(self, tmp_path, capsys):
        # "baselines" is seedless and fast: one deterministic run.
        base = ["--seeds", "1", "--jobs", "1", "--quiet",
                "--cache-dir", str(tmp_path / "cache")]
        assert main(["sweep", "baselines", "--shard", "0/1",
                     "--out", str(tmp_path / "s0")] + base) == 0
        assert main(["merge", str(tmp_path / "s0"),
                     "--out", str(tmp_path / "merged")]) == 0
        out = capsys.readouterr().out
        assert "shard 0/1" in out
        with open(tmp_path / "merged" / "sweep.json") as handle:
            manifest = json.load(handle)
        assert manifest["shard"] is None
        assert manifest["n_runs"] == 1

    def test_bad_shard_argument_exits_2(self, tmp_path, capsys):
        assert main(["sweep", "baselines", "--shard", "2/2",
                     "--out", str(tmp_path / "out"),
                     "--cache-dir", str(tmp_path / "cache")]) == 2
        assert "bad --shard" in capsys.readouterr().err

    def test_merge_incompatible_dirs_exits_2(self, tmp_path, capsys):
        assert main(["merge", str(tmp_path / "nowhere"),
                     "--out", str(tmp_path / "merged")]) == 2
        assert "merge failed" in capsys.readouterr().err
