"""Shard-dispatch executors: equivalence, supervision, re-dispatch.

The load-bearing properties:

* every executor (in-process, subprocess, ssh-with-fake-transport)
  produces an ``aggregate.csv`` byte-identical to an undispatched run
  of the same sweep;
* a shard whose process is SIGKILLed mid-run is re-dispatched and the
  sweep still completes, with the ``repro.sweep/v4`` manifest recording
  the extra attempt;
* a wedged shard (SIGSTOP) is detected through its stale heartbeat,
  killed, and marked ``lost``;
* deterministic shard failures abort the sweep instead of being
  re-dispatched.

Subprocess/ssh shards run real ``python -m repro sweep`` children; the
test experiments reach them via the ``REPRO_PLUGINS`` registry hook.
"""

import os
import pickle
import signal
import sys
import threading
import time

import pytest

from repro.eval import registry
from repro.sweep.executors import (
    LocalCommandTransport,
    LocalPoolExecutor,
    SSHExecutor,
    SubprocessShardExecutor,
    load_hostfile,
    parse_hosts,
)
from repro.sweep.executors.ssh import TransportError
from repro.sweep.executors.base import (
    SHARD_LOST,
    SHARD_OK,
    ShardSpec,
    _cli_value,
)
from repro.sweep.executors.local import (
    _cell_delta,
    _payload_from,
    _shared_context,
)
from repro.sweep.artifacts import write_sweep_artifacts
from repro.sweep.grid import expand_grid
from repro.sweep.merge import merge_sweeps
from repro.sweep.retry import ShardRetryPolicy, SweepError
from repro.sweep.runner import SweepConfig, run_sweep

TOY = "exec-toy-test"
SLOW = "exec-slow-test"

PLUGIN_MODULE = "repro_exec_test_plugin"
PLUGIN_SOURCE = '''
"""Registry plugin with the experiments the executor tests dispatch."""

import os
import random
import time

from repro.eval import registry
from repro.eval.registry import ExperimentSpec


def exec_toy(scale: float = 1.0, seed: int = 0):
    rng = random.Random(seed)
    return {"value": scale * rng.random(), "seed": seed}


def exec_slow(flag: str = "", marker_dir: str = "", seed: int = 0):
    """Write a started marker, then wait (bounded) for the flag file."""
    if marker_dir:
        path = os.path.join(marker_dir, "started-%d" % seed)
        with open(path, "w"):
            pass
    for _ in range(1200):
        if flag and os.path.exists(flag):
            break
        time.sleep(0.05)
    return {"seed": seed, "done": 1}


for _spec in (
    ExperimentSpec("exec-toy-test", exec_toy, lambda r: [str(r)]),
    ExperimentSpec("exec-slow-test", exec_slow, lambda r: [str(r)]),
):
    registry.register(_spec)
'''


@pytest.fixture
def plugin(tmp_path, monkeypatch):
    """Register the test experiments here AND in shard child processes."""
    root = tmp_path / "plugin"
    root.mkdir()
    (root / f"{PLUGIN_MODULE}.py").write_text(PLUGIN_SOURCE)
    # Absolutize inherited entries (the suite runs with PYTHONPATH=src)
    # so shard children started from another cwd still import repro.
    inherited = [os.path.abspath(entry) for entry
                 in os.environ.get("PYTHONPATH", "").split(os.pathsep)
                 if entry]
    monkeypatch.setenv(
        "PYTHONPATH", os.pathsep.join([str(root)] + inherited))
    monkeypatch.setenv("REPRO_PLUGINS", PLUGIN_MODULE)
    monkeypatch.syspath_prepend(str(root))
    __import__(PLUGIN_MODULE)
    yield
    registry.unregister(TOY)
    registry.unregister(SLOW)
    sys.modules.pop(PLUGIN_MODULE, None)


def _aggregate_bytes(sweep, out_dir):
    paths = write_sweep_artifacts(sweep, str(out_dir))
    with open(paths["aggregate.csv"], "rb") as handle:
        return handle.read()


class TestExecutorEquivalence:
    def test_all_executors_bit_identical_to_direct_run(self, plugin,
                                                       tmp_path):
        def config(**extra):
            return SweepConfig(seeds=4, jobs=1, root_seed=3,
                               grid={"scale": [1.0, 2.0]},
                               use_cache=False, **extra)

        direct = run_sweep(TOY, config())
        reference = _aggregate_bytes(direct, tmp_path / "direct")
        assert direct.n_runs == 8

        executors = {
            "local": LocalPoolExecutor(shards=2),
            "subprocess": SubprocessShardExecutor(shards=2),
            "ssh": SSHExecutor(
                parse_hosts("alpha,beta"),
                transport=LocalCommandTransport(),
                remote_root=str(tmp_path / "remote")),
        }
        for name, executor in executors.items():
            merged = run_sweep(
                TOY, config(shard_dir=str(tmp_path / f"{name}-shards")),
                executor=executor)
            assert merged.dispatch["executor"] == name
            assert merged.dispatch["n_shards"] == 2
            assert all(row["status"] == SHARD_OK
                       for row in merged.dispatch["shards"])
            assert merged.manifest()["schema"] == "repro.sweep/v4"
            assert _aggregate_bytes(merged, tmp_path / name) == reference

    def test_shard_artifacts_kept_in_shard_dir(self, plugin, tmp_path):
        shard_dir = tmp_path / "shards"
        run_sweep(TOY, SweepConfig(seeds=2, use_cache=False,
                                   shard_dir=str(shard_dir)),
                  executor=LocalPoolExecutor(shards=2))
        assert (shard_dir / "shard-0" / "sweep.json").is_file()
        assert (shard_dir / "shard-1" / "sweep.json").is_file()


class TestSubprocessSupervision:
    def test_sigkilled_shard_is_redispatched(self, plugin, tmp_path):
        flag = tmp_path / "flag"
        markers = tmp_path / "markers"
        markers.mkdir()
        executor = SubprocessShardExecutor(shards=2)
        config = SweepConfig(
            seeds=2, jobs=1,
            params={"flag": str(flag), "marker_dir": str(markers)},
            cache_dir=str(tmp_path / "cache"),
            shard_retry=ShardRetryPolicy(max_attempts=2,
                                         poll_interval_s=0.05),
            shard_dir=str(tmp_path / "shards"))

        killed = []

        def assassin():
            deadline = time.monotonic() + 60
            while time.monotonic() < deadline and not list(markers.iterdir()):
                time.sleep(0.05)
            for handle in executor.handles:
                if handle.status == "running" and handle.pid:
                    os.kill(handle.pid, signal.SIGKILL)
                    killed.append(handle.index)
                    break
            flag.touch()  # unblock every surviving (and re-run) cell

        thread = threading.Thread(target=assassin, daemon=True)
        thread.start()
        merged = run_sweep(SLOW, config, executor=executor)
        thread.join(timeout=60)

        assert killed, "assassin never found a running shard"
        rows = {row["index"]: row for row in merged.dispatch["shards"]}
        assert all(row["status"] == SHARD_OK for row in rows.values())
        assert rows[killed[0]]["attempts"] == 2
        assert merged.n_runs == 2 and merged.n_failed == 0
        assert merged.manifest()["schema"] == "repro.sweep/v4"
        # The SIGKILLed attempt died before writing a manifest, so its
        # partial telemetry is discarded; only the surviving shard and
        # the successful retry contribute to the merged section.
        telemetry = merged.manifest()["telemetry"]
        assert telemetry["runs"] == {"total": 2, "ok": 2, "failed": 0,
                                     "cached": 0, "executed": 2}
        assert telemetry["wall_s"] > 0
        wall_times = [row["wall_s"] for row in merged.dispatch["shards"]]
        assert all(w is not None and w > 0 for w in wall_times)

    def test_lost_shard_exhausts_attempts(self, plugin, tmp_path):
        markers = tmp_path / "markers"
        markers.mkdir()
        executor = SubprocessShardExecutor(shards=1)
        config = SweepConfig(
            seeds=1, jobs=1,
            params={"flag": str(tmp_path / "never"),
                    "marker_dir": str(markers)},
            use_cache=False,
            shard_retry=ShardRetryPolicy(max_attempts=1,
                                         poll_interval_s=0.05),
            shard_dir=str(tmp_path / "shards"))

        def assassin():
            deadline = time.monotonic() + 60
            while time.monotonic() < deadline and not list(markers.iterdir()):
                time.sleep(0.05)
            for handle in executor.handles:
                if handle.pid:
                    os.kill(handle.pid, signal.SIGKILL)

        thread = threading.Thread(target=assassin, daemon=True)
        thread.start()
        with pytest.raises(SweepError, match="lost after 1"):
            run_sweep(SLOW, config, executor=executor)
        thread.join(timeout=60)

    def test_stale_heartbeat_marks_shard_lost(self, plugin, tmp_path):
        executor = SubprocessShardExecutor(shards=1,
                                           heartbeat_timeout_s=1.0)
        heartbeat = tmp_path / "heartbeat"
        spec = ShardSpec(
            SLOW,
            SweepConfig(seeds=1, jobs=1, use_cache=False,
                        params={"flag": str(tmp_path / "never")}),
            index=0, count=1, out_dir=str(tmp_path / "out"),
            heartbeat=str(heartbeat))
        handle = executor.submit(spec)
        try:
            deadline = time.monotonic() + 60
            while time.monotonic() < deadline and not heartbeat.exists():
                time.sleep(0.05)
            assert heartbeat.exists(), "shard never started its heartbeat"
            os.kill(handle.pid, signal.SIGSTOP)
            while time.monotonic() < deadline \
                    and handle.status != SHARD_LOST:
                executor.poll()
                time.sleep(0.1)
        finally:
            executor.cancel()
        assert handle.status == SHARD_LOST
        assert "heartbeat stale" in handle.error

    def test_deterministic_failure_aborts_without_redispatch(
            self, plugin, tmp_path):
        executor = SubprocessShardExecutor(shards=1)
        config = SweepConfig(seeds=1, jobs=1, strict=True,
                             params={"marker_dir": str(tmp_path / "gone")},
                             use_cache=False,
                             shard_dir=str(tmp_path / "shards"))
        # marker_dir doesn't exist -> the run raises -> --strict exits 1.
        with pytest.raises(SweepError, match="failed"):
            run_sweep(SLOW, config, executor=executor)
        assert executor.handles[0].attempts == 1


class TestSSHExecutor:
    def test_lost_shard_retries_on_other_host(self, plugin, tmp_path):
        calls = []

        class FlakyTransport(LocalCommandTransport):
            def run(self, host, argv, timeout=None):
                calls.append(host.name)
                if len(calls) == 1:
                    return -9, ""  # first dispatch: killed remotely
                return super().run(host, argv, timeout)

        executor = SSHExecutor(
            parse_hosts("alpha,beta"), transport=FlakyTransport(),
            shards=1, remote_root=str(tmp_path / "remote"),
            preflight=False)  # FlakyTransport counts raw dispatch calls
        merged = run_sweep(
            SLOW,
            SweepConfig(seeds=1, jobs=1, use_cache=False,
                        params={"flag": str(tmp_path / "flag.missing")},
                        shard_retry=ShardRetryPolicy(max_attempts=2,
                                                     poll_interval_s=0.05),
                        shard_dir=str(tmp_path / "shards")),
            executor=executor)
        # Hosts must differ across attempts: the loser is excluded.
        assert len(calls) == 2 and calls[0] != calls[1]
        row = merged.dispatch["shards"][0]
        assert row["status"] == SHARD_OK and row["attempts"] == 2


class TestDispatchedTracing:
    def test_shard_children_trace_and_telemetry_merges(self, plugin,
                                                       tmp_path, capsys):
        from repro.__main__ import main
        from repro.obs.cli import summarize_paths

        out = tmp_path / "out"
        assert main(["sweep", TOY, "--seeds", "2", "--jobs", "1",
                     "--no-cache", "--executor", "subprocess",
                     "--shards", "2", "--trace",
                     "--out", str(out)]) == 0
        summary = summarize_paths([str(out)])
        # Each shard child traced its own run; collect() brought the
        # per-shard trace dirs back under <out>/shards/.
        assert summary["traces"] == 2
        telemetry = summary["telemetry"]
        assert telemetry["runs"]["total"] == 2
        dispatch = telemetry["dispatch"]
        assert dispatch["executor"] == "subprocess"
        assert dispatch["n_shards"] == 2
        assert dispatch["submit_s"] >= 0 and dispatch["collect_s"] >= 0


class TestSSHPreflight:
    """The preflight checks: a bad host fails, not the sweep."""

    def _spec(self, tmp_path):
        return ShardSpec(
            TOY, SweepConfig(seeds=1, jobs=1, use_cache=False),
            index=0, count=1, out_dir=str(tmp_path / "out"))

    def test_bad_host_dropped_sweep_completes(self, plugin, tmp_path):
        class NoPythonOnAlpha(LocalCommandTransport):
            def run(self, host, argv, timeout=None):
                if host.name == "alpha" and list(argv[1:2]) == ["-V"]:
                    return 127, "sh: python: command not found"
                return super().run(host, argv, timeout)

        executor = SSHExecutor(
            parse_hosts("alpha,beta"), transport=NoPythonOnAlpha(),
            shards=2, remote_root=str(tmp_path / "remote"))
        merged = run_sweep(
            TOY, SweepConfig(seeds=2, jobs=1, use_cache=False,
                             shard_dir=str(tmp_path / "shards")),
            executor=executor)
        assert merged.n_runs == 2 and merged.n_failed == 0
        assert "exited 127" in executor.preflight_failures["alpha"]
        assert [host.name for host in executor.hosts] == ["beta"]
        assert all(row["host"] == "beta"
                   for row in merged.dispatch["shards"])
        # The dropped host is recorded in the dispatch section so a
        # merged manifest explains why one machine did no work.
        assert "alpha" in merged.dispatch["preflight_failures"]

    def test_unimportable_repro_reported(self, plugin, tmp_path):
        class NoRepro(LocalCommandTransport):
            def run(self, host, argv, timeout=None):
                if list(argv[1:2]) == ["-c"]:
                    return 1, ("Traceback (most recent call last):\n"
                               "ModuleNotFoundError: "
                               "No module named 'repro'")
                return super().run(host, argv, timeout)

        executor = SSHExecutor(
            parse_hosts("alpha"), transport=NoRepro(), shards=1,
            remote_root=str(tmp_path / "remote"))
        with pytest.raises(TransportError,
                           match="preflight failed on all 1 host"):
            executor.submit(self._spec(tmp_path))
        reason = executor.preflight_failures["alpha"]
        assert "cannot import repro" in reason
        assert "ModuleNotFoundError" in reason

    def test_all_hosts_failing_aborts_with_every_reason(self, plugin,
                                                        tmp_path):
        class Unreachable(LocalCommandTransport):
            def run(self, host, argv, timeout=None):
                raise TransportError(f"ssh to {host.name}: "
                                     f"connection refused")

        executor = SSHExecutor(
            parse_hosts("alpha,beta"), transport=Unreachable(), shards=1,
            remote_root=str(tmp_path / "remote"))
        with pytest.raises(TransportError,
                           match="preflight failed on all 2 host"):
            executor.submit(self._spec(tmp_path))
        assert set(executor.preflight_failures) == {"alpha", "beta"}

    def test_preflight_runs_once_and_can_be_disabled(self, plugin,
                                                     tmp_path):
        calls = []

        class Counting(LocalCommandTransport):
            def run(self, host, argv, timeout=None):
                calls.append(list(argv[1:2]))
                return super().run(host, argv, timeout)

        def dispatch(executor, name):
            return run_sweep(
                TOY, SweepConfig(seeds=2, jobs=1, use_cache=False,
                                 shard_dir=str(tmp_path / name)),
                executor=executor)

        merged = dispatch(SSHExecutor(
            parse_hosts("alpha"), transport=Counting(), shards=2,
            remote_root=str(tmp_path / "r1")), "checked")
        assert merged.n_runs == 2
        # One -V and one import probe for the host, not one per shard.
        assert calls.count(["-V"]) == 1 and calls.count(["-c"]) == 1
        assert "preflight_failures" not in merged.dispatch

        calls.clear()
        dispatch(SSHExecutor(
            parse_hosts("alpha"), transport=Counting(), shards=2,
            remote_root=str(tmp_path / "r2"), preflight=False),
            "unchecked")
        assert ["-V"] not in calls and ["-c"] not in calls


class TestHosts:
    def test_parse_hosts(self):
        hosts = parse_hosts("alpha, beta:8")
        assert [(h.name, h.slots) for h in hosts] == \
            [("alpha", 1), ("beta", 8)]
        with pytest.raises(ValueError):
            parse_hosts("alpha:lots")
        with pytest.raises(ValueError):
            parse_hosts(",")

    @pytest.mark.skipif(sys.version_info < (3, 11),
                        reason="TOML hostfiles need tomllib (Python 3.11)")
    def test_load_hostfile(self, tmp_path):
        hostfile = tmp_path / "hosts.toml"
        hostfile.write_text(
            'python = "/usr/bin/python3"\n'
            'cwd = "/srv/repro"\n'
            '[[hosts]]\n'
            'name = "fast"\n'
            'slots = 8\n'
            '[[hosts]]\n'
            'name = "spare"\n'
            'python = "/opt/py/bin/python"\n'
            'env = { PYTHONPATH = "src" }\n')
        hosts = load_hostfile(str(hostfile))
        assert hosts[0].name == "fast" and hosts[0].slots == 8
        assert hosts[0].python == "/usr/bin/python3"
        assert hosts[0].cwd == "/srv/repro"
        assert hosts[1].slots == 1
        assert hosts[1].python == "/opt/py/bin/python"
        assert hosts[1].env == (("PYTHONPATH", "src"),)

    @pytest.mark.skipif(sys.version_info < (3, 11),
                        reason="TOML hostfiles need tomllib (Python 3.11)")
    def test_load_hostfile_requires_entries(self, tmp_path):
        empty = tmp_path / "empty.toml"
        empty.write_text("python = 'python3'\n")
        with pytest.raises(ValueError, match=r"no \[\[hosts\]\]"):
            load_hostfile(str(empty))


class TestShardCommand:
    def test_command_round_trips_through_cli_parsing(self):
        from repro.sweep.grid import (
            parse_grid_assignments,
            parse_param_assignments,
        )

        config = SweepConfig(seeds=3, jobs=2, root_seed=7,
                             params={"scale": 2.5},
                             grid={"mode": [1, 2]})
        spec = ShardSpec(TOY, config, index=1, count=3, out_dir="/tmp/o")
        argv = spec.command("python3")
        assert argv[:5] == ["python3", "-m", "repro", "sweep", TOY]
        assert "--shard" in argv and argv[argv.index("--shard") + 1] == "1/3"
        param_args = [argv[i + 1] for i, a in enumerate(argv)
                      if a == "--param"]
        grid_args = [argv[i + 1] for i, a in enumerate(argv)
                     if a == "--grid"]
        assert parse_param_assignments(param_args) == {"scale": 2.5}
        assert parse_grid_assignments(grid_args) == {"mode": [1, 2]}

    def test_unroundtrippable_value_rejected(self):
        config = SweepConfig(params={"label": "a,b"})
        spec = ShardSpec(TOY, config, index=0, count=1, out_dir="/tmp/o")
        with pytest.raises(ValueError, match="label"):
            spec.command()
        assert _cli_value("x", 1.5) == "1.5"
        with pytest.raises(ValueError):
            _cli_value("x", " padded ")


class TestWorkerPayloads:
    def test_delta_excludes_invariant_params(self):
        blob = "x" * 20000
        specs = expand_grid("exp", {"blob": blob}, {"k": [1, 2]}, 3, 0)
        context = _shared_context(specs, None)
        assert len(pickle.dumps(context)) > 20000
        for spec in specs:
            delta = _cell_delta(spec, context)
            # The 20 kB invariant blob must not ride along per cell.
            assert len(pickle.dumps(delta)) < 500
            payload = _payload_from(context, delta)
            expected = spec.payload()
            assert payload["experiment"] == expected["experiment"]
            assert payload["seed_index"] == expected["seed_index"]
            assert payload["seed"] == expected["seed"]
            assert {k: v for k, v in payload["params"]} == \
                {k: v for k, v in expected["params"]}

    def test_timeout_travels_in_context(self):
        specs = expand_grid("exp", {}, {}, 2, 0)
        context = _shared_context(specs, 1.5)
        payload = _payload_from(context, _cell_delta(specs[0], context))
        assert payload["timeout_s"] == 1.5


class TestShardRetryPolicy:
    def test_validation(self):
        with pytest.raises(ValueError):
            ShardRetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            ShardRetryPolicy(poll_interval_s=0)

    def test_allows_retry(self):
        policy = ShardRetryPolicy(max_attempts=2)
        assert policy.allows_retry(1)
        assert not policy.allows_retry(2)


class TestConfigOnlyApi:
    def test_legacy_kwargs_rejected(self, tmp_path):
        # The PR 3 keyword shim has been expired: settings travel only
        # in a SweepConfig now, and stray kwargs fail fast.
        with pytest.raises(TypeError):
            run_sweep("baselines", seeds=1, cache_dir=str(tmp_path))

    def test_config_path_works(self, tmp_path):
        sweep = run_sweep("baselines",
                          SweepConfig(seeds=1, cache_dir=str(tmp_path)))
        assert sweep.n_runs == 1

    def test_unknown_kwarg_rejected(self):
        with pytest.raises(TypeError):
            run_sweep("baselines", bogus=1)

    def test_shard_and_executor_mutually_exclusive(self):
        with pytest.raises(ValueError, match="cannot be combined"):
            run_sweep("baselines", SweepConfig(shard=(0, 2)),
                      executor=LocalPoolExecutor())


class TestManifestCompat:
    def test_v2_manifests_still_merge(self, plugin, tmp_path):
        import json

        dirs = []
        for index in range(2):
            sweep = run_sweep(TOY, SweepConfig(
                seeds=4, shard=(index, 2), use_cache=False))
            out = tmp_path / f"shard{index}"
            write_sweep_artifacts(sweep, str(out))
            # Rewrite as a v2 manifest, as an old release would have.
            manifest = json.loads((out / "sweep.json").read_text())
            manifest["schema"] = "repro.sweep/v2"
            manifest.pop("dispatch", None)
            (out / "sweep.json").write_text(json.dumps(manifest))
            dirs.append(str(out))
        merged = merge_sweeps(dirs, out_dir=str(tmp_path / "merged"))
        assert merged.n_runs == 4
        assert (tmp_path / "merged" / "aggregate.csv").is_file()

    def test_mixed_schemas_rejected(self, plugin, tmp_path):
        import json

        from repro.sweep.merge import MergeError, merge_sweep_dirs

        dirs = []
        for index in range(2):
            sweep = run_sweep(TOY, SweepConfig(
                seeds=2, shard=(index, 2), use_cache=False))
            out = tmp_path / f"shard{index}"
            write_sweep_artifacts(sweep, str(out))
            dirs.append(str(out))
        manifest = json.loads((tmp_path / "shard0" / "sweep.json")
                              .read_text())
        manifest["schema"] = "repro.sweep/v2"
        (tmp_path / "shard0" / "sweep.json").write_text(
            json.dumps(manifest))
        with pytest.raises(MergeError, match="schema"):
            merge_sweep_dirs(dirs)


class TestCliDispatch:
    def test_subprocess_executor_via_cli(self, plugin, tmp_path,
                                         monkeypatch, capsys):
        from repro.__main__ import main

        monkeypatch.chdir(tmp_path)
        out = tmp_path / "out"
        assert main(["sweep", TOY, "--seeds", "2", "--jobs", "1",
                     "--executor", "subprocess", "--shards", "2",
                     "--no-cache", "--quiet", "--out", str(out)]) == 0
        import json
        manifest = json.loads((out / "sweep.json").read_text())
        assert manifest["schema"] == "repro.sweep/v4"
        assert manifest["dispatch"]["executor"] == "subprocess"
        assert manifest["n_runs"] == 2

    def test_dispatch_flags_need_executor(self, tmp_path, capsys):
        from repro.__main__ import main

        assert main(["sweep", "baselines", "--shards", "2",
                     "--out", str(tmp_path)]) == 2
        assert "--executor" in capsys.readouterr().err

    def test_shard_worker_flag_conflicts_with_executor(self, tmp_path,
                                                       capsys):
        from repro.__main__ import main

        assert main(["sweep", "baselines", "--shard", "0/2",
                     "--executor", "local", "--out", str(tmp_path)]) == 2
        assert "cannot be combined" in capsys.readouterr().err
