"""Sweep-vs-sweep drift detection and its exit-code contract.

Fake sweep directories (a manifest plus one trace carrying a final
``obs.metrics`` snapshot) pin down the gating semantics: metrics and
aggregates gate by default, telemetry only on request, exit 0/1/2.
"""

import json

import pytest

from repro.__main__ import main
from repro.obs import DiffReport, diff_sweeps
from repro.obs.diff import (
    collect_metrics,
    flatten_numeric_tree,
    format_diff,
)


def make_sweep(root, name, *, drops=5, latency_mean=2.0, wall_s=1.0,
               aggregate=None):
    """A minimal sweep dir: sweep.json + traces/run.jsonl."""
    out = root / name
    (out / "traces").mkdir(parents=True)
    manifest = {
        "schema": "repro.sweep/v4",
        "aggregate": aggregate if aggregate is not None
        else {"detected": {"mean": 1.0}, "recall": {"mean": 0.8}},
        "telemetry": {"wall_s": wall_s,
                      "runs": {"total": 1, "ok": 1},
                      "workers": {"jobs": 1, "utilization": 0.9}},
    }
    (out / "sweep.json").write_text(json.dumps(manifest))
    snapshot = {
        "repro.net.pkt.dropped": {"kind": "counter", "value": drops},
        "repro.net.pkt.latency": {"kind": "histogram", "count": 2,
                                  "total": 2 * latency_mean,
                                  "min": 1.0, "max": 3.0,
                                  "mean": latency_mean,
                                  "buckets": {"2": 1, "4": 1}},
    }
    trace = out / "traces" / "run.jsonl"
    trace.write_text(json.dumps(
        {"event": "obs.metrics", "t": None, "metrics": snapshot,
         "events": 2}) + "\n")
    return str(out)


class TestCollectAndFlatten:
    def test_collect_metrics_merges_traces(self, tmp_path):
        sweep = make_sweep(tmp_path, "a", drops=5)
        merged = collect_metrics(sweep)
        assert merged["repro.net.pkt.dropped"]["value"] == 5

    def test_flatten_skips_bools_recurses_dicts(self):
        flat = flatten_numeric_tree("agg", {
            "detected": True, "recall": {"mean": 0.8, "n": 2},
            "name": "chi"})
        assert flat == {"agg.recall.mean": 0.8, "agg.recall.n": 2.0}


class TestDiffSweeps:
    def test_self_diff_is_clean(self, tmp_path):
        sweep = make_sweep(tmp_path, "a")
        report = diff_sweeps(sweep, sweep)
        assert isinstance(report, DiffReport)
        assert report.deltas == [] and report.exit_code == 0
        assert report.unchanged > 0
        assert format_diff(report)[-1] == "no deltas"

    def test_metric_drift_is_a_regression(self, tmp_path):
        a = make_sweep(tmp_path, "a", drops=5)
        b = make_sweep(tmp_path, "b", drops=8)
        report = diff_sweeps(a, b)
        assert report.exit_code == 1
        keys = {d.key for d in report.regressions}
        assert "metrics.repro.net.pkt.dropped.value" in keys
        delta = next(d for d in report.deltas
                     if d.key == "metrics.repro.net.pkt.dropped.value")
        assert delta.rel == pytest.approx(0.6)
        assert any("REGRESSION" in line for line in format_diff(report))

    def test_threshold_tolerates_small_drift(self, tmp_path):
        a = make_sweep(tmp_path, "a", drops=100)
        b = make_sweep(tmp_path, "b", drops=110)
        assert diff_sweeps(a, b).exit_code == 1
        report = diff_sweeps(a, b, threshold=0.2)
        assert report.exit_code == 0
        # Tolerated drift is still reported, just not gating-failed.
        assert any(d.key == "metrics.repro.net.pkt.dropped.value"
                   and not d.regression for d in report.deltas)

    def test_change_off_zero_always_gates(self, tmp_path):
        a = make_sweep(tmp_path, "a", drops=0)
        b = make_sweep(tmp_path, "b", drops=1)
        report = diff_sweeps(a, b, threshold=100.0)
        assert report.exit_code == 1
        delta = next(d for d in report.regressions)
        assert delta.rel is None  # relative change off zero is undefined

    def test_one_sided_key_always_gates(self, tmp_path):
        a = make_sweep(tmp_path, "a",
                       aggregate={"detected": {"mean": 1.0}})
        b = make_sweep(tmp_path, "b",
                       aggregate={"detected": {"mean": 1.0},
                                  "extra": {"mean": 2.0}})
        report = diff_sweeps(a, b, threshold=100.0)
        assert [d.key for d in report.regressions] \
            == ["aggregate.extra.mean"]
        assert report.regressions[0].a is None

    def test_telemetry_informational_unless_gated(self, tmp_path):
        a = make_sweep(tmp_path, "a", wall_s=1.0)
        b = make_sweep(tmp_path, "b", wall_s=9.0)
        report = diff_sweeps(a, b)
        assert report.exit_code == 0
        assert any(d.key == "telemetry.wall_s" and not d.gating
                   for d in report.deltas)
        gated = diff_sweeps(a, b, gate_telemetry=True)
        assert gated.exit_code == 1
        assert any(d.key == "telemetry.wall_s" for d in gated.regressions)

    def test_to_dict_round_trips_through_json(self, tmp_path):
        a = make_sweep(tmp_path, "a", drops=5)
        b = make_sweep(tmp_path, "b", drops=8)
        payload = diff_sweeps(a, b).to_dict()
        decoded = json.loads(json.dumps(payload))
        assert decoded["exit_code"] == 1
        assert decoded["regressions"] >= 1


class TestDiffCli:
    def test_self_diff_exit_0(self, tmp_path, capsys):
        sweep = make_sweep(tmp_path, "a")
        assert main(["obs", "diff", sweep, sweep]) == 0
        assert "no deltas" in capsys.readouterr().out

    def test_regression_exit_1(self, tmp_path, capsys):
        a = make_sweep(tmp_path, "a", drops=5)
        b = make_sweep(tmp_path, "b", drops=8)
        assert main(["obs", "diff", a, b]) == 1
        text = capsys.readouterr().out
        assert "REGRESSION" in text and "regression(s)" in text

    def test_threshold_flag(self, tmp_path):
        a = make_sweep(tmp_path, "a", drops=100)
        b = make_sweep(tmp_path, "b", drops=110)
        assert main(["obs", "diff", a, b, "--threshold", "0.2"]) == 0

    def test_json_format(self, tmp_path, capsys):
        a = make_sweep(tmp_path, "a", drops=5)
        b = make_sweep(tmp_path, "b", drops=8)
        assert main(["obs", "diff", "--format", "json", a, b]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["exit_code"] == 1

    def test_missing_sweep_exit_2(self, tmp_path, capsys):
        sweep = make_sweep(tmp_path, "a")
        assert main(["obs", "diff", sweep,
                     str(tmp_path / "nowhere")]) == 2
        assert "no such sweep" in capsys.readouterr().err
