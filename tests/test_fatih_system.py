"""Additional Fatih coordinator behaviours: re-arming, segment hygiene."""


from repro.core.fatih import FatihConfig, FatihSystem
from repro.net.adversary import DropFractionAttack
from repro.net.router import Network
from repro.net.routing import LinkStateRouting
from repro.net.topology import MBPS, abilene
from repro.net.traffic import CBRSource


def build(rebuild_grace=6.0):
    net = Network(abilene(bandwidth=10 * MBPS), proc_jitter=0.0002)
    routing = LinkStateRouting(net, spf_delay=1.0, spf_hold=2.0,
                               hello_interval=2.0, boot_spread=4.0,
                               flood_hop_delay=0.01, lsa_refresh=4.0)
    routing.start()
    fatih = FatihSystem(net, routing,
                        config=FatihConfig(tau=2.0, threshold=2,
                                           rebuild_grace=rebuild_grace))
    flows = [("Sunnyvale", "NewYork"), ("NewYork", "Sunnyvale"),
             ("LosAngeles", "Chicago"), ("Seattle", "WashingtonDC")]
    for i, (s, d) in enumerate(flows):
        CBRSource(net, s, d, f"bg{i}", rate_bps=80_000, start=10.0)
    return net, routing, fatih


class TestRearm:
    def test_monitoring_rearms_after_detection(self):
        net, routing, fatih = build()
        fatih.start_monitoring(at=12.0, until=80.0)
        net.run(30.0)
        first_protocol = fatih.protocol  # the pre-attack instance
        net.routers["KansasCity"].compromise = DropFractionAttack(0.25,
                                                                  seed=1)
        net.run(80.0)
        assert fatih.suspicions
        # A fresh protocol instance replaced the stale-oracle one.
        assert fatih.protocol is not None
        assert fatih.protocol is not first_protocol
        assert first_protocol.stopped

    def test_rearmed_monitor_excludes_suspected_segments(self):
        net, routing, fatih = build()
        fatih.start_monitoring(at=12.0, until=80.0)
        net.run(30.0)
        net.routers["KansasCity"].compromise = DropFractionAttack(0.25,
                                                                  seed=1)
        net.run(80.0)
        suspected = fatih.suspected_segments()
        assert suspected
        monitored = set(fatih.protocol.segments)
        assert not (suspected & monitored)

    def test_old_protocol_stopped_on_detection(self):
        net, routing, fatih = build()
        fatih.start_monitoring(at=12.0, until=80.0)
        net.run(30.0)
        first_protocol = fatih.protocol
        net.routers["KansasCity"].compromise = DropFractionAttack(0.25,
                                                                  seed=1)
        net.run(50.0)
        assert first_protocol.stopped

    def test_no_rearm_when_window_over(self):
        net, routing, fatih = build(rebuild_grace=100.0)
        fatih.start_monitoring(at=12.0, until=40.0)
        net.run(30.0)
        net.routers["KansasCity"].compromise = DropFractionAttack(0.25,
                                                                  seed=1)
        net.run(60.0)
        # Detection happened, but the grace period extends past the
        # monitoring window: no rearm is scheduled.
        assert fatih.suspicions
        assert fatih.protocol.stopped


class TestDetectionQuality:
    def test_repeated_detection_isolates_more_segments(self):
        """Each rearm re-monitors the surviving fabric, so a uniformly
        malicious router accumulates exclusions round by round (§2.4.3:
        'each of these paths will be separately detected and then routed
        around')."""
        net, routing, fatih = build()
        fatih.start_monitoring(at=12.0, until=110.0)
        net.run(25.0)
        net.routers["KansasCity"].compromise = DropFractionAttack(0.3,
                                                                  seed=2)
        net.run(55.0)
        first_batch = len(fatih.suspected_segments())
        assert first_batch > 0
        net.run(110.0)
        # All suspicions, early and late, contain the attacker.
        for seg in fatih.suspected_segments():
            assert "KansasCity" in seg
