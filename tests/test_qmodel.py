"""Tests for the §6.1.2 traffic-modeling formulas."""

import math

import pytest

from repro.core.qmodel import (
    appenzeller_loss_probability,
    appenzeller_sigma,
    required_buffer,
    tcp_loss_from_throughput,
    tcp_square_root_throughput,
)


class TestSquareRootFormula:
    def test_known_value(self):
        # B = (1/RTT) sqrt(3/(2 b p)); RTT=0.1, p=0.015, b=1
        expected = 10 * math.sqrt(3 / 0.03)
        assert tcp_square_root_throughput(0.1, 0.015) == \
            pytest.approx(expected)

    def test_throughput_falls_with_loss(self):
        low = tcp_square_root_throughput(0.1, 0.001)
        high = tcp_square_root_throughput(0.1, 0.1)
        assert low > high

    def test_roundtrip_with_inverse(self):
        rate = tcp_square_root_throughput(0.05, 0.01)
        assert tcp_loss_from_throughput(0.05, rate) == pytest.approx(0.01)

    def test_validation(self):
        with pytest.raises(ValueError):
            tcp_square_root_throughput(0, 0.1)
        with pytest.raises(ValueError):
            tcp_square_root_throughput(0.1, 0)
        with pytest.raises(ValueError):
            tcp_loss_from_throughput(0.1, 0)


class TestAppenzellerModel:
    def test_sigma_shrinks_with_flows(self):
        few = appenzeller_sigma(0.05, 1000, 100, 4)
        many = appenzeller_sigma(0.05, 1000, 100, 400)
        assert many == pytest.approx(few / 10)

    def test_loss_probability_decreases_with_buffer(self):
        sigma = appenzeller_sigma(0.05, 1000, 100, 16)
        small = appenzeller_loss_probability(50, sigma)
        large = appenzeller_loss_probability(500, sigma)
        assert large < small

    def test_loss_probability_in_unit_interval(self):
        sigma = appenzeller_sigma(0.05, 1000, 50, 8)
        p = appenzeller_loss_probability(50, sigma)
        assert 0.0 <= p <= 0.5

    def test_required_buffer_rule(self):
        # 2 T_p C / sqrt(n)
        assert required_buffer(0.05, 1000, 25) == pytest.approx(20.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            appenzeller_sigma(0.05, 1000, 100, 0)
        with pytest.raises(ValueError):
            appenzeller_loss_probability(10, 0)

    def test_model_too_coarse_for_detection(self):
        """The paper's conclusion: the analytic prediction misses the
        simulated loss rate by a wide margin (§6.1.2)."""
        from repro.eval.experiments import traffic_modeling_comparison
        comparison = traffic_modeling_comparison()
        assert comparison.relative_error > 0.5
