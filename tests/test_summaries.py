"""Unit tests for traffic summaries and the segment monitor."""

import pytest

from repro.core.summaries import (
    PathOracle,
    SegmentMonitor,
    SummaryBuilder,
    SummaryPolicy,
)
from repro.crypto.fingerprint import FingerprintSampler
from repro.dist.sync import ClockModel, RoundSchedule
from repro.net.packet import Packet
from repro.net.router import Network
from repro.net.routing import install_static_routes
from repro.net.topology import MBPS, chain


class TestSummaryBuilder:
    def build(self, policy, items=((1, 100, 0.1), (2, 200, 0.2))):
        builder = SummaryBuilder("r", ("a", "b"), 0, "sent", policy)
        for fp, size, when in items:
            builder.observe(fp, size, when)
        return builder.freeze()

    def test_flow_policy_counts_only(self):
        s = self.build(SummaryPolicy.FLOW)
        assert s.count == 2
        assert s.byte_count == 300
        assert s.fingerprints is None
        assert s.ordered is None

    def test_content_policy_keeps_set(self):
        s = self.build(SummaryPolicy.CONTENT)
        assert s.fingerprints == frozenset({1, 2})
        assert s.ordered is None

    def test_order_policy_keeps_sequence(self):
        s = self.build(SummaryPolicy.ORDER)
        assert s.ordered == (1, 2)

    def test_timeliness_policy_keeps_timestamps(self):
        s = self.build(SummaryPolicy.TIMELINESS)
        assert s.timestamps == ((1, 0.1), (2, 0.2))

    def test_state_size_by_policy(self):
        items = tuple((i, 100, 0.1 * i) for i in range(10))
        flow = SummaryBuilder("r", ("a", "b"), 0, "sent", SummaryPolicy.FLOW)
        content = SummaryBuilder("r", ("a", "b"), 0, "sent",
                                 SummaryPolicy.CONTENT)
        for fp, size, when in items:
            flow.observe(fp, size, when)
            content.observe(fp, size, when)
        assert flow.state_size() == 2
        assert content.state_size() == 10


class TestPathOracle:
    def oracle(self):
        return PathOracle({
            ("a", "d"): ["a", "b", "c", "d"],
            ("a", "c"): ["a", "b", "c"],
        })

    def test_path_lookup(self):
        assert self.oracle().path("a", "d") == ("a", "b", "c", "d")
        assert self.oracle().path("d", "a") is None

    def test_traverses_contiguous(self):
        oracle = self.oracle()
        p = Packet(src="a", dst="d")
        assert oracle.traverses(p, ("b", "c")) == 1
        assert oracle.traverses(p, ("a", "b", "c")) == 0
        assert oracle.traverses(p, ("a", "c")) is None  # not contiguous

    def test_next_hop_after(self):
        oracle = self.oracle()
        p = Packet(src="a", dst="d")
        assert oracle.next_hop_after(p, "b") == "c"
        assert oracle.next_hop_after(p, "d") is None


def make_monitored_chain(policy=SummaryPolicy.CONTENT, tau=1.0,
                         clock=None, samplers=None):
    net = Network(chain(4, bandwidth=10 * MBPS, delay=0.001))
    paths = install_static_routes(net)
    oracle = PathOracle(paths)
    schedule = RoundSchedule(tau=tau)
    monitor = SegmentMonitor(net, oracle, schedule, policy=policy,
                             clock=clock, samplers=samplers)
    net.add_tap(monitor)
    return net, monitor


class TestSegmentMonitor:
    def test_matched_summaries_for_clean_traffic(self):
        net, monitor = make_monitored_chain()
        segment = ("r1", "r2", "r3")
        monitor.watch_segment(segment)
        for i in range(10):
            net.routers["r1"].originate(
                Packet(src="r1", dst="r4", flow_id="f", seq=i))
        net.run(0.9)
        sent = monitor.summary(segment, "r1", "sent", 0)
        received = monitor.summary(segment, "r3", "received", 0)
        assert sent.count == 10
        assert received.count == 10
        assert sent.fingerprints == received.fingerprints

    def test_traffic_not_on_segment_ignored(self):
        net, monitor = make_monitored_chain()
        monitor.watch_segment(("r2", "r3", "r4"))
        # r1 -> r2 traffic terminates at r2: it never enters the segment.
        for i in range(5):
            net.routers["r1"].originate(
                Packet(src="r1", dst="r2", flow_id="f", seq=i))
        net.run(0.9)
        summary = monitor.summary(("r2", "r3", "r4"), "r2", "sent", 0)
        assert summary.count == 0

    def test_round_attribution_consistent_across_link(self):
        """Receiver subtracts propagation so both ends agree on rounds."""
        net, monitor = make_monitored_chain(tau=0.05)
        segment = ("r1", "r2", "r3")
        monitor.watch_segment(segment)
        for i in range(40):
            net.sim.schedule_at(
                i * 0.01, net.routers["r1"].originate,
                Packet(src="r1", dst="r4", flow_id="f", seq=i))
        net.run(2.0)
        for round_index in range(4):
            sent = monitor.summary(segment, "r1", "sent", round_index)
            got = monitor.summary(segment, "r3", "received", round_index)
            assert sent.fingerprints == got.fingerprints

    def test_ends_only_monitoring(self):
        net, monitor = make_monitored_chain()
        segment = ("r1", "r2", "r3")
        monitor.watch_segment(segment, monitors=("r1", "r3"))
        for i in range(5):
            net.routers["r1"].originate(
                Packet(src="r1", dst="r4", flow_id="f", seq=i))
        net.run(0.9)
        summaries = monitor.segment_summaries(segment, 0)
        routers = {router for router, _ in summaries}
        assert routers == {"r1", "r3"}

    def test_sampling_restricts_recording(self):
        sampler = FingerprintSampler(rate=0.5, key=b"k")
        segment = ("r1", "r2", "r3")
        net, monitor = make_monitored_chain(
            samplers={segment: sampler})
        monitor.watch_segment(segment)
        packets = [Packet(src="r1", dst="r4", flow_id="f", seq=i)
                   for i in range(100)]
        expected = sum(sampler.sampled(p) for p in packets)
        for i, p in enumerate(packets):  # paced: no source-queue overflow
            net.sim.schedule_at(i * 0.002, net.routers["r1"].originate, p)
        net.run(2.0)
        sent = monitor.summary(segment, "r1", "sent", 0)
        assert sent.count == expected

    def test_sampled_sets_still_match(self):
        sampler = FingerprintSampler(rate=0.3, key=b"k2")
        segment = ("r1", "r2", "r3")
        net, monitor = make_monitored_chain(samplers={segment: sampler})
        monitor.watch_segment(segment)
        for i in range(60):
            net.routers["r1"].originate(
                Packet(src="r1", dst="r4", flow_id="f", seq=i))
        net.run(2.0)
        sent = monitor.summary(segment, "r1", "sent", 0)
        got = monitor.summary(segment, "r3", "received", 0)
        assert sent.fingerprints == got.fingerprints

    def test_segment_validation(self):
        net, monitor = make_monitored_chain()
        with pytest.raises(ValueError):
            monitor.watch_segment(("r1",))

    def test_state_units_and_gc(self):
        net, monitor = make_monitored_chain()
        segment = ("r1", "r2", "r3")
        monitor.watch_segment(segment)
        for i in range(10):
            net.routers["r1"].originate(
                Packet(src="r1", dst="r4", flow_id="f", seq=i))
        net.run(0.9)
        assert monitor.state_units("r1") > 0
        monitor.drop_rounds_before(10)
        assert monitor.state_units("r1") == 0

    def test_clock_skew_shifts_round_boundaries(self):
        """With skew larger than tau the two ends can disagree."""
        clock = ClockModel(epsilon=0.2, seed=1)
        net, monitor = make_monitored_chain(tau=0.05, clock=clock)
        segment = ("r1", "r2", "r3")
        monitor.watch_segment(segment)
        for i in range(40):
            net.sim.schedule_at(
                i * 0.01, net.routers["r1"].originate,
                Packet(src="r1", dst="r4", flow_id="f", seq=i))
        net.run(2.0)
        mismatched = any(
            monitor.summary(segment, "r1", "sent", r).fingerprints
            != monitor.summary(segment, "r3", "received", r).fingerprints
            for r in range(6)
        )
        assert mismatched
