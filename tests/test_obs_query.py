"""The trace query engine: typed events, filters, index sidecars.

Fixture sweeps run the real ``attack_matrix`` experiment with each
traffic-faulty behavior traced, so the schema test exercises every
event kind the instrumentation can emit; unit tests for the filter and
index layers use small synthetic traces.
"""

import json
import os

import pytest

from repro.__main__ import main
from repro.obs import QueryFilter, TraceEvent, TraceReader, trace_files
from repro.obs.query import (
    INDEX_VERSION,
    build_index,
    index_path,
    scan,
)

BEHAVIORS = ("drop", "misroute", "fabricate")


@pytest.fixture(scope="module")
def attack_sweeps(tmp_path_factory):
    """Behavior -> traced single-cell attack_matrix sweep directory."""
    root = tmp_path_factory.mktemp("attack-sweeps")
    sweeps = {}
    for behavior in BEHAVIORS:
        out = root / behavior
        assert main(["sweep", "attack_matrix", "--seeds", "1",
                     "--jobs", "1", "--no-cache", "--trace",
                     "--out", str(out),
                     "--param", "placement.strategy=fixed",
                     "--param", "placement.router=Denver",
                     "--param", f"adversary.behavior={behavior}",
                     "--param", "adversary.rate=0.5"]) == 0
        sweeps[behavior] = str(out)
    return sweeps


@pytest.fixture(scope="module")
def drop_trace(attack_sweeps):
    traces = trace_files(attack_sweeps["drop"])
    assert len(traces) == 1
    return traces[0]


def write_trace(path, records):
    with open(path, "w", encoding="utf-8") as fh:
        for record in records:
            fh.write(json.dumps(record, sort_keys=True) + "\n")
    return str(path)


SYNTHETIC = [
    {"event": "net.flow_hop", "t": 0.5, "flow": "f1", "router": "A",
     "out_nbr": "B", "src": "A", "dst": "C"},
    {"event": "net.drop", "t": 1.0, "flow": "f1", "router": "B",
     "out_nbr": "C", "src": "A", "dst": "C", "reason": "malicious"},
    {"event": "detector.suspect", "t": 2.0, "by": "A",
     "segment": ["B", "C"], "segment_id": "B>C",
     "interval": [1.0, 2.0], "reason": "alpha", "confidence": 1.0},
    {"event": "obs.metrics", "t": None, "metrics": {}, "events": 3},
]


class TestTraceEvent:
    def test_parse_round_trip(self, tmp_path):
        trace = write_trace(tmp_path / "t.jsonl", SYNTHETIC)
        events = list(TraceReader(trace).events())
        assert [e.to_dict() for e in events] == SYNTHETIC
        assert events[0].flow == "f1"
        assert events[0].get("out_nbr") == "B"

    def test_routers_collects_all_naming_fields(self):
        event = TraceEvent(event="detector.suspect", t=2.0,
                           fields={"by": "A", "segment": ["B", "C"]})
        assert event.routers == ("A", "B", "C")
        hop = TraceEvent(event="net.flow_hop", t=0.5,
                         fields={"router": "A", "out_nbr": "B"})
        assert hop.routers == ("A", "B")

    def test_untimestamped_event_keeps_none(self, tmp_path):
        trace = write_trace(tmp_path / "t.jsonl", SYNTHETIC)
        final = list(TraceReader(trace).events())[-1]
        assert final.event == "obs.metrics" and final.t is None


class TestQueryFilter:
    def _events(self):
        return [TraceEvent(event=r["event"],
                           t=r["t"],
                           fields={k: v for k, v in r.items()
                                   if k not in ("event", "t")})
                for r in SYNTHETIC]

    def test_event_kind(self):
        query = QueryFilter(events=("net.drop",))
        assert [e.event for e in self._events() if query.matches(e)] \
            == ["net.drop"]

    def test_time_window_half_open(self):
        query = QueryFilter(t0=0.5, t1=1.0)
        matched = [e for e in self._events() if query.matches(e)]
        assert [e.t for e in matched] == [0.5]  # t1 exclusive

    def test_time_window_never_matches_untimestamped(self):
        query = QueryFilter(t0=0.0)
        assert not query.matches(
            TraceEvent(event="obs.metrics", t=None, fields={}))
        assert QueryFilter().matches(
            TraceEvent(event="obs.metrics", t=None, fields={}))

    def test_router_matches_segment_members(self):
        query = QueryFilter(router="C")
        matched = [e.event for e in self._events() if query.matches(e)]
        assert matched == ["net.drop", "detector.suspect"]

    def test_conjunction(self):
        query = QueryFilter(events=("net.drop", "net.flow_hop"),
                            flow="f1", router="B", t0=1.0, t1=10.0)
        matched = [e.event for e in self._events() if query.matches(e)]
        assert matched == ["net.drop"]  # hop at t=0.5 cut by the window


class TestIndex:
    def test_sidecar_built_on_first_indexed_query(self, tmp_path):
        trace = write_trace(tmp_path / "t.jsonl", SYNTHETIC)
        sidecar = index_path(trace)
        assert sidecar == str(tmp_path / "t.idx.json")
        assert not os.path.exists(sidecar)
        reader = TraceReader(trace)
        drops = list(reader.events(QueryFilter(events=("net.drop",))))
        assert len(drops) == 1
        assert os.path.isfile(sidecar)
        with open(sidecar) as fh:
            index = json.load(fh)
        assert index["version"] == INDEX_VERSION
        assert index["trace_bytes"] == os.path.getsize(trace)
        assert sorted(index["events"]) == sorted(
            {r["event"] for r in SYNTHETIC})
        assert index["flows"] == {"f1": [0, index["events"]["net.drop"][0]]}

    def test_fresh_sidecar_reused(self, tmp_path):
        trace = write_trace(tmp_path / "t.jsonl", SYNTHETIC)
        reader = TraceReader(trace)
        list(reader.events(QueryFilter(events=("net.drop",))))
        sidecar = index_path(trace)
        # Poison the sidecar's pools while keeping it "fresh"; a reader
        # that trusts it will see no candidates.  That proves reuse.
        with open(sidecar) as fh:
            index = json.load(fh)
        index["events"] = {}
        index["flows"] = {}
        index["routers"] = {}
        with open(sidecar, "w") as fh:
            json.dump(index, fh)
        assert list(TraceReader(trace).events(
            QueryFilter(events=("net.drop",)))) == []

    def test_stale_sidecar_rebuilt_on_size_change(self, tmp_path):
        trace = write_trace(tmp_path / "t.jsonl", SYNTHETIC[:2])
        list(TraceReader(trace).events(QueryFilter(flow="f1")))
        write_trace(tmp_path / "t.jsonl", SYNTHETIC)  # grows the file
        reader = TraceReader(trace)
        matched = list(reader.events(QueryFilter(events=("net.drop",))))
        assert len(matched) == 1
        with open(index_path(trace)) as fh:
            assert json.load(fh)["trace_bytes"] == os.path.getsize(trace)

    def test_unwritable_sidecar_degrades_to_in_memory(self, tmp_path):
        trace = write_trace(tmp_path / "t.jsonl", SYNTHETIC)
        # A directory squatting the sidecar path makes the write raise
        # OSError regardless of privileges (chmod is no barrier to root).
        os.mkdir(index_path(trace))
        reader = TraceReader(trace)
        drops = list(reader.events(QueryFilter(events=("net.drop",))))
        assert len(drops) == 1
        assert os.path.isdir(index_path(trace))  # still not a file

    def test_reader_summaries_come_from_index(self, tmp_path):
        trace = write_trace(tmp_path / "t.jsonl", SYNTHETIC)
        reader = TraceReader(trace)
        assert reader.flows() == ["f1"]
        assert reader.routers() == ["A", "B", "C"]
        assert reader.event_counts() == {
            "detector.suspect": 1, "net.drop": 1, "net.flow_hop": 1,
            "obs.metrics": 1}


class TestIndexedVsScan:
    @pytest.mark.parametrize("query", [
        QueryFilter(events=("net.drop",)),
        QueryFilter(events=("net.drop", "detector.suspect")),
        QueryFilter(flow="f1"),
        QueryFilter(router="Denver"),
        QueryFilter(router="Denver", events=("net.drop",),
                    t0=1.0, t1=2.0),
        QueryFilter(),
    ])
    def test_same_events_same_order(self, drop_trace, query):
        reader = TraceReader(drop_trace)
        indexed = list(reader.events(query, use_index=True))
        scanned = list(reader.events(query, use_index=False))
        assert indexed == scanned
        assert scanned, "fixture queries must all be non-empty"


class TestScan:
    def test_scan_labels_events_with_their_trace(self, attack_sweeps):
        pairs = list(scan([attack_sweeps["drop"]],
                          QueryFilter(events=("scenario.ground_truth",))))
        assert len(pairs) == 1
        trace, event = pairs[0]
        assert trace == trace_files(attack_sweeps["drop"])[0]
        assert event.get("router") == "Denver"


class TestQueryCli:
    def test_count(self, attack_sweeps, capsys):
        assert main(["obs", "query", attack_sweeps["drop"],
                     "--event", "scenario.ground_truth",
                     "--count"]) == 0
        assert capsys.readouterr().out.strip() == "1"

    def test_jsonl_output_and_limit(self, attack_sweeps, capsys):
        assert main(["obs", "query", attack_sweeps["drop"],
                     "--event", "net.drop", "--router", "Denver",
                     "--limit", "3"]) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert len(lines) == 3
        for line in lines:
            record = json.loads(line)
            assert record["event"] == "net.drop"
            assert record["router"] == "Denver"

    def test_no_index_builds_no_sidecar(self, tmp_path, capsys):
        trace = write_trace(tmp_path / "t.jsonl", SYNTHETIC)
        assert main(["obs", "query", trace, "--event", "net.drop",
                     "--no-index", "--count"]) == 0
        assert capsys.readouterr().out.strip() == "1"
        assert not os.path.exists(index_path(trace))


class TestEventSchema:
    """Every emittable event kind matches the checked-in schema fixture."""

    FIXTURE = os.path.join(os.path.dirname(__file__), "goldens",
                           "trace_event_schema.json")

    def _observed(self, attack_sweeps):
        observed = {}
        for behavior in BEHAVIORS:
            for trace in trace_files(attack_sweeps[behavior]):
                for event in TraceReader(trace).events(use_index=False):
                    entry = observed.setdefault(
                        event.event, {"fields": set(), "timestamped": set()})
                    entry["fields"].add(frozenset(event.fields))
                    entry["timestamped"].add(event.t is not None)
        return observed

    def test_all_kinds_covered_with_exact_fields(self, attack_sweeps):
        with open(self.FIXTURE) as fh:
            schema = json.load(fh)
        observed = self._observed(attack_sweeps)
        assert sorted(observed) == sorted(schema), \
            "event catalogue drifted; update trace_event_schema.json " \
            "and the docs together"
        for kind, spec in schema.items():
            entry = observed[kind]
            assert entry["fields"] == {frozenset(spec["required"])}, \
                f"{kind} fields diverge from the schema fixture"
            assert entry["timestamped"] == {spec["timestamped"]}, \
                f"{kind} timestamped flag diverges from the fixture"
