"""Unit tests for packets and their invariant identity."""

import pytest

from repro.net.packet import DEFAULT_TTL, Packet, PacketKind


class TestPacketBasics:
    def test_defaults(self):
        p = Packet(src="a", dst="b")
        assert p.size == 1000
        assert p.kind is PacketKind.DATA
        assert p.ttl == DEFAULT_TTL
        assert not p.expired

    def test_unique_uids(self):
        uids = {Packet(src="a", dst="b").uid for _ in range(100)}
        assert len(uids) == 100

    def test_positive_size_enforced(self):
        with pytest.raises(ValueError):
            Packet(src="a", dst="b", size=0)
        with pytest.raises(ValueError):
            Packet(src="a", dst="b", size=-5)

    def test_checksum_set_on_creation(self):
        p = Packet(src="a", dst="b")
        assert p.checksum == p.compute_checksum()


class TestPerHopMutation:
    def test_hop_decrements_ttl(self):
        p = Packet(src="a", dst="b")
        p.hop("r1")
        assert p.ttl == DEFAULT_TTL - 1

    def test_hop_updates_checksum(self):
        p = Packet(src="a", dst="b")
        before = p.checksum
        p.hop("r1")
        assert p.checksum == p.compute_checksum()
        assert p.checksum != before  # ttl participates in the checksum

    def test_hop_records_trace(self):
        p = Packet(src="a", dst="b")
        p.hop("r1")
        p.hop("r2")
        assert p.hops == ("r1", "r2")

    def test_expired_after_ttl_hops(self):
        p = Packet(src="a", dst="b", ttl=2)
        p.hop("r1")
        p.hop("r2")
        assert p.expired

    def test_invariant_fields_stable_across_hops(self):
        p = Packet(src="a", dst="b", payload=b"data")
        before = p.invariant_fields()
        p.hop("r1")
        p.hop("r2")
        assert p.invariant_fields() == before


class TestInvariantIdentity:
    def test_different_payload_different_identity(self):
        a = Packet(src="a", dst="b", payload=b"x")
        b = Packet(src="a", dst="b", payload=b"y")
        assert a.invariant_fields() != b.invariant_fields()

    def test_identity_includes_uid(self):
        a = Packet(src="a", dst="b", payload=b"x")
        b = Packet(src="a", dst="b", payload=b"x")
        assert a.invariant_fields() != b.invariant_fields()

    def test_ttl_excluded_from_identity(self):
        p = Packet(src="a", dst="b")
        fields = p.invariant_fields()
        p.ttl = 7
        assert p.invariant_fields() == fields


class TestModifiedClone:
    def test_clone_keeps_uid_and_position_fields(self):
        p = Packet(src="a", dst="b", payload=b"orig", flow_id="f", seq=3)
        evil = p.clone_modified(b"tampered")
        assert evil.uid == p.uid
        assert evil.flow_id == "f"
        assert evil.seq == 3

    def test_clone_changes_identity(self):
        p = Packet(src="a", dst="b", payload=b"orig")
        evil = p.clone_modified(b"tampered")
        assert evil.invariant_fields() != p.invariant_fields()
