"""Public API surface: the advertised names import and hold together."""

import importlib

import pytest


class TestTopLevel:
    def test_version(self):
        import repro
        assert repro.__version__

    def test_subpackages_importable(self):
        for name in ("net", "crypto", "dist", "core", "baselines", "eval"):
            module = importlib.import_module(f"repro.{name}")
            assert module is not None


@pytest.mark.parametrize("package", [
    "repro.net", "repro.crypto", "repro.dist", "repro.core",
    "repro.baselines", "repro.eval",
])
def test_all_exports_resolve(package):
    module = importlib.import_module(package)
    for name in getattr(module, "__all__", []):
        assert getattr(module, name) is not None, f"{package}.{name}"


class TestDocstrings:
    @pytest.mark.parametrize("module_name", [
        "repro", "repro.net.events", "repro.net.packet",
        "repro.net.topology", "repro.net.queues", "repro.net.router",
        "repro.net.routing", "repro.net.traffic", "repro.net.tcp",
        "repro.net.adversary", "repro.crypto.fingerprint",
        "repro.crypto.keys", "repro.crypto.signatures",
        "repro.crypto.hashchain", "repro.dist.sync",
        "repro.dist.broadcast", "repro.dist.consensus",
        "repro.dist.reconcile", "repro.core.summaries",
        "repro.core.validation", "repro.core.detector",
        "repro.core.segments", "repro.core.pi2", "repro.core.pik2",
        "repro.core.chi", "repro.core.static_threshold",
        "repro.core.qmodel", "repro.core.fatih", "repro.core.replica",
        "repro.core.codecs", "repro.baselines.pathmodel",
        "repro.baselines.watchers", "repro.baselines.herzberg",
        "repro.baselines.perlman", "repro.baselines.sectrace",
        "repro.baselines.awerbuch", "repro.baselines.hser",
        "repro.baselines.zhang", "repro.baselines.sats",
        "repro.eval.metrics", "repro.eval.scenarios",
        "repro.eval.experiments",
    ])
    def test_every_module_documented(self, module_name):
        module = importlib.import_module(module_name)
        assert module.__doc__ and len(module.__doc__.strip()) > 40


class TestPublicClassDocs:
    def test_core_protocol_classes_documented(self):
        from repro.core.chi import ProtocolChi, QueueValidator
        from repro.core.pi2 import ProtocolPi2
        from repro.core.pik2 import ProtocolPiK2
        from repro.core.fatih import FatihSystem
        for cls in (ProtocolChi, QueueValidator, ProtocolPi2, ProtocolPiK2,
                    FatihSystem):
            assert cls.__doc__ and len(cls.__doc__.strip()) > 20
