"""Result-cache behavior: hits, invalidation, corruption tolerance."""

import json
import os
import random

import pytest

from repro.eval import registry
from repro.eval.registry import ExperimentSpec
from repro.sweep.cache import ResultCache, code_version
from repro.sweep.grid import RunSpec, canonical_params
from repro.sweep.runner import SweepConfig
from repro.sweep.runner import run_sweep as _run_sweep

TOY = "toy-cache-test"


def run_sweep(experiment, **settings):
    """Keyword-style helper: every sweep here goes through SweepConfig."""
    return _run_sweep(experiment, SweepConfig(**settings))


def toy_experiment(scale: float = 1.0, seed: int = 0):
    rng = random.Random(seed)
    return {"value": scale * rng.random(), "seed": seed}


def report_toy(result):
    return [str(result)]


@pytest.fixture
def toy_registered():
    registry.register(ExperimentSpec(TOY, toy_experiment, report_toy))
    yield TOY
    registry.unregister(TOY)


def spec_for(seed=1, **params):
    return RunSpec("exp", canonical_params(params), 0, seed)


class TestResultCacheUnit:
    def test_miss_on_empty(self, tmp_path):
        cache = ResultCache(str(tmp_path), version="v1")
        assert cache.load(spec_for()) is None

    def test_store_load_round_trip(self, tmp_path):
        cache = ResultCache(str(tmp_path), version="v1")
        spec = spec_for(a=1)
        cache.store(spec, {"result": {"x": 2.0}})
        assert cache.load(spec) == {"result": {"x": 2.0}}

    def test_key_changes_with_parameter(self, tmp_path):
        cache = ResultCache(str(tmp_path), version="v1")
        assert cache.key(spec_for(a=1)) != cache.key(spec_for(a=2))

    def test_key_changes_with_seed(self, tmp_path):
        cache = ResultCache(str(tmp_path), version="v1")
        assert cache.key(spec_for(seed=1)) != cache.key(spec_for(seed=2))

    def test_key_changes_with_code_version(self, tmp_path):
        old = ResultCache(str(tmp_path), version="v1")
        new = ResultCache(str(tmp_path), version="v2")
        spec = spec_for()
        old.store(spec, {"result": {}})
        assert new.load(spec) is None

    def test_corrupted_entry_discarded_not_crashed(self, tmp_path):
        cache = ResultCache(str(tmp_path), version="v1")
        spec = spec_for()
        cache.store(spec, {"result": {}})
        with open(cache.path(spec), "w") as handle:
            handle.write("{ not json !!!")
        assert cache.load(spec) is None
        assert not os.path.exists(cache.path(spec))  # removed, will refill

    def test_wrong_schema_discarded(self, tmp_path):
        cache = ResultCache(str(tmp_path), version="v1")
        spec = spec_for()
        path = cache.path(spec)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        with open(path, "w") as handle:
            json.dump({"schema": "something-else", "record": {}}, handle)
        assert cache.load(spec) is None

    def test_disabled_cache_never_stores(self, tmp_path):
        cache = ResultCache(str(tmp_path), version="v1", enabled=False)
        spec = spec_for()
        cache.store(spec, {"result": {}})
        assert cache.load(spec) is None
        assert not os.path.exists(cache.path(spec))

    def test_code_version_is_stable_hex(self):
        assert code_version() == code_version()
        int(code_version(), 16)


class TestSweepCaching:
    def test_second_sweep_all_hits(self, tmp_path, toy_registered):
        kwargs = dict(seeds=4, jobs=1, cache_dir=str(tmp_path))
        first = run_sweep(toy_registered, **kwargs)
        assert (first.cache_hits, first.cache_misses) == (0, 4)
        second = run_sweep(toy_registered, **kwargs)
        assert (second.cache_hits, second.cache_misses) == (4, 0)
        assert ([r["result"] for r in first.records]
                == [r["result"] for r in second.records])
        assert all(r["cached"] for r in second.records)

    def test_changed_parameter_misses(self, tmp_path, toy_registered):
        kwargs = dict(seeds=2, jobs=1, cache_dir=str(tmp_path))
        run_sweep(toy_registered, **kwargs)
        changed = run_sweep(toy_registered, params={"scale": 2.0}, **kwargs)
        assert changed.cache_hits == 0

    def test_changed_root_seed_misses(self, tmp_path, toy_registered):
        kwargs = dict(seeds=2, jobs=1, cache_dir=str(tmp_path))
        run_sweep(toy_registered, **kwargs)
        changed = run_sweep(toy_registered, root_seed=99, **kwargs)
        assert changed.cache_hits == 0

    def test_changed_code_version_misses(self, tmp_path, toy_registered):
        kwargs = dict(seeds=2, jobs=1)
        run_sweep(toy_registered,
                  cache=ResultCache(str(tmp_path), version="v1"), **kwargs)
        changed = run_sweep(
            toy_registered,
            cache=ResultCache(str(tmp_path), version="v2"), **kwargs)
        assert changed.cache_hits == 0

    def test_corrupted_entry_recomputed(self, tmp_path, toy_registered):
        cache = ResultCache(str(tmp_path), version="v1")
        kwargs = dict(seeds=2, jobs=1, cache=cache)
        first = run_sweep(toy_registered, **kwargs)
        victim = first.specs[0]
        with open(cache.path(victim), "w") as handle:
            handle.write("garbage")
        second = run_sweep(toy_registered, **kwargs)
        assert (second.cache_hits, second.cache_misses) == (1, 1)
        assert ([r["result"] for r in second.records]
                == [r["result"] for r in first.records])

    def test_no_cache_mode(self, tmp_path, toy_registered):
        kwargs = dict(seeds=2, jobs=1, cache_dir=str(tmp_path),
                      use_cache=False)
        run_sweep(toy_registered, **kwargs)
        again = run_sweep(toy_registered, **kwargs)
        assert again.cache_hits == 0
        assert again.cache_dir is None
