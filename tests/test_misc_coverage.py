"""Coverage for smaller behaviours across the library."""

import pytest

from repro.core.chi import ChiConfig
from repro.core.detector import DetectorState, Suspicion
from repro.crypto.keys import KeyInfrastructure
from repro.dist.broadcast import robust_flood
from repro.eval import build_scenario, droptail_spec, red_spec
from repro.eval.scenarios import RepeatedConnector
from repro.net.router import Network
from repro.net.routing import compute_all_paths, install_static_routes
from repro.net.tcp import TCPFlow
from repro.net.topology import MBPS, abilene, chain


class TestRepeatedConnector:
    def test_opens_connections_sequentially(self):
        net = Network(chain(3, bandwidth=10 * MBPS, delay=0.001))
        install_static_routes(net)
        connector = RepeatedConnector(net, "r1", "r3",
                                      packets_per_conn=5, spacing=0.2)
        net.run(10.0)
        assert len(connector.connections) >= 3
        done = [c for c in connector.connections if c.done]
        assert len(done) >= 2
        assert connector.syn_retry_count() == 0

    def test_stop_time_respected(self):
        net = Network(chain(3, bandwidth=10 * MBPS, delay=0.001))
        install_static_routes(net)
        connector = RepeatedConnector(net, "r1", "r3",
                                      packets_per_conn=5, spacing=0.2,
                                      stop=2.0)
        net.run(10.0)
        count_at_stop = len(connector.connections)
        net.run(20.0)
        assert len(connector.connections) == count_at_stop

    def test_setup_times_reported(self):
        net = Network(chain(3, bandwidth=10 * MBPS, delay=0.001))
        install_static_routes(net)
        connector = RepeatedConnector(net, "r1", "r3",
                                      packets_per_conn=3, spacing=0.2)
        net.run(5.0)
        times = connector.setup_times()
        assert times
        assert all(t < 0.5 for t in times)


class TestComputeAllPaths:
    def test_all_pairs_present_when_connected(self):
        topo = abilene()
        paths = compute_all_paths(topo)
        n = len(topo)
        assert len(paths) == n * (n - 1)

    def test_suspicion_changes_affected_paths_only(self):
        topo = abilene()
        base = compute_all_paths(topo)
        seg = ("Denver", "KansasCity", "Indianapolis")
        constrained = compute_all_paths(topo, [seg])
        changed = [pair for pair in base
                   if tuple(base[pair]) != tuple(constrained[pair])]
        assert changed
        for pair in changed:
            joined = tuple(base[pair])
            assert any(joined[i:i + 3] == seg for i in range(len(joined) - 2))

    def test_paths_have_no_cycles(self):
        for path in compute_all_paths(abilene()).values():
            assert len(path) == len(set(path))


class TestFloodTiming:
    def test_delivery_times_increase_with_distance(self):
        net = Network(chain(5))
        result = robust_flood(net, "r1", "x", hop_delay=0.01)
        net.run(1.0)
        times = [result.delivery_times[f"r{i}"] for i in range(1, 6)]
        assert times == sorted(times)
        assert times[-1] > times[0]


class TestKeysExtra:
    def test_sampling_key_symmetric(self):
        keys = KeyInfrastructure()
        assert keys.sampling_key("a", "b") == keys.sampling_key("b", "a")

    def test_sampling_key_differs_from_pair_key(self):
        keys = KeyInfrastructure()
        assert keys.sampling_key("a", "b") != keys.pair_key("a", "b")


class TestChiConfig:
    def test_calibrate_rejects_red_targets(self):
        scenario = build_scenario(red_spec())
        with pytest.raises(TypeError):
            scenario.chi.calibrate(scenario.target)

    def test_thresholds_default_tight(self):
        config = ChiConfig()
        assert config.th_single >= 0.99
        assert config.th_combined >= 0.99
        assert config.th_cumulative > config.th_combined


class TestTcpLifecycle:
    def test_goodput_zero_before_establishment(self):
        net = Network(chain(3, bandwidth=10 * MBPS, delay=0.001))
        install_static_routes(net)
        flow = TCPFlow(net, "r1", "r3", "f", total_packets=10, start=5.0)
        net.run(1.0)  # before the SYN even goes out
        assert flow.goodput_pps() == 0.0
        assert flow.connection_setup_time() is None

    def test_no_events_after_completion(self):
        net = Network(chain(3, bandwidth=10 * MBPS, delay=0.001))
        install_static_routes(net)
        flow = TCPFlow(net, "r1", "r3", "f", total_packets=20)
        net.run(10.0)
        assert flow.done
        sent_at_completion = flow.data_sent
        net.run(90.0)  # long idle: no RTO storms, no retransmits
        assert flow.data_sent == sent_at_completion
        assert flow.timeouts == 0

    def test_completion_time_recorded(self):
        net = Network(chain(3, bandwidth=10 * MBPS, delay=0.001))
        install_static_routes(net)
        flow = TCPFlow(net, "r1", "r3", "f", total_packets=20)
        net.run(10.0)
        assert flow.completed_at is not None
        assert flow.completed_at > flow.established_at


class TestDetectorStateExtra:
    def test_suspected_segments_deduplicates(self):
        state = DetectorState("r")
        s1 = Suspicion(("a", "b"), (0.0, 1.0), "r", reason="x")
        s2 = Suspicion(("a", "b"), (1.0, 2.0), "r", reason="x")
        state.suspect(s1)
        state.suspect(s2)
        assert state.suspected_segments() == {("a", "b")}
        assert len(state.suspicions) == 2  # distinct intervals kept


class TestScenarioBundle:
    def test_droptail_scenario_exposes_bottleneck(self):
        scenario = build_scenario(droptail_spec())
        queue = scenario.bottleneck_queue
        assert queue.limit_bytes == 60_000
        assert scenario.target == ("r", "rd")
        assert set(scenario.flows) == {"tcp0", "tcp1", "tcp2"}
