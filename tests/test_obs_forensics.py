"""Verdict forensics: timelines, TP/FP/FN/TN classification, latency.

One real traced attack sweep exercises the full manifest-join path;
hand-written traces pin down the classification matrix and the latency
arithmetic exactly.
"""

import json
import os

import pytest

from repro.__main__ import main
from repro.obs import explain_router, explain_sweep, flow_timeline
from repro.obs.forensics import (
    EVIDENCE_EVENTS,
    ground_truth_for_trace,
    ground_truth_from_record,
    load_manifest,
    trace_run_records,
)
from repro.obs.query import trace_files


@pytest.fixture(scope="module")
def drop_sweep(tmp_path_factory):
    out = tmp_path_factory.mktemp("forensics") / "drop"
    assert main(["sweep", "attack_matrix", "--seeds", "1", "--jobs", "1",
                 "--no-cache", "--trace", "--out", str(out),
                 "--param", "placement.strategy=fixed",
                 "--param", "placement.router=Denver",
                 "--param", "adversary.behavior=drop",
                 "--param", "adversary.rate=0.5"]) == 0
    return str(out)


@pytest.fixture(scope="module")
def drop_trace(drop_sweep):
    traces = trace_files(drop_sweep)
    assert len(traces) == 1
    return traces[0]


def write_trace(path, records):
    with open(path, "w", encoding="utf-8") as fh:
        for record in records:
            fh.write(json.dumps(record, sort_keys=True) + "\n")
    return str(path)


def ground_truth_record(router="R2", attack_at=1.0):
    return {"event": "scenario.ground_truth", "t": 0.0,
            "topology": "toy", "behavior": "drop", "rate": 0.5,
            "placement": "fixed", "seed": 0, "router": router,
            "attack_at": attack_at, "flows": {"f1": ["R1", "R2", "R3"]}}


def suspect_record(t, segment, interval, by="R1", reason="alpha"):
    return {"event": "detector.suspect", "t": t, "by": by,
            "segment": segment, "segment_id": ">".join(segment),
            "interval": interval, "reason": reason, "confidence": 1.0}


def drop_record(t, router="R2"):
    return {"event": "net.drop", "t": t, "router": router,
            "out_nbr": "R3", "flow": "f1", "src": "R1", "dst": "R3",
            "reason": "malicious"}


class TestFlowTimeline:
    def test_ordered_by_virtual_time_with_stable_ties(self, tmp_path):
        trace = write_trace(tmp_path / "t.jsonl", [
            {"event": "net.drop", "t": 2.0, "flow": "f1", "router": "B",
             "out_nbr": "C", "src": "A", "dst": "C", "reason": "x"},
            {"event": "net.flow_hop", "t": 0.5, "flow": "f1",
             "router": "A", "out_nbr": "B", "src": "A", "dst": "C"},
            {"event": "net.flow_hop", "t": 0.5, "flow": "f1",
             "router": "B", "out_nbr": "C", "src": "A", "dst": "C"},
            {"event": "net.flow_hop", "t": 0.5, "flow": "f2",
             "router": "A", "out_nbr": "B", "src": "A", "dst": "C"},
        ])
        timeline = flow_timeline(trace, "f1")
        assert [e.t for e in timeline] == [0.5, 0.5, 2.0]
        # Emission order breaks the t=0.5 tie deterministically.
        assert [e.get("router") for e in timeline] == ["A", "B", "B"]
        assert all(e.flow == "f1" for e in timeline)

    def test_real_flow_ends_at_the_adversary(self, drop_trace):
        timeline = flow_timeline(drop_trace, "f1")
        assert timeline, "traced runs must record flow f1"
        kinds = {e.event for e in timeline}
        assert "net.flow_hop" in kinds
        times = [e.t for e in timeline if e.t is not None]
        assert times == sorted(times)


class TestGroundTruth:
    def test_trace_event_is_authoritative(self, drop_trace):
        truth = ground_truth_for_trace(drop_trace)
        assert truth["router"] == "Denver"
        assert truth["behavior"] == "drop"
        assert truth["attack_at"] == pytest.approx(1.0)

    def test_record_fallback_rederives_the_same_router(self, drop_sweep,
                                                       drop_trace,
                                                       tmp_path):
        records = trace_run_records(drop_sweep)
        record = records[os.path.basename(drop_trace)]
        assert record["experiment"] == "attack_matrix"
        derived = ground_truth_from_record(record)
        recorded = ground_truth_for_trace(drop_trace)
        assert derived["router"] == recorded["router"] == "Denver"
        assert derived["attack_at"] == recorded["attack_at"]
        # A trace stripped of its ground-truth event (the pre-event
        # format) resolves through the record instead.
        stripped = tmp_path / "stripped.jsonl"
        with open(drop_trace) as src, open(stripped, "w") as dst:
            for line in src:
                if json.loads(line)["event"] != "scenario.ground_truth":
                    dst.write(line)
        assert ground_truth_for_trace(str(stripped)) is None
        via_record = ground_truth_for_trace(str(stripped), record)
        assert via_record["router"] == "Denver"

    def test_non_attack_records_have_no_truth(self):
        assert ground_truth_from_record({"experiment": "chi"}) is None

    def test_load_manifest_accepts_dir_or_file(self, drop_sweep):
        via_dir = load_manifest(drop_sweep)
        via_file = load_manifest(os.path.join(drop_sweep, "sweep.json"))
        assert via_dir == via_file
        assert via_dir["schema"] == "repro.sweep/v4"
        assert load_manifest(os.path.join(drop_sweep, "nope")) is None


class TestClassification:
    def test_true_positive_with_latency(self, tmp_path):
        trace = write_trace(tmp_path / "tp.jsonl", [
            ground_truth_record(router="R2", attack_at=1.0),
            drop_record(1.2), drop_record(1.4), drop_record(2.5),
            suspect_record(1.0, ["R1", "R2"], [0.0, 1.0]),  # pre-attack
            suspect_record(3.0, ["R2", "R3"], [2.0, 3.0]),
            suspect_record(2.0, ["R2", "R3"], [1.0, 2.0]),
        ])
        explanation = explain_router(trace)  # defaults to the adversary
        assert explanation.router == "R2"
        assert explanation.classification == "tp"
        # First covering window ends at 2.0; attack started at 1.0.
        assert explanation.detection_latency == pytest.approx(1.0)
        assert explanation.total_suspicions == 3
        assert len(explanation.verdicts) == 3
        by_window = {v.interval: v for v in explanation.verdicts}
        # The pre-attack window [0, 1) cannot witness the attack.
        assert not by_window[(0.0, 1.0)].true_positive
        assert by_window[(1.0, 2.0)].true_positive
        assert by_window[(2.0, 3.0)].true_positive
        # Evidence joins count only drops inside each (segment, window).
        assert by_window[(1.0, 2.0)].evidence == {"net.drop": 2}
        assert by_window[(2.0, 3.0)].evidence == {"net.drop": 1}
        assert by_window[(0.0, 1.0)].evidence == {}

    def test_false_negative_when_adversary_never_named(self, tmp_path):
        trace = write_trace(tmp_path / "fn.jsonl", [
            ground_truth_record(router="R2", attack_at=1.0),
            suspect_record(2.0, ["R3", "R4"], [1.0, 2.0]),
        ])
        explanation = explain_router(trace)
        assert explanation.classification == "fn"
        assert explanation.detection_latency is None
        assert explanation.verdicts == []
        assert explanation.total_suspicions == 1

    def test_false_positive_for_a_blamed_bystander(self, tmp_path):
        trace = write_trace(tmp_path / "fp.jsonl", [
            ground_truth_record(router="R2", attack_at=1.0),
            suspect_record(2.0, ["R3", "R4"], [1.0, 2.0]),
        ])
        explanation = explain_router(trace, router="R3")
        assert explanation.classification == "fp"
        assert explanation.detection_latency is None
        assert len(explanation.verdicts) == 1
        assert not explanation.verdicts[0].true_positive

    def test_true_negative_for_an_unblamed_bystander(self, tmp_path):
        trace = write_trace(tmp_path / "tn.jsonl", [
            ground_truth_record(router="R2", attack_at=1.0),
            suspect_record(2.0, ["R2", "R3"], [1.0, 2.0]),
        ])
        explanation = explain_router(trace, router="R9")
        assert explanation.classification == "tn"
        assert explanation.verdicts == []

    def test_evidence_events_are_the_faulty_trio(self):
        assert EVIDENCE_EVENTS == ("net.drop", "net.fabricate",
                                   "net.misroute")


class TestRealSweep:
    def test_planted_adversary_is_a_tp_with_finite_latency(self,
                                                           drop_sweep):
        explanations = explain_sweep(drop_sweep)
        assert len(explanations) == 1
        explanation = explanations[0]
        assert explanation.router == "Denver"
        assert explanation.classification == "tp"
        assert explanation.detection_latency is not None
        assert explanation.detection_latency >= 0.0
        assert any(v.true_positive and v.evidence.get("net.drop", 0) > 0
                   for v in explanation.verdicts), \
            "TP verdicts must join against recorded drop evidence"

    def test_to_dict_is_json_ready_and_sorted(self, drop_sweep):
        explanation = explain_sweep(drop_sweep)[0]
        payload = explanation.to_dict()
        json.dumps(payload)
        for verdict in payload["verdicts"]:
            assert list(verdict["evidence"]) == sorted(verdict["evidence"])


class TestForensicsCli:
    def test_explain_text_reports_tp(self, drop_sweep, capsys):
        assert main(["obs", "explain", "Denver", drop_sweep]) == 0
        text = capsys.readouterr().out
        assert "router Denver -> TP" in text
        assert "ground truth: adversary=Denver behavior=drop" in text
        assert "latency" in text

    def test_explain_json(self, drop_sweep, capsys):
        assert main(["obs", "explain", "Denver", "--format", "json",
                     drop_sweep]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload[0]["classification"] == "tp"
        assert payload[0]["detection_latency"] is not None

    def test_flow_text_and_json(self, drop_sweep, capsys):
        assert main(["obs", "flow", "f1", drop_sweep]) == 0
        text = capsys.readouterr().out
        assert "flow f1" in text and "net.flow_hop" in text
        assert main(["obs", "flow", "f1", "--format", "json",
                     drop_sweep]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload and payload[0]["events"]

    def test_missing_traces_exit_2(self, tmp_path, capsys):
        empty = tmp_path / "empty"
        empty.mkdir()
        assert main(["obs", "flow", "f1", str(empty)]) == 2
        assert main(["obs", "explain", "Denver", str(empty)]) == 2
        assert "no trace files" in capsys.readouterr().err
