"""Grid expansion, seed derivation, and CLI value parsing."""

import pytest

from repro.sweep.grid import (
    RunSpec,
    canonical_params,
    coerce_value,
    derive_seed,
    expand_grid,
    parse_grid_assignments,
    parse_param_assignments,
)


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(0, "a") == derive_seed(0, "a")

    def test_varies_with_run_key(self):
        assert derive_seed(0, "a") != derive_seed(0, "b")

    def test_varies_with_root_seed(self):
        assert derive_seed(0, "a") != derive_seed(1, "a")

    def test_in_rng_range(self):
        for key in ("x", "y", "z"):
            assert 0 <= derive_seed(123, key) < 2 ** 31


class TestExpandGrid:
    def test_seeds_only(self):
        specs = expand_grid("exp", n_seeds=4, root_seed=7)
        assert len(specs) == 4
        assert [s.seed_index for s in specs] == [0, 1, 2, 3]
        assert len({s.seed for s in specs}) == 4  # all distinct

    def test_same_root_seed_same_seeds(self):
        a = expand_grid("exp", n_seeds=3, root_seed=5)
        b = expand_grid("exp", n_seeds=3, root_seed=5)
        assert [s.seed for s in a] == [s.seed for s in b]

    def test_different_root_seed_different_seeds(self):
        a = expand_grid("exp", n_seeds=3, root_seed=5)
        b = expand_grid("exp", n_seeds=3, root_seed=6)
        assert [s.seed for s in a] != [s.seed for s in b]

    def test_grid_cartesian_product(self):
        specs = expand_grid("exp", grid={"a": [1, 2], "b": ["x", "y", "z"]},
                            n_seeds=2)
        assert len(specs) == 2 * 3 * 2
        points = {s.params for s in specs}
        assert (("a", 1), ("b", "z")) in points

    def test_adding_axis_keeps_existing_seeds(self):
        # A run's seed depends only on its own grid point, never on what
        # else is being swept alongside it.
        alone = expand_grid("exp", base_params={"a": 1}, n_seeds=2,
                            root_seed=3)
        swept = expand_grid("exp", grid={"a": [1, 2]}, n_seeds=2,
                            root_seed=3)
        by_point = {(s.params, s.seed_index): s.seed for s in swept}
        for spec in alone:
            assert by_point[(spec.params, spec.seed_index)] == spec.seed

    def test_param_order_irrelevant(self):
        a = expand_grid("exp", base_params={"x": 1, "y": 2}, n_seeds=1)
        b = expand_grid("exp", base_params={"y": 2, "x": 1}, n_seeds=1)
        assert a[0].seed == b[0].seed

    def test_seedless_experiment_one_run_per_point(self):
        specs = expand_grid("exp", grid={"a": [1, 2]}, n_seeds=5,
                            accepts_seed=False)
        assert len(specs) == 2
        assert all(s.seed is None for s in specs)

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            expand_grid("exp", n_seeds=0)
        with pytest.raises(ValueError):
            expand_grid("exp", grid={"a": []})


class TestRunSpec:
    def test_call_params_includes_seed(self):
        spec = RunSpec("exp", canonical_params({"a": 1}), 0, 42)
        assert spec.call_params() == {"a": 1, "seed": 42}

    def test_call_params_seedless(self):
        spec = RunSpec("exp", canonical_params({"a": 1}), 0, None)
        assert spec.call_params() == {"a": 1}

    def test_payload_round_trip(self):
        spec = RunSpec("exp", canonical_params({"a": 1}), 2, 42)
        payload = spec.payload()
        assert payload["experiment"] == "exp"
        assert dict(tuple(kv) for kv in payload["params"]) == {"a": 1}
        assert payload["seed"] == 42 and payload["seed_index"] == 2


class TestParsing:
    def test_coerce(self):
        assert coerce_value("3") == 3
        assert coerce_value("0.5") == 0.5
        assert coerce_value("true") is True
        assert coerce_value("False") is False
        assert coerce_value("none") is None
        assert coerce_value("ebone") == "ebone"

    def test_parse_params(self):
        parsed = parse_param_assignments(["tau=2.5", "topology=ebone"])
        assert parsed == {"tau": 2.5, "topology": "ebone"}

    def test_parse_params_rejects_garbage(self):
        with pytest.raises(ValueError):
            parse_param_assignments(["tau"])

    def test_parse_grid(self):
        parsed = parse_grid_assignments(["tau=1,2.5", "topology=ebone,abilene"])
        assert parsed == {"tau": [1, 2.5],
                         "topology": ["ebone", "abilene"]}

    def test_parse_grid_rejects_garbage(self):
        with pytest.raises(ValueError):
            parse_grid_assignments(["tau="])
