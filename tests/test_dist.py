"""Unit tests for sync, robust flooding and signed consensus."""

import pytest

from repro.crypto.keys import KeyInfrastructure
from repro.dist.broadcast import robust_flood
from repro.dist.consensus import (
    ChainedValue,
    Equivocator,
    Silent,
    SignedConsensus,
)
from repro.dist.sync import ClockModel, RoundSchedule
from repro.crypto.signatures import Signed
from repro.net.adversary import ControlSuppressionAttack
from repro.net.router import Network
from repro.net.topology import chain, diamond


class TestClockModel:
    def test_offsets_bounded(self):
        clock = ClockModel(epsilon=0.005, seed=3)
        for name in ("a", "b", "c", "router-17"):
            assert abs(clock.offset(name)) <= 0.005

    def test_offsets_deterministic(self):
        a = ClockModel(epsilon=0.01, seed=1)
        b = ClockModel(epsilon=0.01, seed=1)
        assert a.offset("r") == b.offset("r")

    def test_zero_epsilon(self):
        clock = ClockModel(epsilon=0.0)
        assert clock.offset("anything") == 0.0

    def test_roundtrip(self):
        clock = ClockModel(epsilon=0.01, seed=2)
        local = clock.local_time("r", 100.0)
        assert clock.true_time("r", local) == pytest.approx(100.0)

    def test_max_skew(self):
        assert ClockModel(epsilon=0.003).max_skew() == pytest.approx(0.006)

    def test_negative_epsilon_rejected(self):
        with pytest.raises(ValueError):
            ClockModel(epsilon=-1.0)


class TestRoundSchedule:
    def test_round_of(self):
        sched = RoundSchedule(tau=5.0)
        assert sched.round_of(0.0) == 0
        assert sched.round_of(4.999) == 0
        assert sched.round_of(5.0) == 1

    def test_interval(self):
        sched = RoundSchedule(tau=2.0, start=1.0)
        assert sched.interval(3) == (7.0, 9.0)
        assert sched.round_end(3) == 9.0

    def test_contains(self):
        sched = RoundSchedule(tau=2.0)
        assert sched.contains(1, 2.5)
        assert not sched.contains(1, 4.0)

    def test_tau_validated(self):
        with pytest.raises(ValueError):
            RoundSchedule(tau=0.0)


class TestRobustFlood:
    def test_reaches_all_routers(self):
        net = Network(chain(5))
        result = robust_flood(net, "r1", "hello")
        net.run(2.0)
        assert all(result.reached(r) for r in net.topology.routers)

    def test_survives_suppression_given_path_diversity(self):
        net = Network(diamond())
        # 'a' suppresses relays, but s-b-t keeps everyone connected.
        net.routers["a"].compromise = ControlSuppressionAttack()
        result = robust_flood(net, "s", "msg")
        net.run(2.0)
        assert result.reached("t")
        assert result.reached("b")

    def test_suppression_on_cut_vertex_partitions(self):
        net = Network(chain(3))
        net.routers["r2"].compromise = ControlSuppressionAttack()
        result = robust_flood(net, "r1", "msg")
        net.run(2.0)
        assert result.reached("r2")  # receives, refuses to relay
        assert not result.reached("r3")

    def test_verify_rejects_altered_copies(self):
        keys = KeyInfrastructure()
        signed = Signed.sign("payload", "r1", keys.signing_key("r1"))
        net = Network(diamond())

        class Corruptor(ControlSuppressionAttack):
            def on_control(self, router, src, dst, message):
                return Signed(payload="evil", signer="r1", mac=message.mac)

        net.routers["a"].compromise = Corruptor()
        result = robust_flood(
            net, "s", signed,
            verify=lambda m: isinstance(m, Signed)
            and m.verify(keys.signing_key(m.signer)),
        )
        net.run(2.0)
        assert result.reached("t")
        assert result.delivered["t"].payload == "payload"

    def test_on_deliver_callback(self):
        net = Network(chain(3))
        seen = []
        robust_flood(net, "r1", 42,
                     on_deliver=lambda at, msg, t: seen.append((at, msg)))
        net.run(1.0)
        assert ("r3", 42) in seen


class TestSignedConsensus:
    def members(self):
        return ["a", "b", "c", "d"]

    def test_all_honest_agree_on_inputs(self):
        keys = KeyInfrastructure()
        cons = SignedConsensus(self.members(), keys, max_faults=1)
        results = cons.run({"a": 1, "b": 2, "c": 3, "d": 4})
        vectors = {r.agreed_vector() for r in results.values()}
        assert len(vectors) == 1
        assert results["a"].values == {"a": 1, "b": 2, "c": 3, "d": 4}

    def test_silent_member_decided_bottom(self):
        keys = KeyInfrastructure()
        cons = SignedConsensus(self.members(), keys, max_faults=1)
        results = cons.run({"a": 1, "b": 2, "c": 3}, faulty={"d": Silent()})
        for r in results.values():
            assert r.values["d"] is None
            assert "d" in r.silent

    def test_equivocator_detected_and_agreed_bottom(self):
        keys = KeyInfrastructure()
        cons = SignedConsensus(self.members(), keys, max_faults=1)
        results = cons.run({"a": 1, "b": 2, "c": 3},
                           faulty={"d": Equivocator("x", "y")})
        vectors = {r.agreed_vector() for r in results.values()}
        assert len(vectors) == 1
        for r in results.values():
            assert "d" in r.equivocators
            assert r.values["d"] is None

    def test_two_faults_with_enough_rounds(self):
        keys = KeyInfrastructure()
        members = ["a", "b", "c", "d", "e"]
        cons = SignedConsensus(members, keys, max_faults=2)
        results = cons.run({"a": 1, "b": 2, "c": 3},
                           faulty={"d": Equivocator(7, 8), "e": Silent()})
        vectors = {r.agreed_vector() for r in results.values()}
        assert len(vectors) == 1

    def test_duplicate_members_rejected(self):
        with pytest.raises(ValueError):
            SignedConsensus(["a", "a"], KeyInfrastructure())

    def test_chain_forgery_rejected(self):
        keys = KeyInfrastructure()
        honest = Signed.sign("v", "a", keys.signing_key("a"))
        cv = ChainedValue(honest)
        # A chain "extended" with a wrong key fails validation.
        bad_link = Signed.sign(("a", honest.mac), "b",
                               KeyInfrastructure(b"other").signing_key("b"))
        forged = ChainedValue(honest, (bad_link,))
        assert not forged.valid(keys, round_index=1)

    def test_chain_extension_valid(self):
        keys = KeyInfrastructure()
        honest = Signed.sign("v", "a", keys.signing_key("a"))
        cv = ChainedValue(honest).extend("b", keys)
        assert cv.valid(keys, round_index=1)
        assert cv.signers() == ("a", "b")

    def test_duplicate_signer_in_chain_invalid(self):
        keys = KeyInfrastructure()
        honest = Signed.sign("v", "a", keys.signing_key("a"))
        cv = ChainedValue(honest).extend("b", keys).extend("b", keys)
        assert not cv.valid(keys, round_index=2)
