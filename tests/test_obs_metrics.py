"""Unit tests for the sim-domain half of repro.obs.

Metrics (counters/gauges/histograms with merge semantics), canonical
JSONL sinks, and the global Recorder lifecycle.  The load-bearing
properties: snapshots serialize byte-identically across runs that saw
the same events, histogram merges are order-insensitive, and the
disabled recorder is inert.
"""

import json
import os

import pytest

import copy
import random

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    bucket_bound,
    merge_snapshots,
    validate_metric_name,
)
from repro.obs.record import Recorder, recorder
from repro.obs.sinks import JsonlSink, MemorySink, NullSink, encode_line


class TestNaming:
    def test_convention_accepted(self):
        for name in ("repro.net.pkt.dropped", "repro.core.detector.x",
                     "repro.obs.a_b.c_1"):
            assert validate_metric_name(name) == name

    @pytest.mark.parametrize("bad", [
        "repro.net",               # no metric segment after the package
        "net.pkt.dropped",         # missing repro. prefix
        "repro.Net.pkt",           # uppercase
        "repro.net.pkt dropped",   # whitespace
        "",
    ])
    def test_convention_rejected(self, bad):
        with pytest.raises(ValueError, match="bad metric name"):
            validate_metric_name(bad)


class TestMetrics:
    def test_counter_monotonic(self):
        counter = Counter("repro.t.c")
        counter.inc()
        counter.inc(3)
        assert counter.to_dict() == {"kind": "counter", "value": 4}
        with pytest.raises(ValueError, match="cannot decrease"):
            counter.inc(-1)

    def test_gauge_tracks_extremes(self):
        gauge = Gauge("repro.t.g")
        gauge.set(-5)
        gauge.set(10)
        gauge.set(2)
        assert gauge.to_dict() == {"kind": "gauge", "value": 2,
                                   "min": -5, "max": 10}

    def test_histogram_is_order_insensitive(self):
        forward, backward = Histogram("repro.t.h"), Histogram("repro.t.h")
        values = [3, 1, 4, 1, 5]
        for v in values:
            forward.observe(v)
        for v in reversed(values):
            backward.observe(v)
        assert forward.to_dict() == backward.to_dict()
        assert forward.count == 5 and forward.min == 1 and forward.max == 5
        assert forward.mean == pytest.approx(sum(values) / 5)

    def test_empty_histogram_mean(self):
        assert Histogram("repro.t.h").mean == 0.0

    @pytest.mark.parametrize("value,bound", [
        (-3, 0.0), (0, 0.0),            # non-positive values pool at 0
        (0.3, 0.5), (0.5, 0.5),
        (0.75, 1.0), (1.0, 1.0),
        (1.5, 2.0), (3, 4.0),
        (1024, 1024.0),                 # exact powers bound themselves
        (1024.5, 2048.0),
    ])
    def test_bucket_bound_power_of_two(self, value, bound):
        assert bucket_bound(value) == bound

    def test_histogram_buckets_in_snapshot(self):
        hist = Histogram("repro.t.h")
        for value in (0.4, 1.0, 3.0, 3.5, 1024):
            hist.observe(value)
        row = hist.to_dict()
        assert row["buckets"] == {"0.5": 1, "1": 1, "4": 2, "1024": 1}
        assert sum(row["buckets"].values()) == row["count"]
        # Keys serialize in numeric order for byte-stable snapshots.
        assert list(row["buckets"]) \
            == sorted(row["buckets"], key=float)


class TestRegistry:
    def test_create_on_first_use(self):
        registry = MetricsRegistry()
        registry.counter("repro.t.c").inc()
        registry.counter("repro.t.c").inc()
        assert registry.counter("repro.t.c").value == 2
        assert len(registry) == 1

    def test_kind_conflict_raises(self):
        registry = MetricsRegistry()
        registry.counter("repro.t.x")
        with pytest.raises(TypeError, match="already registered"):
            registry.gauge("repro.t.x")

    def test_snapshot_sorted_and_json_ready(self):
        registry = MetricsRegistry()
        registry.gauge("repro.t.b").set(1)
        registry.counter("repro.t.a").inc()
        registry.histogram("repro.t.c").observe(2.5)
        snapshot = registry.snapshot()
        assert list(snapshot) == ["repro.t.a", "repro.t.b", "repro.t.c"]
        json.dumps(snapshot)  # must be serializable as-is


class TestMergeSnapshots:
    def test_counters_add_gauges_widen_histograms_combine(self):
        first = MetricsRegistry()
        first.counter("repro.t.c").inc(2)
        first.gauge("repro.t.g").set(5)
        first.histogram("repro.t.h").observe(1)
        second = MetricsRegistry()
        second.counter("repro.t.c").inc(3)
        second.gauge("repro.t.g").set(-1)
        second.histogram("repro.t.h").observe(9)

        merged = merge_snapshots([first.snapshot(), second.snapshot()])
        assert merged["repro.t.c"]["value"] == 5
        assert merged["repro.t.g"] == {"kind": "gauge", "value": -1,
                                       "min": -1, "max": 5}
        hist = merged["repro.t.h"]
        assert (hist["count"], hist["min"], hist["max"]) == (2, 1, 9)
        assert hist["mean"] == pytest.approx(5.0)

    def test_kind_conflict_raises(self):
        with pytest.raises(ValueError, match="conflicting kinds"):
            merge_snapshots([{"repro.t.x": {"kind": "counter", "value": 1}},
                             {"repro.t.x": {"kind": "gauge", "value": 1,
                                            "min": 1, "max": 1}}])

    def test_empty(self):
        assert merge_snapshots([]) == {}

    @staticmethod
    def _random_snapshot(seed):
        rng = random.Random(seed)
        registry = MetricsRegistry()
        registry.counter("repro.t.c").inc(rng.randrange(1, 100))
        hist = registry.histogram("repro.t.h")
        for _ in range(rng.randrange(1, 20)):
            hist.observe(rng.uniform(0.01, 2048))
        return registry.snapshot()

    @pytest.mark.parametrize("seed", range(5))
    def test_merge_is_commutative(self, seed):
        a = self._random_snapshot(seed)
        b = self._random_snapshot(seed + 100)
        assert merge_snapshots([a, b]) == merge_snapshots([b, a])

    @staticmethod
    def _assert_equivalent(left, right):
        """Merged snapshots agree: exactly on counts/buckets/extremes,
        to float tolerance on the order-sensitive running sums."""
        assert left.keys() == right.keys()
        for name in left:
            lrow, rrow = dict(left[name]), dict(right[name])
            for key in ("total", "mean"):
                if key in lrow:
                    assert lrow.pop(key) \
                        == pytest.approx(rrow.pop(key))
            assert lrow == rrow

    @pytest.mark.parametrize("seed", range(5))
    def test_merge_is_associative(self, seed):
        a = self._random_snapshot(seed)
        b = self._random_snapshot(seed + 100)
        c = self._random_snapshot(seed + 200)
        left = merge_snapshots([merge_snapshots([a, b]), c])
        right = merge_snapshots([a, merge_snapshots([b, c])])
        flat = merge_snapshots([a, b, c])
        self._assert_equivalent(left, right)
        self._assert_equivalent(left, flat)

    def test_merge_never_mutates_inputs(self):
        a = self._random_snapshot(1)
        b = self._random_snapshot(2)
        a_before, b_before = copy.deepcopy(a), copy.deepcopy(b)
        merged = merge_snapshots([a, b])
        assert a == a_before and b == b_before
        # The merged buckets must not alias either input's dicts.
        merged["repro.t.h"]["buckets"]["0.5"] = 10 ** 9
        assert a == a_before and b == b_before

    def test_self_merge_doubles_counts(self):
        snapshot = self._random_snapshot(3)
        merged = merge_snapshots([snapshot, snapshot])
        hist = merged["repro.t.h"]
        assert hist["count"] == 2 * snapshot["repro.t.h"]["count"]
        for key, count in snapshot["repro.t.h"]["buckets"].items():
            assert hist["buckets"][key] == 2 * count

    def test_legacy_rows_without_buckets_merge(self):
        legacy = {"repro.t.h": {"kind": "histogram", "count": 2,
                                "total": 6.0, "min": 2.0, "max": 4.0,
                                "mean": 3.0}}
        fresh = self._random_snapshot(4)
        merged = merge_snapshots([legacy, fresh])
        hist = merged["repro.t.h"]
        assert hist["count"] == 2 + fresh["repro.t.h"]["count"]
        # Bucket totals only cover the runs that recorded buckets.
        assert sum(hist["buckets"].values()) \
            == fresh["repro.t.h"]["count"]

    def test_bucket_key_spellings_canonicalize(self):
        variant_a = {"repro.t.h": {"kind": "histogram", "count": 1,
                                   "total": 2.0, "min": 2.0, "max": 2.0,
                                   "mean": 2.0, "buckets": {"2": 1}}}
        variant_b = {"repro.t.h": {"kind": "histogram", "count": 1,
                                   "total": 1.5, "min": 1.5, "max": 1.5,
                                   "mean": 1.5, "buckets": {"2.0": 1}}}
        merged = merge_snapshots([variant_a, variant_b])
        assert merged["repro.t.h"]["buckets"] == {"2": 2}


class TestSinks:
    def test_encode_line_is_canonical(self):
        line = encode_line({"b": 1, "a": {"d": 2, "c": 3}})
        assert line == '{"a":{"c":3,"d":2},"b":1}'

    def test_jsonl_sink_round_trip(self, tmp_path):
        path = tmp_path / "nested" / "trace.jsonl"
        sink = JsonlSink(str(path))
        sink.emit({"event": "x", "t": 1.5})
        sink.close()
        with open(path, encoding="utf-8") as handle:
            assert json.loads(handle.readline()) == {"event": "x", "t": 1.5}
        with pytest.raises(ValueError, match="closed"):
            sink.emit({"event": "y", "t": 2.0})
        sink.close()  # idempotent

    def test_memory_and_null_sinks(self):
        memory = MemorySink()
        memory.emit({"event": "x"})
        memory.close()
        assert memory.records == [{"event": "x"}] and memory.closed
        null = NullSink()
        null.emit({"event": "x"})
        null.close()  # nothing to assert: must simply not fail


class TestRecorder:
    def test_disabled_by_default_and_inert(self):
        rec = Recorder()
        assert not rec.active
        rec.event("ignored", 1.0)  # goes to the NullSink
        assert rec.disable() == {}

    def test_lifecycle_flushes_final_snapshot(self):
        rec = Recorder()
        sink = MemorySink()
        rec.enable(sink)
        rec.metrics.counter("repro.t.c").inc()
        rec.event("t.something", 2.5, detail="x")
        snapshot = rec.disable()
        assert not rec.active and sink.closed
        assert snapshot["repro.t.c"]["value"] == 1
        assert sink.records[0] == {"event": "t.something", "t": 2.5,
                                   "detail": "x"}
        final = sink.records[-1]
        assert final["event"] == "obs.metrics" and final["t"] is None
        assert final["metrics"] == snapshot and final["events"] == 1

    def test_double_enable_raises(self):
        rec = Recorder()
        rec.enable(MemorySink())
        try:
            with pytest.raises(RuntimeError, match="already enabled"):
                rec.enable(MemorySink())
        finally:
            rec.disable()

    def test_enable_resets_metrics(self):
        rec = Recorder()
        rec.enable(MemorySink())
        rec.metrics.counter("repro.t.c").inc()
        rec.disable()
        rec.enable(MemorySink())
        assert len(rec.metrics) == 0
        rec.disable()

    def test_global_recorder_is_a_singleton(self):
        assert recorder() is recorder()
        assert not recorder().active  # the suite must leave it disabled
