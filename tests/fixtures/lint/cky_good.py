# repro-lint: module=repro.eval.fixture_cky_good
"""Cache-key hygiene fixture: deterministic derivations, zero findings."""

import hashlib
import random
import time
from typing import Set


def seeded_spec(seed: int):
    rng = random.Random(seed)  # seeded instances are the supported path
    return ScenarioSpec(name=f"run-{rng.randrange(100)}")


def ordered_serialize(spec, extras: Set[str]):
    spec.order = sorted(extras)  # sorted() kills the order dependence
    return spec.to_dict()


def plain_param():
    return ParamSpec(name="jitter", type=float, default=0.25)


def content_key(payload: bytes):
    return hashlib.sha256(payload).hexdigest()


def timed_eval(fn):
    # Wall time for *measurement* is fine in eval scope: it never
    # reaches a key/spec/param sink, so the flow rules stay silent.
    start = time.perf_counter()
    fn()
    print(f"elapsed: {time.perf_counter() - start:.3f}s")
