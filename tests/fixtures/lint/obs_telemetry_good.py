# repro-lint: module=repro.obs.telemetry.fixture_good
"""Wall-clock fixture: repro.obs.telemetry is the sanctioned wall domain.

Same calls as obs_bad.py, but scoped to the telemetry module — the
DET003 wall-clock half must stay silent.  Entropy is NOT exempt even
here, so this file sticks to clock reads.
"""

import time
from datetime import datetime


def stamp() -> float:
    return time.time()  # wall domain: fine here


def started() -> str:
    return datetime.now().isoformat()  # wall domain: fine here
