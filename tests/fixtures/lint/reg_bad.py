"""Registry-contract fixture: every REG rule fires in this file."""

from repro.eval.registry import ExperimentSpec, ParamSpec
from repro.eval.results import EvalResultBase, register_result_type


def experiment(alpha: int = 1, beta: float = 0.5):
    return alpha * beta


SPEC_BAD_DEFAULT = ExperimentSpec(
    "fixture", experiment, print,
    defaults=(("gamma", 3),),  # REG001 (line 13): gamma not in signature
)

SPEC_BAD_PARAM = ExperimentSpec(
    "fixture2", experiment, print,
    params=(ParamSpec("delta"),),  # REG001 (line 18): delta not in signature
)

SPEC_LAMBDA = ExperimentSpec("fixture3", lambda: 0, print)  # REG003 (line 21)


def outer():
    def inner():
        return 0

    return ExperimentSpec("fixture4", inner, print)  # REG003 (line 28)


@register_result_type
class NoProtocol:
    """REG002 (line 32): registered but speaks no protocol at all."""


@register_result_type
class HalfProtocol(EvalResultBase):
    """REG002 (line 37): inherits from_dict/fields but lacks to_dict."""
