# repro-lint: module=repro.obs.fixture_tdm_good
"""Time-domain fixture: wall measurement without domain crossing."""

import time


def measure(fn) -> float:
    # Reading perf_counter for elapsed-time measurement is fine; the
    # value goes back to the (wall-domain) caller, not into sim records.
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start


def sim_event(rec: Recorder, sim_now: float):
    rec.event("tick", t=sim_now)  # virtual time: exactly right


def count_drop(rec: Recorder):
    rec.metrics.counter("repro.obs.drops").inc(1)
