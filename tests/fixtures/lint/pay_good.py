"""Payload-safety fixture: clean twin of pay_bad.py — zero findings."""

from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor

from repro.sweep import SweepConfig


def work(n: int) -> int:
    return n * 2


def dispatch(pool: ProcessPoolExecutor):
    pool.submit(work, 3)  # module-level callable: fine
    config = SweepConfig(params={"alpha": 1})  # plain data: fine
    threads = ThreadPoolExecutor()
    threads.submit(lambda: 1)  # thread pool: no pickle boundary
    return config
