# repro-lint: module=repro.net.fixture_suppressed
"""Suppression fixture: reasons are honored, missing reasons are LNT001."""

import random


def good_suppression() -> float:
    # Trailing pragma with a reason: finding is suppressed.
    return random.random()  # repro-lint: disable=DET001 -- fixture exercises suppression

def also_good() -> float:
    # Standalone pragma line with a reason waives the next line.
    # repro-lint: disable=DET001 -- standalone pragma fixture
    return random.random()


def bad_suppression() -> float:
    # Missing reason: DET001 still fires AND LNT001 is reported.
    return random.random()  # repro-lint: disable=DET001


def wrong_rule() -> float:
    # Pragma for a different rule does not suppress DET001.
    return random.random()  # repro-lint: disable=DET004 -- wrong rule on purpose
