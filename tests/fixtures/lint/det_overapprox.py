# repro-lint: module=repro.net.fixture_overapprox
"""DET004 over-approximation fixture: set iteration that never escapes.

The PR-4-era syntactic rule flags both loops (set iteration, full
stop).  The flow-sensitive rule sees that neither iteration's order
reaches any output: one folds into a counter, the other into
order-insensitive reducers.  ``det004_candidates`` still reports both —
the strict-subset test relies on that.
"""

from typing import Set


def tally(nodes: Set[str]) -> int:
    total = 0
    for node in nodes:  # old DET004 fires; order never escapes
        if node.startswith("r"):
            total += 1
    return total


def spread(edges: Set[int]) -> float:
    weights = []
    for edge in edges:  # old DET004 fires; sum/len are order-blind
        weights.append(edge * 2)
    return sum(weights) / len(weights)
