# repro-lint: module=repro.eval.fixture_cky_bad
"""Cache-key hygiene fixture: every CKY rule fires in this file."""

import hashlib
import os
import random
import time
from typing import Set


def label_spec():
    label = f"run-{time.time()}"
    return ScenarioSpec(name=label)  # CKY002: wall-clock into spec ctor


def dirty_serialize(spec, extras: Set[str]):
    spec.tag = time.perf_counter()
    spec.order = list(extras)
    return spec.to_dict()  # CKY002: wall + set-order reach to_dict


def jitter_param():
    noise = random.random()
    return ParamSpec(name="jitter", type=float,
                     default=noise)  # CKY003: entropy default


def salted_key():
    salt = os.environ["REPRO_SALT"]
    return hashlib.sha256(salt.encode())  # CKY001: env into content hash


def keyed_run(tags: Set[str]):
    params = {"tags": list(tags)}
    return RunSpec(experiment="chi",
                   params=params)  # CKY001: set-order into the key
