# repro-lint: module=repro.net.fixture_good
"""Determinism fixture: the clean twin of det_bad.py — zero findings."""

import random
from typing import Set

import numpy as np


def jitter(seed: int) -> float:
    return random.Random(seed).random()  # seeded instance: fine


def noise(seed: int):
    return np.random.default_rng(seed).random(3)  # seeded: fine


def visit(nodes: Set[str]) -> list:
    out = []
    for node in sorted(nodes):  # sorted: fine
        out.append(node)
    return out


def biggest(nodes: Set[str]) -> int:
    return max(len(n) for n in nodes)  # order-insensitive reducer: fine


def count(nodes: Set[str]) -> int:
    return len(nodes)  # no iteration: fine
