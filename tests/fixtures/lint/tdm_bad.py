# repro-lint: module=repro.obs.fixture_tdm_bad
"""Time-domain fixture: wall values crossing into sim-domain sinks.

Deliberately built on perf_counter/monotonic, which DET003 ignores —
only the flow-sensitive TDM rules can catch these.
"""

import time


def wall_now() -> float:
    return time.perf_counter()


def stamp_event(rec: Recorder):
    t0 = time.perf_counter()
    rec.event("tick", t=t0)  # TDM001: wall value into Recorder.event


def stamp_metric(rec: Recorder):
    elapsed = time.monotonic() - 5.0
    rec.metrics.counter("repro.obs.lag").inc(elapsed)  # TDM001


def stamp_tap(tap: TraceTap, packet):
    tap.on_receive(packet, time.perf_counter())  # TDM001: tap callback


def laundered():
    t = wall_now()  # TDM002: helper's return value is wall-derived
    return t
