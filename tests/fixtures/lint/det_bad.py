# repro-lint: module=repro.net.fixture_bad
"""Determinism fixture: every DET rule fires in this file."""

import os
import random
import time
from datetime import datetime
from typing import Set

import numpy as np


def jitter() -> float:
    return random.random()  # DET001 (line 14)


def pick(items):
    return random.choice(items)  # DET001 (line 18)


def noise():
    return np.random.rand(3)  # DET002 (line 22)


def fresh_rng():
    return np.random.default_rng()  # DET002 (line 26): no seed


def stamp() -> float:
    return time.time()  # DET003 (line 30)


def born() -> str:
    return str(datetime.now())  # DET003 (line 34)


def token() -> bytes:
    return os.urandom(8)  # DET003 (line 38)


def visit(nodes: Set[str]) -> list:
    out = []
    for node in nodes:  # DET004 (line 43)
        out.append(node)
    return out


def first_two(nodes: Set[str]) -> list:
    return list(nodes)[:2]  # DET004 (line 49)
