"""Registry-contract fixture: clean twin of reg_bad.py — zero findings."""

from repro.eval.registry import ExperimentSpec, ParamSpec
from repro.eval.results import EvalResultBase, register_result_type


def experiment(alpha: int = 1, beta: float = 0.5):
    return alpha * beta


SPEC_OK = ExperimentSpec(
    "fixture_ok", experiment, print,
    defaults=(("alpha", 3),),
    params=(ParamSpec("beta", float, 0.5),),
)


def flexible(**kwargs):
    return kwargs


SPEC_KWARGS = ExperimentSpec(
    "fixture_kwargs", flexible, print,
    defaults=(("anything", 1),),  # **kwargs accepts it: fine
)


@register_result_type
class FullProtocol(EvalResultBase):
    """Defines to_dict itself, inherits from_dict/fields: fine."""

    def to_dict(self) -> dict:
        return {}
