# repro-lint: module=repro.obs.trace_fixture
"""Wall-clock fixture: the sim-domain side of repro.obs.

Identical clock reads to obs_telemetry_good.py, but scoped to a
non-telemetry obs module — every one must fire DET003.  Entropy reads
are also policed (no obs module is entropy-exempt).
"""

import os
import time
from datetime import datetime


def stamp() -> float:
    return time.time()  # DET003 (line 15)


def started() -> str:
    return datetime.now().isoformat()  # DET003 (line 19)


def token() -> bytes:
    return os.urandom(8)  # DET003 (line 23)
