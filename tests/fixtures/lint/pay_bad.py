"""Payload-safety fixture: every PAY rule fires in this file."""

import threading
from concurrent.futures import ProcessPoolExecutor

from repro.sweep import SweepConfig


def dispatch(pool: ProcessPoolExecutor):
    pool.submit(lambda: 1)  # PAY001 (line 10)

    def helper():
        return 2

    pool.submit(helper)  # PAY001 (line 15): nested function
    handle = open("/tmp/data.txt")
    pool.submit(print, handle)  # PAY002 (line 17)
    lock = threading.Lock()
    config = SweepConfig(params=lock)  # PAY002 (line 19)
    pool.submit(sum, (n for n in range(3)))  # PAY003 (line 20)
    return config
