"""Tests for the §2.4.1 summary exchange codecs."""

import pytest

from repro.core.codecs import encode_summary, validate_encoded
from repro.core.summaries import SummaryPolicy, TrafficSummary


def summary(fps, policy=SummaryPolicy.CONTENT):
    fps = frozenset(fps)
    return TrafficSummary(
        router="r", segment=("a", "b", "c"), round_index=0,
        direction="sent", policy=policy, count=len(fps),
        byte_count=1000 * len(fps), fingerprints=fps,
    )


class TestEncoding:
    def test_full_size_scales_with_set(self):
        small = encode_summary(summary(range(10)), "full")
        big = encode_summary(summary(range(1000)), "full")
        assert big.wire_bytes > small.wire_bytes * 50

    def test_polynomial_size_independent_of_set(self):
        small = encode_summary(summary(range(10)), "polynomial", max_diff=8)
        big = encode_summary(summary(range(5000)), "polynomial", max_diff=8)
        assert small.wire_bytes == big.wire_bytes

    def test_bloom_size_fixed(self):
        a = encode_summary(summary(range(10)), "bloom", bloom_bits=2048)
        b = encode_summary(summary(range(500)), "bloom", bloom_bits=2048)
        assert a.wire_bytes == b.wire_bytes == 16 + 2048 // 8

    def test_unknown_codec_rejected(self):
        with pytest.raises(ValueError):
            encode_summary(summary(range(3)), "magic")

    def test_flow_policy_rejected(self):
        flow = TrafficSummary(router="r", segment=("a", "b"), round_index=0,
                              direction="sent", policy=SummaryPolicy.FLOW,
                              count=1, byte_count=1000)
        with pytest.raises(ValueError):
            encode_summary(flow, "full")


class TestValidation:
    def roundtrip(self, codec, remote_fps, local_fps, threshold=0, **kw):
        encoded = encode_summary(summary(remote_fps), codec, **kw)
        return validate_encoded(encoded, summary(local_fps),
                                threshold=threshold, **kw)

    def test_full_exact(self):
        result = self.roundtrip("full", range(100), range(100))
        assert result.ok
        result = self.roundtrip("full", range(100), range(97))
        assert not result.ok
        assert result.missing == 3

    def test_polynomial_exact_within_bound(self):
        result = self.roundtrip("polynomial", range(100), range(100),
                                max_diff=8)
        assert result.ok
        result = self.roundtrip("polynomial", range(100), range(97),
                                max_diff=8)
        assert not result.ok
        assert result.missing == 3

    def test_polynomial_threshold(self):
        result = self.roundtrip("polynomial", range(100), range(98),
                                threshold=2, max_diff=8)
        assert result.ok

    def test_polynomial_overflow_fails_validation(self):
        result = self.roundtrip("polynomial", range(100), range(50),
                                max_diff=8)
        assert not result.ok
        assert "exceeds bound" in result.detail

    def test_bloom_detects_large_difference(self):
        result = self.roundtrip("bloom", range(200), range(140),
                                bloom_bits=4096)
        assert not result.ok
        assert result.discrepancy > 30

    def test_bloom_passes_identical_sets(self):
        result = self.roundtrip("bloom", range(200), range(200),
                                bloom_bits=4096)
        assert result.ok


class TestPiK2Integration:
    def run_with_codec(self, codec, drop_fraction):
        from repro.core.pik2 import PiK2Config, ProtocolPiK2
        from repro.core.segments import monitored_segments_pik2
        from repro.core.summaries import PathOracle, SegmentMonitor
        from repro.crypto.keys import KeyInfrastructure
        from repro.dist.sync import RoundSchedule
        from repro.net.adversary import DropFlowAttack
        from repro.net.router import Network
        from repro.net.routing import install_static_routes
        from repro.net.topology import chain
        from repro.net.traffic import CBRSource

        net = Network(chain(5))
        paths = install_static_routes(net)
        monitor = SegmentMonitor(net, PathOracle(paths),
                                 RoundSchedule(tau=1.0))
        net.add_tap(monitor)
        segments = set().union(*monitored_segments_pik2(
            [tuple(p) for p in paths.values()], k=1).values())
        protocol = ProtocolPiK2(
            net, monitor, segments, KeyInfrastructure(),
            RoundSchedule(tau=1.0),
            config=PiK2Config(codec=codec, codec_max_diff=12),
        )
        protocol.schedule_rounds(0, 3)
        CBRSource(net, "r1", "r5", "f1", rate_bps=800_000, duration=4.0)
        if drop_fraction:
            net.routers["r3"].compromise = DropFlowAttack(
                ["f1"], fraction=drop_fraction, seed=1)
        net.run(7.0)
        return protocol

    @pytest.mark.parametrize("codec", ["full", "polynomial", "bloom"])
    def test_codec_detects_dropper(self, codec):
        protocol = self.run_with_codec(codec, drop_fraction=0.3)
        suspects = protocol.states["r1"].suspected_segments()
        assert any("r3" in seg for seg in suspects)

    @pytest.mark.parametrize("codec", ["full", "polynomial", "bloom"])
    def test_codec_silent_without_attack(self, codec):
        protocol = self.run_with_codec(codec, drop_fraction=0.0)
        assert all(not s.suspicions for s in protocol.states.values())

    def test_polynomial_cheaper_than_full(self):
        full = self.run_with_codec("full", drop_fraction=0.0)
        poly = self.run_with_codec("polynomial", drop_fraction=0.0)
        assert poly.exchange_bytes < full.exchange_bytes / 2
