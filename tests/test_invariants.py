"""System-wide invariants: conservation of traffic in the simulator.

The detection protocols are built on "conservation of traffic" (§2.4.1);
these tests pin the *simulator's* own books: every originated packet is
delivered, queued, in flight, or accounted to exactly one drop event.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net.queues import DropReason
from repro.net.router import MonitorTap, Network
from repro.net.routing import install_static_routes
from repro.net.topology import MBPS, Topology
from repro.net.traffic import PoissonSource
from repro.net.adversary import DropFlowAttack


class LedgerTap(MonitorTap):
    """Counts every conservation-relevant event."""

    def __init__(self):
        self.originated = 0
        self.delivered = 0
        self.dropped = 0
        self.drop_reasons = {}

    def on_originate(self, router, packet, time):
        self.originated += 1

    def on_deliver(self, router, packet, time):
        self.delivered += 1

    def on_drop(self, router, out_nbr, packet, time, reason, drop_prob):
        self.dropped += 1
        self.drop_reasons[reason] = self.drop_reasons.get(reason, 0) + 1


def run_ledger(rate_pps, queue_limit, duration=4.0, attack=None, seed=0):
    topo = Topology("ledger")
    topo.add_link("s", "r", bandwidth=20 * MBPS, delay=0.001)
    topo.add_link("r", "d", bandwidth=1 * MBPS, delay=0.001,
                  queue_limit=queue_limit)
    net = Network(topo)
    install_static_routes(net)
    ledger = LedgerTap()
    net.add_tap(ledger)
    if attack is not None:
        net.routers["r"].compromise = attack
    PoissonSource(net, "s", "d", "f", rate_pps=rate_pps,
                  duration=duration, seed=seed)
    net.run(duration + 30.0)  # generous drain time
    return ledger


class TestConservation:
    def test_uncongested_everything_delivered(self):
        ledger = run_ledger(rate_pps=50, queue_limit=64_000)
        assert ledger.originated == ledger.delivered
        assert ledger.dropped == 0

    def test_congested_books_balance(self):
        ledger = run_ledger(rate_pps=400, queue_limit=8_000)
        assert ledger.dropped > 0
        assert ledger.originated == ledger.delivered + ledger.dropped

    def test_malicious_drops_on_their_own_ledger_line(self):
        attack = DropFlowAttack(["f"], fraction=0.2, seed=1)
        ledger = run_ledger(rate_pps=50, queue_limit=64_000, attack=attack)
        assert ledger.originated == ledger.delivered + ledger.dropped
        assert ledger.drop_reasons.get(DropReason.MALICIOUS, 0) == \
            len(attack.dropped)

    @settings(max_examples=15, deadline=None)
    @given(rate=st.integers(min_value=20, max_value=500),
           queue_kb=st.integers(min_value=3, max_value=64),
           seed=st.integers(min_value=0, max_value=100))
    def test_books_balance_for_arbitrary_load(self, rate, queue_kb, seed):
        ledger = run_ledger(rate_pps=rate, queue_limit=queue_kb * 1000,
                            seed=seed)
        assert ledger.originated == ledger.delivered + ledger.dropped


class TestCLI:
    def test_list(self, capsys):
        from repro.__main__ import main
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig5_7" in out and "threshold" in out

    def test_unknown_experiment(self, capsys):
        from repro.__main__ import main
        assert main(["run", "nonsense"]) == 2

    def test_run_cheap_experiment(self, capsys):
        from repro.__main__ import main
        assert main(["run", "baselines"]) == 0
        out = capsys.readouterr().out
        assert "watchers-consorting" in out
