"""Unit tests for the discrete-event engine."""

import pytest

from repro.net.events import Simulator


class TestScheduling:
    def test_runs_in_time_order(self):
        sim = Simulator()
        fired = []
        sim.schedule(2.0, fired.append, "late")
        sim.schedule(1.0, fired.append, "early")
        sim.schedule(3.0, fired.append, "last")
        sim.run()
        assert fired == ["early", "late", "last"]

    def test_ties_break_by_insertion_order(self):
        sim = Simulator()
        fired = []
        for tag in ("a", "b", "c"):
            sim.schedule(1.0, fired.append, tag)
        sim.run()
        assert fired == ["a", "b", "c"]

    def test_clock_advances_to_event_time(self):
        sim = Simulator()
        seen = []
        sim.schedule(1.5, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [1.5]
        assert sim.now == 1.5

    def test_schedule_at_absolute(self):
        sim = Simulator()
        sim.schedule_at(4.0, lambda: None)
        sim.run()
        assert sim.now == 4.0

    def test_negative_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            sim.schedule(-0.1, lambda: None)

    def test_schedule_in_past_rejected(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        sim.run()
        with pytest.raises(ValueError):
            sim.schedule_at(0.5, lambda: None)

    def test_events_can_schedule_events(self):
        sim = Simulator()
        fired = []

        def chain(n):
            fired.append(n)
            if n < 3:
                sim.schedule(1.0, chain, n + 1)

        sim.schedule(0.0, chain, 0)
        sim.run()
        assert fired == [0, 1, 2, 3]
        assert sim.now == 3.0


class TestRunControl:
    def test_run_until_stops_before_later_events(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, fired.append, "in")
        sim.schedule(5.0, fired.append, "out")
        sim.run(until=2.0)
        assert fired == ["in"]
        assert sim.now == 2.0  # clock advances to the horizon

    def test_run_until_resumes(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, fired.append, "a")
        sim.schedule(5.0, fired.append, "b")
        sim.run(until=2.0)
        sim.run(until=10.0)
        assert fired == ["a", "b"]

    def test_max_events(self):
        sim = Simulator()
        fired = []
        for i in range(5):
            sim.schedule(float(i + 1), fired.append, i)
        dispatched = sim.run(max_events=2)
        assert dispatched == 2
        assert fired == [0, 1]

    def test_run_returns_dispatch_count(self):
        sim = Simulator()
        for i in range(4):
            sim.schedule(1.0, lambda: None)
        assert sim.run() == 4


class TestCancellation:
    def test_cancelled_event_does_not_fire(self):
        sim = Simulator()
        fired = []
        event = sim.schedule(1.0, fired.append, "x")
        event.cancel()
        sim.run()
        assert fired == []

    def test_cancel_is_per_event(self):
        sim = Simulator()
        fired = []
        keep = sim.schedule(1.0, fired.append, "keep")
        drop = sim.schedule(1.0, fired.append, "drop")
        drop.cancel()
        sim.run()
        assert fired == ["keep"]

    def test_pending_excludes_cancelled(self):
        sim = Simulator()
        event = sim.schedule(1.0, lambda: None)
        sim.schedule(2.0, lambda: None)
        event.cancel()
        assert sim.pending() == 1

    def test_peek_time_skips_cancelled(self):
        sim = Simulator()
        first = sim.schedule(1.0, lambda: None)
        sim.schedule(2.0, lambda: None)
        first.cancel()
        assert sim.peek_time() == 2.0

    def test_peek_time_empty(self):
        assert Simulator().peek_time() is None
