"""Unit tests for droptail and RED queues."""

import random

import pytest

from repro.net.packet import Packet
from repro.net.queues import (
    DropReason,
    DropTailQueue,
    REDParams,
    REDQueue,
    red_drop_probability,
    red_packet_drop_probability,
)


def pkt(size=1000):
    return Packet(src="a", dst="b", size=size)


class TestDropTail:
    def test_accepts_until_full(self):
        q = DropTailQueue(limit_bytes=2500)
        assert q.offer(pkt(), 0.0)[0]
        assert q.offer(pkt(), 0.0)[0]
        accepted, reason, prob = q.offer(pkt(), 0.0)
        assert not accepted
        assert reason is DropReason.CONGESTION
        assert prob == 1.0

    def test_occupancy_tracks_bytes(self):
        q = DropTailQueue(limit_bytes=10_000)
        q.offer(pkt(1000), 0.0)
        q.offer(pkt(500), 0.0)
        assert q.occupancy == 1500
        assert len(q) == 2

    def test_fifo_order(self):
        q = DropTailQueue(limit_bytes=10_000)
        first, second = pkt(), pkt()
        q.offer(first, 0.0)
        q.offer(second, 0.0)
        assert q.pop(0.0) is first
        assert q.pop(0.0) is second
        assert q.pop(0.0) is None

    def test_pop_updates_occupancy(self):
        q = DropTailQueue(limit_bytes=10_000)
        q.offer(pkt(800), 0.0)
        q.pop(0.0)
        assert q.occupancy == 0
        assert q.empty

    def test_small_packet_fits_when_big_does_not(self):
        q = DropTailQueue(limit_bytes=1500)
        q.offer(pkt(1000), 0.0)
        assert not q.offer(pkt(1000), 0.0)[0]
        assert q.offer(pkt(400), 0.0)[0]

    def test_fill_fraction(self):
        q = DropTailQueue(limit_bytes=2000)
        q.offer(pkt(1000), 0.0)
        assert q.fill_fraction() == pytest.approx(0.5)

    def test_counts(self):
        q = DropTailQueue(limit_bytes=1000)
        q.offer(pkt(), 0.0)
        q.offer(pkt(), 0.0)
        assert q.enqueues == 1
        assert q.drops == 1

    def test_invalid_limit(self):
        with pytest.raises(ValueError):
            DropTailQueue(limit_bytes=0)


class TestREDProbability:
    def params(self, **kw):
        defaults = dict(min_th=10_000, max_th=30_000, max_p=0.1,
                        byte_mode=False)
        defaults.update(kw)
        return REDParams(**defaults)

    def test_zero_below_min_threshold(self):
        assert red_drop_probability(5_000, self.params()) == 0.0

    def test_ramp_midpoint(self):
        p = red_drop_probability(20_000, self.params())
        assert p == pytest.approx(0.05)

    def test_gentle_region(self):
        params = self.params(gentle=True)
        at_max = red_drop_probability(30_000, params)
        assert at_max == pytest.approx(0.1)
        midway = red_drop_probability(45_000, params)
        assert 0.1 < midway < 1.0
        assert red_drop_probability(60_000, params) == 1.0

    def test_non_gentle_cliff(self):
        params = self.params(gentle=False)
        assert red_drop_probability(30_000, params) == 1.0

    def test_count_uniformization_increases_prob(self):
        params = self.params()
        base = red_drop_probability(20_000, params, count=-1)
        later = red_drop_probability(20_000, params, count=10)
        assert later > base

    def test_count_saturates_at_one(self):
        params = self.params()
        assert red_drop_probability(20_000, params, count=10_000) == 1.0

    def test_byte_mode_scales_small_packets(self):
        params = self.params(byte_mode=True, mean_pktsize=1000)
        big = red_packet_drop_probability(20_000, params, -1, 1000)
        small = red_packet_drop_probability(20_000, params, -1, 40)
        assert small == pytest.approx(big * 0.04)

    def test_byte_mode_leaves_forced_drops(self):
        params = self.params(byte_mode=True, gentle=False)
        assert red_packet_drop_probability(35_000, params, -1, 40) == 1.0

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            REDParams(min_th=10, max_th=5).validate()
        with pytest.raises(ValueError):
            REDParams(max_p=0.0).validate()
        with pytest.raises(ValueError):
            REDParams(weight=2.0).validate()


class TestREDQueue:
    def make(self, seed=1, **kw):
        params = REDParams(min_th=5_000, max_th=15_000, max_p=0.5,
                           weight=0.5, byte_mode=False, **kw)
        return REDQueue(limit_bytes=20_000, params=params,
                        rng=random.Random(seed))

    def test_no_drops_while_average_low(self):
        q = self.make()
        for _ in range(4):
            accepted, _, _ = q.offer(pkt(), 0.0)
            assert accepted

    def test_hard_limit_always_enforced(self):
        q = self.make()
        accepted_total = 0
        for _ in range(40):
            accepted, _, _ = q.offer(pkt(), 0.0)
            accepted_total += accepted
        assert q.occupancy <= q.limit_bytes

    def test_early_drops_happen_under_sustained_load(self):
        q = self.make()
        outcomes = [q.offer(pkt(), i * 0.001)[0] for i in range(60)]
        # pop a little so the hard limit is not the only dropper
        assert q.drops > 0

    def test_deterministic_for_seed(self):
        def run(seed):
            q = self.make(seed=seed)
            results = []
            for i in range(50):
                results.append(q.offer(pkt(), i * 0.001)[0])
                if i % 3 == 0:
                    q.pop(i * 0.001)
            return results

        assert run(7) == run(7)
        assert run(7) != run(8)

    def test_average_decays_when_idle(self):
        q = self.make()
        for i in range(10):
            q.offer(pkt(), 0.0)
        for _ in range(len(q)):
            q.pop(0.001)
        avg_before = q.avg
        q.update_average(5.0)  # long idle
        assert q.avg < avg_before

    def test_average_follows_occupancy(self):
        q = self.make()
        for i in range(8):
            q.offer(pkt(), 0.0)
        assert q.avg > 0
