"""Unit tests for fingerprints, keys, signatures, hash chains."""

import pytest

from repro.crypto.fingerprint import FingerprintSampler, fingerprint, fingerprint_bytes
from repro.crypto.hashchain import HashChain
from repro.crypto.keys import KeyInfrastructure
from repro.crypto.signatures import Signed, SignatureError, canonical_bytes
from repro.net.packet import Packet


class TestFingerprint:
    def test_stable_across_hops(self):
        """§7.4.2: fingerprints must ignore TTL and checksum."""
        p = Packet(src="a", dst="b", payload=b"data")
        before = fingerprint(p)
        p.hop("r1")
        p.hop("r2")
        assert fingerprint(p) == before

    def test_sensitive_to_payload(self):
        p = Packet(src="a", dst="b", payload=b"data")
        evil = p.clone_modified(b"tampered")
        assert fingerprint(p) != fingerprint(evil)

    def test_key_separates_domains(self):
        p = Packet(src="a", dst="b")
        assert fingerprint(p, b"k1") != fingerprint(p, b"k2")

    def test_64_bit_output(self):
        p = Packet(src="a", dst="b")
        assert len(fingerprint_bytes(p)) == 8
        assert 0 <= fingerprint(p) < (1 << 64)

    def test_distinct_packets_distinct_fingerprints(self):
        fps = {fingerprint(Packet(src="a", dst="b", seq=i))
               for i in range(1000)}
        assert len(fps) == 1000


class TestSampler:
    def test_rate_one_samples_everything(self):
        sampler = FingerprintSampler(rate=1.0)
        assert all(sampler.sampled(Packet(src="a", dst="b", seq=i))
                   for i in range(50))

    def test_rate_controls_fraction(self):
        sampler = FingerprintSampler(rate=0.25, key=b"s")
        packets = [Packet(src="a", dst="b", seq=i) for i in range(4000)]
        frac = sum(sampler.sampled(p) for p in packets) / len(packets)
        assert frac == pytest.approx(0.25, abs=0.03)

    def test_same_key_same_decisions(self):
        a = FingerprintSampler(rate=0.5, key=b"shared")
        b = FingerprintSampler(rate=0.5, key=b"shared")
        packets = [Packet(src="a", dst="b", seq=i) for i in range(100)]
        assert [a.sampled(p) for p in packets] == \
            [b.sampled(p) for p in packets]

    def test_secret_key_changes_selection(self):
        """An intermediary guessing the wrong key samples a different set."""
        a = FingerprintSampler(rate=0.5, key=b"secret")
        b = FingerprintSampler(rate=0.5, key=b"guess")
        packets = [Packet(src="a", dst="b", seq=i) for i in range(200)]
        assert [a.sampled(p) for p in packets] != \
            [b.sampled(p) for p in packets]

    def test_invalid_rate(self):
        with pytest.raises(ValueError):
            FingerprintSampler(rate=0.0)
        with pytest.raises(ValueError):
            FingerprintSampler(rate=1.5)


class TestKeys:
    def test_pair_key_symmetric(self):
        keys = KeyInfrastructure()
        assert keys.pair_key("a", "b") == keys.pair_key("b", "a")

    def test_pair_keys_distinct(self):
        keys = KeyInfrastructure()
        assert keys.pair_key("a", "b") != keys.pair_key("a", "c")

    def test_signing_keys_distinct(self):
        keys = KeyInfrastructure()
        assert keys.signing_key("a") != keys.signing_key("b")

    def test_master_secret_separates_infrastructures(self):
        a = KeyInfrastructure(b"net-a")
        b = KeyInfrastructure(b"net-b")
        assert a.signing_key("r") != b.signing_key("r")

    def test_group_key_order_free(self):
        keys = KeyInfrastructure()
        assert keys.group_key(("a", "b", "c")) == keys.group_key(("c", "a", "b"))


class TestCanonicalBytes:
    def test_primitives(self):
        for value in (None, True, False, 0, -3, 1.5, "s", b"b"):
            assert isinstance(canonical_bytes(value), bytes)

    def test_dict_key_order_ignored(self):
        assert canonical_bytes({"a": 1, "b": 2}) == \
            canonical_bytes({"b": 2, "a": 1})

    def test_set_order_ignored(self):
        assert canonical_bytes({3, 1, 2}) == canonical_bytes({2, 3, 1})

    def test_type_distinctions(self):
        assert canonical_bytes(1) != canonical_bytes("1")
        assert canonical_bytes([1, 2]) != canonical_bytes([12])
        assert canonical_bytes(["ab"]) != canonical_bytes(["a", "b"])

    def test_unknown_type_rejected(self):
        with pytest.raises(TypeError):
            canonical_bytes(object())

    def test_dataclasses_supported(self):
        from repro.core.summaries import SummaryPolicy, TrafficSummary
        summary = TrafficSummary(
            router="r", segment=("a", "b"), round_index=0,
            direction="sent", policy=SummaryPolicy.FLOW,
            count=3, byte_count=3000,
        )
        assert isinstance(canonical_bytes(summary), bytes)


class TestSigned:
    def test_sign_and_verify(self):
        keys = KeyInfrastructure()
        signed = Signed.sign({"count": 5}, "r1", keys.signing_key("r1"))
        assert signed.verify(keys.signing_key("r1"))
        assert signed.verify_or_raise(keys.signing_key("r1")) == {"count": 5}

    def test_tampered_payload_fails(self):
        keys = KeyInfrastructure()
        signed = Signed.sign({"count": 5}, "r1", keys.signing_key("r1"))
        forged = Signed(payload={"count": 9}, signer="r1", mac=signed.mac)
        assert not forged.verify(keys.signing_key("r1"))
        with pytest.raises(SignatureError):
            forged.verify_or_raise(keys.signing_key("r1"))

    def test_wrong_signer_fails(self):
        keys = KeyInfrastructure()
        signed = Signed.sign("x", "r1", keys.signing_key("r1"))
        stolen = Signed(payload="x", signer="r2", mac=signed.mac)
        assert not stolen.verify(keys.signing_key("r2"))

    def test_cannot_sign_without_key(self):
        """Structural security: forging needs the victim's key object."""
        keys = KeyInfrastructure()
        attacker_keys = KeyInfrastructure(b"attacker-guess")
        forged = Signed.sign("lie", "r1", attacker_keys.signing_key("r1"))
        assert not forged.verify(keys.signing_key("r1"))


class TestHashChain:
    def test_release_verifies_against_anchor(self):
        chain = HashChain(b"seed", length=10)
        anchor = chain.anchor
        value = chain.release()
        assert HashChain.verify(value, anchor, max_steps=1)

    def test_later_releases_need_more_steps(self):
        chain = HashChain(b"seed", length=10)
        anchor = chain.anchor
        chain.release()
        second = chain.release()
        assert not HashChain.verify(second, anchor, max_steps=1)
        assert HashChain.verify(second, anchor, max_steps=2)

    def test_wrong_value_rejected(self):
        chain = HashChain(b"seed", length=5)
        assert not HashChain.verify(b"junk", chain.anchor, max_steps=5)

    def test_exhaustion(self):
        chain = HashChain(b"seed", length=2)
        chain.release()
        chain.release()
        with pytest.raises(RuntimeError):
            chain.release()

    def test_remaining(self):
        chain = HashChain(b"seed", length=3)
        assert chain.remaining == 3
        chain.release()
        assert chain.remaining == 2

    def test_length_validated(self):
        with pytest.raises(ValueError):
            HashChain(b"seed", length=0)
