"""Unit tests for path-segment enumeration and P_r (§5.1/§5.2)."""

import pytest

from repro.core.segments import (
    all_routing_paths,
    enumerate_segments,
    monitored_segments_pi2,
    monitored_segments_pik2,
    pik2_counter_count,
    pr_statistics,
    watchers_counter_count,
)
from repro.net.topology import abilene, chain, diamond, ebone_like


class TestRoutingPaths:
    def test_chain_paths(self):
        paths = all_routing_paths(chain(3))
        assert ("r1", "r2", "r3") in paths
        assert ("r3", "r2", "r1") in paths
        assert len(paths) == 6  # every ordered pair

    def test_paths_are_shortest(self):
        topo = abilene()
        paths = {(p[0], p[-1]): p for p in all_routing_paths(topo)}
        p = paths[("Sunnyvale", "NewYork")]
        delay = sum(topo.link(a, b).delay for a, b in zip(p, p[1:]))
        assert delay == pytest.approx(0.025)

    def test_deterministic(self):
        a = all_routing_paths(ebone_like())
        b = all_routing_paths(ebone_like())
        assert a == b

    def test_one_path_per_pair(self):
        paths = all_routing_paths(diamond())
        pairs = [(p[0], p[-1]) for p in paths]
        assert len(pairs) == len(set(pairs))


class TestEnumerate:
    def test_subsequences(self):
        path = ("a", "b", "c", "d")
        assert list(enumerate_segments(path, 3)) == [
            ("a", "b", "c"), ("b", "c", "d")]

    def test_full_length(self):
        assert list(enumerate_segments(("a", "b"), 2)) == [("a", "b")]

    def test_too_long_yields_nothing(self):
        assert list(enumerate_segments(("a", "b"), 3)) == []


class TestPi2Segments:
    def test_chain_k1(self):
        paths = all_routing_paths(chain(4))
        by_router = monitored_segments_pi2(paths, k=1)
        # 3-segments in both directions
        assert ("r1", "r2", "r3") in by_router["r2"]
        assert ("r3", "r2", "r1") in by_router["r2"]
        # every member monitors (per path-segment *nodes*)
        assert ("r1", "r2", "r3") in by_router["r1"]
        assert ("r1", "r2", "r3") in by_router["r3"]

    def test_short_paths_monitored_whole(self):
        # k=3 wants 5-segments but the longest path in chain(4) has 4
        # routers; the whole path (terminal-ended) is monitored instead.
        paths = all_routing_paths(chain(4))
        by_router = monitored_segments_pi2(paths, k=3)
        assert ("r1", "r2", "r3", "r4") in by_router["r2"]

    def test_k_must_be_positive(self):
        with pytest.raises(ValueError):
            monitored_segments_pi2([], k=0)

    def test_monotone_in_k_until_saturation(self):
        paths = all_routing_paths(ebone_like())
        sizes = []
        for k in (1, 2, 3):
            stats = pr_statistics(monitored_segments_pi2(paths, k))
            sizes.append(stats["mean"])
        assert sizes[0] < sizes[1] <= sizes[2]


class TestPik2Segments:
    def test_only_ends_monitor(self):
        paths = all_routing_paths(chain(5))
        by_router = monitored_segments_pik2(paths, k=1)
        seg = ("r1", "r2", "r3")
        assert seg in by_router["r1"]
        assert seg in by_router["r3"]
        assert seg not in by_router.get("r2", set())

    def test_all_lengths_up_to_k_plus_2(self):
        paths = all_routing_paths(chain(6))
        by_router = monitored_segments_pik2(paths, k=2)
        lengths = {len(s) for s in by_router["r1"]}
        assert lengths == {3, 4}

    def test_pik2_much_smaller_than_pi2(self):
        paths = all_routing_paths(ebone_like())
        pi2 = pr_statistics(monitored_segments_pi2(paths, 2))
        pik2 = pr_statistics(monitored_segments_pik2(paths, 2))
        assert pik2["mean"] < pi2["mean"]
        assert pik2["max"] < pi2["max"]


class TestOverheadCounters:
    def test_watchers_formula(self):
        topo = chain(4)
        counts = watchers_counter_count(topo)
        # 7 counters x degree x N (N = 4)
        assert counts["r1"] == 7 * 1 * 4
        assert counts["r2"] == 7 * 2 * 4

    def test_pik2_two_counters_per_segment(self):
        topo = chain(5)
        paths = all_routing_paths(topo)
        by_router = monitored_segments_pik2(paths, k=1)
        counts = pik2_counter_count(by_router, topo)
        assert counts["r1"] == 2 * len(by_router["r1"])

    def test_pik2_orders_of_magnitude_cheaper_than_watchers(self):
        """The §5.2.1 comparison on a realistic topology."""
        topo = ebone_like()
        paths = all_routing_paths(topo)
        watchers = watchers_counter_count(topo)
        pik2 = pik2_counter_count(monitored_segments_pik2(paths, 2), topo)
        watchers_mean = sum(watchers.values()) / len(watchers)
        pik2_mean = sum(pik2.values()) / len(pik2)
        assert pik2_mean < watchers_mean / 3


class TestPrStatistics:
    def test_stats_fields(self):
        stats = pr_statistics({"a": {("x", "y")}, "b": set()})
        assert stats["max"] == 1.0
        assert stats["mean"] == 0.5

    def test_routers_without_segments_counted(self):
        stats = pr_statistics({"a": {("x", "y")}},
                              all_routers=["a", "b", "c", "d"])
        assert stats["mean"] == 0.25

    def test_empty(self):
        stats = pr_statistics({})
        assert stats == {"max": 0, "mean": 0.0, "median": 0.0}
