"""Every example script must run clean end to end (they are the docs)."""

import importlib.util
import pathlib

import pytest

EXAMPLES = pathlib.Path(__file__).parent.parent / "examples"


def run_example(name: str) -> None:
    path = EXAMPLES / f"{name}.py"
    spec = importlib.util.spec_from_file_location(f"example_{name}", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    module.main()


@pytest.mark.parametrize("name", [
    "quickstart",
    "protocol_comparison",
    "active_replication",
    "congestion_vs_malice",
])
def test_example_runs(name, capsys):
    run_example(name)
    out = capsys.readouterr().out
    assert out.strip()


@pytest.mark.parametrize("name", ["fatih_abilene", "red_stealth_attack"])
def test_slow_example_runs(name, capsys):
    run_example(name)
    out = capsys.readouterr().out
    assert "detected" in out.lower() or "suspected" in out.lower()
