"""LRU size-capped eviction and concurrent safety of ResultCache."""

import json
import os
import time
from concurrent.futures import ProcessPoolExecutor

import pytest

from repro.sweep.cache import ResultCache
from repro.sweep.grid import RunSpec

PAD = "x" * 512


def make_spec(i: int) -> RunSpec:
    # Fixed-width param value keeps every entry file the same size.
    return RunSpec("exp", (("i", f"{i:05d}"),), 0, 1)


def make_record(i: int) -> dict:
    return {"status": "ok", "result": {"i": f"{i:05d}"}, "pad": PAD}


def entry_size(tmp_path) -> int:
    probe = ResultCache(str(tmp_path / "probe"), version="v")
    probe.store(make_spec(99999), make_record(99999))
    return probe.size_bytes()


class TestCapValidation:
    def test_zero_or_negative_cap_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            ResultCache(str(tmp_path), max_bytes=0)
        with pytest.raises(ValueError):
            ResultCache(str(tmp_path), max_bytes=-1)

    def test_none_means_unbounded(self, tmp_path):
        cache = ResultCache(str(tmp_path), version="v")
        for i in range(10):
            cache.store(make_spec(i), make_record(i))
        assert all(cache.load(make_spec(i)) is not None for i in range(10))
        assert cache.evict() == []


class TestLruEviction:
    def test_oldest_entries_evicted_first(self, tmp_path):
        size = entry_size(tmp_path)
        cache = ResultCache(str(tmp_path / "c"), version="v",
                            max_bytes=3 * size)
        for i in range(5):
            cache.store(make_spec(i), make_record(i))
            time.sleep(0.01)
        assert cache.load(make_spec(0)) is None
        assert cache.load(make_spec(1)) is None
        for i in (2, 3, 4):
            assert cache.load(make_spec(i)) is not None
        assert cache.size_bytes() <= 3 * size

    def test_load_bumps_recency(self, tmp_path):
        size = entry_size(tmp_path)
        cache = ResultCache(str(tmp_path / "c"), version="v",
                            max_bytes=3 * size)
        for i in range(3):
            cache.store(make_spec(i), make_record(i))
            time.sleep(0.01)
        assert cache.load(make_spec(0)) is not None  # 0 is now freshest
        time.sleep(0.01)
        cache.store(make_spec(3), make_record(3))
        assert cache.load(make_spec(1)) is None  # LRU victim
        for i in (0, 2, 3):
            assert cache.load(make_spec(i)) is not None

    def test_cap_below_one_entry_retains_nothing(self, tmp_path):
        cache = ResultCache(str(tmp_path / "c"), version="v", max_bytes=16)
        cache.store(make_spec(0), make_record(0))
        assert cache.load(make_spec(0)) is None
        assert cache.size_bytes() == 0

    def test_explicit_evict_on_existing_cache(self, tmp_path):
        root = str(tmp_path / "c")
        size = entry_size(tmp_path)
        unbounded = ResultCache(root, version="v")
        for i in range(4):
            unbounded.store(make_spec(i), make_record(i))
            time.sleep(0.01)
        capped = ResultCache(root, version="v", max_bytes=2 * size)
        evicted = capped.evict()
        assert len(evicted) == 2
        assert capped.load(make_spec(0)) is None
        assert capped.load(make_spec(3)) is not None
        assert capped.size_bytes() <= 2 * size


class TestIndexRobustness:
    def test_corrupt_index_recovers(self, tmp_path):
        root = str(tmp_path / "c")
        size = entry_size(tmp_path)
        cache = ResultCache(root, version="v", max_bytes=4 * size)
        cache.store(make_spec(0), make_record(0))
        with open(cache.index_path, "w") as handle:
            handle.write("{ not json")
        # Cache keeps working; reconciliation readopts disk entries.
        cache.store(make_spec(1), make_record(1))
        assert cache.load(make_spec(0)) is not None
        assert cache.load(make_spec(1)) is not None
        with open(cache.index_path) as handle:
            assert isinstance(json.load(handle), dict)

    def test_vanished_files_dropped_from_index(self, tmp_path):
        root = str(tmp_path / "c")
        size = entry_size(tmp_path)
        cache = ResultCache(root, version="v", max_bytes=4 * size)
        for i in range(3):
            cache.store(make_spec(i), make_record(i))
        os.unlink(cache.path(make_spec(1)))
        cache.evict()
        with open(cache.index_path) as handle:
            index = json.load(handle)
        assert len(index) == 2
        assert cache.size_bytes() == 2 * size

    def test_untracked_entries_adopted_by_mtime(self, tmp_path):
        root = str(tmp_path / "c")
        size = entry_size(tmp_path)
        # Entries written by an older, index-less cache...
        legacy = ResultCache(root, version="v")
        for i in range(4):
            legacy.store(make_spec(i), make_record(i))
        os.unlink(legacy.index_path)
        # ...are adopted and evicted oldest-mtime-first once capped.
        capped = ResultCache(root, version="v", max_bytes=2 * size)
        capped.evict()
        assert capped.size_bytes() <= 2 * size

    def test_disabled_cache_never_touches_index(self, tmp_path):
        cache = ResultCache(str(tmp_path / "c"), version="v",
                            enabled=False, max_bytes=1024)
        cache.store(make_spec(0), make_record(0))
        assert cache.load(make_spec(0)) is None
        assert cache.evict() == []
        assert not os.path.exists(cache.index_path)


def _hammer(args):
    root, worker, count, max_bytes = args
    cache = ResultCache(root, version="v", max_bytes=max_bytes)
    for i in range(count):
        n = worker * 1000 + i
        cache.store(make_spec(n), make_record(n))
        cache.load(make_spec(n))
    return worker


class TestConcurrentWriters:
    def test_parallel_stores_keep_index_valid_and_capped(self, tmp_path):
        root = str(tmp_path / "c")
        size = entry_size(tmp_path)
        cap = 8 * size
        jobs = [(root, worker, 20, cap) for worker in range(4)]
        with ProcessPoolExecutor(max_workers=4) as pool:
            assert sorted(pool.map(_hammer, jobs)) == [0, 1, 2, 3]
        cache = ResultCache(root, version="v", max_bytes=cap)
        # One entry of slack: a writer may land between the final
        # eviction and the end of the race.
        assert cache.size_bytes() <= cap + size
        with open(cache.index_path) as handle:
            index = json.load(handle)
        assert isinstance(index, dict)
        for row in index.values():
            assert set(row) == {"size", "used"}
