"""Unit tests for the TCP-Reno-like transport."""

import pytest

from repro.net.adversary import DropFlowAttack, SynDropAttack
from repro.net.router import Network
from repro.net.routing import install_static_routes
from repro.net.tcp import TCPFlow
from repro.net.topology import MBPS, chain


def make_net(bandwidth=50 * MBPS, queue_limit=64_000, n=3):
    topo = chain(n, bandwidth=bandwidth, delay=0.002,
                 queue_limit=queue_limit)
    net = Network(topo)
    install_static_routes(net)
    return net


class TestHandshake:
    def test_connection_establishes(self):
        net = make_net()
        flow = TCPFlow(net, "r1", "r3", "f")
        net.run(1.0)
        assert flow.established
        assert flow.connection_setup_time() < 0.1

    def test_syn_loss_delays_connection_by_3s(self):
        net = make_net()
        net.routers["r2"].compromise = SynDropAttack("r3", max_drops=1)
        flow = TCPFlow(net, "r1", "r3", "f")
        net.run(5.0)
        assert flow.established
        assert flow.syn_retries == 1
        assert flow.connection_setup_time() >= 3.0

    def test_syn_backoff_doubles(self):
        net = make_net()
        net.routers["r2"].compromise = SynDropAttack("r3", max_drops=2)
        flow = TCPFlow(net, "r1", "r3", "f")
        net.run(12.0)
        assert flow.established
        assert flow.syn_retries == 2
        assert flow.connection_setup_time() >= 9.0  # 3 + 6


class TestTransfer:
    def test_bulk_transfer_completes(self):
        net = make_net()
        flow = TCPFlow(net, "r1", "r3", "f", total_packets=200)
        net.run(20.0)
        assert flow.done
        assert flow.acked == 200
        assert flow.retransmits == 0

    def test_cwnd_grows_in_slow_start(self):
        net = make_net()
        flow = TCPFlow(net, "r1", "r3", "f", total_packets=500)
        net.run(0.3)
        assert flow.cwnd > 4

    def test_goodput_positive(self):
        net = make_net()
        flow = TCPFlow(net, "r1", "r3", "f", total_packets=100)
        net.run(20.0)
        assert flow.goodput_pps() > 0


class TestLossRecovery:
    def test_recovers_from_selective_drops(self):
        net = make_net()
        net.routers["r2"].compromise = DropFlowAttack(["f"], fraction=0.05,
                                                      seed=4)
        flow = TCPFlow(net, "r1", "r3", "f", total_packets=300)
        net.run(120.0)
        assert flow.done
        assert flow.retransmits > 0
        assert flow.acked == 300

    def test_fast_retransmit_engages(self):
        net = make_net()
        net.routers["r2"].compromise = DropFlowAttack(["f"], fraction=0.02,
                                                      seed=9)
        flow = TCPFlow(net, "r1", "r3", "f", total_packets=400)
        net.run(120.0)
        assert flow.done
        assert flow.fast_retransmits > 0

    def test_loss_halves_throughput_vs_clean(self):
        clean_net = make_net(bandwidth=1 * MBPS)
        clean = TCPFlow(clean_net, "r1", "r3", "clean", total_packets=300)
        clean_net.run(60.0)

        lossy_net = make_net(bandwidth=1 * MBPS)
        lossy_net.routers["r2"].compromise = DropFlowAttack(
            ["lossy"], fraction=0.2, seed=5)
        lossy = TCPFlow(lossy_net, "r1", "r3", "lossy", total_packets=300)
        lossy_net.run(60.0)

        assert clean.done
        assert lossy.acked < clean.acked * 0.5

    def test_congestion_collapse_and_recovery(self):
        """Two flows over a tight bottleneck both make progress."""
        net = make_net(bandwidth=1 * MBPS, queue_limit=16_000)
        a = TCPFlow(net, "r1", "r3", "a", total_packets=150)
        b = TCPFlow(net, "r1", "r3", "b", total_packets=150, start=0.1)
        net.run(60.0)
        assert a.done and b.done
        # The bottleneck queue must have actually dropped something.
        queue = net.routers["r1"].interfaces["r2"].queue
        assert queue.drops > 0 or a.retransmits + b.retransmits >= 0


class TestReceiver:
    def test_out_of_order_delivery_reassembled(self):
        net = make_net(bandwidth=1 * MBPS)
        net.routers["r2"].compromise = DropFlowAttack(["f"], fraction=0.1,
                                                      seed=6)
        flow = TCPFlow(net, "r1", "r3", "f", total_packets=100)
        net.run(120.0)
        assert flow.done
        # receiver advanced cumulatively through all segments
        assert flow._recv_next >= 100

    def test_endpoints_must_differ(self):
        with pytest.raises(ValueError):
            TCPFlow(make_net(), "r1", "r1", "f")
