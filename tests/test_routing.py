"""Unit tests for routing: constrained SPF, static install, OSPF daemon."""

import pytest

from repro.net.packet import Packet
from repro.net.router import Network
from repro.net.routing import (
    LinkStateRouting,
    install_static_routes,
    shortest_path_avoiding,
)
from repro.net.topology import Topology, abilene, chain, diamond


class TestShortestPathAvoiding:
    def test_plain_shortest_path(self):
        path = shortest_path_avoiding(chain(4), "r1", "r4")
        assert path == ["r1", "r2", "r3", "r4"]

    def test_unreachable_returns_none(self):
        topo = Topology()
        topo.add_router("a")
        topo.add_router("b")
        assert shortest_path_avoiding(topo, "a", "b") is None

    def test_link_exclusion_forces_detour(self):
        topo = diamond()
        direct = shortest_path_avoiding(topo, "s", "t")
        assert direct is not None
        via = direct[1]
        other = "b" if via == "a" else "a"
        detour = shortest_path_avoiding(topo, "s", "t", [("s", via)])
        assert detour == ["s", other, "t"]

    def test_link_exclusion_can_disconnect(self):
        topo = chain(3)
        assert shortest_path_avoiding(topo, "r1", "r3",
                                      [("r2", "r3")]) is None

    def test_window_exclusion_reroutes(self):
        topo = abilene()
        seg = ("Denver", "KansasCity", "Indianapolis")
        path = shortest_path_avoiding(topo, "Sunnyvale", "NewYork", [seg])
        assert path is not None
        joined = tuple(path)
        for i in range(len(joined) - 2):
            assert joined[i:i + 3] != seg

    def test_window_exclusion_picks_next_best(self):
        topo = abilene()
        seg = ("Denver", "KansasCity", "Indianapolis")
        path = shortest_path_avoiding(topo, "Sunnyvale", "NewYork", [seg])
        delay = sum(topo.link(a, b).delay for a, b in zip(path, path[1:]))
        assert delay == pytest.approx(0.028)

    def test_window_exclusion_is_directional(self):
        topo = chain(4)
        seg = ("r2", "r3", "r4")
        # Forward direction is blocked (and the chain has no alternative)...
        assert shortest_path_avoiding(topo, "r1", "r4", [seg]) is None
        # ...but the reverse direction is not this segment.
        assert shortest_path_avoiding(topo, "r4", "r1", [seg]) == \
            ["r4", "r3", "r2", "r1"]

    def test_link_up_restriction(self):
        topo = diamond()
        up = {("s", "a"), ("a", "t"), ("a", "s"), ("t", "a")}
        path = shortest_path_avoiding(topo, "s", "t", link_up=up)
        assert path == ["s", "a", "t"]


class TestStaticRoutes:
    def test_tables_installed_for_all_pairs(self):
        net = Network(chain(4))
        install_static_routes(net)
        for name, router in net.routers.items():
            others = [r for r in net.topology.routers if r != name]
            for dst in others:
                assert dst in router.forwarding_table

    def test_returned_paths_match_tables(self):
        net = Network(abilene())
        paths = install_static_routes(net)
        for (src, dst), path in paths.items():
            assert net.routers[src].forwarding_table[dst] == [path[1]]

    def test_suspicion_installs_policy_entries(self):
        net = Network(abilene())
        seg = ("Denver", "KansasCity", "Indianapolis")
        paths = install_static_routes(net, suspicions=[seg])
        path = paths[("Sunnyvale", "NewYork")]
        assert "KansasCity" not in path or tuple(path).count("KansasCity") == 0
        # policy entries exist along the constrained path
        for i, hop in enumerate(path[:-1]):
            assert net.routers[hop].policy_table[("Sunnyvale", "NewYork")] \
                == [path[i + 1]]


class TestLinkStateDaemon:
    def make(self, topo=None, **kw):
        net = Network(topo or abilene())
        defaults = dict(spf_delay=1.0, spf_hold=2.0, hello_interval=2.0,
                        boot_spread=5.0, flood_hop_delay=0.01,
                        lsa_refresh=4.0)
        defaults.update(kw)
        routing = LinkStateRouting(net, **defaults)
        routing.start()
        return net, routing

    def test_converges(self):
        net, routing = self.make()
        net.run(40.0)
        assert routing.all_converged()
        assert routing.convergence_time() is not None

    def test_tables_route_correctly_after_convergence(self):
        net, routing = self.make()
        net.run(40.0)
        got = []
        net.routers["NewYork"].register_flow("f", lambda p, t: got.append(p))
        net.routers["Sunnyvale"].originate(
            Packet(src="Sunnyvale", dst="NewYork", flow_id="f"))
        net.run(41.0)
        assert len(got) == 1

    def test_alert_excludes_segment(self):
        net, routing = self.make()
        net.run(40.0)
        seg = ("Denver", "KansasCity", "Indianapolis")
        routing.announce_suspicion("Indianapolis", seg, (0.0, 40.0))
        net.run(60.0)
        # All daemons saw the alert.
        for name in net.topology.routers:
            assert seg in routing.state[name].suspicions
        # Traffic now takes the 28 ms southern path.
        times = []
        net.routers["Sunnyvale"].register_flow(
            "probe", lambda p, t: times.append(t))
        start = net.sim.now
        net.routers["Sunnyvale"].originate(
            Packet(src="Sunnyvale", dst="Sunnyvale", flow_id="probe"))
        got = []
        net.routers["NewYork"].register_flow("f2", lambda p, t: got.append(t))
        send_at = net.sim.now
        net.routers["Sunnyvale"].originate(
            Packet(src="Sunnyvale", dst="NewYork", flow_id="f2", size=100))
        net.run(net.sim.now + 1.0)
        assert got, "packet should still be deliverable"
        assert got[0] - send_at > 0.027  # southern path latency

    def test_spf_respects_delay_timer(self):
        net, routing = self.make(spf_delay=3.0)
        net.run(40.0)
        runs_before = len(routing.spf_runs)
        seg = ("Denver", "KansasCity", "Indianapolis")
        t0 = net.sim.now
        routing.announce_suspicion("Indianapolis", seg, (0.0, 40.0))
        net.run(60.0)
        new_runs = [t for t, _ in routing.spf_runs[runs_before:]]
        assert new_runs
        assert min(new_runs) >= t0 + 3.0

    def test_alert_flood_reaches_everyone_once(self):
        net, routing = self.make()
        net.run(40.0)
        routing.announce_suspicion("Denver", ("a", "b", "c"), (0.0, 1.0))
        net.run(45.0)
        seen = [name for name in net.topology.routers
                if ("a", "b", "c") in routing.state[name].suspicions]
        assert len(seen) == len(net.topology.routers)
