"""Tests for multipath-aware path prediction (§7.4.1)."""


from repro.core.pik2 import ProtocolPiK2
from repro.core.summaries import EcmpPathOracle, SegmentMonitor
from repro.crypto.keys import KeyInfrastructure
from repro.dist.sync import RoundSchedule
from repro.net.adversary import DropFlowAttack
from repro.net.packet import Packet
from repro.net.router import Network
from repro.net.routing import install_static_routes
from repro.net.topology import Topology, chain


def ecmp_net():
    """s fans out to a/b (ECMP), both rejoin at m, then t."""
    topo = Topology("ecmp")
    for x, y in [("s", "a"), ("a", "m"), ("s", "b"), ("b", "m"), ("m", "t")]:
        topo.add_link(x, y)
    net = Network(topo)
    install_static_routes(net)
    net.routers["s"].forwarding_table["t"] = ["a", "b"]
    return net


class TestEcmpPathOracle:
    def test_traces_live_tables(self):
        net = ecmp_net()
        oracle = EcmpPathOracle(net)
        path = oracle.packet_path(Packet(src="s", dst="t", flow_id="x"))
        assert path is not None
        assert path[0] == "s" and path[-1] == "t"
        assert path[1] in ("a", "b")

    def test_prediction_matches_actual_forwarding(self):
        net = ecmp_net()
        oracle = EcmpPathOracle(net)
        actual_first_hop = {}
        predicted_first_hop = {}
        for i in range(30):
            packet = Packet(src="s", dst="t", flow_id=f"f{i}")
            predicted_first_hop[i] = oracle.packet_path(packet)[1]
            actual_first_hop[i] = net.routers["s"].next_hop(packet)
        assert predicted_first_hop == actual_first_hop

    def test_flows_split_across_branches(self):
        net = ecmp_net()
        oracle = EcmpPathOracle(net)
        hops = {oracle.packet_path(Packet(src="s", dst="t",
                                          flow_id=f"f{i}"))[1]
                for i in range(40)}
        assert hops == {"a", "b"}

    def test_same_flow_stable(self):
        net = ecmp_net()
        oracle = EcmpPathOracle(net)
        paths = {oracle.packet_path(Packet(src="s", dst="t", flow_id="x"))
                 for _ in range(5)}
        assert len(paths) == 1

    def test_no_route_returns_none(self):
        net = Network(chain(3))  # no routes installed
        oracle = EcmpPathOracle(net)
        assert oracle.packet_path(Packet(src="r1", dst="r3")) is None

    def test_invalidate_after_table_change(self):
        net = ecmp_net()
        oracle = EcmpPathOracle(net)
        packet = Packet(src="s", dst="t", flow_id="x")
        before = oracle.packet_path(packet)
        other = "b" if before[1] == "a" else "a"
        net.routers["s"].forwarding_table["t"] = [other]
        assert oracle.packet_path(packet) == before  # cached
        oracle.invalidate()
        assert oracle.packet_path(packet)[1] == other

    def test_policy_table_respected(self):
        net = ecmp_net()
        oracle = EcmpPathOracle(net)
        net.routers["s"].policy_table[("s", "t")] = ["b"]
        oracle.invalidate()
        path = oracle.packet_path(Packet(src="s", dst="t", flow_id="q"))
        assert path[1] == "b"


class TestDetectionUnderECMP:
    def test_dropper_on_one_branch_localized(self):
        net = ecmp_net()
        oracle = EcmpPathOracle(net)
        schedule = RoundSchedule(tau=1.0)
        monitor = SegmentMonitor(net, oracle, schedule)
        net.add_tap(monitor)
        segments = {("s", "a", "m"), ("s", "b", "m"),
                    ("a", "m", "t"), ("b", "m", "t")}
        protocol = ProtocolPiK2(net, monitor, segments,
                                KeyInfrastructure(), schedule)
        protocol.schedule_rounds(0, 3)
        from repro.net.traffic import CBRSource
        flows = [CBRSource(net, "s", "t", f"f{i}", rate_bps=200_000,
                           duration=4.0) for i in range(6)]
        net.routers["a"].compromise = DropFlowAttack(
            [f"f{i}" for i in range(6)], fraction=0.5, seed=1)
        net.run(7.0)
        suspects = protocol.states["t"].suspected_segments()
        assert any("a" in seg for seg in suspects)
        assert not any("b" in seg for seg in suspects)
