"""Fixed-seed golden outputs: the hot path may get faster, never different.

The simulator overhaul (slotted packets/events, tuple-keyed heap, cached
fingerprints, cached SPF trees) promises *byte identity*: for a fixed
seed, ``aggregate.csv`` and every per-run trace JSONL must hash exactly
as they did before the rewrite.  The hashes in
``tests/goldens/fixed_seed_hashes.json`` were captured from the
pre-overhaul implementation; any change here means an optimization
altered simulation behaviour and must be treated as a bug, not a
baseline refresh.
"""

import hashlib
import json
import os

import pytest

from repro.__main__ import main

GOLDENS = os.path.join(os.path.dirname(__file__), "goldens",
                       "fixed_seed_hashes.json")


def _sha256(path):
    digest = hashlib.sha256()
    with open(path, "rb") as handle:
        for block in iter(lambda: handle.read(65536), b""):
            digest.update(block)
    return digest.hexdigest()


def _load_goldens():
    with open(GOLDENS) as handle:
        return json.load(handle)


@pytest.mark.parametrize("experiment", ["chi", "pi2_bench", "pik2_bench"])
def test_fixed_seed_outputs_are_byte_identical(experiment, tmp_path):
    golden = _load_goldens()[experiment]
    out = tmp_path / experiment
    assert main(["sweep", experiment, "--seeds", "2", "--jobs", "1",
                 "--no-cache", "--trace", "--out", str(out)]) == 0

    actual = {"aggregate.csv": _sha256(str(out / "aggregate.csv"))}
    trace_dir = out / "traces"
    for name in sorted(os.listdir(str(trace_dir))):
        actual[name] = _sha256(str(trace_dir / name))

    assert actual == golden, (
        f"{experiment}: fixed-seed outputs changed; an optimization "
        f"altered simulation behaviour (expected byte identity)")


def test_goldens_cover_all_three_workloads():
    assert sorted(_load_goldens()) == ["chi", "pi2_bench", "pik2_bench"]
