"""Property-based tests (hypothesis) on core data structures and invariants."""


from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.core.chi import single_loss_confidence
from repro.core.validation import reorder_metric
from repro.crypto.fingerprint import fingerprint
from repro.crypto.hashchain import HashChain
from repro.crypto.keys import KeyInfrastructure
from repro.crypto.signatures import Signed
from repro.dist.consensus import Equivocator, Silent, SignedConsensus
from repro.dist.reconcile import (
    P,
    CharacteristicPolynomialSet,
    _to_field,
    poly_divmod,
    poly_eval,
    poly_mul,
    reconcile,
)
from repro.dist.sync import ClockModel
from repro.net.packet import Packet
from repro.net.queues import DropTailQueue, REDParams, red_drop_probability


# -- set reconciliation -------------------------------------------------------

small_fp_sets = st.sets(st.integers(min_value=0, max_value=2**64 - 1),
                        max_size=30)


@settings(max_examples=40, deadline=None)
@given(common=small_fp_sets, a_only=small_fp_sets, b_only=small_fp_sets)
def test_reconciliation_roundtrip(common, a_only, b_only):
    a_only = a_only - common - b_only
    b_only = b_only - common - a_only
    assume(len(a_only) + len(b_only) <= 12)
    set_a = common | a_only
    set_b = common | b_only
    message = CharacteristicPolynomialSet.from_set(set_a, max_diff=12)
    remote_only, local_only = reconcile(set_b, message, max_diff=12)
    assert remote_only == {_to_field(x) for x in a_only}
    assert local_only == b_only


@settings(max_examples=50, deadline=None)
@given(
    a=st.lists(st.integers(min_value=0, max_value=P - 1), min_size=1,
               max_size=8),
    b=st.lists(st.integers(min_value=0, max_value=P - 1), min_size=1,
               max_size=8),
    x=st.integers(min_value=0, max_value=P - 1),
)
def test_poly_mul_is_pointwise_product(a, b, x):
    assume(any(c != 0 for c in a) and any(c != 0 for c in b))
    product = poly_mul(a, b)
    assert poly_eval(product, x) == \
        poly_eval(a, x) * poly_eval(b, x) % P


@settings(max_examples=50, deadline=None)
@given(
    a=st.lists(st.integers(min_value=0, max_value=P - 1), min_size=1,
               max_size=10),
    b=st.lists(st.integers(min_value=1, max_value=P - 1), min_size=1,
               max_size=6),
)
def test_poly_divmod_identity(a, b):
    assume(b[-1] != 0)
    q, r = poly_divmod(a, b)
    # a == q*b + r (as functions)
    for x in (0, 1, 12345):
        lhs = poly_eval(a, x)
        rhs = (poly_eval(q, x) * poly_eval(b, x) + poly_eval(r, x)) % P
        assert lhs == rhs
    assert len(r) <= max(len(b) - 1, 1)


# -- reorder metric -----------------------------------------------------------

@settings(max_examples=100)
@given(st.lists(st.integers(), unique=True, max_size=40))
def test_reorder_metric_zero_for_identical(seq):
    assert reorder_metric(tuple(seq), tuple(seq)) == 0


@settings(max_examples=100)
@given(st.lists(st.integers(), unique=True, max_size=30), st.randoms())
def test_reorder_metric_bounded(seq, rng):
    shuffled = list(seq)
    rng.shuffle(shuffled)
    metric = reorder_metric(tuple(seq), tuple(shuffled))
    assert 0 <= metric <= max(0, len(seq) - 1)


@settings(max_examples=50)
@given(st.lists(st.integers(), unique=True, min_size=2, max_size=20),
       st.data())
def test_reorder_metric_ignores_losses(seq, data):
    keep = data.draw(st.lists(st.booleans(), min_size=len(seq),
                              max_size=len(seq)))
    received = tuple(x for x, k in zip(seq, keep) if k)
    assert reorder_metric(tuple(seq), received) == 0


def _brute_force_reorder(sent, received):
    # longest common subsequence via DP, then |common| - |lcs|
    common = [fp for fp in received if fp in set(sent)]
    n, m = len(sent), len(common)
    table = [[0] * (m + 1) for _ in range(n + 1)]
    for i in range(1, n + 1):
        for j in range(1, m + 1):
            if sent[i - 1] == common[j - 1]:
                table[i][j] = table[i - 1][j - 1] + 1
            else:
                table[i][j] = max(table[i - 1][j], table[i][j - 1])
    return len(common) - table[n][m]


@settings(max_examples=60)
@given(st.lists(st.integers(min_value=0, max_value=30), unique=True,
                max_size=12),
       st.randoms())
def test_reorder_metric_matches_lcs_bruteforce(seq, rng):
    shuffled = list(seq)
    rng.shuffle(shuffled)
    assert reorder_metric(tuple(seq), tuple(shuffled)) == \
        _brute_force_reorder(tuple(seq), tuple(shuffled))


# -- crypto -------------------------------------------------------------------

packet_strategy = st.builds(
    Packet,
    src=st.text(min_size=1, max_size=6),
    dst=st.text(min_size=1, max_size=6),
    size=st.integers(min_value=1, max_value=9000),
    flow_id=st.text(max_size=6),
    seq=st.integers(min_value=0, max_value=1 << 30),
    payload=st.binary(max_size=64),
)


@settings(max_examples=100)
@given(packet_strategy, st.integers(min_value=0, max_value=10))
def test_fingerprint_invariant_under_hops(packet, hops):
    before = fingerprint(packet)
    for i in range(hops):
        packet.hop(f"r{i}")
    assert fingerprint(packet) == before


@settings(max_examples=100)
@given(st.recursive(
    st.one_of(st.none(), st.booleans(), st.integers(), st.text(),
              st.binary(max_size=16)),
    lambda children: st.one_of(
        st.lists(children, max_size=4),
        st.dictionaries(st.text(max_size=4), children, max_size=4),
    ),
    max_leaves=10,
))
def test_signature_roundtrip(payload):
    keys = KeyInfrastructure()
    signed = Signed.sign(payload, "r", keys.signing_key("r"))
    assert signed.verify(keys.signing_key("r"))
    assert not signed.verify(keys.signing_key("other"))


@settings(max_examples=50)
@given(st.binary(min_size=1, max_size=16),
       st.integers(min_value=1, max_value=20))
def test_hash_chain_releases_verify_in_order(seed, length):
    chain = HashChain(seed, length)
    anchor = chain.anchor
    for step in range(1, length + 1):
        value = chain.release()
        assert HashChain.verify(value, anchor, max_steps=step)


@settings(max_examples=50)
@given(st.text(min_size=1, max_size=20),
       st.floats(min_value=0.0, max_value=1.0, allow_nan=False))
def test_clock_offsets_bounded(name, epsilon):
    clock = ClockModel(epsilon=epsilon, seed=1)
    assert abs(clock.offset(name)) <= epsilon + 1e-12


# -- queues -------------------------------------------------------------------

@settings(max_examples=60, deadline=None)
@given(st.lists(st.tuples(st.booleans(),
                          st.integers(min_value=40, max_value=1500)),
                max_size=80))
def test_droptail_occupancy_invariant(operations):
    q = DropTailQueue(limit_bytes=8000)
    live = []
    for is_offer, size in operations:
        if is_offer:
            packet = Packet(src="a", dst="b", size=size)
            accepted, _, _ = q.offer(packet, 0.0)
            if accepted:
                live.append(size)
        else:
            popped = q.pop(0.0)
            if popped is not None:
                assert popped.size == live.pop(0)
        assert q.occupancy == sum(live)
        assert q.occupancy <= q.limit_bytes


@settings(max_examples=80)
@given(st.floats(min_value=0, max_value=200_000, allow_nan=False),
       st.floats(min_value=0, max_value=200_000, allow_nan=False))
def test_red_probability_monotone_in_average(avg1, avg2):
    params = REDParams(min_th=10_000, max_th=50_000, max_p=0.1)
    lo, hi = sorted((avg1, avg2))
    p_lo = red_drop_probability(lo, params)
    p_hi = red_drop_probability(hi, params)
    assert 0.0 <= p_lo <= p_hi <= 1.0


# -- chi confidence -----------------------------------------------------------

@settings(max_examples=80)
@given(st.floats(min_value=0, max_value=60_000, allow_nan=False),
       st.floats(min_value=1, max_value=5_000, allow_nan=False))
def test_single_loss_confidence_in_unit_interval(q_pred, sigma):
    c = single_loss_confidence(60_000, q_pred, 1000, 0.0, sigma)
    assert 0.0 <= c <= 1.0


# -- consensus ----------------------------------------------------------------

@settings(max_examples=25, deadline=None)
@given(st.integers(min_value=0, max_value=2), st.randoms())
def test_consensus_agreement_random_faults(n_faulty, rng):
    members = ["a", "b", "c", "d", "e"]
    faulty_names = rng.sample(members, n_faulty)
    keys = KeyInfrastructure()
    faulty = {}
    for name in faulty_names:
        faulty[name] = (Silent() if rng.random() < 0.5
                        else Equivocator(rng.random(), rng.random()))
    inputs = {m: f"value-{m}" for m in members if m not in faulty}
    cons = SignedConsensus(members, keys, max_faults=max(1, n_faulty))
    results = cons.run(inputs, faulty=faulty)
    vectors = {r.agreed_vector() for r in results.values()}
    assert len(vectors) == 1  # agreement
    decided = next(iter(results.values()))
    for member in members:
        if member not in faulty:  # validity for correct members
            assert decided.values[member] == inputs[member]
