"""Tests for the §2.4.3 response-strategy comparison."""


from repro.eval.experiments import response_strategy_ablation


class TestResponseStrategies:
    def test_segment_exclusion_keeps_reachability(self):
        results = response_strategy_ablation()
        assert results["segment"].unreachable_pairs == 0

    def test_router_removal_disconnects_pairs(self):
        results = response_strategy_ablation()
        # Removing the suspected router cuts off everything it terminates.
        assert results["router"].unreachable_pairs > 0

    def test_segment_exclusion_less_disruptive(self):
        """§2.4.3: the paper chose segment exclusion 'because of its less
        disruptive behavior'."""
        results = response_strategy_ablation()
        seg, router = results["segment"], results["router"]
        assert seg.unreachable_pairs <= router.unreachable_pairs
        assert seg.mean_stretch <= router.mean_stretch + 1e-9

    def test_stretch_is_bounded(self):
        results = response_strategy_ablation()
        assert results["segment"].mean_stretch < 2.0

    def test_single_link_suspicion(self):
        results = response_strategy_ablation(
            suspicions=(("Denver", "KansasCity"),))
        assert results["segment"].unreachable_pairs == 0
        assert results["segment"].mean_stretch >= 1.0
