"""Tests for the flow-sensitive dataflow engine and the rules riding it.

Covers the CKY (cache-key hygiene) and TDM (time-domain taint) fixture
pairs with exact rule-ID + line pins, the DET004 strict-reduction
guarantee (flow-filtered findings are a subset of the old syntactic
rule's), and the real ``repro.eval.specs`` staying clean.
"""

import ast
import os

from repro.analysis import RULES, lint_paths
from repro.analysis.dataflow import (
    WALL,
    compute_summaries,
    module_flow,
)
from repro.analysis.model import ProjectIndex, index_module, load_module
from repro.analysis.rules.determinism import det004_candidates

TESTS_DIR = os.path.dirname(__file__)
REPO_ROOT = os.path.dirname(TESTS_DIR)
FIXTURES = os.path.join(TESTS_DIR, "fixtures", "lint")
SRC = os.path.join(REPO_ROOT, "src")


def fixture(name: str) -> str:
    return os.path.join(FIXTURES, name)


def findings_for(name: str):
    report = lint_paths([fixture(name)])
    return [(f.rule, f.line) for f in report.new]


# -- rule catalogue ---------------------------------------------------------

def test_new_rule_families_registered():
    assert {"CKY001", "CKY002", "CKY003"} <= set(RULES)
    assert {"TDM001", "TDM002"} <= set(RULES)


# -- CKY: cache-key hygiene -------------------------------------------------

def test_cachekey_bad_fixture():
    assert findings_for("cky_bad.py") == [
        ("CKY002", 13),   # wall-clock label into ScenarioSpec(...)
        ("CKY002", 19),   # wall + set-order attributes reach to_dict()
        ("CKY003", 24),   # entropy default into ParamSpec(...)
        ("CKY001", 30),   # os.environ value into hashlib.sha256(...)
        ("CKY001", 35),   # set-order params into RunSpec(...)
    ]


def test_cachekey_good_fixture_is_clean():
    # Seeded RNG draws, sorted() set ordering and measurement-only wall
    # reads are all deterministic derivations: zero findings.
    assert findings_for("cky_good.py") == []


def test_cachekey_rules_scoped_to_sweep_and_eval(tmp_path):
    # Identical code without the repro.eval module pragma: out of scope.
    text = open(fixture("cky_bad.py")).read().replace(
        "# repro-lint: module=repro.eval.fixture_cky_bad", "")
    unscoped = tmp_path / "unscoped.py"
    unscoped.write_text(text)
    report = lint_paths([str(unscoped)])
    assert [f for f in report.new if f.rule.startswith("CKY")] == []


def test_real_specs_module_is_cachekey_clean():
    # Satellite acceptance: the actual ScenarioSpec implementation must
    # pass the rules written about it.
    report = lint_paths([os.path.join(SRC, "repro", "eval", "specs.py")])
    assert [f for f in report.new if f.rule.startswith("CKY")] == []


def test_whole_eval_package_is_cachekey_clean():
    report = lint_paths([os.path.join(SRC, "repro", "eval")])
    assert [f for f in report.new if f.rule.startswith("CKY")] == []


# -- TDM: time-domain taint -------------------------------------------------

def test_timedomain_bad_fixture():
    assert findings_for("tdm_bad.py") == [
        ("TDM001", 17),   # perf_counter value into Recorder.event
        ("TDM001", 22),   # monotonic delta into metrics .inc()
        ("TDM001", 26),   # perf_counter into a TraceTap on_* callback
        ("TDM002", 30),   # wall_now() helper's return value consumed
    ]


def test_timedomain_good_fixture_is_clean():
    # Wall measurement that never crosses into sim sinks is fine; so
    # are sim-time events and constant metric increments.
    assert findings_for("tdm_good.py") == []


def test_timedomain_catches_what_det003_cannot():
    # The bad fixture is built exclusively on perf_counter/monotonic,
    # which DET003 deliberately ignores — only the flow rules fire.
    report = lint_paths([fixture("tdm_bad.py")])
    assert [f for f in report.new if f.rule == "DET003"] == []
    assert [f for f in report.new if f.rule.startswith("TDM")] != []


def test_telemetry_keeps_clock_reads_but_not_sink_flows(tmp_path):
    # The old blunt exemption let repro.obs.telemetry do anything with
    # clocks.  The taint rule is sharper: reading is fine (no DET003,
    # no TDM002 for its own helpers), feeding a sim sink is not.
    leak = tmp_path / "telemetry_leak.py"
    leak.write_text(
        "# repro-lint: module=repro.obs.telemetry\n"
        "import time\n"
        "\n"
        "\n"
        "def now_wall() -> float:\n"
        "    return time.time()\n"
        "\n"
        "\n"
        "def leak(rec: Recorder) -> None:\n"
        "    rec.event('wall', t=now_wall())\n")
    report = lint_paths([str(leak)])
    rules = [(f.rule, f.line) for f in report.new]
    assert ("TDM001", 10) in rules
    assert all(r != "DET003" for r, _ in rules)
    assert all(r != "TDM002" for r, _ in rules)


# -- DET004: strict reduction -----------------------------------------------

def _load(path: str):
    info, err = load_module(path, display_path=path)
    assert err is None
    return info


def test_overapprox_fixture_old_rule_fires_new_rule_does_not():
    info = _load(fixture("det_overapprox.py"))
    old = [(f.rule, f.line) for f in det004_candidates(info)]
    assert old == [("DET004", 16), ("DET004", 24)]
    # The flow-sensitive pass prunes both: nothing escapes.
    assert findings_for("det_overapprox.py") == []


def test_det004_still_catches_every_true_positive():
    # Both escaping iterations in det_bad.py (appended into a returned
    # list; materialized into a returned slice) must survive the filter.
    got = findings_for("det_bad.py")
    assert ("DET004", 43) in got
    assert ("DET004", 49) in got


def test_det004_flow_findings_are_subset_of_syntactic_candidates():
    for name in ("det_bad.py", "det_overapprox.py", "det_good.py"):
        info = _load(fixture(name))
        candidates = {(f.line, f.col) for f in det004_candidates(info)}
        report = lint_paths([fixture(name)])
        flagged = {(f.line, f.col) for f in report.new
                   if f.rule == "DET004"}
        assert flagged <= candidates


# -- dataflow engine internals ---------------------------------------------

def _flow_for(source: str, module: str = "repro.obs.fixture_unit",
              tmp_path=None):
    path = os.path.join(str(tmp_path), "unit.py")
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(f"# repro-lint: module={module}\n" + source)
    info = _load(path)
    index = ProjectIndex()
    index_module(info, index)
    compute_summaries(index)
    return module_flow(info, index)


def test_strong_update_kills_taint(tmp_path):
    flow = _flow_for(
        "import time\n"
        "def f(rec: Recorder):\n"
        "    t = time.perf_counter()\n"
        "    t = 0.0\n"
        "    rec.event('x', t=t)\n", tmp_path=tmp_path)
    assert [h for h in flow.hits if h.family == "sim-sink"] == []


def test_branch_join_unions_taint(tmp_path):
    flow = _flow_for(
        "import time\n"
        "def f(rec: Recorder, fast: bool):\n"
        "    if fast:\n"
        "        t = 0.0\n"
        "    else:\n"
        "        t = time.perf_counter()\n"
        "    rec.event('x', t=t)\n", tmp_path=tmp_path)
    hits = [h for h in flow.hits if h.family == "sim-sink"]
    assert len(hits) == 1 and WALL in hits[0].kinds


def test_loop_carried_taint_reaches_fixpoint(tmp_path):
    flow = _flow_for(
        "import time\n"
        "def f(rec: Recorder, xs):\n"
        "    a, b = 0.0, time.perf_counter()\n"
        "    for _ in xs:\n"
        "        a = b\n"
        "    rec.event('x', t=a)\n", tmp_path=tmp_path)
    hits = [h for h in flow.hits if h.family == "sim-sink"]
    assert len(hits) == 1 and WALL in hits[0].kinds


def test_summaries_record_wall_returning_functions():
    telemetry = os.path.join(SRC, "repro", "obs", "telemetry.py")
    info = _load(telemetry)
    index = ProjectIndex()
    index_module(info, index)
    compute_summaries(index)
    assert WALL in index.summaries.get("repro.obs.telemetry.now_wall",
                                       frozenset())


def test_sanitizers_kill_only_their_kind(tmp_path):
    flow = _flow_for(
        "import time\n"
        "def f(rec: Recorder, tags: set):\n"
        "    wall = sum(time.perf_counter() for t in tags)\n"
        "    rec.event('x', t=wall)\n", tmp_path=tmp_path)
    hits = [h for h in flow.hits if h.family == "sim-sink"]
    # sum() erases the set-order dependence but not the wall clock.
    assert len(hits) == 1
    assert WALL in hits[0].kinds and "set-order" not in hits[0].kinds


def test_module_flow_is_memoized(tmp_path):
    path = os.path.join(str(tmp_path), "memo.py")
    with open(path, "w", encoding="utf-8") as handle:
        handle.write("x = 1\n")
    info = _load(path)
    index = ProjectIndex()
    index_module(info, index)
    assert module_flow(info, index) is module_flow(info, index)


def test_ast_parse_shapes_expected_by_engine():
    # The escape filter keys candidate findings by the (line, col) of
    # the node the syntactic visitor reports; this pins the convention.
    tree = ast.parse("for x in s:\n    pass\n")
    assert (tree.body[0].lineno, tree.body[0].col_offset) == (1, 0)
