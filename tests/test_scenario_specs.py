"""The typed scenario-spec API and its sweep integration.

Covers the four spec layers (topology / adversary / placement /
traffic), serialization byte-stability, placement determinism, the
one-release deprecation shims over the old positional builders, dotted
``--grid`` parameter folding/validation, and an end-to-end
``attack_matrix`` sweep whose aggregate must be bit-identical across
runs with the same root seed.
"""

import hashlib
import json
import warnings

import pytest

from repro.__main__ import main
from repro.eval import (
    AdversarySpec,
    BEHAVIORS,
    PLACEMENT_STRATEGIES,
    PlacementSpec,
    ScenarioSpec,
    TopologySpec,
    TrafficSpec,
    build_scenario,
    topology_names,
)
from repro.eval.registry import ParamError, get as get_experiment
from repro.eval.scenarios import _SHIM_WARNED
from repro.net import abilene, chain, ring
from repro.sweep.grid import fold_dotted_params


def canonical(spec) -> str:
    return json.dumps(spec.to_dict(), sort_keys=True)


class TestSpecRoundTrip:
    SPECS = [
        ScenarioSpec(),
        ScenarioSpec(topology={"name": "ebone_like"},
                     adversary={"behavior": "modify", "rate": 0.5},
                     placement={"strategy": "max-betweenness"},
                     traffic={"kind": "cbr", "flows": 3},
                     tau=2.0, rounds=4, seed=7),
        ScenarioSpec(topology=TopologySpec("grid", options={"rows": 2}),
                     adversary=AdversarySpec("fabricate", targeting="all",
                                             options={"rate_pps": 50.0}),
                     placement=PlacementSpec("fixed", router="r1x2"),
                     traffic=TrafficSpec("tcp", flows=1)),
    ]

    @pytest.mark.parametrize("spec", SPECS)
    def test_roundtrip_is_byte_stable(self, spec):
        once = canonical(spec)
        again = canonical(ScenarioSpec.from_dict(json.loads(once)))
        assert once == again

    def test_sub_spec_roundtrips(self):
        for spec in (TopologySpec("ring", options={"n": 5}),
                     AdversarySpec("delay", rate=0.2),
                     PlacementSpec("articulation-point"),
                     TrafficSpec("cbr", rate_bps=1e6)):
            rebuilt = type(spec).from_dict(spec.to_dict())
            assert rebuilt == spec
            assert (json.dumps(rebuilt.to_dict(), sort_keys=True)
                    == json.dumps(spec.to_dict(), sort_keys=True))

    def test_unknown_keys_rejected(self):
        with pytest.raises(ValueError, match="strateggy"):
            PlacementSpec.from_dict({"strateggy": "fixed"})
        with pytest.raises(ValueError, match="behaviour"):
            AdversarySpec.from_dict({"behaviour": "drop"})

    def test_validation_rejects_unknown_enums(self):
        with pytest.raises(ValueError):
            AdversarySpec(behavior="nuke")
        with pytest.raises(ValueError):
            PlacementSpec(strategy="random")
        with pytest.raises(ValueError):
            TrafficSpec(kind="udp")
        with pytest.raises(ValueError, match="abilene"):
            TopologySpec(name="nonesuch").build()

    def test_options_are_canonical(self):
        a = TopologySpec("grid", options={"rows": 2, "cols": 4})
        b = TopologySpec("grid", options={"cols": 4, "rows": 2})
        assert a == b and canonical(a) == canonical(b)
        with pytest.raises(ValueError, match="duplicate"):
            TopologySpec("grid", options=[("n", 1), ("n", 2)])

    def test_catalogue_lists_registered_topologies(self):
        names = topology_names()
        for expected in ("abilene", "sprintlink_like", "ebone_like",
                         "line", "ring", "grid", "simple"):
            assert expected in names


class TestPlacement:
    def test_fixed_requires_member_router(self):
        spec = PlacementSpec("fixed", router="r2")
        assert spec.resolve(chain(4), 0, ["r2", "r3"]) == "r2"
        with pytest.raises(ValueError, match="r9"):
            PlacementSpec("fixed", router="r9").resolve(
                chain(4), 0, ["r2", "r3"])

    def test_seeded_random_is_seed_deterministic(self):
        spec = PlacementSpec("seeded-random")
        pool = [f"r{i}" for i in range(2, 7)]
        picks = {spec.resolve(chain(8), seed, pool) for seed in range(20)}
        assert spec.resolve(chain(8), 3, pool) \
            == spec.resolve(chain(8), 3, list(reversed(pool)))
        assert len(picks) > 1  # the seed actually matters

    def test_max_betweenness_picks_chain_middle(self):
        topo = chain(5)
        spec = PlacementSpec("max-betweenness")
        assert spec.resolve(topo, 0, ["r2", "r3", "r4"]) == "r3"

    def test_articulation_point_on_chain(self):
        # Every interior chain router is an articulation point; the
        # betweenness tie-break picks the middle one.
        spec = PlacementSpec("articulation-point")
        assert spec.resolve(chain(5), 0, ["r2", "r3", "r4"]) == "r3"

    def test_articulation_point_falls_back_on_ring(self):
        # A cycle has no articulation points: fall back to betweenness
        # over the full pool instead of failing.
        spec = PlacementSpec("articulation-point")
        picked = spec.resolve(ring(6), 0, ["r2", "r3", "r4"])
        assert picked in {"r2", "r3", "r4"}

    def test_strategies_constant_matches_spec(self):
        assert set(PLACEMENT_STRATEGIES) == {
            "fixed", "seeded-random", "max-betweenness",
            "articulation-point"}
        assert BEHAVIORS[0] == "none"


class TestDeprecatedShims:
    @pytest.fixture(autouse=True)
    def fresh_warning_state(self):
        saved = set(_SHIM_WARNED)
        _SHIM_WARNED.clear()
        yield
        _SHIM_WARNED.clear()
        _SHIM_WARNED.update(saved)

    def test_droptail_shim_warns_exactly_once(self):
        from repro.eval import build_droptail_scenario
        with warnings.catch_warnings(record=True) as seen:
            warnings.simplefilter("always")
            build_droptail_scenario()
            build_droptail_scenario()
        deprecations = [w for w in seen
                        if issubclass(w.category, DeprecationWarning)]
        assert len(deprecations) == 1
        assert "droptail_spec" in str(deprecations[0].message)

    def test_red_shim_warns_exactly_once(self):
        from repro.eval import build_red_scenario
        with warnings.catch_warnings(record=True) as seen:
            warnings.simplefilter("always")
            build_red_scenario()
            build_red_scenario()
        deprecations = [w for w in seen
                        if issubclass(w.category, DeprecationWarning)]
        assert len(deprecations) == 1
        assert "red_spec" in str(deprecations[0].message)

    def test_shim_output_matches_spec_path(self):
        from repro.eval import build_droptail_scenario, droptail_spec
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            old = build_droptail_scenario(seed=3)
        new = build_scenario(droptail_spec(seed=3))
        assert type(old) is type(new)
        assert sorted(old.network.routers) == sorted(new.network.routers)


class TestDottedParams:
    def test_fold_basic(self):
        assert fold_dotted_params(
            {"topology": "line", "adversary.behavior": "drop",
             "adversary.rate": 0.5}) == {
            "topology": "line",
            "adversary": {"behavior": "drop", "rate": 0.5}}

    def test_fold_merges_mapping_and_dotted(self):
        folded = fold_dotted_params(
            {"adversary": {"behavior": "drop"}, "adversary.rate": 0.1})
        assert folded == {"adversary": {"behavior": "drop", "rate": 0.1}}

    def test_fold_is_idempotent(self):
        folded = fold_dotted_params({"a.b": 1, "c": 2})
        assert fold_dotted_params(folded) == folded

    def test_fold_conflicts_raise(self):
        with pytest.raises(ValueError, match="scalar"):
            fold_dotted_params({"adversary": 3, "adversary.rate": 0.1})
        with pytest.raises(ValueError, match="bad dotted"):
            fold_dotted_params({"adversary.": 1})

    def test_dotted_param_spec_resolution_and_coercion(self):
        spec = get_experiment("attack_matrix")
        rate = spec.param_spec("adversary.rate")
        assert rate.coerce("0.25") == 0.25  # typed coercion from CLI text
        with pytest.raises(ParamError, match="adversary.behavior"):
            spec.param_spec("adversary.behavior").coerce("nuke")

    def test_unknown_dotted_path_names_accepted_keys(self):
        spec = get_experiment("attack_matrix")
        with pytest.raises(ParamError,
                           match="placement.strategy, placement.router"):
            spec.param_spec("placement.strateggy")
        with pytest.raises(ParamError, match="does not accept"):
            spec.param_spec("nonsense.key")

    def test_run_accepts_flat_dotted_params(self):
        # The worker boundary: flat dotted payload params must fold
        # before hitting the experiment function.
        spec = get_experiment("attack_matrix")
        result = spec.run(**{"topology": "line",
                             "adversary.behavior": "none", "rounds": 2})
        assert result.behavior == "none" and not result.detected


class TestAttackScenarioBuild:
    def test_build_scenario_places_adversary_on_a_flow_path(self):
        scenario = build_scenario(ScenarioSpec(
            topology={"name": "line"},
            adversary={"behavior": "drop"},
            placement={"strategy": "max-betweenness"}))
        bad = scenario.adversary_router
        assert any(bad in path[1:-1]
                   for path in scenario.flow_paths.values())
        assert scenario.attack is not None

    def test_simple_topology_routes_to_testbed_builders(self):
        from repro.eval import droptail_spec, red_spec
        droptail = build_scenario(droptail_spec())
        red = build_scenario(red_spec())
        assert type(droptail).__name__ == "DropTailScenario"
        assert type(red).__name__ == "REDScenario"

    def test_abilene_matches_paper_scale(self):
        assert len(abilene().routers) == 11


class TestAttackMatrixSweepE2E:
    GRID = ["--grid", "adversary.behavior=drop,none",
            "--param", "topology=line",
            "--param", "placement.strategy=max-betweenness"]

    #: Golden sha256 of aggregate.csv for the grid above at root seed 0.
    #: A change means spec construction or detection scoring drifted for
    #: a fixed seed — a bug, not a baseline refresh.
    GOLDEN_AGGREGATE = ("8e91d58e13e662db45d20df4431eec0a"
                        "a157271440d6e07c25c1b2b911e58314")

    def _sweep(self, out) -> str:
        assert main(["sweep", "attack_matrix", "--seeds", "1", "--jobs",
                     "1", "--no-cache", "--quiet", "--out", str(out)]
                    + self.GRID) == 0
        with open(out / "aggregate.csv", "rb") as fh:
            return hashlib.sha256(fh.read()).hexdigest()

    def test_aggregate_bit_identical_across_runs(self, tmp_path):
        first = self._sweep(tmp_path / "a")
        second = self._sweep(tmp_path / "b")
        assert first == second == self.GOLDEN_AGGREGATE
        manifest = json.loads((tmp_path / "a" / "sweep.json").read_text())
        assert manifest["schema"] == "repro.sweep/v4"
        assert len(manifest["runs"]) == 2
        header = (tmp_path / "a" / "aggregate.csv").read_text().splitlines()
        fields = {line.split(",")[0] for line in header[1:]}
        assert {"precision", "recall", "detected"} <= fields
