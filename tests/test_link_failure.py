"""Link failures: physical loss, dead-interval detection, reconvergence.

§4.1 assumes a link-state protocol that adapts the topology; these tests
cover the simulator's failure machinery and the daemon's OSPF-style
dead-interval handling (adjacency drop → LSA → SPF → reroute).
"""


from repro.net.packet import Packet
from repro.net.router import Network
from repro.net.routing import LinkStateRouting, install_static_routes
from repro.net.topology import MBPS, abilene, chain


class TestPhysicalFailure:
    def test_packets_on_dead_link_are_lost(self):
        net = Network(chain(3, bandwidth=10 * MBPS, delay=0.001))
        install_static_routes(net)
        got = []
        net.routers["r3"].register_flow("f", lambda p, t: got.append(p))
        net.fail_link("r2", "r3")
        net.routers["r1"].originate(Packet(src="r1", dst="r3", flow_id="f"))
        net.run(1.0)
        assert got == []

    def test_restore_link_resumes_delivery(self):
        net = Network(chain(3, bandwidth=10 * MBPS, delay=0.001))
        install_static_routes(net)
        got = []
        net.routers["r3"].register_flow("f", lambda p, t: got.append(p))
        net.fail_link("r2", "r3")
        net.routers["r1"].originate(Packet(src="r1", dst="r3", flow_id="f"))
        net.run(1.0)
        net.restore_link("r2", "r3")
        net.routers["r1"].originate(Packet(src="r1", dst="r3", flow_id="f",
                                           seq=1))
        net.run(2.0)
        assert [p.seq for p in got] == [1]

    def test_unidirectional_failure(self):
        net = Network(chain(2, bandwidth=10 * MBPS, delay=0.001))
        install_static_routes(net)
        forward, backward = [], []
        net.routers["r2"].register_flow("f", lambda p, t: forward.append(p))
        net.routers["r1"].register_flow("b", lambda p, t: backward.append(p))
        net.fail_link("r1", "r2", bidirectional=False)
        net.routers["r1"].originate(Packet(src="r1", dst="r2", flow_id="f"))
        net.routers["r2"].originate(Packet(src="r2", dst="r1", flow_id="b"))
        net.run(1.0)
        assert forward == []
        assert len(backward) == 1


class TestDeadIntervalReconvergence:
    def make(self):
        net = Network(abilene(bandwidth=10 * MBPS))
        routing = LinkStateRouting(net, spf_delay=0.5, spf_hold=1.0,
                                   hello_interval=1.0, boot_spread=2.0,
                                   flood_hop_delay=0.01, lsa_refresh=3.0,
                                   dead_interval=3.0)
        routing.start()
        return net, routing

    def test_adjacency_drops_after_dead_interval(self):
        net, routing = self.make()
        net.run(15.0)
        assert "KansasCity" in routing.state["Denver"].adjacencies
        net.fail_link("Denver", "KansasCity")
        net.run(25.0)
        assert "KansasCity" not in routing.state["Denver"].adjacencies
        assert "Denver" not in routing.state["KansasCity"].adjacencies

    def test_traffic_reroutes_around_failed_link(self):
        net, routing = self.make()
        net.run(15.0)
        got = []
        net.routers["NewYork"].register_flow("f", lambda p, t: got.append(t))
        # Primary Sunnyvale->NewYork path uses Denver-KansasCity.
        net.fail_link("Denver", "KansasCity")
        net.run(30.0)  # dead interval + LSA + SPF
        send_at = net.sim.now
        net.routers["Sunnyvale"].originate(
            Packet(src="Sunnyvale", dst="NewYork", flow_id="f", size=100))
        net.run(send_at + 1.0)
        assert got, "traffic must flow on an alternate path"
        # The southern detour is longer than the 25 ms primary.
        assert got[0] - send_at > 0.0255

    def test_restored_link_readvertised(self):
        net, routing = self.make()
        net.run(15.0)
        net.fail_link("Denver", "KansasCity")
        net.run(30.0)
        assert "KansasCity" not in routing.state["Denver"].adjacencies
        net.restore_link("Denver", "KansasCity")
        net.run(45.0)
        assert "KansasCity" in routing.state["Denver"].adjacencies
