"""Sweep fault tolerance: retry/backoff, timeouts, worker-crash recovery."""

import os
import signal
import time

import pytest

from repro.eval import registry
from repro.eval.registry import ExperimentSpec
from repro.sweep.retry import (
    KIND_CRASH,
    KIND_EXCEPTION,
    KIND_TIMEOUT,
    RetryPolicy,
    RunTimeoutError,
    SweepError,
    classify_error,
    run_deadline,
)
from repro.sweep.executors.local import _execute_cell
from repro.sweep.runner import SweepConfig
from repro.sweep.runner import run_sweep as _run_sweep


def run_sweep(experiment, **settings):
    """Keyword-style helper: every sweep here goes through SweepConfig."""
    return _run_sweep(experiment, SweepConfig(**settings))


def flaky_experiment(counter_path: str = "", fail_times: int = 2,
                     seed: int = 0):
    """Fails its first ``fail_times`` attempts, then succeeds.

    Attempt count survives process boundaries via a file, so the fake
    works identically inline and on a process pool.
    """
    attempt = 0
    if os.path.exists(counter_path):
        with open(counter_path) as handle:
            attempt = int(handle.read() or 0)
    with open(counter_path, "w") as handle:
        handle.write(str(attempt + 1))
    if attempt < fail_times:
        raise RuntimeError(f"flaky failure #{attempt + 1}")
    return {"attempt": attempt + 1, "seed": seed}


def crashing_experiment(cell: int = 0, seed: int = 0):
    """SIGKILLs its own worker for one grid cell — an OOM stand-in."""
    if cell == 1:
        os.kill(os.getpid(), signal.SIGKILL)
    return {"cell": cell, "ok": True}


def sleepy_experiment(seed: int = 0):
    time.sleep(30.0)
    return {"ok": True}


def report(result):
    return [str(result)]


@pytest.fixture
def flaky():
    registry.register(ExperimentSpec("flaky-test", flaky_experiment, report))
    yield "flaky-test"
    registry.unregister("flaky-test")


@pytest.fixture
def crashing():
    registry.register(
        ExperimentSpec("crash-test", crashing_experiment, report))
    yield "crash-test"
    registry.unregister("crash-test")


@pytest.fixture
def sleepy():
    registry.register(ExperimentSpec("sleep-test", sleepy_experiment, report))
    yield "sleep-test"
    registry.unregister("sleep-test")


FAST_RETRY = dict(backoff_s=0.01, max_backoff_s=0.05)


class TestRetryPolicy:
    def test_backoff_is_exponential_and_capped(self):
        policy = RetryPolicy(backoff_s=0.1, backoff_factor=2.0,
                             max_backoff_s=0.5)
        assert policy.backoff_delay(1) == pytest.approx(0.1)
        assert policy.backoff_delay(2) == pytest.approx(0.2)
        assert policy.backoff_delay(3) == pytest.approx(0.4)
        assert policy.backoff_delay(4) == pytest.approx(0.5)  # capped
        assert policy.backoff_delay(10) == pytest.approx(0.5)

    def test_allows_retry_counts_all_attempts(self):
        policy = RetryPolicy(max_attempts=3)
        assert policy.allows_retry(1) and policy.allows_retry(2)
        assert not policy.allows_retry(3)

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(timeout_s=0)
        with pytest.raises(ValueError):
            RetryPolicy(backoff_factor=0.5)

    def test_classify(self):
        from concurrent.futures.process import BrokenProcessPool

        assert classify_error(RunTimeoutError()) == KIND_TIMEOUT
        assert classify_error(BrokenProcessPool("x")) == KIND_CRASH
        assert classify_error(ValueError("x")) == KIND_EXCEPTION


class TestRunDeadline:
    def test_expires(self):
        with pytest.raises(RunTimeoutError):
            with run_deadline(0.05):
                time.sleep(1.0)

    def test_no_timeout_is_noop(self):
        with run_deadline(None):
            pass

    def test_completes_under_deadline(self):
        with run_deadline(5.0):
            value = 1 + 1
        assert value == 2


class TestFlakyRetry:
    def test_flaky_run_succeeds_after_retries(self, tmp_path, flaky):
        counter = str(tmp_path / "counter")
        sweep = run_sweep(
            flaky, seeds=1, jobs=1, cache_dir=str(tmp_path / "cache"),
            params={"counter_path": counter, "fail_times": 2},
            retry=RetryPolicy(max_attempts=3, **FAST_RETRY))
        record = sweep.records[0]
        assert record["status"] == "ok"
        assert record["attempts"] == 3
        assert sweep.n_failed == 0

    def test_attempts_exhausted_marks_failed(self, tmp_path, flaky):
        counter = str(tmp_path / "counter")
        sweep = run_sweep(
            flaky, seeds=1, jobs=1, cache_dir=str(tmp_path / "cache"),
            params={"counter_path": counter, "fail_times": 10},
            retry=RetryPolicy(max_attempts=2, **FAST_RETRY))
        record = sweep.records[0]
        assert record["status"] == "failed"
        assert record["attempts"] == 2
        assert record["error"]["kind"] == KIND_EXCEPTION
        assert "flaky failure" in record["error"]["message"]
        assert record["result"] is None
        assert sweep.n_failed == 1

    def test_failed_runs_excluded_from_aggregate(self, tmp_path, flaky):
        sweep = run_sweep(
            flaky, seeds=1, jobs=1, cache_dir=str(tmp_path / "cache"),
            params={"counter_path": str(tmp_path / "counter")},
            grid={"fail_times": [0, 10]},
            retry=RetryPolicy(max_attempts=1, **FAST_RETRY))
        assert sweep.n_failed == 1
        # Only the successful cell contributes to the aggregate.
        assert sweep.aggregate["attempt"]["n"] == 1

    def test_failed_runs_are_not_cached(self, tmp_path, flaky):
        counter = str(tmp_path / "counter")
        kwargs = dict(seeds=1, jobs=1, cache_dir=str(tmp_path / "cache"),
                      params={"counter_path": counter, "fail_times": 1},
                      retry=RetryPolicy(max_attempts=1, **FAST_RETRY))
        first = run_sweep(flaky, **kwargs)
        assert first.records[0]["status"] == "failed"
        # Second sweep must re-attempt (now past the flake) — a failure
        # must never be served from cache.
        second = run_sweep(flaky, **kwargs)
        assert second.cache_hits == 0
        assert second.records[0]["status"] == "ok"

    def test_strict_mode_raises_immediately(self, tmp_path, flaky):
        counter = str(tmp_path / "counter")
        with pytest.raises(SweepError, match="flaky failure"):
            run_sweep(
                flaky, seeds=1, jobs=1, cache_dir=str(tmp_path / "cache"),
                params={"counter_path": counter, "fail_times": 5},
                strict=True,
                retry=RetryPolicy(max_attempts=5, **FAST_RETRY))
        # Fail-fast: exactly one attempt was made despite retries allowed.
        with open(counter) as handle:
            assert handle.read() == "1"


class TestWorkerCrashRecovery:
    def test_sigkilled_worker_yields_completed_sweep(self, tmp_path,
                                                     crashing):
        sweep = run_sweep(
            crashing, seeds=1, jobs=2, grid={"cell": [0, 1, 2]},
            cache_dir=str(tmp_path / "cache"),
            retry=RetryPolicy(max_attempts=2, **FAST_RETRY))
        by_cell = {record["params"]["cell"]: record
                   for record in sweep.records}
        assert by_cell[1]["status"] == "failed"
        assert by_cell[1]["error"]["kind"] == KIND_CRASH
        assert by_cell[0]["status"] == "ok"
        assert by_cell[2]["status"] == "ok"
        assert sweep.n_failed == 1
        # Survivors aggregate normally.
        assert sweep.aggregate["ok"]["n"] == 2

    def test_crash_with_strict_raises(self, tmp_path, crashing):
        with pytest.raises(SweepError, match="crash"):
            run_sweep(
                crashing, seeds=1, jobs=2, grid={"cell": [1]},
                cache_dir=str(tmp_path / "cache"), strict=True,
                retry=RetryPolicy(max_attempts=3, **FAST_RETRY))


class TestTimeout:
    def test_run_past_timeout_marked_failed(self, tmp_path, sleepy):
        started = time.monotonic()
        sweep = run_sweep(
            sleepy, seeds=1, jobs=1, cache_dir=str(tmp_path / "cache"),
            retry=RetryPolicy(max_attempts=1, timeout_s=0.3, **FAST_RETRY))
        assert time.monotonic() - started < 10.0
        record = sweep.records[0]
        assert record["status"] == "failed"
        assert record["error"]["kind"] == KIND_TIMEOUT

    def test_pool_run_past_timeout_marked_failed(self, tmp_path, sleepy):
        sweep = run_sweep(
            sleepy, seeds=2, jobs=2, cache_dir=str(tmp_path / "cache"),
            retry=RetryPolicy(max_attempts=1, timeout_s=0.3, **FAST_RETRY))
        assert all(r["status"] == "failed" for r in sweep.records)
        assert all(r["error"]["kind"] == KIND_TIMEOUT
                   for r in sweep.records)


class TestSeedHandling:
    def test_seed_for_seedless_experiment_warns_not_mutates(self):
        registry.register(ExperimentSpec(
            "seedless-test", seedless_experiment, report))
        try:
            payload = {"experiment": "seedless-test",
                       "params": [["x", 3]], "seed_index": 0, "seed": 42}
            with pytest.warns(RuntimeWarning, match="takes no seed"):
                record = _execute_cell(payload)
            assert record["status"] == "ok"
            assert record["result"] == {"x": 3}
        finally:
            registry.unregister("seedless-test")


def seedless_experiment(x: int = 0):
    return {"x": x}
