"""Tests for Protocol χ: queue validators, confidence tests, protocol."""


import pytest

from repro.core.chi import (
    ProtocolChi,
    QueueValidator,
    REDQueueValidator,
    TrafficRecord,
    combined_loss_confidence,
    red_aggregate_confidence,
    red_flow_confidences,
    single_loss_confidence,
)
from repro.core.summaries import PathOracle
from repro.dist.sync import RoundSchedule
from repro.net.adversary import DropFlowAttack
from repro.net.queues import REDParams
from repro.net.router import Network
from repro.net.routing import install_static_routes
from repro.net.tcp import TCPFlow
from repro.net.topology import MBPS, Topology


def rec(fp, size=1000, time=0.0, flow="f", dst="d"):
    return TrafficRecord(fp=fp, size=size, time=time, flow_id=flow, dst=dst)


class TestConfidenceFunctions:
    def test_single_confidence_high_when_queue_empty(self):
        c = single_loss_confidence(q_limit=30_000, q_pred=0,
                                   packet_size=1000, mu=0, sigma=1000)
        assert c > 0.999

    def test_single_confidence_low_when_queue_full(self):
        c = single_loss_confidence(q_limit=30_000, q_pred=29_500,
                                   packet_size=1000, mu=0, sigma=1000)
        assert c < 0.5

    def test_single_confidence_monotone_in_margin(self):
        confidences = [
            single_loss_confidence(30_000, q, 1000, 0, 1000)
            for q in range(0, 30_000, 3_000)
        ]
        assert confidences == sorted(confidences, reverse=True)

    def test_mu_shifts_the_curve(self):
        base = single_loss_confidence(30_000, 25_000, 1000, 0, 1000)
        biased = single_loss_confidence(30_000, 25_000, 1000, -2000, 1000)
        assert biased > base

    def test_sigma_must_be_positive(self):
        with pytest.raises(ValueError):
            single_loss_confidence(1, 0, 1, 0, 0)

    def test_combined_sharpens_with_n(self):
        # individually ambiguous drops, jointly damning
        single = combined_loss_confidence(30_000, [27_000], [1000], 0, 2000)
        many = combined_loss_confidence(30_000, [27_000] * 16, [1000] * 16,
                                        0, 2000)
        assert many > single

    def test_combined_empty(self):
        assert combined_loss_confidence(1000, [], [], 0, 1) == 0.0


class TestQueueValidator:
    def test_exact_simulation_no_losses(self):
        v = QueueValidator(queue_limit=10_000, bandwidth=1 * MBPS)
        ins = [rec(i, time=i * 0.001) for i in range(5)]
        outs = [rec(i, time=0.05 + i * 0.008) for i in range(5)]
        v.feed(ins, outs)
        verdicts = v.advance(10.0)
        assert verdicts == []
        assert v.q_pred == 0.0

    def test_q_pred_tracks_occupancy(self):
        v = QueueValidator(queue_limit=10_000, bandwidth=1 * MBPS)
        ins = [rec(1, time=0.0), rec(2, time=0.001)]
        outs = [rec(1, time=5.0), rec(2, time=5.008)]
        v.feed(ins, outs)
        v.advance(1.0)  # both arrivals processed, departures still pending
        assert v.q_pred == 2000.0
        v.advance(20.0)
        assert v.q_pred == 0.0

    def test_missing_packet_with_room_is_candidate(self):
        v = QueueValidator(queue_limit=10_000, bandwidth=1 * MBPS,
                           mu=0.0, sigma=100.0)
        ins = [rec(1, time=0.0), rec(2, time=0.001)]
        outs = [rec(1, time=0.05)]
        v.feed(ins, outs)
        verdicts = v.advance(10.0)
        assert len(verdicts) == 1
        assert not verdicts[0].congestive
        assert verdicts[0].confidence > 0.999

    def test_missing_packet_when_full_is_congestive(self):
        v = QueueValidator(queue_limit=3_000, bandwidth=1 * MBPS)
        ins = [rec(i, time=i * 1e-4) for i in range(4)]
        outs = [rec(i, time=1.0 + 0.008 * i) for i in range(3)]
        v.feed(ins, outs)
        verdicts = v.advance(10.0)
        assert len(verdicts) == 1
        assert verdicts[0].congestive

    def test_unmatched_departure_counted(self):
        v = QueueValidator(queue_limit=10_000, bandwidth=1 * MBPS)
        v.feed([], [rec(99, time=0.5)])
        v.advance(10.0)
        assert v.unmatched_out == 1
        assert v.q_pred == 0.0  # never negative

    def test_pending_events_held_back(self):
        v = QueueValidator(queue_limit=10_000, bandwidth=1 * MBPS,
                           wait_slack=0.05)
        ins = [rec(1, time=5.0)]
        v.feed(ins, [])
        assert v.advance(5.01) == []  # inside the max-wait window
        verdicts = v.advance(5.0 + v.max_wait + 0.01)
        assert len(verdicts) == 1

    def test_calibration_fits_truth(self):
        v = QueueValidator(queue_limit=10_000, bandwidth=1 * MBPS)
        ins = [rec(i, time=0.01 * i) for i in range(10)]
        outs = [rec(i, time=0.01 * i + 0.5) for i in range(10)]
        v.feed(ins, outs)
        v.advance(10.0)
        # Truth says occupancy was always 500 bytes above the prediction.
        samples = [(0.01 * i + 0.001, int(v.q_pred_at(0.01 * i + 0.001)) + 500)
                   for i in range(10)]
        mu, sigma = v.calibrate(samples, min_sigma=1.0)
        assert mu == pytest.approx(500.0)

    def test_q_pred_at_interpolates_steps(self):
        v = QueueValidator(queue_limit=10_000, bandwidth=1 * MBPS)
        v.feed([rec(1, time=1.0)], [rec(1, time=2.0)])
        v.advance(10.0)
        assert v.q_pred_at(0.5) == 0.0
        assert v.q_pred_at(1.5) == 1000.0
        assert v.q_pred_at(2.5) == 0.0


class TestREDValidator:
    def params(self):
        return REDParams(min_th=2_000, max_th=6_000, max_p=0.5,
                         weight=0.5, byte_mode=False)

    def test_drop_below_min_th_has_probability_zero(self):
        v = REDQueueValidator(10_000, 1 * MBPS, self.params())
        # single arrival, never transmitted, average starts at 0
        v.feed([rec(1, time=0.0)], [])
        verdicts = v.advance(10.0)
        assert len(verdicts) == 1
        assert verdicts[0].red_drop_prob == 0.0
        assert verdicts[0].confidence == 1.0  # definite malice

    def test_forced_drop_when_over_limit(self):
        v = REDQueueValidator(2_500, 1 * MBPS, self.params())
        ins = [rec(i, time=i * 1e-5) for i in range(4)]
        outs = [rec(i, time=1.0 + 0.008 * i) for i in range(2)]
        v.feed(ins, outs)
        verdicts = v.advance(10.0)
        forced = [v_ for v_ in verdicts if v_.congestive]
        assert forced

    def test_aggregate_confidence_balanced_when_consistent(self):
        probs = [(rec(i), 0.5, i % 2 == 0) for i in range(100)]
        conf = red_aggregate_confidence(probs)
        assert 0.1 < conf < 0.9

    def test_aggregate_confidence_high_when_excess_drops(self):
        probs = [(rec(i), 0.1, True) for i in range(50)]
        assert red_aggregate_confidence(probs) > 0.999

    def test_flow_confidences_continuity_correction(self):
        probs = [(rec(i, flow="a"), 0.2, False) for i in range(30)]
        conf = red_flow_confidences(probs)
        assert conf["a"][0] < 0.5  # no drops at all: below expectation

    def test_flow_confidences_min_arrivals(self):
        probs = [(rec(i, flow="tiny"), 0.2, True) for i in range(5)]
        assert red_flow_confidences(probs, min_arrivals=20) == {}

    def test_flow_grouping_by_key(self):
        probs = ([(rec(i, flow="a", dst="v"), 0.1, True) for i in range(30)]
                 + [(rec(i + 100, flow="b", dst="w"), 0.1, False)
                    for i in range(30)])
        by_dst = red_flow_confidences(probs, key=lambda r: r.dst)
        assert by_dst["v"][0] > by_dst["w"][0]


def build_chi_network(tau=2.0):
    topo = Topology("chi-test")
    for s in ("s1", "s2", "s3"):
        topo.add_link(s, "r", bandwidth=80 * MBPS, delay=0.002)
    topo.add_link("r", "rd", bandwidth=1 * MBPS, delay=0.005,
                  queue_limit=60_000)
    topo.add_link("rd", "sink", bandwidth=80 * MBPS, delay=0.002)
    net = Network(topo, proc_jitter=0.0004)
    paths = install_static_routes(net)
    chi = ProtocolChi(net, PathOracle(paths), RoundSchedule(tau=tau),
                      targets=[("r", "rd")])
    return net, chi


class TestProtocolChiEndToEnd:
    def test_silent_under_pure_congestion(self):
        net, chi = build_chi_network()
        flows = [TCPFlow(net, s, "sink", f"tcp{i}", start=0.1 * i)
                 for i, s in enumerate(("s1", "s2", "s3"))]
        net.run(16.0)
        chi.calibrate(("r", "rd"))
        chi.schedule_rounds(8, 24)
        net.run(52.0)
        assert all(not f.alarmed for f in chi.findings)
        assert sum(f.congestive_drops for f in chi.findings) > 0

    def test_detects_selective_dropper_and_floods_suspicion(self):
        net, chi = build_chi_network()
        flows = [TCPFlow(net, s, "sink", f"tcp{i}", start=0.1 * i)
                 for i, s in enumerate(("s1", "s2", "s3"))]
        net.run(16.0)
        chi.calibrate(("r", "rd"))
        chi.schedule_rounds(8, 24)
        net.run(20.0)
        net.routers["r"].compromise = DropFlowAttack(["tcp1"], fraction=0.3,
                                                     seed=3)
        net.run(52.0)
        assert any(f.alarmed for f in chi.findings)
        # The suspicion names the monitored link with precision 2 and was
        # flooded to every correct router.
        for name in ("s1", "rd", "sink"):
            segments = chi.states[name].suspected_segments()
            assert ("r", "rd") in segments

    def test_misreporting_neighbour_named_protocol_faulty(self):
        """§6.2.2: an upstream hiding its Tinfo leaves departures nobody
        claimed; the oracle attributes them and the neighbour's link is
        suspected."""
        net, chi = build_chi_network()
        chi.reporters["s1"] = lambda recs: []  # claims it sent nothing
        flows = [TCPFlow(net, s, "sink", f"tcp{i}", start=0.1 * i)
                 for i, s in enumerate(("s1", "s2", "s3"))]
        chi.schedule_rounds(1, 10)
        net.run(24.0)
        validator = chi.validators[("r", "rd")]
        assert validator.unmatched_out > 0
        flagged = [f for f in chi.findings if f.misreporting_neighbors]
        assert flagged
        assert all(f.misreporting_neighbors == ["s1"] for f in flagged)
        # The suspicion names the (s1, r) link, precision 2, flooded.
        assert ("s1", "r") in chi.states["sink"].suspected_segments()

    def test_honest_neighbours_not_flagged(self):
        net, chi = build_chi_network()
        flows = [TCPFlow(net, s, "sink", f"tcp{i}", start=0.1 * i)
                 for i, s in enumerate(("s1", "s2", "s3"))]
        chi.schedule_rounds(1, 10)
        net.run(24.0)
        assert all(not f.misreporting_neighbors for f in chi.findings)


class TestMisrouteDetection:
    """§2.2.1: misrouting = loss at the right queue + fabrication at the
    wrong one.  χ monitoring both queues sees both signatures and never
    frames the honest upstream neighbour."""

    def build(self):
        from repro.net.adversary import MisrouteAttack
        topo = Topology("misroute")
        topo.add_link("s1", "r", bandwidth=80 * MBPS, delay=0.002)
        topo.add_link("r", "rd1", bandwidth=5 * MBPS, delay=0.005)
        topo.add_link("r", "rd2", bandwidth=5 * MBPS, delay=0.005)
        topo.add_link("rd1", "sink1", bandwidth=80 * MBPS, delay=0.002)
        topo.add_link("rd2", "sink2", bandwidth=80 * MBPS, delay=0.002)
        net = Network(topo)
        paths = install_static_routes(net)
        chi = ProtocolChi(net, PathOracle(paths), RoundSchedule(tau=1.0),
                          targets=[("r", "rd1"), ("r", "rd2")])
        return net, chi

    def test_misroute_flags_both_queues_not_the_neighbor(self):
        from repro.net.adversary import MisrouteAttack
        from repro.net.traffic import CBRSource
        net, chi = self.build()
        chi.schedule_rounds(0, 5)
        CBRSource(net, "s1", "sink1", "f", rate_bps=400_000, duration=5.0)
        net.routers["r"].compromise = MisrouteAttack(wrong_nbr="rd2",
                                                     flows=["f"],
                                                     fraction=0.5, seed=1)
        net.run(8.0)
        findings1 = [f for f in chi.findings if f.target == ("r", "rd1")]
        findings2 = [f for f in chi.findings if f.target == ("r", "rd2")]
        # Loss signature at the correct queue...
        assert any(f.candidate_drops > 0 for f in findings1)
        assert any(f.alarmed for f in findings1)
        # ...fabrication/misroute signature at the wrong queue...
        assert any(f.misroute_alarm for f in findings2)
        # ...and no honest neighbour is named protocol faulty.
        assert all(not f.misreporting_neighbors
                   for f in findings1 + findings2)
        # Both suspicions name the misbehaving router's links.
        suspected = chi.states["sink1"].suspected_segments()
        assert ("r", "rd1") in suspected
        assert ("r", "rd2") in suspected

    def test_clean_dual_queue_silent(self):
        from repro.net.traffic import CBRSource
        net, chi = self.build()
        chi.schedule_rounds(0, 5)
        CBRSource(net, "s1", "sink1", "f", rate_bps=400_000, duration=5.0)
        CBRSource(net, "s1", "sink2", "g", rate_bps=400_000, duration=5.0)
        net.run(8.0)
        assert all(not f.alarmed for f in chi.findings)
