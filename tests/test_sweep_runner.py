"""Sweep orchestration: parallel/serial identity, aggregation, artifacts."""

import csv
import json
import random

import pytest

from repro.eval import registry
from repro.eval.registry import ExperimentSpec
from repro.eval.results import serialize_result
from repro.sweep.aggregate import aggregate_records, flatten_numeric, summarize
from repro.sweep.artifacts import write_sweep_artifacts
from repro.sweep.runner import SweepConfig
from repro.sweep.runner import run_sweep as _run_sweep

TOY = "toy-runner-test"


def run_sweep(experiment, **settings):
    """Keyword-style helper: every sweep here goes through SweepConfig."""
    return _run_sweep(experiment, SweepConfig(**settings))


def toy_experiment(scale: float = 1.0, seed: int = 0):
    rng = random.Random(seed)
    return {"value": scale * rng.random(), "seed": seed,
            "nested": {"flag": seed % 2 == 0}}


def report_toy(result):
    return [str(result)]


@pytest.fixture
def toy_registered():
    registry.register(ExperimentSpec(TOY, toy_experiment, report_toy))
    yield TOY
    registry.unregister(TOY)


class TestValidation:
    def test_unknown_experiment(self, tmp_path):
        with pytest.raises(KeyError):
            run_sweep("no-such-experiment", cache_dir=str(tmp_path))

    def test_unknown_parameter(self, tmp_path, toy_registered):
        with pytest.raises(ValueError):
            run_sweep(toy_registered, params={"bogus": 1},
                      cache_dir=str(tmp_path))

    def test_seed_cannot_be_a_param(self, tmp_path, toy_registered):
        with pytest.raises(ValueError):
            run_sweep(toy_registered, params={"seed": 1},
                      cache_dir=str(tmp_path))

    def test_param_grid_overlap(self, tmp_path, toy_registered):
        with pytest.raises(ValueError):
            run_sweep(toy_registered, params={"scale": 1},
                      grid={"scale": [1, 2]}, cache_dir=str(tmp_path))


class TestExecution:
    def test_records_follow_spec_order(self, tmp_path, toy_registered):
        sweep = run_sweep(toy_registered, seeds=3, jobs=1,
                          cache_dir=str(tmp_path))
        assert [r["seed"] for r in sweep.records] == \
            [s.seed for s in sweep.specs]
        assert all(r["result"]["seed"] == r["seed"] for r in sweep.records)

    def test_grid_times_seeds(self, tmp_path, toy_registered):
        sweep = run_sweep(toy_registered, seeds=2,
                          grid={"scale": [1.0, 2.0, 3.0]}, jobs=1,
                          cache_dir=str(tmp_path))
        assert sweep.n_runs == 6

    def test_seedless_experiment_single_run(self, tmp_path):
        sweep = run_sweep("baselines", seeds=5, jobs=1,
                          cache_dir=str(tmp_path))
        assert sweep.n_runs == 1
        assert sweep.records[0]["seed"] is None

    def test_parallel_identical_to_serial(self, tmp_path):
        # Real experiment, real process pool: results must be
        # byte-identical to the inline path at the same root seed.
        serial = run_sweep("modeling", seeds=2, jobs=1, root_seed=11,
                           cache_dir=str(tmp_path / "serial"))
        parallel = run_sweep("modeling", seeds=2, jobs=2, root_seed=11,
                             cache_dir=str(tmp_path / "parallel"))
        assert ([r["result"] for r in serial.records]
                == [r["result"] for r in parallel.records])
        assert json.dumps(serial.aggregate, sort_keys=True) \
            == json.dumps(parallel.aggregate, sort_keys=True)


class TestAggregate:
    def test_summarize_basics(self):
        stats = summarize([1.0, 2.0, 3.0])
        assert stats["n"] == 3
        assert stats["mean"] == pytest.approx(2.0)
        assert stats["median"] == pytest.approx(2.0)
        assert stats["std"] == pytest.approx(1.0)
        assert stats["min"] == 1.0 and stats["max"] == 3.0
        assert stats["ci95"] == pytest.approx(1.96 / 3 ** 0.5)

    def test_single_value_has_zero_ci(self):
        stats = summarize([5.0])
        assert stats["std"] == 0.0 and stats["ci95"] == 0.0

    def test_flatten_numeric(self):
        flat = flatten_numeric({"a": 1, "b": {"c": 2.5, "d": True},
                                "s": "skip", "l": [1, 2], "n": None})
        assert flat == {"a": 1.0, "b.c": 2.5, "b.d": 1.0}

    def test_aggregate_ragged_records(self):
        agg = aggregate_records([{"x": 1.0}, {"x": 3.0, "y": 7.0}])
        assert agg["x"]["n"] == 2 and agg["x"]["mean"] == pytest.approx(2.0)
        assert agg["y"]["n"] == 1

    def test_sweep_aggregate_matches_records(self, tmp_path, toy_registered):
        sweep = run_sweep(toy_registered, seeds=5, jobs=1,
                          cache_dir=str(tmp_path))
        values = [r["result"]["value"] for r in sweep.records]
        assert sweep.aggregate["value"]["mean"] == \
            pytest.approx(sum(values) / len(values))
        assert sweep.aggregate["value"]["n"] == 5


class TestArtifacts:
    def test_serialize_result_fallbacks(self):
        import dataclasses

        @dataclasses.dataclass
        class Plain:
            x: int
            items: tuple

        out = serialize_result({"p": Plain(1, (2, 3)), "s": {4}})
        assert out == {"p": {"x": 1, "items": [2, 3]}, "s": [4]}

    def test_write_sweep_artifacts(self, tmp_path, toy_registered):
        sweep = run_sweep(toy_registered, seeds=3, jobs=1,
                          cache_dir=str(tmp_path / "cache"))
        out_dir = tmp_path / "out"
        paths = write_sweep_artifacts(sweep, str(out_dir))
        assert set(paths) == {"sweep.json", "runs.csv", "aggregate.csv"}

        with open(paths["sweep.json"]) as handle:
            manifest = json.load(handle)
        assert manifest["schema"] == "repro.sweep/v4"
        assert manifest["experiment"] == toy_registered
        assert manifest["n_runs"] == 3
        assert len(manifest["runs"]) == 3
        assert "value" in manifest["aggregate"]

        with open(paths["runs.csv"]) as handle:
            rows = list(csv.reader(handle))
        assert len(rows) == 4  # header + 3 runs
        assert "value" in rows[0]

        with open(paths["aggregate.csv"]) as handle:
            rows = list(csv.reader(handle))
        fields = {row[0] for row in rows[1:]}
        assert "value" in fields
