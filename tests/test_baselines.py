"""Tests for the Chapter 3 literature baselines."""

import pytest

from repro.baselines.awerbuch import awerbuch_binary_search
from repro.baselines.herzberg import herzberg_end_to_end, herzberg_hop_by_hop
from repro.baselines.pathmodel import FaultyNode, PathModel
from repro.baselines.perlman import perlman_per_hop_acks, perlman_route_setup
from repro.baselines.sectrace import secure_traceroute
from repro.baselines.watchers import (
    WatchersFault,
    WatchersFlow,
    WatchersProtocol,
)
from repro.net.topology import chain


def dropper():
    return FaultyNode(drop_data=lambda r, p: True)


class TestPathModel:
    def path(self, faulty=None):
        return PathModel(["a", "b", "c", "d", "e"], faulty or {})

    def test_clean_delivery(self):
        reached, payload = self.path().send_data(0, "m")
        assert reached is None
        assert payload == "m"

    def test_dropper_index_reported(self):
        model = self.path({"c": dropper()})
        reached, _ = model.send_data(0, "m")
        assert reached == 2  # c's index

    def test_terminal_routers_never_drop(self):
        model = self.path({"a": dropper(), "e": dropper()})
        reached, _ = model.send_data(0, "m")
        assert reached is None

    def test_corruption(self):
        model = self.path({"b": FaultyNode(corrupt=lambda p: "evil")})
        reached, payload = model.send_data(0, "m")
        assert reached is None
        assert payload == "evil"

    def test_activation_round(self):
        node = FaultyNode(drop_data=lambda r, p: True, active_from_round=3)
        model = self.path({"c": node})
        assert model.send_data(2, "m")[0] is None
        assert model.send_data(3, "m")[0] == 2

    def test_protocol_suppression_directional(self):
        model = self.path({"c": FaultyNode(
            drop_protocol=lambda r, origin, kind: True)})
        # e -> a ack crosses c: suppressed at index 2
        assert model.send_protocol(0, "e", "ack", 4, 0) == 2
        # a -> b never crosses c
        assert model.send_protocol(0, "a", "setup", 0, 1) is None

    def test_path_validation(self):
        with pytest.raises(ValueError):
            PathModel(["a"])
        with pytest.raises(ValueError):
            PathModel(["a", "b", "a"])


class TestHerzberg:
    def test_end_to_end_clean(self):
        outcome = herzberg_end_to_end(PathModel(["a", "b", "c", "d"]))
        assert outcome.delivered
        assert outcome.detected_link is None

    def test_end_to_end_localizes_dropper(self):
        model = PathModel(["a", "b", "c", "d"], {"c": dropper()})
        outcome = herzberg_end_to_end(model)
        assert not outcome.delivered
        assert "c" in outcome.detected_link

    def test_end_to_end_ack_suppression_implicates_suppressor(self):
        model = PathModel(["a", "b", "c", "d"], {
            "b": FaultyNode(drop_protocol=lambda r, o, k: k == "ack")})
        outcome = herzberg_end_to_end(model)
        assert outcome.detected_link is not None
        assert "b" in outcome.detected_link

    def test_hop_by_hop_clean(self):
        outcome = herzberg_hop_by_hop(PathModel(["a", "b", "c", "d"]))
        assert outcome.detected_link is None
        assert outcome.acks_sent == 4

    def test_hop_by_hop_localizes_quickly(self):
        model = PathModel(["a", "b", "c", "d", "e"], {"d": dropper()})
        outcome = herzberg_hop_by_hop(model)
        assert "d" in outcome.detected_link
        assert outcome.rounds_to_detect <= 1

    def test_hop_by_hop_costs_more_acks(self):
        model = PathModel(["a", "b", "c", "d", "e", "f"])
        cheap = herzberg_end_to_end(model)
        costly = herzberg_hop_by_hop(model)
        assert costly.acks_sent > cheap.acks_sent


class TestPerlman:
    def test_route_setup_clean(self):
        outcome = perlman_route_setup(PathModel(["a", "b", "c", "d"]))
        assert outcome.delivered
        assert outcome.suspected is None

    def test_route_setup_suspects_whole_path(self):
        model = PathModel(["a", "b", "c", "d"], {"b": dropper()})
        outcome = perlman_route_setup(model)
        assert outcome.suspected == ("a", "b", "c", "d")
        assert not outcome.framing

    def test_per_hop_acks_accurate_without_collusion(self):
        model = PathModel(["a", "b", "c", "d", "e"], {"c": dropper()})
        outcome = perlman_per_hop_acks(model)
        assert "c" in outcome.suspected
        assert not outcome.framing

    def test_fig_3_8_collusion_frames_correct_link(self):
        """Perlman's own argument against PERLMANd (Fig 3.8)."""
        model = PathModel(["a", "b", "c", "d", "e", "f"], {
            "e": dropper(),
            "b": FaultyNode(drop_protocol=lambda r, o, k:
                            o in ("d", "e", "f")),
        })
        outcome = perlman_per_hop_acks(model)
        assert outcome.suspected == ("c", "d")
        assert outcome.framing  # both suspected routers are correct


class TestSecTrace:
    def test_clean_trace_validates_whole_path(self):
        outcome = secure_traceroute(PathModel(["a", "b", "c", "d"]))
        assert outcome.detected_link is None
        assert outcome.validated_prefix == ["a", "b", "c", "d"]

    def test_persistent_dropper_detected_adjacent(self):
        model = PathModel(["a", "b", "c", "d", "e"], {"c": dropper()})
        outcome = secure_traceroute(model)
        assert outcome.detected_link is not None
        assert "c" in outcome.detected_link
        assert not outcome.framing

    def test_fig_3_7_late_attacker_frames_downstream(self):
        model = PathModel(["a", "b", "c", "d", "e"], {
            "b": FaultyNode(drop_data=lambda r, p: True,
                            active_from_round=3)})
        outcome = secure_traceroute(model)
        assert outcome.framing
        assert "b" not in outcome.detected_link

    def test_report_suppression_fails_round(self):
        model = PathModel(["a", "b", "c", "d"], {
            "b": FaultyNode(drop_protocol=lambda r, o, k: k == "report")})
        outcome = secure_traceroute(model)
        assert outcome.detected_link is not None


class TestAwerbuch:
    def test_clean_path_no_detection(self):
        outcome = awerbuch_binary_search(PathModel(
            [f"n{i}" for i in range(8)]))
        assert outcome.detected_link is None

    def test_localizes_in_log_rounds(self):
        import math
        for bad_index in (1, 3, 5, 6):
            path = [f"n{i}" for i in range(8)]
            model = PathModel(path, {path[bad_index]: dropper()})
            outcome = awerbuch_binary_search(model)
            assert outcome.detected_link is not None
            assert path[bad_index] in outcome.detected_link
            assert outcome.rounds <= math.ceil(math.log2(len(path))) + 1

    def test_longer_paths_take_more_rounds(self):
        short = PathModel([f"n{i}" for i in range(4)],
                          {"n2": dropper()})
        long = PathModel([f"n{i}" for i in range(32)],
                         {"n17": dropper()})
        assert awerbuch_binary_search(long).rounds > \
            awerbuch_binary_search(short).rounds


class TestWatchers:
    def flows(self):
        return [WatchersFlow(("r1", "r2", "r3", "r4", "r5"), 10_000.0)]

    def test_honest_network_no_detections(self):
        report = WatchersProtocol(chain(5), self.flows()).run_round()
        assert report.detections == []
        assert report.inconsistent_links == []

    def test_truthful_dropper_detected_by_cof(self):
        faulty = {"r3": WatchersFault(drop_fraction=lambda f: 0.5)}
        report = WatchersProtocol(chain(5), self.flows(), faulty).run_round()
        assert report.detects_router("r3")
        assert any(d.phase == "cof" for d in report.detections)

    def test_lying_dropper_detected_by_validation(self):
        def inflate(claims):
            return {k: v * 2 if k[1] == "r3" else v
                    for k, v in claims.items()}

        faulty = {"r3": WatchersFault(drop_fraction=lambda f: 0.5,
                                      misreport=inflate)}
        report = WatchersProtocol(chain(5), self.flows(), faulty).run_round()
        assert report.detects_router("r3")

    def test_threshold_tolerates_congestion(self):
        faulty = {"r3": WatchersFault(drop_fraction=lambda f: 0.01)}
        report = WatchersProtocol(chain(5), self.flows(), faulty,
                                  threshold=200.0).run_round()
        assert not report.detections

    def test_consorting_routers_evade_original(self):
        """The Fig 3.3 flaw, reproduced."""
        def inflate(claims):
            return {k: (v * 2 if k[1] == "r3" and k[2] == "r4" else v)
                    for k, v in claims.items()}

        faulty = {
            "r3": WatchersFault(drop_fraction=lambda f: 0.5,
                                misreport=inflate),
            "r4": WatchersFault(),  # colluding: truthful but silent
        }
        report = WatchersProtocol(chain(5), self.flows(), faulty).run_round()
        assert report.detections == []
        assert report.skipped_cof  # the hole: everyone defers to c and d

    def test_improved_protocol_closes_the_hole(self):
        def inflate(claims):
            return {k: (v * 2 if k[1] == "r3" and k[2] == "r4" else v)
                    for k, v in claims.items()}

        faulty = {
            "r3": WatchersFault(drop_fraction=lambda f: 0.5,
                                misreport=inflate),
            "r4": WatchersFault(),
        }
        report = WatchersProtocol(chain(5), self.flows(), faulty,
                                  improved=True).run_round()
        assert report.detects_router("r3") or report.detects_router("r4")
        assert any(d.phase == "timeout-fix" for d in report.detections)

    def test_flow_path_validated(self):
        with pytest.raises(ValueError):
            WatchersProtocol(chain(3),
                             [WatchersFlow(("r1", "r3"), 1.0)])
