"""Integration tests for Protocol Πk+2 (Fig 5.3)."""


from repro.core.detector import accuracy_report, completeness_report
from repro.core.pik2 import PiK2Config, ProtocolPiK2
from repro.core.segments import monitored_segments_pik2
from repro.core.summaries import PathOracle, SegmentMonitor, SummaryPolicy
from repro.crypto.fingerprint import FingerprintSampler
from repro.crypto.keys import KeyInfrastructure
from repro.dist.sync import RoundSchedule
from repro.net.adversary import (
    CombinedCompromise,
    ControlSuppressionAttack,
    DropFlowAttack,
    ModifyAttack,
)
from repro.net.router import Network
from repro.net.routing import install_static_routes
from repro.net.topology import MBPS, chain
from repro.net.traffic import CBRSource


def build(n=5, k=1, config=None, samplers=None, rounds=3):
    net = Network(chain(n, bandwidth=10 * MBPS, delay=0.001))
    paths = install_static_routes(net)
    oracle = PathOracle(paths)
    schedule = RoundSchedule(tau=1.0)
    keys = KeyInfrastructure()
    monitor = SegmentMonitor(net, oracle, schedule,
                             policy=SummaryPolicy.CONTENT,
                             samplers=samplers)
    net.add_tap(monitor)
    segments = set()
    for segs in monitored_segments_pik2(
            [tuple(p) for p in paths.values()], k=k).values():
        segments |= segs
    protocol = ProtocolPiK2(net, monitor, segments, keys, schedule,
                            config=config or PiK2Config(k=k))
    protocol.schedule_rounds(0, rounds)
    return net, protocol


def drive(net, duration=7.0):
    src = CBRSource(net, "r1", f"r{len(net.topology)}", "f1",
                    rate_bps=800_000, duration=4.0)
    net.run(duration)
    return src


class TestCleanRuns:
    def test_no_suspicions_without_faults(self):
        net, protocol = build()
        drive(net)
        assert all(not s.suspicions for s in protocol.states.values())

    def test_all_exchanges_validate(self):
        net, protocol = build()
        drive(net)
        assert protocol.tv_log
        assert all(r.ok for _, _, r in protocol.tv_log)


class TestTrafficFaults:
    def test_dropper_detected_within_k_plus_2(self):
        net, protocol = build(k=1)
        net.routers["r3"].compromise = DropFlowAttack(["f1"], fraction=0.4,
                                                      seed=1)
        drive(net)
        report = accuracy_report(protocol.states, {"r3"}, max_precision=3)
        assert report.total_suspicions > 0
        assert report.accurate

    def test_strong_completeness(self):
        net, protocol = build(k=1)
        net.routers["r3"].compromise = DropFlowAttack(["f1"], fraction=0.4,
                                                      seed=1)
        drive(net)
        report = completeness_report(protocol.states, {"r3"}, mode="FI")
        assert report.complete

    def test_modifier_detected(self):
        net, protocol = build(k=1)
        net.routers["r2"].compromise = ModifyAttack(fraction=0.5, seed=2)
        drive(net)
        report = accuracy_report(protocol.states, {"r2"}, max_precision=3)
        assert report.total_suspicions > 0
        assert report.accurate

    def test_precision_is_k_plus_2(self):
        net, protocol = build(k=1)
        net.routers["r3"].compromise = DropFlowAttack(["f1"], fraction=0.4,
                                                      seed=1)
        drive(net)
        max_len = max(len(s.segment)
                      for st in protocol.states.values()
                      for s in st.suspicions)
        assert max_len <= 3


class TestProtocolFaults:
    def test_summary_suppression_causes_timeout_detection(self):
        """A protocol-faulty intermediate suppressing the exchange is
        caught by the µ timeout (§5.2)."""
        net, protocol = build(k=1)
        net.routers["r3"].compromise = ControlSuppressionAttack()
        drive(net)
        report = accuracy_report(protocol.states, {"r3"}, max_precision=3)
        assert report.total_suspicions > 0
        assert report.accurate
        assert any("timed out" in s.reason
                   for st in protocol.states.values()
                   for s in st.suspicions)

    def test_lying_end_detected(self):
        """An end router claiming to have sent more than it did fails TV."""
        from dataclasses import replace

        def inflate(summary):
            fps = set(summary.fingerprints or ())
            fps.add(0xDEADBEEF)
            return replace(summary, fingerprints=frozenset(fps),
                           count=summary.count + 1)

        net, protocol = build(
            k=1, config=PiK2Config(k=1, threshold=0))
        protocol.reporters["r1"] = inflate
        drive(net)
        # r1's lie makes TV fail at the other end of r1-ended segments.
        suspected = {seg for st in protocol.states.values()
                     for seg in st.suspected_segments()}
        assert any("r1" in seg for seg in suspected)

    def test_drop_and_suppress_combined(self):
        net, protocol = build(k=1)
        net.routers["r3"].compromise = CombinedCompromise(
            DropFlowAttack(["f1"], fraction=0.5, seed=4),
            ControlSuppressionAttack(),
        )
        drive(net)
        report = accuracy_report(protocol.states, {"r3"}, max_precision=3)
        assert report.total_suspicions > 0
        assert report.accurate


class TestSampling:
    def test_sampled_monitoring_still_detects(self):
        keys = KeyInfrastructure()
        # Build segments first so we can attach samplers to each.
        net = Network(chain(5, bandwidth=10 * MBPS, delay=0.001))
        paths = install_static_routes(net)
        oracle = PathOracle(paths)
        schedule = RoundSchedule(tau=1.0)
        segments = set()
        for segs in monitored_segments_pik2(
                [tuple(p) for p in paths.values()], k=1).values():
            segments |= segs
        samplers = {
            seg: FingerprintSampler(
                rate=0.5, key=keys.sampling_key(seg[0], seg[-1]))
            for seg in segments
        }
        monitor = SegmentMonitor(net, oracle, schedule,
                                 policy=SummaryPolicy.CONTENT,
                                 samplers=samplers)
        net.add_tap(monitor)
        protocol = ProtocolPiK2(net, monitor, segments, keys, schedule)
        protocol.schedule_rounds(0, 3)
        net.routers["r3"].compromise = DropFlowAttack(["f1"], fraction=0.4,
                                                      seed=5)
        drive(net)
        report = accuracy_report(protocol.states, {"r3"}, max_precision=3)
        assert report.total_suspicions > 0
        assert report.accurate

    def test_segment_state_is_smaller_with_sampling(self):
        keys = KeyInfrastructure()
        net = Network(chain(5, bandwidth=10 * MBPS, delay=0.001))
        paths = install_static_routes(net)
        oracle = PathOracle(paths)
        schedule = RoundSchedule(tau=1.0)
        seg = ("r1", "r2", "r3")
        full = SegmentMonitor(net, oracle, schedule)
        sampled = SegmentMonitor(
            net, oracle, schedule,
            samplers={seg: FingerprintSampler(rate=0.25, key=b"s")})
        full.watch_segment(seg, monitors=("r1", "r3"))
        sampled.watch_segment(seg, monitors=("r1", "r3"))
        net.add_tap(full)
        net.add_tap(sampled)
        drive(net, duration=2.0)
        assert sampled.state_units("r1") < full.state_units("r1")
