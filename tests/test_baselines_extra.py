"""Tests for the second wave of Chapter 3 baselines: HSER,
StealthProbing, ZHANG, SATS."""

import pytest

from repro.baselines.hser import hser_round, stealth_probe
from repro.baselines.pathmodel import FaultyNode, PathModel
from repro.baselines.sats import SATSBackend
from repro.baselines.zhang import ZhangDetector, mm1k_loss_probability
from repro.core.chi import QueueTap
from repro.core.summaries import PathOracle
from repro.net.adversary import DropFlowAttack
from repro.net.router import Network
from repro.net.routing import install_static_routes
from repro.net.topology import MBPS, Topology, chain
from repro.net.traffic import CBRSource, PoissonSource


def dropper():
    return FaultyNode(drop_data=lambda r, p: True)


class TestHSER:
    def test_clean_delivery(self):
        outcome = hser_round(PathModel(["a", "b", "c", "d"]))
        assert outcome.delivered
        assert outcome.detected_link is None

    def test_dropper_localized_to_its_link(self):
        model = PathModel(["a", "b", "c", "d", "e"], {"c": dropper()})
        outcome = hser_round(model)
        assert not outcome.delivered
        assert "c" in outcome.detected_link
        assert outcome.announcements

    def test_corrupter_localized(self):
        model = PathModel(["a", "b", "c", "d", "e"],
                          {"c": FaultyNode(corrupt=lambda p: "evil")})
        outcome = hser_round(model)
        assert outcome.detected_link is not None
        assert "c" in outcome.detected_link

    def test_announcement_suppressor_implicates_itself(self):
        """Unlike PERLMANd, collusion cannot frame a correct link: the
        suppressor sits on the working prefix and gets implicated."""
        model = PathModel(["a", "b", "c", "d", "e"], {
            "d": dropper(),
            "b": FaultyNode(drop_protocol=lambda r, o, k: k == "announce"),
        })
        outcome = hser_round(model)
        assert outcome.detected_link is not None
        detected = set(outcome.detected_link)
        assert detected & {"b", "d"}  # a faulty router is inside

    def test_ack_suppression_detected(self):
        model = PathModel(["a", "b", "c", "d"], {
            "b": FaultyNode(drop_protocol=lambda r, o, k: k == "ack")})
        outcome = hser_round(model)
        assert outcome.detected_link is not None
        assert "b" in outcome.detected_link


class TestStealthProbing:
    def test_clean_path_available(self):
        available, rate = stealth_probe(PathModel(["a", "b", "c"]))
        assert available
        assert rate == 1.0

    def test_dropper_kills_availability_but_no_localization(self):
        model = PathModel(["a", "b", "c", "d"], {"b": dropper()})
        available, rate = stealth_probe(model)
        assert not available
        assert rate == 0.0
        # the return type has no "which link" — that's the point (§3.8)

    def test_probes_indistinguishable_from_data(self):
        """A dropper that only drops 'probe-looking' payloads sees only
        opaque tuples, so it cannot spare the probes."""
        model = PathModel(["a", "b", "c"], {
            "b": FaultyNode(drop_data=lambda r, p: p == "probe")})
        available, rate = stealth_probe(model)
        assert available  # the discriminator never matches


class TestMM1K:
    def test_zero_arrivals_zero_loss(self):
        assert mm1k_loss_probability(0.0, 100.0, 10) == 0.0

    def test_loss_grows_with_load(self):
        low = mm1k_loss_probability(50, 100, 10)
        high = mm1k_loss_probability(150, 100, 10)
        assert high > low

    def test_loss_shrinks_with_capacity(self):
        small = mm1k_loss_probability(90, 100, 5)
        large = mm1k_loss_probability(90, 100, 50)
        assert large < small

    def test_critical_load(self):
        assert mm1k_loss_probability(100, 100, 9) == pytest.approx(0.1)

    def test_validation(self):
        with pytest.raises(ValueError):
            mm1k_loss_probability(1, 0, 5)
        with pytest.raises(ValueError):
            mm1k_loss_probability(1, 1, 0)


class TestZhangDetector:
    def records(self, tap, lo, hi):
        ins = [r for r in tap.records_in if lo <= r.time < hi]
        outs = [r for r in tap.records_out if lo <= r.time < hi]
        return ins, outs

    def build(self, attack=None):
        topo = Topology("z")
        topo.add_link("s", "r", bandwidth=40 * MBPS, delay=0.001)
        topo.add_link("r", "d", bandwidth=1 * MBPS, delay=0.001,
                      queue_limit=20_000)
        net = Network(topo)
        paths = install_static_routes(net)
        tap = QueueTap(net, PathOracle(paths), "r", "d")
        net.add_tap(tap)
        if attack is not None:
            net.routers["r"].compromise = attack
        return net, tap

    def test_poisson_traffic_within_prediction(self):
        """With genuinely Poisson offered load well below saturation the
        model is honest (near saturation even Poisson trips it)."""
        net, tap = self.build()
        PoissonSource(net, "s", "d", "f", rate_pps=90, duration=20.0,
                      seed=3)
        net.run(22.0)
        detector = ZhangDetector(bandwidth=1 * MBPS, queue_limit=20_000,
                                 tau=2.0)
        alarms = 0
        for k in range(10):
            ins, outs = self.records(tap, k * 2.0, (k + 1) * 2.0)
            verdict = detector.observe_round(k, ins, outs)
            alarms += verdict.alarmed
        assert alarms == 0

    def test_blatant_attack_detected(self):
        net, tap = self.build(DropFlowAttack(["f"], fraction=0.5, seed=1))
        PoissonSource(net, "s", "d", "f", rate_pps=80, duration=10.0, seed=3)
        net.run(12.0)
        detector = ZhangDetector(bandwidth=1 * MBPS, queue_limit=20_000,
                                 tau=2.0)
        alarms = 0
        for k in range(5):
            ins, outs = self.records(tap, k * 2.0, (k + 1) * 2.0)
            alarms += detector.observe_round(k, ins, outs).alarmed
        assert alarms > 0

    def test_model_grants_attacker_headroom_under_tcp(self):
        """The paper's objection (§3.12/§6.1.1): under bursty TCP load
        the model's safety margin is so wide that an attacker gets many
        free drops per round below the alarm threshold — exactly the
        free-drop unsoundness of static thresholds."""
        from repro.net.tcp import TCPFlow
        topo = Topology("z2")
        for s in ("s1", "s2", "s3"):
            topo.add_link(s, "r", bandwidth=40 * MBPS, delay=0.001)
        topo.add_link("r", "d", bandwidth=1 * MBPS, delay=0.002,
                      queue_limit=20_000)
        topo.add_link("d", "sink", bandwidth=40 * MBPS, delay=0.001)
        net = Network(topo)
        paths = install_static_routes(net)
        tap = QueueTap(net, PathOracle(paths), "r", "d")
        net.add_tap(tap)
        for i, s in enumerate(("s1", "s2", "s3")):
            TCPFlow(net, s, "sink", f"tcp{i}", start=0.1 * i)
        net.run(42.0)
        detector = ZhangDetector(bandwidth=1 * MBPS, queue_limit=20_000,
                                 tau=2.0)
        headrooms = []
        for k in range(20):
            ins, outs = self.records(tap, k * 2.0, (k + 1) * 2.0)
            if not ins:
                continue
            verdict = detector.observe_round(k, ins, outs)
            assert not verdict.alarmed  # benign, so no alarm...
            headrooms.append(verdict.threshold - verdict.observed_losses)
        # ...but the attacker-exploitable slack is wide.
        assert sum(headrooms) / len(headrooms) > 5.0


class TestSATS:
    def build(self, rate=0.5, misreporters=None):
        net = Network(chain(5, bandwidth=10 * MBPS))
        paths = install_static_routes(net)
        backend = SATSBackend(net, PathOracle(paths), rate=rate,
                              misreporters=misreporters)
        net.add_tap(backend)
        return net, backend

    def test_clean_network_no_suspicions(self):
        net, backend = self.build()
        CBRSource(net, "r1", "r5", "f", rate_bps=800_000, duration=2.0)
        net.run(4.0)
        assert backend.analyze() == []

    def test_dropper_suspected(self):
        net, backend = self.build()
        net.routers["r3"].compromise = DropFlowAttack(["f"], fraction=0.5,
                                                      seed=2)
        CBRSource(net, "r1", "r5", "f", rate_bps=800_000, duration=2.0)
        net.run(4.0)
        assert "r3" in backend.suspected_routers()

    def test_localization_narrows_with_pair_coverage(self):
        net, backend = self.build()
        net.routers["r3"].compromise = DropFlowAttack(["f"], fraction=0.5,
                                                      seed=2)
        CBRSource(net, "r1", "r5", "f", rate_bps=800_000, duration=2.0)
        net.run(4.0)
        core = backend.localized_routers()
        assert "r3" in core
        assert len(core) <= 3

    def test_silent_misreporter_implicates_itself(self):
        net, backend = self.build(misreporters={"r3": "silent"})
        CBRSource(net, "r1", "r5", "f", rate_bps=800_000, duration=2.0)
        net.run(4.0)
        # r3 reports nothing, so every pair range involving r3 shows it
        # "losing" everything — r3 lands in the suspected set.
        assert "r3" in backend.suspected_routers()

    def test_secret_ranges_cover_disjoint_slices(self):
        net, backend = self.build(rate=0.3)
        CBRSource(net, "r1", "r5", "f", rate_bps=800_000, duration=1.0)
        net.run(3.0)
        # Different pairs sample different subsets (secret split).
        r2 = backend.reports["r2"]
        sampled_sets = [frozenset(v) for v in r2.values() if v]
        assert len(set(sampled_sets)) > 1
