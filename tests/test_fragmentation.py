"""Tests for §7.4.4 — fragmentation vs fingerprint validation."""

import pytest

from repro.core.summaries import PathOracle, SegmentMonitor
from repro.crypto.fingerprint import fingerprint
from repro.dist.sync import RoundSchedule
from repro.net.packet import Packet
from repro.net.router import Network
from repro.net.routing import install_static_routes
from repro.net.topology import MBPS, Topology
from repro.net.traffic import CBRSource


class TestPacketFragmentation:
    def test_sizes_partition_original(self):
        packet = Packet(src="a", dst="b", size=2500)
        fragments = packet.fragment(1000)
        assert [f.size for f in fragments] == [1000, 1000, 500]
        assert fragments[-1].last_fragment
        assert not fragments[0].last_fragment

    def test_small_packet_untouched(self):
        packet = Packet(src="a", dst="b", size=500)
        assert packet.fragment(1000) == [packet]

    def test_fragments_reference_original(self):
        packet = Packet(src="a", dst="b", size=2000)
        fragments = packet.fragment(1500)
        assert all(f.fragment_of == packet.uid for f in fragments)
        assert [f.fragment_index for f in fragments] == [0, 1]

    def test_fragment_fingerprints_differ_from_original(self):
        """The §7.4.4 problem in one assertion."""
        packet = Packet(src="a", dst="b", size=2000)
        original_fp = fingerprint(packet)
        for frag in packet.fragment(1500):
            assert fingerprint(frag) != original_fp

    def test_invalid_mtu(self):
        with pytest.raises(ValueError):
            Packet(src="a", dst="b", size=10).fragment(0)


def fragmenting_net(mtu_on_middle_link):
    topo = Topology("frag")
    topo.add_link("r1", "r2", bandwidth=10 * MBPS, delay=0.001)
    topo.add_link("r2", "r3", bandwidth=10 * MBPS, delay=0.001,
                  mtu=mtu_on_middle_link)
    topo.add_link("r3", "r4", bandwidth=10 * MBPS, delay=0.001)
    net = Network(topo)
    install_static_routes(net)
    return net


class TestInNetworkFragmentation:
    def test_all_bytes_delivered_as_fragments(self):
        net = fragmenting_net(mtu_on_middle_link=600)
        got = []
        net.routers["r4"].register_flow("f", lambda p, t: got.append(p))
        net.routers["r1"].originate(
            Packet(src="r1", dst="r4", flow_id="f", size=1500))
        net.run(1.0)
        assert len(got) == 3  # 600 + 600 + 300
        assert sum(p.size for p in got) == 1500
        assert all(p.fragment_of is not None for p in got)

    def test_no_mtu_no_fragmentation(self):
        net = fragmenting_net(mtu_on_middle_link=None)
        got = []
        net.routers["r4"].register_flow("f", lambda p, t: got.append(p))
        net.routers["r1"].originate(
            Packet(src="r1", dst="r4", flow_id="f", size=1500))
        net.run(1.0)
        assert len(got) == 1

    def test_fragmentation_breaks_content_validation(self):
        """§7.4.4: "the pre-computed fingerprints at the upstream routers
        are no longer valid" — a monitored segment spanning the
        fragmentation point fails TV even with everyone honest."""
        net = fragmenting_net(mtu_on_middle_link=600)
        paths = install_static_routes(net)
        monitor = SegmentMonitor(net, PathOracle(paths),
                                 RoundSchedule(tau=1.0))
        net.add_tap(monitor)
        segment = ("r1", "r2", "r3")
        monitor.watch_segment(segment, monitors=("r1", "r3"))
        CBRSource(net, "r1", "r4", "f", rate_bps=800_000,
                  packet_size=1500, duration=0.5)
        net.run(1.5)
        sent = monitor.summary(segment, "r1", "sent", 0)
        received = monitor.summary(segment, "r3", "received", 0)
        assert sent.count > 0
        # Same bytes arrived, but no fingerprint matches.
        assert sent.fingerprints.isdisjoint(received.fingerprints)

    def test_df_sized_packets_keep_validation_sound(self):
        """The practical remedy: path-MTU-sized (DF) packets never
        fragment, so validation is unaffected."""
        net = fragmenting_net(mtu_on_middle_link=600)
        paths = install_static_routes(net)
        monitor = SegmentMonitor(net, PathOracle(paths),
                                 RoundSchedule(tau=1.0))
        net.add_tap(monitor)
        segment = ("r1", "r2", "r3")
        monitor.watch_segment(segment, monitors=("r1", "r3"))
        CBRSource(net, "r1", "r4", "f", rate_bps=800_000,
                  packet_size=500, duration=0.5)
        net.run(1.5)
        sent = monitor.summary(segment, "r1", "sent", 0)
        received = monitor.summary(segment, "r3", "received", 0)
        assert sent.count > 0
        assert sent.fingerprints == received.fingerprints
