"""CLI surface of the observability subsystem.

``repro sweep --trace --profile``, ``repro run --trace --profile``, and
the ``repro obs summarize`` aggregator and the ``repro bench sweep``
distillation (the successor of the removed ``repro obs bench``).
"""

import glob
import json
import random

import pytest

from repro.__main__ import main
from repro.eval import registry
from repro.eval.registry import ExperimentSpec
from repro.obs.cli import summarize_paths, trace_files
from repro.obs.profile import PROFILE_SCHEMA, profile_call

TOY = "toy-obs-cli-test"


def toy_experiment(scale: float = 1.0, seed: int = 0):
    rng = random.Random(seed)
    return {"value": scale * rng.random(), "seed": seed}


@pytest.fixture
def toy_registered():
    registry.register(ExperimentSpec(TOY, toy_experiment,
                                     lambda r: [str(r)]))
    yield TOY
    registry.unregister(TOY)


class TestSweepFlags:
    def test_trace_and_profile_artifacts(self, toy_registered, tmp_path,
                                         capsys):
        out = tmp_path / "out"
        assert main(["sweep", TOY, "--seeds", "2", "--jobs", "1",
                     "--no-cache", "--trace", "--profile",
                     "--out", str(out)]) == 0
        traces = sorted(glob.glob(str(out / "traces" / "*.jsonl")))
        assert len(traces) == 2
        with open(out / "profile.json") as fh:
            profile = json.load(fh)
        assert profile["schema"] == PROFILE_SCHEMA
        assert profile["rows"], "profile must list hot functions"
        with open(out / "sweep.json") as fh:
            manifest = json.load(fh)
        assert manifest["schema"] == "repro.sweep/v4"
        assert manifest["telemetry"]["runs"]["total"] == 2
        captured = capsys.readouterr().out
        assert "profile" in captured

    def test_flags_off_by_default(self, toy_registered, tmp_path):
        out = tmp_path / "out"
        assert main(["sweep", TOY, "--seeds", "1", "--jobs", "1",
                     "--no-cache", "--out", str(out)]) == 0
        assert not (out / "traces").exists()
        assert not (out / "profile.json").exists()


class TestRunFlags:
    def test_run_trace_and_profile(self, toy_registered, tmp_path, capsys):
        trace_dir = tmp_path / "traces"
        assert main(["run", TOY, "--trace", str(trace_dir),
                     "--profile", "--profile-out", str(tmp_path)]) == 0
        trace_path = trace_dir / f"{TOY}.jsonl"
        assert trace_path.is_file()
        final = json.loads(trace_path.read_text().splitlines()[-1])
        assert final["event"] == "obs.metrics"
        with open(tmp_path / f"profile-{TOY}.json") as fh:
            assert json.load(fh)["schema"] == PROFILE_SCHEMA
        assert "by cumulative" in capsys.readouterr().out


class TestObsCommands:
    def _traced_sweep(self, tmp_path):
        out = tmp_path / "swept"
        assert main(["sweep", TOY, "--seeds", "2", "--jobs", "1",
                     "--no-cache", "--trace", "--out", str(out)]) == 0
        return out

    def test_summarize_text(self, toy_registered, tmp_path, capsys):
        out = self._traced_sweep(tmp_path)
        capsys.readouterr()
        assert main(["obs", "summarize", str(out)]) == 0
        text = capsys.readouterr().out
        assert "traces: 2 file(s)" in text
        assert "telemetry:" in text and "workers:" in text

    def test_summarize_json(self, toy_registered, tmp_path, capsys):
        out = self._traced_sweep(tmp_path)
        capsys.readouterr()
        assert main(["obs", "summarize", "--format", "json",
                     str(out)]) == 0
        summary = json.loads(capsys.readouterr().out)
        assert summary["traces"] == 2
        assert summary["telemetry"]["runs"]["total"] == 2

    def test_bench_writes_artifact(self, toy_registered, tmp_path, capsys):
        out = self._traced_sweep(tmp_path)
        bench_path = tmp_path / "BENCH_obs.json"
        assert main(["bench", "sweep", str(out),
                     "--out", str(bench_path)]) == 0
        with open(bench_path) as fh:
            bench = json.load(fh)
        assert bench["schema"] == "repro.obs.bench/v1"
        assert bench["wall_s"] > 0
        assert bench["runs"]["total"] == 2
        assert "wrote" in capsys.readouterr().out

    def test_trace_files_resolution(self, toy_registered, tmp_path):
        out = self._traced_sweep(tmp_path)
        via_sweep_dir = trace_files(str(out))
        via_trace_dir = trace_files(str(out / "traces"))
        assert via_sweep_dir == via_trace_dir and len(via_sweep_dir) == 2
        assert trace_files(via_sweep_dir[0]) == [via_sweep_dir[0]]
        assert trace_files(str(tmp_path / "nowhere")) == []

    def test_summarize_merges_across_paths(self, toy_registered, tmp_path):
        out = self._traced_sweep(tmp_path)
        single = summarize_paths([str(out)])
        doubled = summarize_paths([str(out), str(out)])
        assert doubled["traces"] == 2 * single["traces"]
        assert doubled["records"] == 2 * single["records"]

    def test_summarize_finds_sharded_layouts(self, tmp_path):
        """A dispatched sweep: traces and telemetry live per shard."""
        from repro.obs.telemetry import build_telemetry

        out = tmp_path / "dispatched"
        for shard, wall_s in (("shard-0", 2.0), ("shard-1", 3.0)):
            traces = out / "shards" / shard / "traces"
            traces.mkdir(parents=True)
            (traces / f"{shard}.jsonl").write_text(json.dumps(
                {"event": "net.drop", "t": 1.0, "router": "A",
                 "out_nbr": "B", "flow": "f1", "src": "A", "dst": "B",
                 "reason": "x"}) + "\n")
            telemetry = build_telemetry(
                wall_s=wall_s, jobs=1,
                records=[{"status": "ok", "elapsed_s": wall_s,
                          "attempts": 1}])
            (out / "shards" / shard / "sweep.json").write_text(
                json.dumps({"telemetry": telemetry}))
        summary = summarize_paths([str(out)])
        assert summary["traces"] == 2
        assert summary["events"] == {"net.drop": 2}
        # Telemetry sums across the per-shard manifests.
        assert summary["telemetry"]["runs"]["total"] == 2
        assert summary["telemetry"]["wall_s"] == pytest.approx(5.0)


class TestProfileCall:
    def test_returns_result_and_schema(self):
        result, stats = profile_call(sorted, [3, 1, 2])
        assert result == [1, 2, 3]
        assert stats["schema"] == PROFILE_SCHEMA
        assert stats["top"] >= 1 and stats["total_calls"] >= 1
        for row in stats["rows"]:
            assert {"function", "cumtime_s", "ncalls"} <= set(row)
