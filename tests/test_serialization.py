"""to_dict()/from_dict() round-trips for the eval result types."""

import json

from repro.eval.experiments import (
    BaselineDemo,
    ConfidenceCurve,
    FatihTimelineResult,
    ModelingComparison,
    NsSimPoint,
    PrCurve,
    ResponseImpact,
    ScenarioResult,
    StateOverheadResult,
    ThresholdComparison,
)
from repro.eval.metrics import DetectionMetrics


def make_metrics():
    return DetectionMetrics(attack_rounds=10, benign_rounds=20,
                            true_positive_rounds=4,
                            false_positive_rounds=1,
                            detection_round=25,
                            detection_latency_rounds=0)


def make_scenario_result():
    return ScenarioResult(
        name="attack1-drop20pct",
        metrics=make_metrics(),
        total_drops=37,
        congestive_drops=13,
        malicious_drops_truth=28,
        candidate_drops=24,
        rounds=[(10, 3, 1, 0.42, False), (25, 9, 8, 0.99, True)],
        malicious_by_round={25: 11, 26: 3},
        extra={"victim_goodput_pps": 17.4},
    )


class TestDetectionMetrics:
    def test_round_trip(self):
        metrics = make_metrics()
        clone = DetectionMetrics.from_dict(metrics.to_dict())
        assert clone == metrics

    def test_json_safe(self):
        json.dumps(make_metrics().to_dict())

    def test_derived_fields_exported(self):
        data = make_metrics().to_dict()
        assert data["detected"] is True
        assert data["recall"] == 0.4


class TestScenarioResult:
    def test_round_trip(self):
        result = make_scenario_result()
        clone = ScenarioResult.from_dict(
            json.loads(json.dumps(result.to_dict())))
        assert clone == result

    def test_json_keys_are_strings(self):
        data = json.loads(json.dumps(make_scenario_result().to_dict()))
        assert data["malicious_by_round"] == {"25": 11, "26": 3}

    def test_round_trip_restores_int_round_keys(self):
        clone = ScenarioResult.from_dict(
            json.loads(json.dumps(make_scenario_result().to_dict())))
        assert clone.malicious_by_round == {25: 11, 26: 3}


class TestPrCurve:
    def test_round_trip(self):
        curve = PrCurve("ebone", "pi2",
                        {1: {"max": 9.0, "mean": 4.5, "median": 4.0},
                         2: {"max": 20.0, "mean": 11.0, "median": 10.0}})
        clone = PrCurve.from_dict(json.loads(json.dumps(curve.to_dict())))
        assert clone == curve
        assert clone.rows() == curve.rows()


class TestOtherResults:
    def test_all_json_safe(self):
        results = [
            StateOverheadResult("sprintlink", 13608.0, 99225.0,
                                {2: {"mean": 829.0, "max": 1156.0}}),
            NsSimPoint(0.2, True, 0, 0, 31),
            FatihTimelineResult(convergence_time=42.0, attack_time=117.0,
                                first_detection=122.0, reroute_time=131.0,
                                rtt_before=0.050, rtt_after=0.056,
                                suspected_segments=[("a", "b", "c")],
                                probes_lost=5),
            ConfidenceCurve(30000.0, 0.0, 1000.0, [(0.0, 0.0), (30000.0, 1.0)]),
            ThresholdComparison(thresholds=[1, 5],
                                static_fp_rounds={1: 3, 5: 0},
                                static_detected={1: True, 5: False},
                                static_free_drops={1: 0, 5: 12},
                                chi_fp_rounds=0, chi_detected=True,
                                total_malicious_drops=40,
                                benign_max_losses=4,
                                attack_mean_losses=2.5),
            BaselineDemo("demo", "desc",
                         {"links": [("a", "b")], "detected": True}),
            ModelingComparison(0.01, 0.003, 2.3),
            ResponseImpact("segment", 0, 1.08, 1.4),
        ]
        for result in results:
            data = result.to_dict()
            json.dumps(data)
            assert isinstance(data, dict) and data

    def test_fatih_exports_derived_latencies(self):
        result = FatihTimelineResult(convergence_time=42.0, attack_time=117.0,
                                     first_detection=122.0, reroute_time=131.0,
                                     rtt_before=0.050, rtt_after=0.056,
                                     suspected_segments=[], probes_lost=0)
        data = result.to_dict()
        assert data["detection_latency"] == 5.0
        assert data["response_latency"] == 14.0
