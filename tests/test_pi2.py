"""Integration tests for Protocol Π2 (Fig 5.1)."""


from repro.core.detector import accuracy_report, completeness_report
from repro.core.pi2 import Pi2Config, ProtocolPi2
from repro.core.segments import monitored_segments_pi2
from repro.core.summaries import PathOracle, SegmentMonitor, SummaryPolicy
from repro.crypto.keys import KeyInfrastructure
from repro.dist.sync import RoundSchedule
from repro.net.adversary import (
    DelayAttack,
    DropFlowAttack,
    ModifyAttack,
    ReorderAttack,
)
from repro.net.router import Network
from repro.net.routing import install_static_routes
from repro.net.topology import MBPS, chain
from repro.net.traffic import CBRSource


def build(n=4, policy=SummaryPolicy.CONTENT, k=1, config=None,
          reporters=None):
    net = Network(chain(n, bandwidth=10 * MBPS, delay=0.001))
    paths = install_static_routes(net)
    oracle = PathOracle(paths)
    schedule = RoundSchedule(tau=1.0)
    keys = KeyInfrastructure()
    monitor = SegmentMonitor(net, oracle, schedule, policy=policy)
    net.add_tap(monitor)
    segments = set()
    for segs in monitored_segments_pi2(
            [tuple(p) for p in paths.values()], k=k).values():
        segments |= segs
    protocol = ProtocolPi2(net, monitor, segments, keys, schedule,
                           config=config or Pi2Config(k=k),
                           reporters=reporters)
    protocol.schedule_rounds(0, 3)
    return net, protocol


def drive(net, duration=6.0, rate=800_000):
    src = CBRSource(net, "r1", f"r{len(net.topology)}", "f1",
                    rate_bps=rate, duration=4.0)
    net.run(duration)
    return src


class TestCleanRuns:
    def test_no_suspicions_without_faults(self):
        net, protocol = build()
        drive(net)
        for state in protocol.states.values():
            assert state.suspicions == []

    def test_tv_log_populated(self):
        net, protocol = build()
        drive(net)
        assert protocol.tv_log
        assert all(result.ok for _, _, _, result in protocol.tv_log)


class TestTrafficFaults:
    def test_dropper_detected_with_precision_2(self):
        net, protocol = build()
        net.routers["r2"].compromise = DropFlowAttack(["f1"], fraction=0.5,
                                                      seed=1)
        drive(net)
        report = accuracy_report(protocol.states, {"r2"}, max_precision=2)
        assert report.total_suspicions > 0
        assert report.accurate

    def test_strong_completeness_all_correct_routers_suspect(self):
        net, protocol = build()
        net.routers["r2"].compromise = DropFlowAttack(["f1"], fraction=0.5,
                                                      seed=1)
        drive(net)
        report = completeness_report(protocol.states, {"r2"}, mode="FI")
        assert report.complete

    def test_modifier_detected_by_content_policy(self):
        net, protocol = build()
        net.routers["r3"].compromise = ModifyAttack(fraction=0.4, seed=2)
        drive(net)
        report = accuracy_report(protocol.states, {"r3"}, max_precision=2)
        assert report.total_suspicions > 0
        assert report.accurate

    def test_reorderer_detected_by_order_policy(self):
        net, protocol = build(
            policy=SummaryPolicy.ORDER,
            config=Pi2Config(k=1, threshold=0, reorder_threshold=0),
        )
        net.routers["r2"].compromise = ReorderAttack(period=3, hold=0.05)
        drive(net)
        report = accuracy_report(protocol.states, {"r2"}, max_precision=2)
        assert report.total_suspicions > 0
        assert report.accurate

    def test_reorderer_invisible_to_content_policy(self):
        # A small threshold absorbs round-boundary straddlers; content
        # validation then has nothing to say about pure reordering.
        net, protocol = build(policy=SummaryPolicy.CONTENT,
                              config=Pi2Config(k=1, threshold=2))
        net.routers["r2"].compromise = ReorderAttack(period=3, hold=0.02)
        drive(net)
        assert protocol.states["r1"].suspicions == []

    def test_delayer_detected_by_timeliness_policy(self):
        """Conservation of timeliness (§2.4.1): a router adding 200 ms of
        latency is caught even though content and order are intact."""
        net, protocol = build(
            policy=SummaryPolicy.TIMELINESS,
            config=Pi2Config(k=1, threshold=2, max_delay=0.05),
        )
        net.routers["r2"].compromise = DelayAttack(0.2, flows=["f1"])
        drive(net)
        report = accuracy_report(protocol.states, {"r2"}, max_precision=2)
        assert report.total_suspicions > 0
        assert report.accurate

    def test_small_delayer_invisible_to_content_policy(self):
        # A modest delay only moves a couple of packets across round
        # boundaries — inside the content threshold.  (Timeliness policy
        # still catches it, see above; large delays eventually surface
        # even in content terms as round-boundary mass migration.)
        net, protocol = build(policy=SummaryPolicy.CONTENT,
                              config=Pi2Config(k=1, threshold=4))
        net.routers["r2"].compromise = DelayAttack(0.02, flows=["f1"])
        drive(net, duration=7.0)
        assert protocol.states["r1"].suspicions == []

    def test_threshold_tolerates_benign_loss(self):
        net, protocol = build(config=Pi2Config(k=1, threshold=3))
        net.routers["r2"].compromise = DropFlowAttack(["f1"], fraction=0.005,
                                                      seed=3)
        drive(net)
        # ~0.5% of ~100 pkts/round stays below the 3-packet allowance.
        assert all(len(s.suspicions) == 0
                   for name, s in protocol.states.items())


class TestProtocolFaults:
    def test_lying_reporter_detected(self):
        """A router that under-reports what it received frames itself."""
        def liar(honest):
            received, sent = honest
            fewer = TrafficSummaryHalver(received)
            return (fewer, sent)

        net, protocol = build(reporters={"r2": liar})
        drive(net)
        report = accuracy_report(protocol.states, {"r2"}, max_precision=2)
        assert report.total_suspicions > 0
        assert report.accurate

    def test_silent_reporter_detected(self):
        net, protocol = build(reporters={"r2": lambda honest: None})
        drive(net)
        report = accuracy_report(protocol.states, {"r2"}, max_precision=2)
        assert report.total_suspicions > 0
        assert report.accurate

    def test_equivocating_reporter_detected(self):
        def equivocator(honest):
            received, sent = honest
            return ((received, sent), (sent, received))  # two claims

        net, protocol = build(reporters={"r2": equivocator})
        drive(net)
        report = accuracy_report(protocol.states, {"r2"}, max_precision=2)
        assert report.total_suspicions > 0
        assert report.accurate


def TrafficSummaryHalver(summary):
    """Return a copy of ``summary`` with half the fingerprints removed."""
    from dataclasses import replace
    fps = sorted(summary.fingerprints or ())
    kept = frozenset(fps[: len(fps) // 2])
    return replace(summary, fingerprints=kept, count=len(kept),
                   byte_count=summary.byte_count // 2)
