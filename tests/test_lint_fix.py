"""Tests for ``repro lint --fix``: autofix application, idempotence,
dry-run diffs, the API001 import-surface rewrite, and baseline
entry dropping."""

import json
import os
import shutil

import pytest

from repro.analysis import cli, lint_paths

TESTS_DIR = os.path.dirname(__file__)
REPO_ROOT = os.path.dirname(TESTS_DIR)
FIXTURES = os.path.join(TESTS_DIR, "fixtures", "lint")
NET_PKG = os.path.join(REPO_ROOT, "src", "repro", "net")


def run_cli(*argv):
    return cli.main(["lint", *argv])


@pytest.fixture
def det_bad_copy(tmp_path):
    target = tmp_path / "det_bad.py"
    shutil.copy(os.path.join(FIXTURES, "det_bad.py"), target)
    return str(target)


def test_fix_rewrites_det004_sites(det_bad_copy, capsys):
    run_cli("--no-baseline", "--no-cache", "--fix", det_bad_copy)
    out = capsys.readouterr().out
    assert "fixed 2 finding(s)" in out
    text = open(det_bad_copy).read()
    assert "in sorted(" in text
    # The re-lint after fixing reflects the rewritten file.
    assert "7 new" in out


def test_fixed_file_relints_clean_of_det004(det_bad_copy):
    run_cli("--no-baseline", "--no-cache", "--fix", det_bad_copy)
    report = lint_paths([det_bad_copy])
    assert [f for f in report.new if f.rule == "DET004"] == []


def test_fix_is_idempotent(det_bad_copy, capsys):
    run_cli("--no-baseline", "--no-cache", "--fix", det_bad_copy)
    capsys.readouterr()
    after_first = open(det_bad_copy).read()
    exit_code = run_cli("--no-baseline", "--no-cache", "--fix",
                        det_bad_copy)
    out = capsys.readouterr().out
    assert "no fixable findings" in out
    assert open(det_bad_copy).read() == after_first
    assert exit_code == 1  # the 7 unfixable findings still fail the run


def test_diff_mode_previews_without_writing(det_bad_copy, capsys):
    before = open(det_bad_copy).read()
    exit_code = run_cli("--no-baseline", "--no-cache", "--fix", "--diff",
                        det_bad_copy)
    out = capsys.readouterr().out
    assert exit_code == 1
    assert "would fix 2 finding(s) in 1 file(s)" in out
    assert "+" in out and "sorted(" in out
    assert open(det_bad_copy).read() == before


def test_diff_without_fix_is_an_error(det_bad_copy, capsys):
    assert run_cli("--no-baseline", "--diff", det_bad_copy) == 2
    assert "--diff requires --fix" in capsys.readouterr().err


def test_api001_import_rewritten_to_public_surface(tmp_path, capsys):
    importer = tmp_path / "importer.py"
    importer.write_text(
        "from repro.net.queues import REDQueue\n"
        "\n"
        "print(REDQueue)\n")
    # The net package must be linted alongside so its public exports
    # are in the index for the fix to be derived.
    run_cli("--no-baseline", "--no-cache", "--fix", str(importer), NET_PKG)
    capsys.readouterr()
    assert importer.read_text().startswith("from repro.net import REDQueue\n")
    report = lint_paths([str(importer), NET_PKG])
    assert [f for f in report.new if f.path == str(importer)] == []


def test_fix_drops_matching_baseline_entries(det_bad_copy, tmp_path,
                                             capsys):
    bpath = str(tmp_path / "baseline.json")
    assert run_cli("--baseline", bpath, "--write-baseline", "--no-cache",
                   det_bad_copy) == 0
    entries = json.load(open(bpath))["findings"]
    assert len(entries) == 9

    exit_code = run_cli("--baseline", bpath, "--no-cache", "--fix",
                        det_bad_copy)
    out = capsys.readouterr().out
    assert "dropped 2 fixed entries from" in out
    assert "fixed 2 finding(s)" in out
    # The two DET004 entries are gone; the rest survive untouched.
    remaining = json.load(open(bpath))["findings"]
    assert len(remaining) == 7
    assert all(e["rule"] != "DET004" for e in remaining.values())
    # With every remaining finding grandfathered, the run is green.
    assert exit_code == 0

    report = lint_paths([det_bad_copy])
    assert len(report.new) == 7
