"""Unit tests for routers, interfaces, taps and the network assembly."""

import pytest

from repro.net.packet import Packet
from repro.net.queues import DropReason
from repro.net.router import MonitorTap, Network
from repro.net.routing import install_static_routes
from repro.net.topology import MBPS, chain, diamond


class RecordingTap(MonitorTap):
    def __init__(self):
        self.events = []

    def on_receive(self, router, from_nbr, packet, time):
        self.events.append(("receive", router.name, from_nbr, packet.uid, time))

    def on_enqueue(self, router, out_nbr, packet, time, occupancy):
        self.events.append(("enqueue", router.name, out_nbr, packet.uid, time))

    def on_transmit(self, router, out_nbr, packet, time):
        self.events.append(("transmit", router.name, out_nbr, packet.uid, time))

    def on_drop(self, router, out_nbr, packet, time, reason, drop_prob):
        self.events.append(("drop", router.name, out_nbr, packet.uid, reason))

    def on_deliver(self, router, packet, time):
        self.events.append(("deliver", router.name, packet.uid, time))

    def on_originate(self, router, packet, time):
        self.events.append(("originate", router.name, packet.uid, time))

    def of_kind(self, kind):
        return [e for e in self.events if e[0] == kind]


def small_net(n=3, **kw):
    topo = chain(n, bandwidth=10 * MBPS, delay=0.001)
    net = Network(topo, **kw)
    install_static_routes(net)
    return net


class TestForwarding:
    def test_end_to_end_delivery(self):
        net = small_net(4)
        delivered = []
        net.routers["r4"].register_flow("f", lambda p, t: delivered.append(p))
        packet = Packet(src="r1", dst="r4", flow_id="f")
        net.routers["r1"].originate(packet)
        net.run(1.0)
        assert [p.uid for p in delivered] == [packet.uid]

    def test_ttl_decremented_per_hop(self):
        net = small_net(4)
        got = []
        net.routers["r4"].register_flow("f", lambda p, t: got.append(p))
        net.routers["r1"].originate(Packet(src="r1", dst="r4", flow_id="f",
                                           ttl=10))
        net.run(1.0)
        # Every forwarding router decrements: r1 (origin), r2 and r3.
        assert got[0].ttl == 7

    def test_expired_ttl_dropped(self):
        net = small_net(4)
        tap = RecordingTap()
        net.add_tap(tap)
        net.routers["r1"].originate(Packet(src="r1", dst="r4", flow_id="f",
                                           ttl=1))
        net.run(1.0)
        drops = tap.of_kind("drop")
        assert len(drops) == 1
        assert drops[0][4] is DropReason.TTL_EXPIRED

    def test_local_delivery_without_forwarding(self):
        net = small_net(3)
        got = []
        net.routers["r1"].register_flow("f", lambda p, t: got.append(p))
        net.routers["r1"].originate(Packet(src="r1", dst="r1", flow_id="f"))
        net.run(0.1)
        assert len(got) == 1

    def test_no_route_drops(self):
        topo = chain(3)
        net = Network(topo)  # no routes installed
        tap = RecordingTap()
        net.add_tap(tap)
        net.routers["r1"].originate(Packet(src="r1", dst="r3", flow_id="f"))
        net.run(0.1)
        assert tap.of_kind("drop")

    def test_latency_matches_links(self):
        net = small_net(3)
        times = []
        net.routers["r3"].register_flow("f", lambda p, t: times.append(t))
        net.routers["r1"].originate(Packet(src="r1", dst="r3", flow_id="f",
                                           size=1000))
        net.run(1.0)
        # two hops: 2 * (transmission 1000B@10Mbps = 0.8ms + 1ms prop)
        assert times[0] == pytest.approx(2 * (0.0008 + 0.001), abs=1e-6)


class TestTaps:
    def test_event_sequence_for_transit(self):
        net = small_net(3)
        tap = RecordingTap()
        net.add_tap(tap)
        net.routers["r1"].originate(Packet(src="r1", dst="r3", flow_id="f"))
        net.run(1.0)
        kinds = [e[0] for e in tap.events]
        assert kinds == [
            "originate",
            "enqueue", "transmit",  # at r1
            "receive", "enqueue", "transmit",  # at r2
            "receive", "deliver",  # at r3
        ]

    def test_remove_tap(self):
        net = small_net(3)
        tap = RecordingTap()
        net.add_tap(tap)
        net.remove_tap(tap)
        net.routers["r1"].originate(Packet(src="r1", dst="r3", flow_id="f"))
        net.run(1.0)
        assert tap.events == []


class TestPolicyRouting:
    def test_policy_table_overrides_destination_table(self):
        net = Network(diamond())
        install_static_routes(net)
        router = net.routers["s"]
        default_hop = router.next_hop(Packet(src="s", dst="t"))
        other = "b" if default_hop == "a" else "a"
        router.policy_table[("s", "t")] = [other]
        assert router.next_hop(Packet(src="s", dst="t")) == other

    def test_policy_only_matches_exact_pair(self):
        net = Network(diamond())
        install_static_routes(net)
        router = net.routers["s"]
        router.policy_table[("x", "t")] = ["b"]
        packet = Packet(src="s", dst="t")
        assert router.next_hop(packet) == \
            router.forwarding_table["t"][0]

    def test_ecmp_choice_is_deterministic(self):
        net = Network(diamond())
        install_static_routes(net)
        router = net.routers["s"]
        router.forwarding_table["t"] = ["a", "b"]
        packet = Packet(src="s", dst="t", flow_id="flow-x")
        hops = {router.next_hop(packet) for _ in range(10)}
        assert len(hops) == 1

    def test_ecmp_spreads_flows(self):
        net = Network(diamond())
        install_static_routes(net)
        router = net.routers["s"]
        router.forwarding_table["t"] = ["a", "b"]
        chosen = {
            router.next_hop(Packet(src="s", dst="t", flow_id=f"f{i}"))
            for i in range(50)
        }
        assert chosen == {"a", "b"}


class TestCompromiseHook:
    def test_drop_action(self):
        from repro.net.adversary import DropAllAttack
        net = small_net(3)
        tap = RecordingTap()
        net.add_tap(tap)
        net.routers["r2"].compromise = DropAllAttack()
        net.routers["r1"].originate(Packet(src="r1", dst="r3", flow_id="f"))
        net.run(1.0)
        drops = tap.of_kind("drop")
        assert len(drops) == 1
        assert drops[0][1] == "r2"
        assert drops[0][4] is DropReason.MALICIOUS

    def test_originating_router_not_intercepted(self):
        """Terminal routers are assumed good w.r.t. their own traffic."""
        from repro.net.adversary import DropAllAttack
        net = small_net(3)
        got = []
        net.routers["r3"].register_flow("f", lambda p, t: got.append(p))
        net.routers["r1"].compromise = DropAllAttack()
        net.routers["r1"].originate(Packet(src="r1", dst="r3", flow_id="f"))
        net.run(1.0)
        assert len(got) == 1

    def test_fabricated_injection(self):
        net = small_net(3)
        got = []
        net.routers["r3"].register_flow("forged", lambda p, t: got.append(p))
        packet = Packet(src="r1", dst="r3", flow_id="forged")
        net.routers["r2"].inject_fabricated(packet, "r3")
        net.run(1.0)
        assert len(got) == 1
        assert got[0].fabricated_by == "r2"


class TestSerialization:
    def test_queue_drains_at_link_rate(self):
        topo = chain(2, bandwidth=1 * MBPS, delay=0.0)
        net = Network(topo)
        install_static_routes(net)
        times = []
        net.routers["r2"].register_flow("f", lambda p, t: times.append(t))
        for i in range(3):
            net.routers["r1"].originate(
                Packet(src="r1", dst="r2", flow_id="f", seq=i, size=1000)
            )
        net.run(1.0)
        # back-to-back transmissions: 8 ms apart at 1 Mbps
        assert times[1] - times[0] == pytest.approx(0.008, abs=1e-6)
        assert times[2] - times[1] == pytest.approx(0.008, abs=1e-6)

    def test_proc_jitter_bounded(self):
        net = small_net(3, proc_jitter=0.002)
        times = []
        net.routers["r3"].register_flow("f", lambda p, t: times.append(t))
        for i in range(20):
            net.routers["r1"].originate(
                Packet(src="r1", dst="r3", flow_id="f", seq=i)
            )
        net.run(2.0)
        assert len(times) == 20
