"""Smoke tests over the per-figure experiment harness (fast subset).

The full-scale runs live in ``benchmarks/``; here each experiment is
exercised at reduced size so the harness itself stays correct.
"""

import pytest

from repro.eval import experiments as ex
from repro.eval.metrics import score_round_findings
from repro.core.chi import RoundFinding


class TestMetrics:
    def finding(self, round_index, alarmed):
        f = RoundFinding(round_index=round_index, target=("r", "rd"))
        f.single_alarm = alarmed
        return f

    def test_pure_benign(self):
        findings = [self.finding(i, False) for i in range(5)]
        m = score_round_findings(findings, None)
        assert m.benign_rounds == 5
        assert not m.detected
        assert m.false_positive_rate == 0.0

    def test_detection_latency(self):
        findings = [self.finding(i, i >= 7) for i in range(10)]
        m = score_round_findings(findings, attack_first_round=5)
        assert m.detected
        assert m.detection_round == 7
        assert m.detection_latency_rounds == 2

    def test_false_positives_only_outside_attack(self):
        findings = [self.finding(0, True), self.finding(5, True)]
        m = score_round_findings(findings, attack_first_round=5)
        assert m.false_positive_rounds == 1
        assert m.true_positive_rounds == 1

    def test_recall(self):
        findings = [self.finding(i, i % 2 == 0) for i in range(4, 8)]
        m = score_round_findings(findings, attack_first_round=4)
        assert m.recall == pytest.approx(0.5)


class TestPrCurves:
    def test_fig5_2_monotone_then_saturating(self):
        curve = ex.fig5_2_pr_pi2("ebone", ks=(1, 2, 3))
        rows = curve.rows()
        assert rows[0][2] < rows[1][2] <= rows[2][2]  # mean grows

    def test_fig5_4_smaller_than_fig5_2(self):
        pi2 = ex.fig5_2_pr_pi2("ebone", ks=(2,)).series[2]
        pik2 = ex.fig5_4_pr_pik2("ebone", ks=(2,)).series[2]
        assert pik2["mean"] < pi2["mean"]

    def test_state_overhead_vs_watchers(self):
        result = ex.state_overhead("ebone", ks=(2,))
        assert result.pik2_counters[2]["mean"] < result.watchers_mean


class TestConfidenceCurve:
    def test_fig6_2_shape(self):
        curve = ex.fig6_2_confidence_curve(q_limit=30_000, sigma=1_000)
        confidences = [c for _, c in curve.points]
        assert confidences[0] > 0.999  # empty queue: drop is damning
        assert confidences[-1] < 0.5  # full queue: drop is plausible
        assert confidences == sorted(confidences, reverse=True)

    def test_fig6_2_sigma_widens_transition(self):
        sharp = ex.fig6_2_confidence_curve(sigma=200).points
        smooth = ex.fig6_2_confidence_curve(sigma=5_000).points
        # with larger sigma, mid-queue confidence is further from extremes
        mid = len(sharp) // 2
        assert abs(smooth[mid][1] - 0.5) <= abs(sharp[mid][1] - 0.5) + 1e-9


class TestBaselineDemos:
    def test_watchers_flaw_and_fix(self):
        demo = ex.watchers_flaw_demo()
        assert not demo.values["original_detects_attacker"]
        assert demo.values["fixed_detects_attacker"]

    def test_perlman_framing(self):
        demo = ex.perlman_collusion_demo()
        assert demo.values["perlmand_framed_correct_link"]

    def test_sectrace_framing(self):
        demo = ex.sectrace_framing_demo()
        assert demo.values["framed_correct_link"]

    def test_awerbuch_log_rounds(self):
        demo = ex.awerbuch_localization_demo()
        assert demo.values["contains_attacker"]
        assert demo.values["rounds"] <= demo.values["log2_bound"] + 1


class TestDropTailScenariosFast:
    """Reduced-duration versions of Figs 6.5/6.6 (full runs in benches)."""

    def test_no_attack_silent(self):
        result = ex._run_droptail("fast-benign", None,
                                  learning_until=14.0,
                                  monitor_rounds=(7, 19),
                                  attack_at=20.0, end=42.0)
        assert result.false_positives == 0

    def test_attack_detected(self):
        from repro.net.adversary import DropFlowAttack
        result = ex._run_droptail(
            "fast-attack",
            lambda s: DropFlowAttack(["tcp1"], fraction=0.25, seed=1),
            learning_until=14.0, monitor_rounds=(7, 19),
            attack_at=20.0, end=42.0,
        )
        assert result.detected
        assert result.false_positives == 0
        assert result.malicious_drops_truth > 0
