"""Unit tests for the conservation-of-traffic TV predicates (§4.2.1)."""

import pytest

from repro.core.summaries import SummaryPolicy, TrafficSummary
from repro.core.validation import (
    reorder_metric,
    tv_content,
    tv_flow,
    tv_order,
    tv_timeliness,
    validate,
)


def summary(policy, fps=(), ordered=None, timestamps=None, count=None,
            direction="sent"):
    fps = tuple(fps)
    if ordered is None and policy in (SummaryPolicy.ORDER,
                                      SummaryPolicy.TIMELINESS):
        ordered = fps
    return TrafficSummary(
        router="r", segment=("a", "b"), round_index=0, direction=direction,
        policy=policy,
        count=count if count is not None else len(fps),
        byte_count=1000 * (count if count is not None else len(fps)),
        fingerprints=(frozenset(fps) if policy is not SummaryPolicy.FLOW
                      else None),
        ordered=tuple(ordered) if ordered is not None else None,
        timestamps=tuple(timestamps) if timestamps is not None else None,
    )


class TestFlow:
    def test_equal_counts_pass(self):
        up = summary(SummaryPolicy.FLOW, count=10)
        down = summary(SummaryPolicy.FLOW, count=10)
        assert tv_flow(up, down).ok

    def test_loss_detected(self):
        up = summary(SummaryPolicy.FLOW, count=10)
        down = summary(SummaryPolicy.FLOW, count=4)
        result = tv_flow(up, down)
        assert not result.ok
        assert result.missing == 6

    def test_fabrication_detected(self):
        up = summary(SummaryPolicy.FLOW, count=4)
        down = summary(SummaryPolicy.FLOW, count=10)
        result = tv_flow(up, down)
        assert not result.ok
        assert result.extra == 6

    def test_threshold_absorbs_congestion(self):
        up = summary(SummaryPolicy.FLOW, count=10)
        down = summary(SummaryPolicy.FLOW, count=8)
        assert tv_flow(up, down, threshold=2).ok
        assert not tv_flow(up, down, threshold=1).ok

    def test_flow_cannot_see_modification(self):
        """The §2.4.1 fragility: counts hide a swap."""
        up = summary(SummaryPolicy.FLOW, count=10)
        down = summary(SummaryPolicy.FLOW, count=10)
        assert tv_flow(up, down).ok  # even though contents could differ


class TestContent:
    def test_equal_sets_pass(self):
        up = summary(SummaryPolicy.CONTENT, fps=(1, 2, 3))
        down = summary(SummaryPolicy.CONTENT, fps=(3, 2, 1))
        assert tv_content(up, down).ok

    def test_loss_detected(self):
        up = summary(SummaryPolicy.CONTENT, fps=(1, 2, 3))
        down = summary(SummaryPolicy.CONTENT, fps=(1,))
        result = tv_content(up, down)
        assert not result.ok
        assert result.missing == 2

    def test_modification_counts_twice(self):
        """A modified packet = one missing + one extra fingerprint."""
        up = summary(SummaryPolicy.CONTENT, fps=(1, 2, 3))
        down = summary(SummaryPolicy.CONTENT, fps=(1, 2, 99))
        result = tv_content(up, down)
        assert result.missing == 1
        assert result.extra == 1
        assert result.discrepancy == 2

    def test_policy_mismatch_rejected(self):
        up = summary(SummaryPolicy.FLOW, count=1)
        down = summary(SummaryPolicy.CONTENT, fps=(1,))
        with pytest.raises(ValueError):
            tv_content(up, down)

    def test_flow_policy_unsupported(self):
        up = summary(SummaryPolicy.FLOW, count=1)
        down = summary(SummaryPolicy.FLOW, count=1)
        with pytest.raises(ValueError):
            tv_content(up, down)


class TestReorderMetric:
    def test_identical_order_zero(self):
        assert reorder_metric((1, 2, 3, 4), (1, 2, 3, 4)) == 0

    def test_single_swap(self):
        assert reorder_metric((1, 2, 3, 4), (1, 3, 2, 4)) == 1

    def test_reversal_is_worst(self):
        assert reorder_metric((1, 2, 3, 4), (4, 3, 2, 1)) == 3

    def test_ignores_lost_packets(self):
        # 2 was lost; the remaining order is intact.
        assert reorder_metric((1, 2, 3, 4), (1, 3, 4)) == 0

    def test_ignores_fabricated_packets(self):
        assert reorder_metric((1, 2, 3), (1, 99, 2, 3)) == 0

    def test_one_displaced_packet(self):
        # 1 delayed behind three others: one packet out of place.
        assert reorder_metric((1, 2, 3, 4), (2, 3, 4, 1)) == 1

    def test_empty(self):
        assert reorder_metric((), ()) == 0


class TestOrder:
    def test_in_order_passes(self):
        up = summary(SummaryPolicy.ORDER, fps=(1, 2, 3))
        down = summary(SummaryPolicy.ORDER, fps=(1, 2, 3))
        assert tv_order(up, down).ok

    def test_reordering_detected(self):
        up = summary(SummaryPolicy.ORDER, fps=(1, 2, 3, 4),
                     ordered=(1, 2, 3, 4))
        down = summary(SummaryPolicy.ORDER, fps=(1, 2, 3, 4),
                       ordered=(4, 1, 2, 3))
        result = tv_order(up, down)
        assert not result.ok
        assert result.reordered == 1

    def test_reorder_threshold(self):
        up = summary(SummaryPolicy.ORDER, fps=(1, 2, 3, 4),
                     ordered=(1, 2, 3, 4))
        down = summary(SummaryPolicy.ORDER, fps=(1, 2, 3, 4),
                       ordered=(2, 1, 3, 4))
        assert tv_order(up, down, reorder_threshold=1).ok

    def test_content_failure_propagates(self):
        up = summary(SummaryPolicy.ORDER, fps=(1, 2, 3), ordered=(1, 2, 3))
        down = summary(SummaryPolicy.ORDER, fps=(1, 2), ordered=(1, 2))
        assert not tv_order(up, down).ok


class TestTimeliness:
    def ts(self, *pairs):
        return tuple(pairs)

    def test_on_time_passes(self):
        up = summary(SummaryPolicy.TIMELINESS, fps=(1, 2),
                     timestamps=self.ts((1, 0.0), (2, 0.1)))
        down = summary(SummaryPolicy.TIMELINESS, fps=(1, 2),
                       timestamps=self.ts((1, 0.01), (2, 0.11)))
        assert tv_timeliness(up, down, max_delay=0.05).ok

    def test_delay_detected(self):
        up = summary(SummaryPolicy.TIMELINESS, fps=(1, 2),
                     timestamps=self.ts((1, 0.0), (2, 0.1)))
        down = summary(SummaryPolicy.TIMELINESS, fps=(1, 2),
                       timestamps=self.ts((1, 0.5), (2, 0.11)))
        result = tv_timeliness(up, down, max_delay=0.05)
        assert not result.ok
        assert result.delayed == 1

    def test_delayed_threshold(self):
        up = summary(SummaryPolicy.TIMELINESS, fps=(1,),
                     timestamps=self.ts((1, 0.0)))
        down = summary(SummaryPolicy.TIMELINESS, fps=(1,),
                       timestamps=self.ts((1, 0.5)))
        assert tv_timeliness(up, down, max_delay=0.05,
                             delayed_threshold=1).ok


class TestDispatch:
    def test_validate_routes_by_policy(self):
        up = summary(SummaryPolicy.CONTENT, fps=(1, 2))
        down = summary(SummaryPolicy.CONTENT, fps=(1, 2))
        assert validate(up, down).ok

    def test_timeliness_requires_max_delay(self):
        up = summary(SummaryPolicy.TIMELINESS, fps=(1,),
                     timestamps=((1, 0.0),))
        down = summary(SummaryPolicy.TIMELINESS, fps=(1,),
                       timestamps=((1, 0.0),))
        with pytest.raises(ValueError):
            validate(up, down)
