"""Tests for the §2.3 centralized active-replication detector."""

import random


from repro.core.replica import ReplicaDetector
from repro.net.adversary import (
    DelayAttack,
    DropFlowAttack,
    FabricateAttack,
    ModifyAttack,
)
from repro.net.queues import DropTailQueue, REDParams, REDQueue
from repro.net.router import Network
from repro.net.routing import install_static_routes
from repro.net.topology import MBPS, Topology, chain
from repro.net.traffic import CBRSource, PoissonSource


def droptail_net():
    net = Network(chain(3, bandwidth=2 * MBPS, delay=0.001))
    install_static_routes(net)
    detector = ReplicaDetector(net, "r2")
    net.add_tap(detector)
    return net, detector


class TestDropTailReplica:
    def test_correct_router_matches_exactly(self):
        net, detector = droptail_net()
        CBRSource(net, "r1", "r3", "f", rate_bps=1_500_000, duration=2.0)
        net.run(4.0)
        assert detector.compare() == []
        assert not detector.alarmed()

    def test_correct_router_matches_under_congestion(self):
        """Benign queue overflow is *predicted*, not alarmed."""
        topo = Topology("t")
        topo.add_link("s", "r", bandwidth=20 * MBPS, delay=0.001)
        topo.add_link("r", "d", bandwidth=1 * MBPS, delay=0.001,
                      queue_limit=8_000)
        net = Network(topo)
        install_static_routes(net)
        detector = ReplicaDetector(net, "r")
        net.add_tap(detector)
        PoissonSource(net, "s", "d", "f", rate_pps=200, duration=3.0, seed=1)
        net.run(6.0)
        queue = net.routers["r"].interfaces["d"].queue
        assert queue.drops > 0  # congestion happened
        assert detector.compare() == []

    def test_dropper_caught(self):
        net, detector = droptail_net()
        net.routers["r2"].compromise = DropFlowAttack(["f"], fraction=0.3,
                                                      seed=1)
        CBRSource(net, "r1", "r3", "f", rate_bps=1_000_000, duration=2.0)
        net.run(4.0)
        kinds = {d.kind for d in detector.compare()}
        assert "missing" in kinds

    def test_modifier_caught_both_ways(self):
        net, detector = droptail_net()
        net.routers["r2"].compromise = ModifyAttack(fraction=0.3, seed=1)
        CBRSource(net, "r1", "r3", "f", rate_bps=1_000_000, duration=2.0)
        net.run(4.0)
        kinds = {d.kind for d in detector.compare()}
        assert kinds >= {"missing", "unexpected"}

    def test_delayer_caught(self):
        net, detector = droptail_net()
        net.routers["r2"].compromise = DelayAttack(0.5, flows=["f"])
        CBRSource(net, "r1", "r3", "f", rate_bps=500_000, duration=1.0)
        net.run(1.4)  # replica expects outputs the router has not sent yet
        assert any(d.kind == "missing" for d in detector.compare())

    def test_fabricator_caught(self):
        net, detector = droptail_net()
        attack = FabricateAttack(net, "r2", "r3", forged_src="r1",
                                 forged_dst="r3", flow_id="forged",
                                 rate_pps=20)
        net.routers["r2"].compromise = attack
        attack.start(0.0)
        CBRSource(net, "r1", "r3", "f", rate_bps=500_000, duration=2.0)
        net.run(4.0)
        assert any(d.kind == "unexpected" for d in detector.compare())


class TestREDReplicaNondeterminism:
    """§2.3: the replica must share the randomization source."""

    def build(self, shared_seed):
        params = REDParams(min_th=4_000, max_th=12_000, max_p=0.2,
                           weight=0.02, byte_mode=False)
        topo = Topology("t")
        topo.add_link("s", "r", bandwidth=20 * MBPS, delay=0.001)
        topo.add_link("r", "d", bandwidth=1 * MBPS, delay=0.001,
                      queue_limit=20_000)

        def qf(link):
            if link.src == "r" and link.dst == "d":
                return REDQueue(link.queue_limit, params=params,
                                rng=random.Random(42))
            return DropTailQueue(link.queue_limit)

        net = Network(topo, queue_factory=qf)
        install_static_routes(net)
        seeds = {("r", "d"): 42} if shared_seed else None
        detector = ReplicaDetector(net, "r", red_seeds=seeds)
        net.add_tap(detector)
        PoissonSource(net, "s", "d", "f", rate_pps=160, duration=5.0,
                      seed=9)
        net.run(8.0)
        return detector

    def test_shared_rng_is_exact(self):
        detector = self.build(shared_seed=True)
        assert detector.compare() == []

    def test_divergent_rng_false_alarms_on_correct_router(self):
        detector = self.build(shared_seed=False)
        assert len(detector.compare()) > 10
