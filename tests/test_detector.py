"""Unit tests for the failure-detector specification machinery (§4.2.2)."""

from repro.core.detector import (
    DetectorState,
    Suspicion,
    accuracy_report,
    completeness_report,
)


def susp(segment, by="x", lo=0.0, hi=1.0, reason=""):
    return Suspicion(segment=tuple(segment), interval=(lo, hi),
                     suspected_by=by, reason=reason)


class TestSuspicion:
    def test_contains(self):
        s = susp(("a", "b"))
        assert s.contains("a")
        assert not s.contains("c")

    def test_overlaps(self):
        s = susp(("a", "b"), lo=5.0, hi=10.0)
        assert s.overlaps(8.0, 12.0)
        assert not s.overlaps(10.0, 12.0)


class TestDetectorState:
    def test_dedupes(self):
        state = DetectorState("r")
        assert state.suspect(susp(("a", "b")))
        assert not state.suspect(susp(("a", "b")))
        assert len(state.suspicions) == 1

    def test_different_reasons_kept(self):
        state = DetectorState("r")
        state.suspect(susp(("a", "b"), reason="one"))
        state.suspect(susp(("a", "b"), reason="two"))
        assert len(state.suspicions) == 2

    def test_suspects_and_precision(self):
        state = DetectorState("r")
        state.suspect(susp(("a", "b", "c")))
        assert state.suspects("b")
        assert not state.suspects("z")
        assert state.precision() == 3

    def test_empty_precision(self):
        assert DetectorState("r").precision() == 0


class TestAccuracyReport:
    def test_accurate_when_faulty_in_segment(self):
        states = {"r": DetectorState("r")}
        states["r"].suspect(susp(("a", "bad")))
        report = accuracy_report(states, faulty_routers={"bad"})
        assert report.accurate
        assert report.accurate_suspicions == 1

    def test_false_positive_counted(self):
        states = {"r": DetectorState("r")}
        states["r"].suspect(susp(("a", "b")))
        report = accuracy_report(states, faulty_routers={"bad"})
        assert not report.accurate
        assert len(report.false_positives) == 1

    def test_precision_bound_enforced(self):
        states = {"r": DetectorState("r")}
        states["r"].suspect(susp(("a", "b", "bad")))
        ok = accuracy_report(states, faulty_routers={"bad"}, max_precision=3)
        too_long = accuracy_report(states, faulty_routers={"bad"},
                                   max_precision=2)
        assert ok.accurate
        assert not too_long.accurate

    def test_faulty_routers_suspicions_ignored(self):
        states = {"bad": DetectorState("bad"), "r": DetectorState("r")}
        states["bad"].suspect(susp(("x", "y")))  # bogus framing attempt
        report = accuracy_report(states, faulty_routers={"bad"})
        assert report.total_suspicions == 0

    def test_precision_reported(self):
        states = {"r": DetectorState("r")}
        states["r"].suspect(susp(("a", "b", "bad", "c")))
        report = accuracy_report(states, faulty_routers={"bad"})
        assert report.precision == 4


class TestCompletenessReport:
    def make_states(self, suspicion_by_router):
        states = {}
        for router, suspicions in suspicion_by_router.items():
            states[router] = DetectorState(router)
            for s in suspicions:
                states[router].suspect(s)
        return states

    def test_fi_complete_when_all_correct_suspect(self):
        s = susp(("a", "bad"))
        states = self.make_states({"r1": [s], "r2": [s]})
        report = completeness_report(states, traffic_faulty={"bad"},
                                     mode="FI")
        assert report.complete
        assert report.detected == {"bad"}

    def test_fi_incomplete_when_one_misses(self):
        s = susp(("a", "bad"))
        states = self.make_states({"r1": [s], "r2": []})
        report = completeness_report(states, traffic_faulty={"bad"},
                                     mode="FI")
        assert not report.complete
        assert report.missed == {"bad"}

    def test_faulty_routers_excluded_from_quorum(self):
        s = susp(("a", "bad"))
        states = self.make_states({"r1": [s], "bad": []})
        report = completeness_report(states, traffic_faulty={"bad"},
                                     mode="FI")
        assert report.complete

    def test_fc_mode_accepts_fault_connected(self):
        # The suspicion names a different faulty router than the dropper.
        s = susp(("x", "accomplice"))
        states = self.make_states({"r1": [s]})
        report = completeness_report(
            states, traffic_faulty={"dropper"},
            faulty_routers={"dropper", "accomplice"}, mode="FC",
        )
        assert report.complete

    def test_per_router_breakdown(self):
        s = susp(("a", "bad"))
        states = self.make_states({"r1": [s], "r2": [s]})
        report = completeness_report(states, traffic_faulty={"bad"},
                                     mode="FI")
        assert report.per_router_detected["r1"] == {"bad"}
