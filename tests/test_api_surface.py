"""The narrowed public surface of repro.net / repro.core / repro.eval / repro.obs.

Two enforcement layers, both covered here:

* runtime — PEP 562 package ``__getattr__`` raises a DeprecationWarning
  when an internal submodule is reached through package attribute
  access, while every ``__all__`` name keeps working;
* lint — the API001 pass flags in-repo imports that bypass the package
  surface (``from repro.net.packet import Packet``), and the shipped
  ``src`` tree itself must be clean under it.
"""

import importlib
import os
import warnings

import pytest

import repro.core
import repro.eval
import repro.net
import repro.obs
from repro.analysis import lint_paths

SRC = os.path.normpath(os.path.join(os.path.dirname(__file__), "..", "src"))


class TestRuntimeSurface:
    def test_public_names_importable(self):
        for name in repro.net.__all__:
            with warnings.catch_warnings():
                warnings.simplefilter("error")
                assert getattr(repro.net, name) is not None
        for name in repro.core.__all__:
            with warnings.catch_warnings():
                warnings.simplefilter("error")
                assert getattr(repro.core, name) is not None
        for name in repro.eval.__all__:
            with warnings.catch_warnings():
                warnings.simplefilter("error")
                assert getattr(repro.eval, name) is not None
        for name in repro.obs.__all__:
            with warnings.catch_warnings():
                warnings.simplefilter("error")
                assert getattr(repro.obs, name) is not None

    def test_eval_public_submodules_stay_quiet(self):
        # ``experiments`` and ``registry`` are promised surface: package
        # attribute access must resolve them without any warning.
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert repro.eval.registry.__name__ == "repro.eval.registry"
            assert (repro.eval.experiments.__name__
                    == "repro.eval.experiments")

    def test_obs_public_submodules_stay_quiet(self):
        # The wall-domain modules are promised surface for the sweep
        # machinery: package attribute access must not warn.
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert (repro.obs.telemetry.__name__
                    == "repro.obs.telemetry")
            assert repro.obs.profile.__name__ == "repro.obs.profile"

    @pytest.mark.parametrize("package,submodule", [
        (repro.net, "events"),
        (repro.net, "queues"),
        (repro.core, "chi"),
        (repro.core, "summaries"),
        (repro.eval, "scenarios"),
        (repro.eval, "results"),
        (repro.eval, "specs"),
        (repro.eval, "metrics"),
        (repro.obs, "record"),
        (repro.obs, "query"),
        (repro.obs, "forensics"),
        (repro.obs, "sinks"),
    ])
    def test_internal_module_access_warns(self, package, submodule):
        with pytest.warns(DeprecationWarning, match="internal module"):
            module = getattr(package, submodule)
        assert module.__name__ == f"{package.__name__}.{submodule}"

    def test_from_package_import_submodule_warns(self):
        with pytest.warns(DeprecationWarning, match="internal module"):
            from repro.net import events  # noqa: F401

    def test_direct_submodule_import_stays_quiet(self):
        # ``from repro.net.events import Simulator`` is the accepted,
        # visible way to depend on internals — no warning.
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            module = importlib.import_module("repro.net.events")
        assert hasattr(module, "Simulator")

    def test_unknown_attribute_raises(self):
        with pytest.raises(AttributeError, match="no_such_thing"):
            repro.net.no_such_thing
        with pytest.raises(AttributeError, match="no_such_thing"):
            repro.core.no_such_thing
        with pytest.raises(AttributeError, match="no_such_thing"):
            repro.eval.no_such_thing
        with pytest.raises(AttributeError, match="no_such_thing"):
            repro.obs.no_such_thing

    def test_dir_lists_public_and_internal(self):
        listing = dir(repro.net)
        assert "Packet" in listing and "events" in listing
        listing = dir(repro.core)
        assert "ProtocolChi" in listing and "chi" in listing
        listing = dir(repro.obs)
        assert "TraceReader" in listing and "record" in listing


def _lint(tmp_path, source, package="net"):
    consumer = tmp_path / "consumer.py"
    consumer.write_text("# repro-lint: module=myapp.consumer\n" + source)
    report = lint_paths([str(consumer), os.path.join(SRC, "repro", package)],
                        rules=["API001"])
    return [(f.rule, os.path.basename(f.path)) for f in report.new
            if f.path == str(consumer)]


class TestApi001:
    def test_public_name_from_internal_module_flagged(self, tmp_path):
        assert _lint(tmp_path,
                     "from repro.net.packet import Packet\n") == [
            ("API001", "consumer.py")]

    def test_submodule_pull_from_package_flagged(self, tmp_path):
        assert _lint(tmp_path, "from repro.net import queues\n") == [
            ("API001", "consumer.py")]

    def test_plain_internal_import_flagged(self, tmp_path):
        assert _lint(tmp_path, "import repro.net.routing\n") == [
            ("API001", "consumer.py")]

    def test_package_surface_import_clean(self, tmp_path):
        assert _lint(tmp_path,
                     "from repro.net import Packet, Simulator\n") == []

    def test_unexported_name_exempt(self, tmp_path):
        # red_packet_drop_probability has no public re-export; pulling
        # it from the implementation module is the only way and allowed.
        assert _lint(
            tmp_path,
            "from repro.net.queues import red_packet_drop_probability\n",
        ) == []

    def test_rule_silent_without_package_in_run(self, tmp_path):
        consumer = tmp_path / "consumer.py"
        consumer.write_text("# repro-lint: module=myapp.consumer\n"
                            "from repro.net.packet import Packet\n")
        report = lint_paths([str(consumer)], rules=["API001"])
        assert report.new == []

    def test_eval_public_submodule_imports_clean(self, tmp_path):
        # registry/experiments are in repro.eval.__all__: importing the
        # module — or names from it — is the promised surface.
        assert _lint(tmp_path, "from repro.eval import registry\n",
                     package="eval") == []
        assert _lint(tmp_path, "import repro.eval.registry\n",
                     package="eval") == []
        assert _lint(tmp_path,
                     "from repro.eval.registry import run_experiment\n",
                     package="eval") == []

    def test_eval_internal_module_imports_flagged(self, tmp_path):
        assert _lint(tmp_path, "from repro.eval import scenarios\n",
                     package="eval") == [("API001", "consumer.py")]
        assert _lint(tmp_path, "import repro.eval.results\n",
                     package="eval") == [("API001", "consumer.py")]
        assert _lint(
            tmp_path,
            "from repro.eval.specs import ScenarioSpec\n",
            package="eval") == [("API001", "consumer.py")]

    def test_obs_internal_module_imports_flagged(self, tmp_path):
        assert _lint(tmp_path,
                     "from repro.obs.record import recorder\n",
                     package="obs") == [("API001", "consumer.py")]
        assert _lint(tmp_path, "from repro.obs import query\n",
                     package="obs") == [("API001", "consumer.py")]

    def test_obs_package_and_public_module_imports_clean(self, tmp_path):
        assert _lint(tmp_path,
                     "from repro.obs import TraceReader, recorder\n",
                     package="obs") == []
        # telemetry/profile are public modules (in repro.obs.__all__).
        assert _lint(
            tmp_path,
            "from repro.obs.telemetry import merge_telemetry\n",
            package="obs") == []
        # cli's helpers have no public re-export: direct import allowed.
        assert _lint(tmp_path,
                     "from repro.obs.cli import summarize_paths\n",
                     package="obs") == []

    def test_shipped_tree_is_clean(self):
        report = lint_paths([SRC], rules=["API001"])
        assert [f.fingerprint() for f in report.new] == []
