"""Deeper control-plane behaviours: timers, bogus alerts, dedupe."""


from repro.net.packet import Packet
from repro.net.router import Network
from repro.net.routing import LinkStateRouting
from repro.net.topology import MBPS, abilene, diamond


def converged(spf_delay=0.5, spf_hold=2.0):
    net = Network(abilene(bandwidth=10 * MBPS))
    routing = LinkStateRouting(net, spf_delay=spf_delay, spf_hold=spf_hold,
                               hello_interval=1.0, boot_spread=2.0,
                               flood_hop_delay=0.01, lsa_refresh=3.0)
    routing.start()
    net.run(12.0)
    assert routing.all_converged()
    return net, routing


class TestSpfTimers:
    def test_hold_spaces_consecutive_runs(self):
        net, routing = converged(spf_delay=0.5, spf_hold=3.0)
        t0 = net.sim.now
        routing.announce_suspicion("Denver", ("a", "b"), (0.0, 1.0))
        net.run(t0 + 1.5)
        routing.announce_suspicion("Denver", ("c", "d"), (0.0, 1.0))
        net.run(t0 + 20.0)
        runs = [t for t, name in routing.spf_runs
                if name == "Denver" and t > t0]
        assert len(runs) >= 2
        for a, b in zip(runs, runs[1:]):
            assert b - a >= 3.0 - 1e-9

    def test_pending_spf_not_duplicated(self):
        net, routing = converged()
        t0 = net.sim.now
        for i in range(5):  # burst of alerts within one delay window
            routing.announce_suspicion("Denver", (f"x{i}", f"y{i}"),
                                       (0.0, 1.0))
        net.run(t0 + 1.0)
        runs = [t for t, name in routing.spf_runs
                if name == "Denver" and t > t0]
        assert len(runs) == 1


class TestAlerts:
    def test_alert_deduplicated_by_id(self):
        net, routing = converged()
        before = len(routing.suspicion_log)
        routing.announce_suspicion("Denver", ("a", "b"), (0.0, 1.0))
        net.run(net.sim.now + 3.0)
        # Every router accepts the alert exactly once despite the flood
        # delivering multiple copies over the mesh.
        per_router = {}
        for _, alert in routing.suspicion_log[before:]:
            per_router.setdefault(alert.alert_id, 0)
        for name in net.topology.routers:
            count = sum(1 for seg in routing.state[name].suspicions
                        if seg == ("a", "b"))
            assert count == 1

    def test_bogus_alert_from_faulty_router_only_costs_a_segment(self):
        """§4.2.2: a faulty router may suspect correct routers; the
        response only drops the named segment, which a dropper could have
        nullified anyway — traffic still flows on alternatives."""
        net, routing = converged()
        seg = ("Denver", "KansasCity", "Indianapolis")
        routing.announce_suspicion("Houston", seg, (0.0, 1.0))  # a lie
        net.run(net.sim.now + 10.0)
        got = []
        net.routers["NewYork"].register_flow("f", lambda p, t: got.append(t))
        send = net.sim.now
        net.routers["Sunnyvale"].originate(
            Packet(src="Sunnyvale", dst="NewYork", flow_id="f", size=100))
        net.run(send + 1.0)
        assert got  # still reachable, just on the southern path
        assert got[0] - send > 0.027

    def test_alerts_survive_on_partial_topology(self):
        """Alert flooding works on a small graph with a failed link."""
        net = Network(diamond())
        routing = LinkStateRouting(net, spf_delay=0.2, spf_hold=0.5,
                                   hello_interval=0.5, boot_spread=0.5,
                                   flood_hop_delay=0.01, lsa_refresh=2.0,
                                   dead_interval=1.5)
        routing.start()
        net.run(5.0)
        net.fail_link("s", "a")
        net.run(10.0)
        routing.announce_suspicion("s", ("x", "y"), (0.0, 1.0))
        net.run(12.0)
        # Reaches everyone via the surviving b-path.
        for name in ("a", "b", "t"):
            assert ("x", "y") in routing.state[name].suspicions


class TestLinksUpView:
    def test_one_way_advertisement_not_usable(self):
        net, routing = converged()
        st = routing.state["Denver"]
        up = routing._links_up(st)
        # every usable link is advertised by both ends
        for (a, b) in up:
            assert (b, a) in up
