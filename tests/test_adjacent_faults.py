"""AdjacentFault(k) — the Appendix B parameterization, end to end.

The monitored segment length k+2 exists so that any run of ≤ k adjacent
faulty routers is flanked by two *correct* monitors.  These tests drive
the bound from both sides: a colluding adjacent pair escapes a protocol
provisioned for k = 1 and is caught by one provisioned for k = 2.
"""


from repro.core.detector import accuracy_report
from repro.core.pik2 import PiK2Config, ProtocolPiK2
from repro.core.segments import monitored_segments_pik2
from repro.core.summaries import PathOracle, SegmentMonitor
from repro.crypto.keys import KeyInfrastructure
from repro.dist.sync import RoundSchedule
from repro.net.adversary import DropFlowAttack
from repro.net.router import Network
from repro.net.routing import install_static_routes
from repro.net.topology import MBPS, chain
from repro.net.traffic import CBRSource


def run_collusion(k: int):
    """Chain r1..r6; r3 drops, r4 is compromised (silent validator)."""
    net = Network(chain(6, bandwidth=10 * MBPS, delay=0.001))
    paths = install_static_routes(net)
    monitor = SegmentMonitor(net, PathOracle(paths), RoundSchedule(tau=1.0))
    net.add_tap(monitor)
    segments = set().union(*monitored_segments_pik2(
        [tuple(p) for p in paths.values()], k=k).values())
    protocol = ProtocolPiK2(net, monitor, segments, KeyInfrastructure(),
                            RoundSchedule(tau=1.0),
                            config=PiK2Config(k=k))
    protocol.schedule_rounds(0, 3)
    # r3 traffic-faulty; r4 compromised (colludes by staying silent as a
    # validator — it is the sink end of every 3-segment that would
    # otherwise expose r3's forward-direction drops).
    net.routers["r3"].compromise = DropFlowAttack(["f1"], fraction=0.5,
                                                  seed=1)
    net.routers["r4"].compromise = DropFlowAttack([], fraction=0.0)
    CBRSource(net, "r1", "r6", "f1", rate_bps=800_000, duration=4.0)
    net.run(7.0)
    return net, protocol


class TestAdjacentFaultBound:
    def test_k1_misses_colluding_adjacent_pair(self):
        """With AdjacentFault(1) provisioning, two adjacent compromised
        routers cover for each other: the forward 3-segments spanning the
        dropper all end at its silent accomplice."""
        net, protocol = run_collusion(k=1)
        correct = [r for r in net.topology.routers if r not in ("r3", "r4")]
        detected = any(protocol.states[r].suspicions for r in correct)
        assert not detected

    def test_k2_catches_the_pair(self):
        """Provisioned for AdjacentFault(2), segments of length 4 put two
        *correct* ends around the colluders: r2 -> ... -> r5 exposes the
        missing traffic."""
        net, protocol = run_collusion(k=2)
        report = accuracy_report(protocol.states, {"r3", "r4"},
                                 max_precision=4)
        assert report.total_suspicions > 0
        assert report.accurate
        # Some suspicion spans both colluders with correct ends.
        spanning = [s for st in protocol.states.values()
                    for s in st.suspicions
                    if "r3" in s.segment and "r4" in s.segment]
        assert spanning

    def test_single_fault_needs_only_k1(self):
        """Sanity: a lone dropper is fully handled at k = 1."""
        net = Network(chain(6, bandwidth=10 * MBPS, delay=0.001))
        paths = install_static_routes(net)
        monitor = SegmentMonitor(net, PathOracle(paths),
                                 RoundSchedule(tau=1.0))
        net.add_tap(monitor)
        segments = set().union(*monitored_segments_pik2(
            [tuple(p) for p in paths.values()], k=1).values())
        protocol = ProtocolPiK2(net, monitor, segments, KeyInfrastructure(),
                                RoundSchedule(tau=1.0))
        protocol.schedule_rounds(0, 3)
        net.routers["r3"].compromise = DropFlowAttack(["f1"], fraction=0.5,
                                                      seed=1)
        CBRSource(net, "r1", "r6", "f1", rate_bps=800_000, duration=4.0)
        net.run(7.0)
        report = accuracy_report(protocol.states, {"r3"}, max_precision=3)
        assert report.total_suspicions > 0
        assert report.accurate
