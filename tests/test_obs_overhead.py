"""Disabled-tracing overhead: the guard must be invisible.

Every instrumented seam pays one attribute read + branch when the
global recorder is off (the hot per-packet taps pay *nothing*: no
TraceTap is attached to ``Network.taps`` at all).  This test pins the
acceptance bound as a ratio — the guard's cost, amortized over far more
evaluations than a run ever performs, stays under 2% of even a minimal
simulator workload — so it holds on slow CI machines where absolute
timings drift.
"""

from time import perf_counter

from repro.net.events import Simulator
from repro.obs.record import recorder

#: Generous upper bound on disabled-guard evaluations per simulation
#: run: Simulator.run + Network construction + detector verdicts +
#: consensus rounds is O(tens); per-packet paths have no guard at all.
GUARD_SITES_PER_RUN = 100


def _guard_seconds_per_check(rec, n=100_000, repeats=3):
    def once():
        start = perf_counter()
        for _ in range(n):
            if rec.active:
                raise AssertionError("recorder unexpectedly enabled")
        return perf_counter() - start

    return min(once() for _ in range(repeats)) / n


def _workload_seconds_per_run(events=2000, repeats=3):
    def once():
        sim = Simulator()
        remaining = [events]

        def tick():
            remaining[0] -= 1
            if remaining[0] > 0:
                sim.schedule(1.0, tick)

        sim.schedule(1.0, tick)
        start = perf_counter()
        dispatched = sim.run()
        elapsed = perf_counter() - start
        assert dispatched == events
        return elapsed

    return min(once() for _ in range(repeats))


def test_micro_overhead():
    rec = recorder()
    assert not rec.active

    per_check = _guard_seconds_per_check(rec)
    per_run = _workload_seconds_per_run()

    overhead = per_check * GUARD_SITES_PER_RUN
    ratio = overhead / per_run
    assert ratio < 0.02, (
        f"disabled-recorder guard costs {overhead * 1e6:.2f} µs per run "
        f"({ratio:.2%} of a {per_run * 1e3:.2f} ms minimal workload); "
        f"the observability subsystem must be free when off")


def test_disabled_network_attaches_no_tap():
    # The per-packet fast path depends on this: with the recorder off,
    # Network.__init__ must not install a TraceTap at all.
    from repro.net.router import Network, Topology

    assert not recorder().active
    topo = Topology()
    topo.add_link("a", "b", bandwidth=1e6, delay=0.001)
    assert Network(topo).taps == []
