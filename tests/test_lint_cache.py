"""Tests for the incremental lint cache and ``--jobs`` parallelism.

Soundness contract: a warm run analyzes zero files and reports exactly
what the cold run reported; editing a file re-analyzes only that file
(the index digest is line-number-blind), while changing a function
signature shifts the digest and flushes everyone.
"""

import json
import os
import shutil

import pytest

from repro.analysis import LintCache, cli, lint_paths

TESTS_DIR = os.path.dirname(__file__)
FIXTURES = os.path.join(TESTS_DIR, "fixtures", "lint")


def run_cli(*argv):
    return cli.main(["lint", *argv])


def snapshot(report):
    return {
        "new": [(f.path, f.rule, f.line, f.fingerprint())
                for f in report.new],
        "suppressed": [(f.path, f.rule, f.line)
                       for f, _ in report.suppressed],
        "exit_code": report.exit_code,
    }


@pytest.fixture
def tree(tmp_path):
    src = tmp_path / "tree"
    src.mkdir()
    for name in ("det_bad.py", "det_good.py", "tdm_bad.py"):
        shutil.copy(os.path.join(FIXTURES, name), src / name)
    return src


def test_warm_run_analyzes_nothing_and_matches_cold(tree, tmp_path):
    cache_dir = str(tmp_path / "cache")
    cold = lint_paths([str(tree)], cache=LintCache(cache_dir))
    assert cold.files_checked == 3
    assert cold.files_analyzed == 3 and cold.files_cached == 0

    warm = lint_paths([str(tree)], cache=LintCache(cache_dir))
    assert warm.files_analyzed == 0 and warm.files_cached == 3
    assert snapshot(warm) == snapshot(cold)


def test_comment_edit_reanalyzes_only_that_file(tree, tmp_path):
    cache_dir = str(tmp_path / "cache")
    lint_paths([str(tree)], cache=LintCache(cache_dir))

    target = tree / "det_good.py"
    target.write_text(target.read_text() + "# trailing comment\n")
    after = lint_paths([str(tree)], cache=LintCache(cache_dir))
    # The index digest hashes signatures, not line numbers, so the
    # comment-only edit invalidates exactly one entry.
    assert after.files_analyzed == 1 and after.files_cached == 2


def test_signature_change_flushes_every_file(tree, tmp_path):
    cache_dir = str(tmp_path / "cache")
    lint_paths([str(tree)], cache=LintCache(cache_dir))

    target = tree / "det_good.py"
    target.write_text(target.read_text()
                      + "\n\ndef grown(alpha, beta):\n    return alpha\n")
    # A new function is a cross-file fact (REG/API/TDM002 can see it),
    # so the digest shifts and the whole tree re-analyzes.
    after = lint_paths([str(tree)], cache=LintCache(cache_dir))
    assert after.files_analyzed == 3 and after.files_cached == 0


def test_disk_entries_round_trip_findings(tree, tmp_path):
    cache_dir = str(tmp_path / "cache")
    lint_paths([str(tree)], cache=LintCache(cache_dir))
    entries = [os.path.join(cache_dir, name)
               for name in os.listdir(cache_dir)]
    assert len(entries) == 3
    payloads = [json.load(open(p)) for p in entries]
    assert all(p["schema"] == "repro.lint-cache/v1" for p in payloads)
    assert sum(len(p["findings"]) for p in payloads) >= 2


def test_cli_warm_run_reports_zero_analyzed(tree, tmp_path, capsys):
    cache_dir = str(tmp_path / "cache")
    argv = ("--no-baseline", "--cache-dir", cache_dir, "--format",
            "json", str(tree))
    cold_exit = run_cli(*argv)
    cold = json.loads(capsys.readouterr().out)
    warm_exit = run_cli(*argv)
    warm = json.loads(capsys.readouterr().out)

    assert cold["files_analyzed"] == 3
    assert warm["files_analyzed"] == 0
    assert warm["files_cached"] == 3
    assert warm_exit == cold_exit
    assert warm["new"] == cold["new"]


def test_no_cache_flag_disables_caching(tree, tmp_path, capsys):
    cache_dir = str(tmp_path / "cache")
    run_cli("--no-baseline", "--cache-dir", cache_dir, str(tree))
    capsys.readouterr()
    assert not os.path.exists(cache_dir) or os.listdir(cache_dir)
    run_cli("--no-baseline", "--no-cache", str(tree))
    out = capsys.readouterr().out
    assert "(3 analyzed, 0 cached)" in out


def test_parallel_jobs_match_serial(tree):
    serial = lint_paths([str(tree)], jobs=1)
    parallel = lint_paths([str(tree)], jobs=2)
    assert parallel.to_dict() == serial.to_dict()
    assert snapshot(parallel) == snapshot(serial)


def test_parallel_jobs_with_cache(tree, tmp_path):
    cache_dir = str(tmp_path / "cache")
    cold = lint_paths([str(tree)], cache=LintCache(cache_dir), jobs=2)
    warm = lint_paths([str(tree)], cache=LintCache(cache_dir), jobs=2)
    assert cold.files_analyzed == 3
    assert warm.files_analyzed == 0 and warm.files_cached == 3
    assert snapshot(warm) == snapshot(cold)
