"""The ``repro bench`` regression harness.

Covers the workload registry, the runner's BENCH.json history schema,
A/B comparison semantics (including the CI gate's failure modes), and
the CLI surface — ``python -m repro bench {run,compare,list,sweep}``
plus the removal stub left behind by the old ``repro obs bench`` alias.
"""

import json
import os
import random

import pytest

from repro.__main__ import main
from repro.bench import (
    BENCH_SCHEMA,
    CompareReport,
    Workload,
    WORKLOADS,
    append_run,
    compare_runs,
    get_workload,
    latest_run,
    load_history,
    load_run,
    run_suite,
    run_workload,
)
from repro.bench.workloads import SUITES
from repro.eval import registry
from repro.eval.registry import ExperimentSpec

TOY = "toy-bench-test"


def toy_experiment(scale: float = 1.0, seed: int = 0):
    rng = random.Random(seed)
    return {"value": scale * rng.random(), "seed": seed}


@pytest.fixture
def toy_registered():
    registry.register(ExperimentSpec(TOY, toy_experiment,
                                     lambda r: [str(r)]))
    yield TOY
    registry.unregister(TOY)


class TestWorkloadRegistry:
    def test_required_workloads_registered(self):
        expected = {"chi", "pi2", "pik2", "fatih", "tcp-heavy",
                    "adversary-heavy", "adversary-matrix"}
        assert expected == set(WORKLOADS)

    def test_reps_scale_with_suite(self):
        for workload in WORKLOADS.values():
            assert workload.reps_for("full") >= workload.reps_for("smoke") >= 1
        assert SUITES == ("smoke", "full")

    def test_unknown_workload_raises(self):
        with pytest.raises(KeyError):
            get_workload("no-such-workload")

    def test_workload_experiments_resolve(self):
        for workload in WORKLOADS.values():
            assert registry.get(workload.experiment) is not None


class TestRunner:
    def test_run_workload_counts_events(self, toy_registered):
        workload = Workload(name="toy", experiment=TOY,
                            description="toy", smoke_reps=1, full_reps=1)
        result = run_workload(workload, reps=2)
        assert result["reps"] == 2
        assert result["wall_s"] > 0.0
        assert result["events_per_s"] >= 0.0
        assert result["experiment"] == TOY

    def test_history_schema_and_append(self, toy_registered, tmp_path,
                                       monkeypatch):
        toy = Workload(name="toy", experiment=TOY,
                       description="toy", smoke_reps=1, full_reps=1)
        monkeypatch.setitem(WORKLOADS, "toy", toy)
        entry = run_suite(suite="smoke", workloads=["toy"])
        assert entry["suite"] == "smoke"
        assert "toy" in entry["workloads"]

        path = tmp_path / "BENCH.json"
        append_run(str(path), entry)
        append_run(str(path), entry)
        history = load_history(str(path))
        assert history["schema"] == BENCH_SCHEMA
        assert len(history["runs"]) == 2
        assert latest_run(history) == history["runs"][-1]

    def test_load_history_rejects_wrong_schema(self, tmp_path):
        path = tmp_path / "BENCH.json"
        path.write_text(json.dumps({"schema": "other/v9", "runs": []}))
        with pytest.raises(ValueError):
            load_history(str(path))


def _entry(rates):
    return {
        "suite": "smoke",
        "timestamp": "2026-01-01T00:00:00Z",
        "platform": "test",
        "workloads": {
            name: {"experiment": name, "reps": 1, "wall_s": 1.0,
                   "sim_events": int(rate), "events_per_s": rate}
            for name, rate in rates.items()
        },
    }


class TestCompare:
    def test_equal_runs_pass_gate(self):
        base = _entry({"chi": 1000.0})
        report = compare_runs(base, _entry({"chi": 1000.0}))
        assert report.ok(0.9)
        assert not report.failures(0.9)

    def test_planted_regression_fails_gate(self):
        # The CI gate contract: a >10% events/sec drop vs the floor
        # must fail at --fail-below 0.9.
        base = _entry({"chi": 1000.0, "pi2": 500.0})
        regressed = compare_runs(base, _entry({"chi": 850.0, "pi2": 500.0}))
        assert not regressed.ok(0.9)
        assert [row.name for row in regressed.failures(0.9)] == ["chi"]

    def test_10_percent_drop_still_passes(self):
        base = _entry({"chi": 1000.0})
        report = compare_runs(base, _entry({"chi": 900.0}))
        assert report.ok(0.9)

    def test_missing_workload_fails(self):
        base = _entry({"chi": 1000.0, "pi2": 500.0})
        report = compare_runs(base, _entry({"chi": 1000.0}))
        assert report.missing == ["pi2"]
        assert not report.ok(0.9)

    def test_new_only_workload_ignored(self):
        base = _entry({"chi": 1000.0})
        report = compare_runs(base, _entry({"chi": 1000.0,
                                            "extra": 1.0}))
        assert report.ok(0.9)
        assert [row.name for row in report.rows] == ["chi"]

    def test_load_run_accepts_history_and_bare_entry(self, tmp_path):
        entry = _entry({"chi": 1000.0})
        bare = tmp_path / "floor.json"
        bare.write_text(json.dumps(entry))
        history = tmp_path / "history.json"
        history.write_text(json.dumps(
            {"schema": BENCH_SCHEMA, "runs": [_entry({"chi": 1.0}), entry]}))
        assert load_run(str(bare))["workloads"]["chi"]["events_per_s"] == 1000.0
        assert (load_run(str(history))["workloads"]["chi"]["events_per_s"]
                == 1000.0)

    def test_format_marks_failures(self):
        report = compare_runs(_entry({"chi": 1000.0}),
                              _entry({"chi": 500.0}))
        text = "\n".join(report.format(0.9))
        assert "FAIL" in text


class TestCli:
    def test_bench_list(self, capsys):
        assert main(["bench", "list"]) == 0
        out = capsys.readouterr().out
        assert "chi" in out and "adversary-heavy" in out

    def test_bench_run_records_history(self, toy_registered, tmp_path,
                                       capsys, monkeypatch):
        toy = Workload(name="toy", experiment=TOY, description="toy",
                       smoke_reps=1, full_reps=1)
        monkeypatch.setitem(WORKLOADS, "toy", toy)
        out = tmp_path / "BENCH.json"
        assert main(["bench", "run", "--suite", "smoke",
                     "--workload", "toy", "--out", str(out)]) == 0
        history = load_history(str(out))
        assert [run["suite"] for run in history["runs"]] == ["smoke"]
        assert main(["bench", "run", "--workload", "toy", "--no-record",
                     "--out", str(out)]) == 0
        assert len(load_history(str(out))["runs"]) == 1  # unchanged

    def test_bench_run_unknown_workload_exits_2(self, capsys):
        assert main(["bench", "run", "--workload", "nope"]) == 2

    def test_bench_compare_gate_exit_codes(self, tmp_path, capsys):
        floor = tmp_path / "floor.json"
        floor.write_text(json.dumps(_entry({"chi": 1000.0})))
        good = tmp_path / "good.json"
        good.write_text(json.dumps(_entry({"chi": 1000.0})))
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps(_entry({"chi": 850.0})))

        assert main(["bench", "compare", str(floor), str(good),
                     "--fail-below", "0.9"]) == 0
        assert main(["bench", "compare", str(floor), str(bad),
                     "--fail-below", "0.9"]) == 1
        assert main(["bench", "compare", str(tmp_path / "absent.json"),
                     str(good)]) == 2

    def test_checked_in_floor_well_formed(self):
        here = os.path.dirname(__file__)
        floor = load_run(os.path.join(here, "..", "benchmarks",
                                      "bench-floor.json"))
        history = load_run(os.path.join(here, "..", "benchmarks",
                                        "BENCH.json"))
        report = compare_runs(floor, history)
        assert isinstance(report, CompareReport)
        # The committed post-overhaul run clears its own floor.
        assert report.ok(0.9), report.format(0.9)

    def test_bench_sweep_distills_sweep_dir(self, toy_registered, tmp_path,
                                            capsys):
        out = tmp_path / "sweep"
        assert main(["sweep", TOY, "--seeds", "1", "--jobs", "1",
                     "--no-cache", "--out", str(out)]) == 0
        bench_out = tmp_path / "BENCH_obs.json"
        assert main(["bench", "sweep", str(out),
                     "--out", str(bench_out)]) == 0
        bench = json.loads(bench_out.read_text())
        assert bench["schema"] == "repro.obs.bench/v1"
        assert bench["wall_s"] >= 0.0

    def test_obs_bench_alias_removed(self, tmp_path, capsys):
        assert main(["obs", "bench", str(tmp_path)]) == 2
        err = capsys.readouterr().err
        assert "removed" in err and "repro bench sweep" in err
