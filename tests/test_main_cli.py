"""Smoke tests for the ``python -m repro`` command-line interface."""

import json
import os

import pytest

from repro.__main__ import main


class TestList:
    def test_exit_zero(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig6_6" in out
        assert "[seeded]" in out


class TestRun:
    def test_unknown_name_exits_2(self, capsys):
        assert main(["run", "definitely-not-an-experiment"]) == 2
        err = capsys.readouterr().err
        assert "unknown experiment" in err

    def test_runs_fast_experiment(self, capsys):
        assert main(["run", "baselines"]) == 0
        assert "watchers-consorting" in capsys.readouterr().out

    def test_seed_ignored_for_seedless(self, capsys):
        assert main(["run", "baselines", "--seed", "7"]) == 0
        assert "takes no seed" in capsys.readouterr().err


class TestSweep:
    def test_help_exits_zero(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["sweep", "--help"])
        assert excinfo.value.code == 0
        out = capsys.readouterr().out
        assert "--seeds" in out and "--jobs" in out and "--out" in out

    def test_unknown_experiment_exits_2(self, tmp_path, capsys):
        assert main(["sweep", "definitely-not-an-experiment",
                     "--out", str(tmp_path / "out"),
                     "--cache-dir", str(tmp_path / "cache")]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_bad_param_exits_2(self, tmp_path, capsys):
        assert main(["sweep", "baselines", "--param", "nope",
                     "--out", str(tmp_path / "out"),
                     "--cache-dir", str(tmp_path / "cache")]) == 2
        assert "bad --param" in capsys.readouterr().err

    def test_tiny_sweep_writes_artifacts(self, tmp_path, capsys):
        out_dir = tmp_path / "out"
        assert main(["sweep", "baselines", "--seeds", "1", "--jobs", "1",
                     "--out", str(out_dir),
                     "--cache-dir", str(tmp_path / "cache")]) == 0
        assert "cache:" in capsys.readouterr().out
        with open(os.path.join(str(out_dir), "sweep.json")) as handle:
            manifest = json.load(handle)
        assert manifest["schema"] == "repro.sweep/v4"
        assert manifest["n_runs"] == 1
