"""Tests for the static-threshold baseline and its §6.4.3 unsoundness."""

import pytest

from repro.core.static_threshold import StaticThresholdDetector
from repro.core.summaries import SummaryPolicy, TrafficSummary


def summary(fps, direction="sent"):
    fps = frozenset(fps)
    return TrafficSummary(
        router="r", segment=("a", "b", "c"), round_index=0,
        direction=direction, policy=SummaryPolicy.CONTENT,
        count=len(fps), byte_count=1000 * len(fps), fingerprints=fps,
    )


class TestStaticThreshold:
    def test_requires_some_threshold(self):
        with pytest.raises(ValueError):
            StaticThresholdDetector()

    def test_count_threshold(self):
        det = StaticThresholdDetector(loss_threshold=2)
        verdict = det.observe_round(("a", "b", "c"), 0,
                                    summary(range(10)), summary(range(7)))
        assert verdict.losses == 3
        assert verdict.alarmed

    def test_below_threshold_silent(self):
        det = StaticThresholdDetector(loss_threshold=5)
        verdict = det.observe_round(("a", "b", "c"), 0,
                                    summary(range(10)), summary(range(7)))
        assert not verdict.alarmed

    def test_rate_threshold(self):
        det = StaticThresholdDetector(rate_threshold=0.2)
        verdict = det.observe_round(("a", "b", "c"), 0,
                                    summary(range(10)), summary(range(7)))
        assert verdict.rate == pytest.approx(0.3)
        assert verdict.alarmed

    def test_alarms_listing(self):
        det = StaticThresholdDetector(loss_threshold=0)
        det.observe_round(("a", "b", "c"), 0, summary(range(5)),
                          summary(range(5)))
        det.observe_round(("a", "b", "c"), 1, summary(range(5)),
                          summary(range(4)))
        assert len(det.alarms()) == 1
        assert det.alarms()[0].round_index == 1

    def test_counter_fallback_without_fingerprints(self):
        det = StaticThresholdDetector(loss_threshold=1)
        up = TrafficSummary(router="r", segment=("a", "b"), round_index=0,
                            direction="sent", policy=SummaryPolicy.FLOW,
                            count=10, byte_count=10_000)
        down = TrafficSummary(router="r", segment=("a", "b"), round_index=0,
                              direction="received", policy=SummaryPolicy.FLOW,
                              count=7, byte_count=7_000)
        verdict = det.observe_round(("a", "b"), 0, up, down)
        assert verdict.losses == 3

    def test_false_positive_accounting(self):
        det = StaticThresholdDetector(loss_threshold=0)
        det.observe_round(("a", "b"), 0, summary(range(3)), summary(range(2)))
        det.observe_round(("a", "b"), 1, summary(range(3)), summary(range(2)))
        fps = det.false_positive_rounds(malicious_rounds={(("a", "b"), 1)})
        assert len(fps) == 1
        assert fps[0].round_index == 0


class TestUnsoundnessDemonstration:
    """The full §6.4.3 sweep lives in the bench; here a fast cut-down."""

    def test_no_sound_threshold_exists(self):
        from repro.eval.experiments import chi_vs_static_threshold
        comparison = chi_vs_static_threshold(thresholds=(1, 5, 20))
        assert comparison.unsound_thresholds() == [1, 5, 20]
        assert comparison.chi_detected
        assert comparison.chi_fp_rounds == 0
