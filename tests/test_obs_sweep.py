"""Sweep-level observability: telemetry, trace artifacts, v4 merging.

The load-bearing properties:

* tracing a sweep never changes its results — ``aggregate.csv`` is
  byte-identical with tracing on and off;
* every ``repro.sweep/v4`` manifest carries a wall-domain ``telemetry``
  section, cached runs produce no trace files, and merged sweeps sum
  their shards' telemetry;
* v3 (and v2) manifests still merge — they just contribute no
  telemetry — while *mixed* schemas fail with the offending shard named.
"""

import glob
import json
import os
import random

import pytest

from repro.eval import registry
from repro.eval.registry import ExperimentSpec
from repro.obs.telemetry import TELEMETRY_SCHEMA, merge_telemetry
from repro.sweep.artifacts import write_sweep_artifacts
from repro.sweep.merge import MergeError, merge_sweep_dirs
from repro.sweep.runner import MANIFEST_SCHEMA, SweepConfig, run_sweep

TOY = "toy-obs-test"


def toy_experiment(scale: float = 1.0, seed: int = 0):
    rng = random.Random(seed)
    return {"value": scale * rng.random(), "seed": seed}


@pytest.fixture
def toy_registered():
    registry.register(ExperimentSpec(TOY, toy_experiment,
                                     lambda r: [str(r)]))
    yield TOY
    registry.unregister(TOY)


def sweep_to_dir(out_dir, **settings):
    sweep = run_sweep(TOY, SweepConfig(**settings))
    write_sweep_artifacts(sweep, str(out_dir))
    return sweep


def aggregate_bytes(out_dir):
    with open(os.path.join(str(out_dir), "aggregate.csv"), "rb") as fh:
        return fh.read()


def trace_paths(out_dir):
    return sorted(glob.glob(os.path.join(str(out_dir), "traces",
                                         "*.jsonl")))


class TestTracedSweeps:
    def test_trace_on_off_bit_identity(self, toy_registered, tmp_path):
        plain = tmp_path / "plain"
        traced = tmp_path / "traced"
        sweep_to_dir(plain, seeds=3, jobs=1, use_cache=False)
        sweep = sweep_to_dir(traced, seeds=3, jobs=1, use_cache=False,
                             trace_dir=str(traced / "traces"))
        assert aggregate_bytes(traced) == aggregate_bytes(plain)
        paths = trace_paths(traced)
        assert len(paths) == 3
        names = {os.path.basename(p) for p in paths}
        assert {r["trace"] for r in sweep.records} == names
        for path in paths:
            with open(path, encoding="utf-8") as fh:
                final = json.loads(fh.readlines()[-1])
            assert final["event"] == "obs.metrics"

    def test_trace_filenames_deterministic(self, toy_registered, tmp_path):
        first = sweep_to_dir(tmp_path / "a", seeds=2, use_cache=False,
                             trace_dir=str(tmp_path / "a" / "traces"))
        second = sweep_to_dir(tmp_path / "b", seeds=2, use_cache=False,
                              trace_dir=str(tmp_path / "b" / "traces"))
        assert [r["trace"] for r in first.records] == \
            [r["trace"] for r in second.records]

    def test_cached_runs_write_no_traces(self, toy_registered, tmp_path):
        cache = str(tmp_path / "cache")
        sweep_to_dir(tmp_path / "warm", seeds=2, cache_dir=cache)
        sweep = sweep_to_dir(tmp_path / "hit", seeds=2, cache_dir=cache,
                             trace_dir=str(tmp_path / "hit" / "traces"))
        assert all(r["cached"] for r in sweep.records)
        assert trace_paths(tmp_path / "hit") == []


class TestManifestTelemetry:
    def test_v4_manifest_has_telemetry(self, toy_registered, tmp_path):
        sweep = run_sweep(TOY, SweepConfig(seeds=3, jobs=1,
                                           use_cache=False))
        manifest = sweep.manifest()
        assert manifest["schema"] == MANIFEST_SCHEMA == "repro.sweep/v4"
        telemetry = manifest["telemetry"]
        assert telemetry["schema"] == TELEMETRY_SCHEMA
        assert telemetry["runs"] == {"total": 3, "ok": 3, "failed": 0,
                                     "cached": 0, "executed": 3}
        assert telemetry["wall_s"] > 0
        assert telemetry["workers"]["jobs"] == 1
        assert telemetry["attempts"]["total"] == 3
        assert telemetry["run_wall"]["total_s"] >= 0

    def test_cache_stats_in_telemetry(self, toy_registered, tmp_path):
        cache = str(tmp_path / "cache")
        cold = run_sweep(TOY, SweepConfig(seeds=2, cache_dir=cache))
        warm = run_sweep(TOY, SweepConfig(seeds=2, cache_dir=cache))
        assert cold.telemetry["cache"]["hits"] == 0
        assert cold.telemetry["cache"]["misses"] == 2
        assert cold.telemetry["cache"]["stores"] == 2
        assert warm.telemetry["cache"] == {
            "hits": 2, "misses": 0, "hit_rate": 1.0,
            "stores": 0, "evictions": 0}
        assert warm.telemetry["runs"]["cached"] == 2


def _shard_dirs(tmp_path, toy, *, rewrite=None):
    """Two shard sweeps on disk; optionally rewrite each manifest."""
    dirs = []
    for index in range(2):
        out = tmp_path / f"shard-{index}"
        sweep = run_sweep(toy, SweepConfig(seeds=4, use_cache=False,
                                           shard=(index, 2)))
        write_sweep_artifacts(sweep, str(out))
        if rewrite is not None:
            path = out / "sweep.json"
            manifest = json.loads(path.read_text())
            rewrite(index, manifest)
            path.write_text(json.dumps(manifest))
        dirs.append(str(out))
    return dirs


class TestMergeCompatibility:
    def test_v4_shards_merge_with_summed_telemetry(self, toy_registered,
                                                   tmp_path):
        dirs = _shard_dirs(tmp_path, toy_registered)
        merged = merge_sweep_dirs(dirs)
        assert merged.n_runs == 4
        assert merged.telemetry["runs"]["total"] == 4
        assert merged.telemetry["schema"] == TELEMETRY_SCHEMA
        assert merged.telemetry["dispatch"] is None

    def test_v3_shards_still_merge_without_telemetry(self, toy_registered,
                                                     tmp_path):
        def to_v3(index, manifest):
            manifest["schema"] = "repro.sweep/v3"
            del manifest["telemetry"]

        dirs = _shard_dirs(tmp_path, toy_registered, rewrite=to_v3)
        merged = merge_sweep_dirs(dirs)
        assert merged.n_runs == 4
        assert merged.telemetry is None
        assert merged.manifest()["telemetry"] is None

    def test_mixed_schemas_name_the_offending_shard(self, toy_registered,
                                                    tmp_path):
        def downgrade_second(index, manifest):
            if index == 1:
                manifest["schema"] = "repro.sweep/v3"
                del manifest["telemetry"]

        dirs = _shard_dirs(tmp_path, toy_registered,
                           rewrite=downgrade_second)
        with pytest.raises(MergeError) as excinfo:
            merge_sweep_dirs(dirs)
        message = str(excinfo.value)
        assert "mixed manifest schemas" in message
        assert "shard-1" in message  # which shard diverged...
        assert "repro.sweep/v3" in message  # ...and what it carried
        assert "repro.sweep/v4" in message


class TestMergeTelemetry:
    def test_none_when_no_section_present(self):
        assert merge_telemetry([]) is None
        assert merge_telemetry([None, None]) is None

    def test_counters_add_and_rates_recompute(self):
        def section(wall_s, hits, misses):
            return {
                "schema": TELEMETRY_SCHEMA, "wall_s": wall_s,
                "runs": {"total": 2, "ok": 2, "failed": 0, "cached": 0,
                         "executed": 2},
                "attempts": {"total": 2, "retried_runs": 0, "retries": 0},
                "errors": {"timeout": 1},
                "run_wall": {"total_s": wall_s, "mean_s": wall_s / 2,
                             "max_s": wall_s / 2},
                "workers": {"jobs": 2, "utilization": 0.5},
                "cache": {"hits": hits, "misses": misses,
                          "hit_rate": 0.0, "stores": 0, "evictions": 0},
                "dispatch": {"executor": "local"},
            }

        merged = merge_telemetry([section(1.0, 1, 1), None,
                                  section(3.0, 0, 2)])
        assert merged["wall_s"] == 4.0
        assert merged["runs"]["total"] == 4
        assert merged["errors"] == {"timeout": 2}
        assert merged["cache"]["hits"] == 1
        assert merged["cache"]["hit_rate"] == 0.25
        assert merged["run_wall"]["max_s"] == 1.5
        assert merged["workers"]["jobs"] == 2
        assert merged["dispatch"] is None  # the merger owns dispatch
