"""Typed ParamSpec tables: derivation, coercion, actionable errors."""

import pytest

from repro.eval import registry
from repro.eval.registry import (
    ExperimentSpec,
    ParamError,
    ParamSpec,
    params_from_signature,
)


def typed_experiment(count: int = 4, rate: float = 0.5,
                     enabled: bool = True, label: str = "x",
                     seed: int = 0):
    return {"count": count, "rate": rate, "enabled": enabled,
            "label": label, "seed": seed}


def untyped_experiment(values=None, mode="fast"):
    return {"values": values, "mode": mode}


def report(result):
    return [str(result)]


class TestParamSpecCoerce:
    def test_int_from_string(self):
        assert ParamSpec("n", int).coerce("7") == 7

    def test_float_from_string_and_int(self):
        spec = ParamSpec("r", float)
        assert spec.coerce("0.25") == 0.25
        assert spec.coerce(2) == 2.0

    def test_bool_text_forms(self):
        spec = ParamSpec("b", bool)
        for text in ("true", "True", "1", "yes"):
            assert spec.coerce(text) is True
        for text in ("false", "False", "0", "no"):
            assert spec.coerce(text) is False
        with pytest.raises(ParamError, match="use true/false"):
            spec.coerce("maybe")

    def test_bool_rejected_for_numeric(self):
        with pytest.raises(ParamError, match="expects int, got bool"):
            ParamSpec("n", int).coerce(True)
        with pytest.raises(ParamError, match="expects float, got bool"):
            ParamSpec("r", float).coerce(False)

    def test_unconvertible_value_names_type(self):
        with pytest.raises(ParamError, match="expects int, got 'soon'"):
            ParamSpec("n", int).coerce("soon")

    def test_choices_enforced_after_coercion(self):
        spec = ParamSpec("k", int, choices=(1, 2, 3))
        assert spec.coerce("2") == 2
        with pytest.raises(ParamError, match="must be one of 1, 2, 3"):
            spec.coerce("9")

    def test_untyped_passes_through(self):
        spec = ParamSpec("anything")
        value = [1, {"a": 2}]
        assert spec.coerce(value) is value

    def test_none_passes_through(self):
        assert ParamSpec("n", int, default=None).coerce(None) is None

    def test_error_names_experiment(self):
        with pytest.raises(ParamError, match="experiment 'demo'"):
            ParamSpec("n", int).coerce("x", experiment="demo")

    def test_describe(self):
        assert ParamSpec("n", int, default=4).describe() == "n: int = 4"
        assert "in {" in ParamSpec("m", str, default="a",
                                   choices=("a", "b")).describe()


class TestSignatureDerivation:
    def test_scalar_annotations_become_typed(self):
        table = {p.name: p for p in params_from_signature(typed_experiment)}
        assert table["count"].type is int
        assert table["rate"].type is float
        assert table["enabled"].type is bool
        assert table["label"].type is str
        assert table["count"].default == 4
        assert not table["count"].required

    def test_untyped_params_infer_from_scalar_default(self):
        table = {p.name: p
                 for p in params_from_signature(untyped_experiment)}
        assert table["values"].type is None  # default None: no inference
        assert table["mode"].type is str  # inferred from "fast"

    def test_required_param_has_no_default(self):
        def fn(needed: int, optional: int = 1):
            return needed + optional

        table = {p.name: p for p in params_from_signature(fn)}
        assert table["needed"].required
        assert not table["optional"].required


class TestExperimentSpecTable:
    def test_spec_derives_table_from_fn(self):
        spec = ExperimentSpec("t", typed_experiment, report)
        assert spec.param_names == ("count", "rate", "enabled", "label",
                                    "seed")
        assert spec.accepts_seed

    def test_seedless_spec(self):
        spec = ExperimentSpec("t", untyped_experiment, report)
        assert not spec.accepts_seed

    def test_explicit_override_merges_by_name(self):
        spec = ExperimentSpec(
            "t", typed_experiment, report,
            params=(ParamSpec("label", str, default="x",
                              choices=("x", "y")),))
        assert spec.param_spec("label").choices == ("x", "y")
        # The rest of the table is still derived from the signature.
        assert spec.param_spec("count").type is int

    def test_unknown_override_rejected(self):
        with pytest.raises(ValueError, match="bogus"):
            ExperimentSpec("t", typed_experiment, report,
                           params=(ParamSpec("bogus", int),))

    def test_param_spec_lists_accepted_names(self):
        spec = ExperimentSpec("t", untyped_experiment, report)
        with pytest.raises(ParamError, match="accepted: values, mode"):
            spec.param_spec("nope")

    def test_coerce_params_converts_each_value(self):
        spec = ExperimentSpec("t", typed_experiment, report)
        out = spec.coerce_params({"count": "3", "enabled": "false"})
        assert out == {"count": 3, "enabled": False}

    def test_run_coerces_before_calling(self):
        spec = ExperimentSpec("t", typed_experiment, report)
        result = spec.run(count="6", rate="0.5", seed=1)
        assert result["count"] == 6 and result["rate"] == 0.5

    def test_run_rejects_bad_value_before_calling(self):
        spec = ExperimentSpec("t", typed_experiment, report)
        with pytest.raises(ParamError, match="'count'"):
            spec.run(count="lots")


class TestRegisteredSpecs:
    def test_all_registered_specs_have_tables(self):
        seen_any = False
        for name, spec in registry.registry().items():
            # Zero-arg experiments (e.g. baselines) have empty tables.
            for param in spec.params:
                seen_any = True
                assert param.describe()
                assert spec.param_spec(param.name) is param
        assert seen_any

    def test_sweep_rejects_bad_value_before_workers(self, tmp_path):
        from repro.sweep.runner import SweepConfig, run_sweep

        with pytest.raises(ParamError, match="'fraction'"):
            run_sweep("fig6_6", SweepConfig(
                params={"fraction": "a-fifth"}, cache_dir=str(tmp_path)))
