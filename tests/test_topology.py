"""Unit tests for topologies and generators."""

import pytest

from repro.net.topology import (
    MBPS,
    Link,
    Topology,
    abilene,
    chain,
    diamond,
    ebone_like,
    sprintlink_like,
)


class TestTopologyBasics:
    def test_add_link_creates_both_directions(self):
        topo = Topology()
        topo.add_link("a", "b")
        assert topo.has_link("a", "b")
        assert topo.has_link("b", "a")

    def test_unidirectional_link(self):
        topo = Topology()
        topo.add_link("a", "b", bidirectional=False)
        assert topo.has_link("a", "b")
        assert not topo.has_link("b", "a")

    def test_self_link_rejected(self):
        topo = Topology()
        with pytest.raises(ValueError):
            topo.add_link("a", "a")

    def test_duplicate_link_rejected(self):
        topo = Topology()
        topo.add_link("a", "b")
        with pytest.raises(ValueError):
            topo.add_link("a", "b")

    def test_missing_link_raises(self):
        topo = chain(3)
        with pytest.raises(KeyError):
            topo.link("r1", "r3")

    def test_default_metric_tracks_delay(self):
        topo = Topology()
        topo.add_link("a", "b", delay=0.005)
        assert topo.link("a", "b").metric == pytest.approx(5.0)

    def test_neighbors_and_degree(self):
        topo = diamond()
        assert sorted(topo.neighbors("s")) == ["a", "b"]
        assert topo.degree("s") == 2

    def test_undirected_link_count(self):
        assert chain(4).undirected_link_count() == 3

    def test_contains_and_len(self):
        topo = chain(3)
        assert "r1" in topo
        assert "nope" not in topo
        assert len(topo) == 3

    def test_networkx_roundtrip(self):
        graph = abilene().to_networkx()
        assert graph.number_of_nodes() == 11
        assert graph.number_of_edges() == 14

    def test_transmission_delay(self):
        link = Link("a", "b", bandwidth=1 * MBPS)
        assert link.transmission_delay(1000) == pytest.approx(0.008)


class TestCannedTopologies:
    def test_chain_structure(self):
        topo = chain(5)
        assert len(topo) == 5
        assert topo.has_link("r1", "r2")
        assert not topo.has_link("r1", "r3")

    def test_chain_needs_a_router(self):
        with pytest.raises(ValueError):
            chain(0)

    def test_diamond_two_disjoint_paths(self):
        topo = diamond()
        assert topo.has_link("s", "a") and topo.has_link("a", "t")
        assert topo.has_link("s", "b") and topo.has_link("b", "t")
        assert not topo.has_link("a", "b")

    def test_abilene_size(self):
        topo = abilene()
        assert len(topo) == 11
        assert topo.undirected_link_count() == 14

    def test_abilene_calibrated_delays(self):
        """The Fig 5.7 calibration: 25 ms via Kansas City, 28 ms via LA."""
        topo = abilene()
        primary = ["Sunnyvale", "Denver", "KansasCity", "Indianapolis",
                   "Chicago", "NewYork"]
        alt = ["Sunnyvale", "LosAngeles", "Houston", "Atlanta",
               "WashingtonDC", "NewYork"]
        d1 = sum(topo.link(a, b).delay for a, b in zip(primary, primary[1:]))
        d2 = sum(topo.link(a, b).delay for a, b in zip(alt, alt[1:]))
        assert d1 == pytest.approx(0.025)
        assert d2 == pytest.approx(0.028)


class TestGeneratedTopologies:
    def test_sprintlink_like_matches_rocketfuel_statistics(self):
        topo = sprintlink_like()
        assert len(topo) == 315
        assert topo.undirected_link_count() == 972
        mean_degree, max_degree = topo.degree_stats()
        assert mean_degree == pytest.approx(2 * 972 / 315)
        assert max_degree <= 45

    def test_ebone_like_matches_rocketfuel_statistics(self):
        topo = ebone_like()
        assert len(topo) == 87
        assert topo.undirected_link_count() == 161
        _, max_degree = topo.degree_stats()
        assert max_degree <= 11

    def test_generated_topologies_connected(self):
        assert sprintlink_like().is_connected()
        assert ebone_like().is_connected()

    def test_generator_deterministic(self):
        a = sprintlink_like(seed=5)
        b = sprintlink_like(seed=5)
        assert sorted((l.src, l.dst) for l in a.links()) == \
            sorted((l.src, l.dst) for l in b.links())

    def test_generator_seed_changes_graph(self):
        a = {(l.src, l.dst) for l in ebone_like(seed=1).links()}
        b = {(l.src, l.dst) for l in ebone_like(seed=2).links()}
        assert a != b
