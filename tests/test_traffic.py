"""Unit tests for application traffic sources."""

import pytest

from repro.net.router import Network
from repro.net.routing import install_static_routes
from repro.net.topology import MBPS, chain
from repro.net.traffic import CBRSource, OnOffSource, PoissonSource


def net():
    network = Network(chain(3, bandwidth=50 * MBPS, delay=0.001))
    install_static_routes(network)
    return network


class TestCBR:
    def test_packet_count_matches_rate(self):
        network = net()
        src = CBRSource(network, "r1", "r3", "f", rate_bps=800_000,
                        packet_size=1000, duration=2.0)
        network.run(3.0)
        # 800 kbps / 8 kbit per packet = 100 pps for 2 s
        assert src.sent == pytest.approx(200, abs=2)

    def test_all_delivered_without_congestion(self):
        network = net()
        src = CBRSource(network, "r1", "r3", "f", rate_bps=400_000,
                        duration=1.0)
        network.run(2.0)
        assert src.received == src.sent
        assert src.loss_count == 0

    def test_stop(self):
        network = net()
        src = CBRSource(network, "r1", "r3", "f", rate_bps=800_000)
        network.run(0.5)
        src.stop()
        sent = src.sent
        network.run(2.0)
        assert src.sent == sent

    def test_start_offset(self):
        network = net()
        src = CBRSource(network, "r1", "r3", "f", rate_bps=800_000,
                        start=1.0, duration=1.0)
        network.run(0.9)
        assert src.sent == 0
        network.run(3.0)
        assert src.sent > 0

    def test_unknown_router_rejected(self):
        network = net()
        with pytest.raises(KeyError):
            CBRSource(network, "nope", "r3", "f", rate_bps=1000)


class TestPoisson:
    def test_mean_rate(self):
        network = net()
        src = PoissonSource(network, "r1", "r3", "f", rate_pps=100,
                            duration=5.0, seed=1)
        network.run(6.0)
        assert src.sent == pytest.approx(500, rel=0.2)

    def test_deterministic_for_seed(self):
        def run(seed):
            network = net()
            src = PoissonSource(network, "r1", "r3", "f", rate_pps=50,
                                duration=2.0, seed=seed)
            network.run(3.0)
            return src.sent

        assert run(3) == run(3)

    def test_invalid_rate(self):
        with pytest.raises(ValueError):
            PoissonSource(net(), "r1", "r3", "f", rate_pps=0)


class TestOnOff:
    def test_produces_bursts(self):
        network = net()
        src = OnOffSource(network, "r1", "r3", "f", rate_bps=2_000_000,
                          mean_on=0.2, mean_off=0.2, duration=5.0, seed=2)
        network.run(6.0)
        assert src.sent > 0
        # With 50% duty cycle the count is well below the always-on count.
        always_on = 2_000_000 / 8000 * 5
        assert src.sent < always_on

    def test_delivery_times_recorded(self):
        network = net()
        src = OnOffSource(network, "r1", "r3", "f", rate_bps=1_000_000,
                          duration=1.0, seed=3)
        network.run(3.0)
        assert len(src.delivery_times) == src.received
