"""Unit tests for the adversarial behaviours (§2.2.1 taxonomy)."""

import pytest

from repro.net.adversary import (
    CombinedCompromise,
    ControlSuppressionAttack,
    DelayAttack,
    DropAllAttack,
    DropFlowAttack,
    DropFractionAttack,
    FabricateAttack,
    MisrouteAttack,
    ModifyAttack,
    QueueConditionalDropAttack,
    ReorderAttack,
    SynDropAttack,
)
from repro.net.packet import Packet, PacketKind
from repro.net.router import Network
from repro.net.routing import install_static_routes
from repro.net.topology import MBPS, Topology, chain, diamond


def make_net(n=3):
    net = Network(chain(n, bandwidth=10 * MBPS, delay=0.001))
    install_static_routes(net)
    return net


def run_flow(net, count=50, flow="f", src="r1", dst=None):
    dst = dst or f"r{len(net.topology)}"
    got = []
    net.routers[dst].register_flow(flow, lambda p, t: got.append(p))
    for i in range(count):
        net.routers[src].originate(
            Packet(src=src, dst=dst, flow_id=flow, seq=i,
                   payload=f"{flow}:{i}".encode())
        )
    net.run(5.0)
    return got


class TestDropAttacks:
    def test_drop_all(self):
        net = make_net()
        attack = DropAllAttack()
        net.routers["r2"].compromise = attack
        got = run_flow(net)
        assert got == []
        assert len(attack.dropped) == 50
        assert len(attack.drop_times) == 50

    def test_drop_fraction_approximate(self):
        net = make_net()
        attack = DropFractionAttack(0.3, seed=1)
        net.routers["r2"].compromise = attack
        got = []
        net.routers["r3"].register_flow("f", lambda p, t: got.append(p))
        for i in range(400):  # paced so the source queue never overflows
            net.sim.schedule_at(
                i * 0.002, net.routers["r1"].originate,
                Packet(src="r1", dst="r3", flow_id="f", seq=i))
        net.run(5.0)
        assert len(attack.dropped) == pytest.approx(120, rel=0.3)
        assert len(got) == 400 - len(attack.dropped)

    def test_drop_fraction_validates(self):
        with pytest.raises(ValueError):
            DropFractionAttack(1.5)

    def test_drop_flow_selective(self):
        net = make_net()
        attack = DropFlowAttack(["victim"], fraction=1.0)
        net.routers["r2"].compromise = attack
        victim = []
        bystander = []
        net.routers["r3"].register_flow("victim",
                                        lambda p, t: victim.append(p))
        net.routers["r3"].register_flow("other",
                                        lambda p, t: bystander.append(p))
        for i in range(20):
            net.routers["r1"].originate(
                Packet(src="r1", dst="r3", flow_id="victim", seq=i))
            net.routers["r1"].originate(
                Packet(src="r1", dst="r3", flow_id="other", seq=i))
        net.run(5.0)
        assert victim == []
        assert len(bystander) == 20

    def test_activation_window(self):
        net = make_net()
        attack = DropAllAttack().activate_between(10.0, 20.0)
        net.routers["r2"].compromise = attack
        got = run_flow(net)  # runs during [0, 5]
        assert len(got) == 50
        assert attack.dropped == []

    def test_syn_drop_only_matches_syns(self):
        net = make_net()
        attack = SynDropAttack("r3")
        net.routers["r2"].compromise = attack
        got = []
        net.routers["r3"].register_flow("f", lambda p, t: got.append(p))
        net.routers["r1"].originate(
            Packet(src="r1", dst="r3", flow_id="f", kind=PacketKind.SYN,
                   size=40))
        net.routers["r1"].originate(
            Packet(src="r1", dst="r3", flow_id="f", kind=PacketKind.DATA))
        net.run(2.0)
        assert len(got) == 1
        assert got[0].kind is PacketKind.DATA
        assert len(attack.dropped) == 1

    def test_syn_drop_max_drops(self):
        net = make_net()
        attack = SynDropAttack("r3", max_drops=1)
        net.routers["r2"].compromise = attack
        got = []
        net.routers["r3"].register_flow("f", lambda p, t: got.append(p))
        for i in range(3):
            net.routers["r1"].originate(
                Packet(src="r1", dst="r3", flow_id="f",
                       kind=PacketKind.SYN, size=40, seq=i))
        net.run(2.0)
        assert len(got) == 2


class TestQueueConditionalAttacks:
    def test_requires_fill_level(self):
        net = Network(chain(3, bandwidth=1 * MBPS, delay=0.001,
                            queue_limit=5_000))
        install_static_routes(net)
        attack = QueueConditionalDropAttack(["f"], fill_threshold=0.5)
        net.routers["r2"].compromise = attack
        # Send slowly: queue never half-full -> no malicious drops.
        for i in range(10):
            net.sim.schedule_at(i * 0.1, net.routers["r1"].originate,
                                Packet(src="r1", dst="r3", flow_id="f", seq=i))
        net.run(3.0)
        assert attack.dropped == []

    def test_drops_when_queue_fills(self):
        # Fast ingress, slow egress: r2's output queue is the bottleneck.
        topo = Topology()
        topo.add_link("r1", "r2", bandwidth=10 * MBPS, delay=0.001)
        topo.add_link("r2", "r3", bandwidth=1 * MBPS, delay=0.001,
                      queue_limit=5_000)
        net = Network(topo)
        install_static_routes(net)
        attack = QueueConditionalDropAttack(["f"], fill_threshold=0.5)
        net.routers["r2"].compromise = attack
        for i in range(30):  # burst fills r2's slow output queue
            net.routers["r1"].originate(
                Packet(src="r1", dst="r3", flow_id="f", seq=i))
        net.run(3.0)
        assert attack.dropped


class TestTransformAttacks:
    def test_modify_corrupts_payload(self):
        net = make_net()
        attack = ModifyAttack(fraction=1.0)
        net.routers["r2"].compromise = attack
        got = run_flow(net, count=5)
        assert len(got) == 5
        assert all(p.payload.endswith(b"!tampered") for p in got)
        assert len(attack.modified) == 5

    def test_modify_fraction_zero_is_noop(self):
        net = make_net()
        net.routers["r2"].compromise = ModifyAttack(fraction=0.0)
        got = run_flow(net, count=5)
        assert all(not p.payload.endswith(b"!tampered") for p in got)

    def test_reorder_delays_every_nth(self):
        net = make_net()
        attack = ReorderAttack(period=3, hold=0.05)
        net.routers["r2"].compromise = attack
        got = run_flow(net, count=9)
        assert len(got) == 9
        seqs = [p.seq for p in got]
        assert seqs != sorted(seqs)
        assert len(attack.delayed) == 3

    def test_reorder_period_validated(self):
        with pytest.raises(ValueError):
            ReorderAttack(period=1)

    def test_delay_adds_latency(self):
        net = make_net()
        net.routers["r2"].compromise = DelayAttack(0.5)
        times = []
        net.routers["r3"].register_flow("f", lambda p, t: times.append(t))
        net.routers["r1"].originate(Packet(src="r1", dst="r3", flow_id="f"))
        net.run(2.0)
        assert times[0] > 0.5

    def test_misroute_diverts(self):
        net = Network(diamond())
        install_static_routes(net)
        direct = net.routers["s"].forwarding_table["t"][0]
        wrong = "b" if direct == "a" else "a"
        attack = MisrouteAttack(wrong_nbr=wrong)
        net.routers[direct].compromise = attack
        # s -> direct -> t normally; compromised 'direct' sends it back out
        # toward 'wrong'... which it has no link to, so the packet dies.
        got = []
        net.routers["t"].register_flow("f", lambda p, t: got.append(p))
        net.routers["s"].originate(Packet(src="s", dst="t", flow_id="f"))
        net.run(2.0)
        assert len(attack.misrouted) == 1


class TestFabrication:
    def test_fabricates_at_rate(self):
        net = make_net()
        attack = FabricateAttack(net, "r2", "r3", forged_src="r1",
                                 forged_dst="r3", flow_id="forged",
                                 rate_pps=10)
        net.routers["r2"].compromise = attack
        attack.start(at=0.0)
        got = []
        net.routers["r3"].register_flow("forged", lambda p, t: got.append(p))
        net.run(2.05)
        assert len(attack.fabricated) == pytest.approx(20, abs=2)
        assert len(got) == len(attack.fabricated)
        assert all(p.src == "r1" for p in got)  # forged provenance


class TestControlSuppression:
    def test_suppresses_control_messages(self):
        net = make_net()
        attack = ControlSuppressionAttack()
        net.routers["r2"].compromise = attack
        delivered = []
        net.send_control("r1", "r3", "hello", delivered.append,
                         via_path=("r1", "r2", "r3"))
        net.run(1.0)
        assert delivered == []
        assert attack.suppressed_control == 1

    def test_match_filter(self):
        net = make_net()
        attack = ControlSuppressionAttack(match=lambda m: m == "secret")
        net.routers["r2"].compromise = attack
        delivered = []
        net.send_control("r1", "r3", "public", delivered.append,
                         via_path=("r1", "r2", "r3"))
        net.send_control("r1", "r3", "secret", delivered.append,
                         via_path=("r1", "r2", "r3"))
        net.run(1.0)
        assert delivered == ["public"]

    def test_without_via_path_untouchable(self):
        net = make_net()
        net.routers["r2"].compromise = ControlSuppressionAttack()
        delivered = []
        net.send_control("r1", "r3", "hello", delivered.append)
        net.run(1.0)
        assert delivered == ["hello"]


class TestCombined:
    def test_combines_drop_and_control_suppression(self):
        net = make_net()
        attack = CombinedCompromise(
            DropFlowAttack(["victim"]),
            ControlSuppressionAttack(),
        )
        net.routers["r2"].compromise = attack
        got = run_flow(net, flow="victim")
        assert got == []
        delivered = []
        net.send_control("r1", "r3", "msg", delivered.append,
                         via_path=("r1", "r2", "r3"))
        net.run(6.0)
        assert delivered == []
