"""CLI tests for ``python -m repro lint`` (exit codes, formats, self-check)."""

import json
import os
import subprocess
import sys

import pytest

from repro.analysis import cli

TESTS_DIR = os.path.dirname(__file__)
REPO_ROOT = os.path.dirname(TESTS_DIR)
FIXTURES = os.path.join(TESTS_DIR, "fixtures", "lint")
DET_BAD = os.path.join(FIXTURES, "det_bad.py")
DET_GOOD = os.path.join(FIXTURES, "det_good.py")


def run_cli(*argv):
    return cli.main(["lint", *argv])


def test_clean_file_exits_zero(capsys):
    assert run_cli("--no-baseline", DET_GOOD) == 0
    out = capsys.readouterr().out
    assert "0 new" in out


def test_findings_exit_one_with_text_output(capsys):
    assert run_cli("--no-baseline", DET_BAD) == 1
    out = capsys.readouterr().out
    assert "DET001" in out and "det_bad.py" in out
    assert "9 new" in out


def test_json_format_matches_report_schema(capsys):
    assert run_cli("--no-baseline", "--format", "json", DET_BAD) == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["schema"] == "repro.lint/v1"
    assert payload["exit_code"] == 1
    assert [f["rule"] for f in payload["new"]][:2] == ["DET001", "DET001"]


def test_rule_filter_flag(capsys):
    assert run_cli("--no-baseline", "--rule", "DET002", DET_BAD) == 1
    payload_args = capsys.readouterr().out
    assert "DET002" in payload_args
    assert "DET001" not in payload_args


def test_unknown_rule_exits_two(capsys):
    assert run_cli("--no-baseline", "--rule", "NOPE99", DET_BAD) == 2
    assert "unknown rule" in capsys.readouterr().err


def test_list_rules(capsys):
    assert run_cli("--list-rules") == 0
    out = capsys.readouterr().out
    for rule_id in ("DET001", "PAY001", "REG001", "LNT001"):
        assert rule_id in out


def test_write_baseline_then_relint_exits_zero(tmp_path, capsys):
    baseline = str(tmp_path / "baseline.json")
    assert run_cli("--baseline", baseline, "--write-baseline", DET_BAD) == 0
    assert "wrote 9 finding(s)" in capsys.readouterr().out
    # Grandfathered now: same lint run exits 0.
    assert run_cli("--baseline", baseline, DET_BAD) == 0
    out = capsys.readouterr().out
    assert "0 new" in out and "9 baselined" in out


def test_write_baseline_conflicts_with_no_baseline(capsys):
    assert run_cli("--no-baseline", "--write-baseline", DET_BAD) == 2
    assert "conflicts" in capsys.readouterr().err


def test_malformed_baseline_exits_two(tmp_path, capsys):
    bad = tmp_path / "baseline.json"
    bad.write_text("{not json")
    assert run_cli("--baseline", str(bad), DET_BAD) == 2
    assert "not valid JSON" in capsys.readouterr().err


def test_repo_source_tree_is_lint_clean():
    """Self-check: ``repro lint`` over the repo's own src/ exits 0."""
    result = subprocess.run(
        [sys.executable, "-m", "repro", "lint", "--format", "json", "src"],
        cwd=REPO_ROOT, capture_output=True, text=True,
        env={**os.environ,
             "PYTHONPATH": os.path.join(REPO_ROOT, "src")},
    )
    assert result.returncode == 0, result.stdout + result.stderr
    payload = json.loads(result.stdout)
    assert payload["new"] == []


def test_checked_in_baseline_is_valid_and_reason_annotated():
    """The repo baseline must load (schema + reasons enforced)."""
    from repro.analysis import Baseline
    baseline = Baseline.load(
        os.path.join(REPO_ROOT, ".repro-lint-baseline.json"))
    for entry in baseline.entries.values():
        assert str(entry.get("reason", "")).strip()


@pytest.mark.parametrize("fmt", ["text", "json"])
def test_stale_note_goes_to_stderr_not_stdout(tmp_path, capsys, fmt):
    baseline = str(tmp_path / "baseline.json")
    run_cli("--baseline", baseline, "--write-baseline", DET_BAD)
    capsys.readouterr()
    # Lint a clean file against that baseline: every entry is stale.
    code = run_cli("--baseline", baseline, "--format", fmt, DET_GOOD)
    captured = capsys.readouterr()
    assert code == 0
    if fmt == "text":
        assert "stale baseline entry" in captured.err
        assert "stale" not in captured.out
    else:
        json.loads(captured.out)  # stdout stays machine-readable
