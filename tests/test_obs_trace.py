"""Sim-domain tracing end to end.

The load-bearing properties: instrumentation is inert while the global
recorder is disabled (results identical with tracing on and off), trace
files are byte-deterministic for a fixed seed, and every ``t`` in the
trace is simulator virtual time — never a wall clock.
"""

import filecmp
import json

import pytest

from repro.eval.experiments import _run_droptail
from repro.eval.results import serialize_result
from repro.net.adversary import DropFlowAttack
from repro.net.events import Simulator
from repro.obs.record import recorder
from repro.obs.sinks import JsonlSink, MemorySink
from repro.obs.trace import TraceTap, _reason_token


def mini_scenario(seed=0):
    """A shrunken Fig 6.6 attack: full pipeline, fraction of the cost."""
    return _run_droptail(
        "obs-mini",
        lambda s: DropFlowAttack(["tcp1"], fraction=0.3, seed=seed + 1),
        learning_until=5.0, monitor_rounds=(3, 10), attack_at=10.0,
        end=22.0, n_sources=2, seed=seed)


@pytest.fixture
def rec():
    """The global recorder, guaranteed disabled before and after."""
    instance = recorder()
    assert not instance.active, "another test leaked an enabled recorder"
    yield instance
    if instance.active:
        instance.disable()


class TestSimulatorInstrumentation:
    def test_run_counters_use_virtual_time(self, rec):
        rec.enable(MemorySink())
        sim = Simulator()
        for delay in (1.0, 2.0, 7.5):
            sim.schedule(delay, lambda: None)
        sim.run()
        snapshot = rec.disable()
        assert snapshot["repro.net.sim.runs"]["value"] == 1
        assert snapshot["repro.net.sim.events"]["value"] == 3
        assert snapshot["repro.net.sim.horizon"]["value"] == 7.5

    def test_disabled_recorder_records_nothing(self, rec):
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        sim.run()
        assert len(rec.metrics) == 0 and rec.events_emitted == 0


class _StubRouter:
    name = "r1"


class _StubPacket:
    flow_id = "tcp1"
    src = "s1"
    dst = "d1"


class _StubReason:
    value = "malicious"


class TestTraceTap:
    def test_counts_and_occupancy(self, rec):
        rec.enable(MemorySink())
        tap = TraceTap(rec)
        router, packet = _StubRouter(), _StubPacket()
        tap.on_receive(router, "n", packet, 1.0)
        tap.on_enqueue(router, "n", packet, 1.0, occupancy=3)
        tap.on_enqueue(router, "n", packet, 1.5, occupancy=5)
        tap.on_transmit(router, "n", packet, 2.0)
        tap.on_deliver(router, packet, 2.5)
        tap.on_originate(router, packet, 0.5)
        snapshot = rec.disable()
        assert snapshot["repro.net.pkt.received"]["value"] == 1
        assert snapshot["repro.net.pkt.enqueued"]["value"] == 2
        assert snapshot["repro.net.pkt.transmitted"]["value"] == 1
        assert snapshot["repro.net.pkt.delivered"]["value"] == 1
        assert snapshot["repro.net.pkt.originated"]["value"] == 1
        occupancy = snapshot["repro.net.queue.occupancy"]
        assert occupancy["count"] == 2 and occupancy["max"] == 5
        # Pre-registered so consumers always see them, even at zero.
        assert snapshot["repro.net.pkt.dropped"]["value"] == 0
        assert snapshot["repro.net.pkt.fabricated"]["value"] == 0

    def test_drop_emits_event_with_reason(self, rec):
        sink = MemorySink()
        rec.enable(sink)
        tap = TraceTap(rec)
        tap.on_drop(_StubRouter(), "n2", _StubPacket(), 4.25,
                    _StubReason(), drop_prob=1.0)
        snapshot = rec.disable()
        assert snapshot["repro.net.pkt.dropped"]["value"] == 1
        assert snapshot["repro.net.drops.malicious"]["value"] == 1
        (event,) = [r for r in sink.records if r["event"] == "net.drop"]
        assert event == {"event": "net.drop", "t": 4.25, "router": "r1",
                         "out_nbr": "n2", "reason": "malicious",
                         "flow": "tcp1", "src": "s1", "dst": "d1"}

    def test_reason_token_handles_plain_strings(self):
        assert _reason_token("congestion") == "congestion"
        assert _reason_token(_StubReason()) == "malicious"


class TestScenarioTracing:
    def test_traced_scenario_populates_metrics(self, rec):
        sink = MemorySink()
        rec.enable(sink)
        result = mini_scenario()
        snapshot = rec.disable()
        assert result.total_drops > 0
        assert snapshot["repro.net.pkt.received"]["value"] > 0
        assert snapshot["repro.net.pkt.dropped"]["value"] > 0
        assert snapshot["repro.net.sim.runs"]["value"] >= 1
        drops = [r for r in sink.records if r["event"] == "net.drop"]
        assert drops, "an attack scenario must trace drop events"
        # Time-domain rule: every event timestamp is sim virtual time,
        # bounded by the scenario horizon — wall clock would be ~1e9.
        for record in sink.records:
            if record["event"] != "obs.metrics":
                assert 0.0 <= record["t"] <= 22.0

    def test_tracing_does_not_change_results(self, rec):
        untraced = serialize_result(mini_scenario())
        rec.enable(MemorySink())
        try:
            traced = serialize_result(mini_scenario())
        finally:
            rec.disable()
        assert traced == untraced

    def test_trace_bytes_deterministic(self, rec, tmp_path):
        paths = []
        for attempt in ("first", "second"):
            path = tmp_path / f"{attempt}.jsonl"
            rec.enable(JsonlSink(str(path)))
            try:
                mini_scenario()
            finally:
                rec.disable()
            paths.append(path)
        assert paths[0].read_bytes() == paths[1].read_bytes()
        assert paths[0].stat().st_size > 0
