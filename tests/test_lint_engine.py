"""Engine-level tests: baselines, fingerprints, report structure."""

import json
import os

import pytest

from repro.analysis import Baseline, BaselineError, lint_paths
from repro.analysis.baseline import BASELINE_SCHEMA

FIXTURES = os.path.join(os.path.dirname(__file__), "fixtures", "lint")
DET_BAD = os.path.join(FIXTURES, "det_bad.py")


def test_baseline_round_trip(tmp_path):
    # First run: everything is new.
    first = lint_paths([DET_BAD])
    assert first.new and first.exit_code == 1

    baseline = Baseline(path=str(tmp_path / "baseline.json"))
    baseline.save(first.new, reason="fixture: grandfathered for the test")

    # Second run against the freshly written baseline: nothing new.
    reloaded = Baseline.load(baseline.path)
    second = lint_paths([DET_BAD], baseline=reloaded)
    assert second.new == []
    assert len(second.baselined) == len(first.new)
    assert second.exit_code == 0
    assert second.stale_baseline == {}


def test_baseline_save_preserves_existing_reasons(tmp_path):
    report = lint_paths([DET_BAD])
    baseline = Baseline(path=str(tmp_path / "baseline.json"))
    baseline.save(report.new, reason="original reason")
    # Re-saving the same findings must not clobber the recorded reasons.
    baseline.save(report.new, reason="a different default")
    for entry in Baseline.load(baseline.path).entries.values():
        assert entry["reason"] == "original reason"


def test_baseline_stale_entries_reported(tmp_path):
    report = lint_paths([DET_BAD])
    baseline = Baseline(path=str(tmp_path / "baseline.json"))
    baseline.save(report.new, reason="fixture")
    # Inject a fingerprint that matches nothing on disk.
    data = json.loads(open(baseline.path).read())
    data["findings"]["feedfacefeedface"] = {
        "rule": "DET001", "path": "gone.py",
        "message": "was fixed", "reason": "stale on purpose"}
    with open(baseline.path, "w") as handle:
        json.dump(data, handle)

    stale_report = lint_paths([DET_BAD], baseline=Baseline.load(baseline.path))
    assert list(stale_report.stale_baseline) == ["feedfacefeedface"]
    # Stale entries are advisory: they do not fail the run.
    assert stale_report.exit_code == 0


def test_baseline_rejects_entries_without_reason(tmp_path):
    path = tmp_path / "baseline.json"
    path.write_text(json.dumps({
        "schema": BASELINE_SCHEMA,
        "findings": {"deadbeefdeadbeef": {
            "rule": "DET001", "path": "x.py", "message": "m", "reason": ""}},
    }))
    with pytest.raises(BaselineError, match="has no\\s+reason"):
        Baseline.load(str(path))


def test_baseline_rejects_wrong_schema(tmp_path):
    path = tmp_path / "baseline.json"
    path.write_text(json.dumps({"schema": "bogus/v9", "findings": {}}))
    with pytest.raises(BaselineError, match="expected schema"):
        Baseline.load(str(path))


def test_baseline_missing_file_is_empty(tmp_path):
    baseline = Baseline.load(str(tmp_path / "nope.json"))
    assert baseline.entries == {}


def test_fingerprints_survive_line_shifts(tmp_path):
    body = (
        "# repro-lint: module=repro.net.shifty\n"
        "import random\n"
        "def f():\n"
        "    return random.random()\n")
    target = tmp_path / "shifty.py"
    target.write_text(body)
    before = lint_paths([str(target)]).new
    # Prepend unrelated lines: the finding moves but its identity doesn't.
    target.write_text(body.replace(
        "import random\n", "import random\n\nX = 1\nY = 2\n"))
    after = lint_paths([str(target)]).new
    assert [f.fingerprint() for f in before] == \
        [f.fingerprint() for f in after]
    assert before[0].line != after[0].line


def test_identical_lines_get_distinct_fingerprints(tmp_path):
    target = tmp_path / "twice.py"
    target.write_text(
        "# repro-lint: module=repro.net.twice\n"
        "import random\n"
        "def f():\n"
        "    return random.random()\n"
        "def g():\n"
        "    return random.random()\n")
    report = lint_paths([str(target)])
    prints = [f.fingerprint() for f in report.new]
    assert len(prints) == 2
    assert prints[0] != prints[1]


def test_report_to_dict_schema():
    report = lint_paths([DET_BAD])
    payload = report.to_dict()
    assert payload["schema"] == "repro.lint/v1"
    assert payload["files_checked"] == 1
    assert payload["exit_code"] == 1
    assert {f["rule"] for f in payload["new"]} >= {"DET001", "DET004"}
    for entry in payload["new"]:
        assert set(entry) >= {"rule", "path", "line", "message",
                              "fingerprint"}


def test_discovery_skips_hidden_and_cache_dirs(tmp_path):
    (tmp_path / "__pycache__").mkdir()
    (tmp_path / "__pycache__" / "junk.py").write_text("import random\n")
    (tmp_path / ".hidden").mkdir()
    (tmp_path / ".hidden" / "junk.py").write_text("import random\n")
    (tmp_path / "real.py").write_text("X = 1\n")
    report = lint_paths([str(tmp_path)])
    assert report.files_checked == 1


def test_missing_path_raises():
    with pytest.raises(FileNotFoundError):
        lint_paths([os.path.join(FIXTURES, "does_not_exist.py")])
