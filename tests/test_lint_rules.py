"""Per-rule tests for the repro.analysis lint passes.

Each rule class gets a good/bad fixture pair under
``tests/fixtures/lint/``: the bad file must produce exactly the findings
its inline comments claim (IDs *and* line numbers), the good twin must
be silent.
"""

import os

import pytest

from repro.analysis import RULES, lint_paths

FIXTURES = os.path.join(os.path.dirname(__file__), "fixtures", "lint")


def fixture(name: str) -> str:
    return os.path.join(FIXTURES, name)


def findings_for(name: str):
    report = lint_paths([fixture(name)])
    return [(f.rule, f.line) for f in report.new]


def test_rule_catalogue_has_all_families():
    ids = set(RULES)
    assert {"DET001", "DET002", "DET003", "DET004"} <= ids
    assert {"PAY001", "PAY002", "PAY003"} <= ids
    assert {"REG001", "REG002", "REG003"} <= ids
    assert {"LNT001", "LNT002"} <= ids
    for rule in RULES.values():
        assert rule.summary


def test_determinism_bad_fixture():
    got = findings_for("det_bad.py")
    assert got == [
        ("DET001", 14),
        ("DET001", 18),
        ("DET002", 22),
        ("DET002", 26),
        ("DET003", 30),
        ("DET003", 34),
        ("DET003", 38),
        ("DET004", 43),
        ("DET004", 49),
    ]


def test_determinism_good_fixture_is_clean():
    assert findings_for("det_good.py") == []


def test_obs_telemetry_wallclock_exempt():
    # repro.obs.telemetry is the one sanctioned wall-domain module:
    # clock reads there are by design, not leaks.
    assert findings_for("obs_telemetry_good.py") == []


def test_obs_sim_domain_wallclock_flagged():
    # Identical calls in any other repro.obs module must fire DET003 —
    # this pair pins the sim/wall time-domain boundary.
    got = findings_for("obs_bad.py")
    assert got == [
        ("DET003", 15),
        ("DET003", 19),
        ("DET003", 23),
    ]


def test_determinism_rules_scoped_to_sim_packages(tmp_path):
    # Same code, no `module=` pragma putting it in a sim package: silent.
    source = (fixture("det_bad.py"))
    text = open(source).read().replace(
        "# repro-lint: module=repro.net.fixture_bad", "")
    unscoped = tmp_path / "unscoped.py"
    unscoped.write_text(text)
    report = lint_paths([str(unscoped)])
    assert [f for f in report.new if f.rule.startswith("DET")] == []


def test_payload_bad_fixture():
    got = findings_for("pay_bad.py")
    assert got == [
        ("PAY001", 10),
        ("PAY001", 15),
        ("PAY002", 17),
        ("PAY002", 19),
        ("PAY003", 20),
    ]


def test_payload_good_fixture_is_clean():
    # Thread pools have no pickle boundary; module-level callables and
    # plain data are fine.
    assert findings_for("pay_good.py") == []


def test_registry_bad_fixture():
    got = findings_for("reg_bad.py")
    assert got == [
        ("REG001", 13),
        ("REG001", 18),
        ("REG003", 21),
        ("REG003", 28),
        ("REG002", 32),
        ("REG002", 37),
    ]


def test_registry_good_fixture_is_clean():
    assert findings_for("reg_good.py") == []


def test_registry_contract_resolves_cross_module(tmp_path):
    # The fn lives in one module, the spec in another; REG001 must
    # resolve the signature through the import.
    (tmp_path / "exps.py").write_text(
        "def my_exp(alpha: int = 1):\n    return alpha\n")
    (tmp_path / "specs.py").write_text(
        "from exps import my_exp\n"
        "from repro.eval.registry import ExperimentSpec\n"
        "SPEC = ExperimentSpec('x', my_exp, print,\n"
        "                      defaults=(('nope', 2),))\n")
    report = lint_paths([str(tmp_path)])
    assert [(f.rule, os.path.basename(f.path)) for f in report.new] == [
        ("REG001", "specs.py")]
    assert "my_exp" in report.new[0].message


def test_suppression_with_reason_suppresses():
    report = lint_paths([fixture("suppressed.py")])
    suppressed_lines = {f.line for f, _ in report.suppressed}
    assert suppressed_lines == {9, 14}
    reasons = {reason for _, reason in report.suppressed}
    assert "fixture exercises suppression" in reasons


def test_suppression_without_reason_is_lnt001_and_does_not_suppress():
    report = lint_paths([fixture("suppressed.py")])
    new = [(f.rule, f.line) for f in report.new]
    # The reasonless pragma: DET001 still fires and LNT001 is added.
    assert ("DET001", 19) in new
    assert ("LNT001", 19) in new
    # A pragma for a different rule does not suppress DET001.
    assert ("DET001", 24) in new


def test_rule_filter_restricts_to_requested_rules():
    report = lint_paths([fixture("det_bad.py")], rules=["DET001"])
    assert {f.rule for f in report.new} == {"DET001"}


def test_unknown_rule_filter_raises():
    with pytest.raises(ValueError, match="unknown rule"):
        lint_paths([fixture("det_bad.py")], rules=["NOPE99"])


def test_syntax_error_reported_as_lnt002(tmp_path):
    broken = tmp_path / "broken.py"
    broken.write_text("def nope(:\n")
    report = lint_paths([str(broken)])
    assert [f.rule for f in report.new] == ["LNT002"]
    assert "does not parse" in report.new[0].message
