"""Unit tests for set reconciliation (Appendix A) and Bloom filters."""

import random

import pytest

from repro.dist.reconcile import (
    P,
    BloomFilter,
    CharacteristicPolynomialSet,
    ReconciliationError,
    _to_field,
    bloom_difference_estimate,
    poly_divmod,
    poly_eval,
    poly_gcd,
    poly_mul,
    poly_powmod,
    reconcile,
)


class TestPolynomialArithmetic:
    def test_mul_degree(self):
        # (1 + z)(2 + z) = 2 + 3z + z^2
        assert poly_mul([1, 1], [2, 1]) == [2, 3, 1]

    def test_eval_horner(self):
        poly = [5, 0, 1]  # 5 + z^2
        assert poly_eval(poly, 3) == 14

    def test_divmod_roundtrip(self):
        a = [3, 1, 4, 1, 5]
        b = [2, 7, 1]
        q, r = poly_divmod(a, b)
        recomposed = [
            (x + y) % P
            for x, y in zip(
                poly_mul(q, b) + [0] * 10, (r + [0] * 10)
            )
        ][:len(a)]
        assert recomposed == a

    def test_divide_by_zero(self):
        with pytest.raises(ZeroDivisionError):
            poly_divmod([1, 2], [0])

    def test_gcd_of_common_factor(self):
        # (z - 5)(z - 7) and (z - 5)(z - 11) share (z - 5)
        a = poly_mul([(-5) % P, 1], [(-7) % P, 1])
        b = poly_mul([(-5) % P, 1], [(-11) % P, 1])
        g = poly_gcd(a, b)
        assert g == [(-5) % P, 1]

    def test_powmod_fermat(self):
        # z^P mod (z - a) == a^P == a (Fermat) for any a
        a = 12345
        modulus = [(-a) % P, 1]
        result = poly_powmod([0, 1], P, modulus)
        assert result == [a]


class TestReconciliation:
    def roundtrip(self, a_only, b_only, common, max_diff, seed=0):
        set_a = set(common) | set(a_only)
        set_b = set(common) | set(b_only)
        message = CharacteristicPolynomialSet.from_set(set_a, max_diff)
        remote_only, local_only = reconcile(set_b, message, max_diff,
                                            seed=seed)
        assert remote_only == {_to_field(x) for x in a_only}
        assert local_only == set(b_only)

    def test_small_difference(self):
        self.roundtrip(a_only={1, 2}, b_only={100}, common=set(range(500, 550)),
                       max_diff=5)

    def test_equal_sets(self):
        self.roundtrip(a_only=set(), b_only=set(), common={1, 2, 3},
                       max_diff=4)

    def test_one_sided_difference(self):
        self.roundtrip(a_only={11, 12, 13}, b_only=set(),
                       common=set(range(20, 40)), max_diff=3)

    def test_other_sided_difference(self):
        self.roundtrip(a_only=set(), b_only={7, 8}, common={1, 2, 3},
                       max_diff=4)

    def test_difference_at_exact_bound(self):
        self.roundtrip(a_only={1, 2, 3}, b_only={4, 5}, common={99},
                       max_diff=5)

    def test_difference_beyond_bound_raises(self):
        set_a = set(range(100))
        set_b = set(range(50, 160))
        message = CharacteristicPolynomialSet.from_set(set_a, max_diff=4)
        with pytest.raises(ReconciliationError):
            reconcile(set_b, message, max_diff=4)

    def test_64bit_fingerprints(self):
        rng = random.Random(5)
        common = {rng.getrandbits(64) for _ in range(200)}
        a_only = {rng.getrandbits(64) for _ in range(3)}
        b_only = {rng.getrandbits(64) for _ in range(2)}
        self.roundtrip(a_only=a_only - common, b_only=b_only - common,
                       common=common, max_diff=8)

    def test_fingerprint_near_field_top_misses_sample_points(self):
        # Regression: images land strictly below the reserved sample band,
        # so a fingerprint just under P can never zero χ_S at a sample
        # point.  2305843009213693937 == P - 14 used to map onto the
        # 13th sample point and abort the reconciliation.
        self.roundtrip(a_only=set(), b_only={P - 14}, common=set(),
                       max_diff=12)
        self.roundtrip(a_only={P - 14}, b_only=set(), common=set(),
                       max_diff=12)

    def test_message_size_is_max_diff_plus_one(self):
        message = CharacteristicPolynomialSet.from_set(set(range(1000)),
                                                       max_diff=10)
        assert len(message.evaluations) == 11  # independent of |set|


class TestBloomFilter:
    def test_membership(self):
        bloom = BloomFilter(bits=4096, hashes=4)
        for x in range(100):
            bloom.add(x)
        assert all(x in bloom for x in range(100))

    def test_false_positive_rate_reasonable(self):
        bloom = BloomFilter(bits=8192, hashes=4)
        for x in range(200):
            bloom.add(x)
        fps = sum(1 for x in range(10_000, 20_000) if x in bloom)
        assert fps / 10_000 < 0.02

    def test_cardinality_estimate(self):
        bloom = BloomFilter(bits=8192, hashes=4)
        for x in range(300):
            bloom.add(x)
        assert bloom.estimated_cardinality() == pytest.approx(300, rel=0.1)

    def test_difference_estimate(self):
        a = BloomFilter(bits=16384, hashes=4)
        b = BloomFilter(bits=16384, hashes=4)
        for x in range(400):
            a.add(x)
            b.add(x)
        for x in range(1000, 1050):
            a.add(x)
        estimate = bloom_difference_estimate(a, b)
        assert estimate == pytest.approx(50, rel=0.35)

    def test_identical_filters_estimate_zero(self):
        a = BloomFilter(bits=4096, hashes=3)
        b = BloomFilter(bits=4096, hashes=3)
        for x in range(100):
            a.add(x)
            b.add(x)
        assert bloom_difference_estimate(a, b) < 5

    def test_saturated_filter_degrades(self):
        """The §2.4.1 caveat: a too-small filter gives junk estimates."""
        a = BloomFilter(bits=64, hashes=4)
        for x in range(500):
            a.add(x)
        assert a.estimated_cardinality() == float("inf") or \
            a.estimated_cardinality() > 0

    def test_incompatible_filters_rejected(self):
        a = BloomFilter(bits=64, hashes=2)
        b = BloomFilter(bits=128, hashes=2)
        with pytest.raises(ValueError):
            bloom_difference_estimate(a, b)

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            BloomFilter(bits=0)
