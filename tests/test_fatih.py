"""Integration tests for the Fatih system (§5.3) — compressed timeline."""

import pytest

from repro.core.fatih import FatihConfig, FatihSystem, RTTMonitor
from repro.net.adversary import DropFractionAttack
from repro.net.router import Network
from repro.net.routing import LinkStateRouting
from repro.net.topology import MBPS, abilene
from repro.net.traffic import CBRSource


def build_system(tau=2.0, threshold=2):
    net = Network(abilene(bandwidth=10 * MBPS), proc_jitter=0.0002)
    routing = LinkStateRouting(net, spf_delay=1.0, spf_hold=2.0,
                               hello_interval=2.0, boot_spread=4.0,
                               flood_hop_delay=0.01, lsa_refresh=4.0)
    routing.start()
    fatih = FatihSystem(net, routing,
                        config=FatihConfig(tau=tau, threshold=threshold,
                                           rebuild_grace=6.0))
    return net, routing, fatih


def add_background(net, start=10.0):
    flows = [("Sunnyvale", "NewYork"), ("NewYork", "Sunnyvale"),
             ("LosAngeles", "Chicago"), ("Seattle", "WashingtonDC")]
    return [CBRSource(net, s, d, f"bg{i}", rate_bps=80_000, start=start)
            for i, (s, d) in enumerate(flows)]


class TestFatihTimeline:
    def test_no_detection_without_attack(self):
        net, routing, fatih = build_system()
        add_background(net)
        fatih.start_monitoring(at=12.0, until=40.0)
        net.run(40.0)
        assert fatih.suspicions == []

    def test_detects_and_reroutes(self):
        net, routing, fatih = build_system()
        add_background(net)
        fatih.start_monitoring(at=12.0, until=60.0)
        net.run(30.0)
        net.routers["KansasCity"].compromise = DropFractionAttack(0.2,
                                                                  seed=1)
        net.run(60.0)
        assert fatih.first_detection_time() is not None
        assert fatih.first_detection_time() > 30.0
        # Every suspicion names a segment containing the attacker.
        assert fatih.suspected_segments()
        for seg in fatih.suspected_segments():
            assert "KansasCity" in seg
        # The routing daemons learned the alerts.
        first = next(iter(fatih.suspected_segments()))
        for name in net.topology.routers:
            assert first in routing.state[name].suspicions

    def test_detection_latency_within_two_rounds(self):
        net, routing, fatih = build_system(tau=2.0)
        add_background(net)
        fatih.start_monitoring(at=12.0, until=60.0)
        net.run(30.0)
        net.routers["KansasCity"].compromise = DropFractionAttack(0.3,
                                                                  seed=2)
        net.run(60.0)
        latency = fatih.first_detection_time() - 30.0
        assert latency < 2 * 2.0 + 2.0  # two rounds + settle/timeout slack

    def test_traffic_avoids_suspected_segments_after_response(self):
        net, routing, fatih = build_system()
        add_background(net)
        fatih.start_monitoring(at=12.0, until=80.0)
        net.run(30.0)
        attack = DropFractionAttack(0.25, seed=3)
        net.routers["KansasCity"].compromise = attack
        net.run(55.0)
        assert fatih.suspicions, "attack must be detected first"
        drops_at_response = len(attack.dropped)
        # After the reroute, transit through Kansas City on the suspected
        # segments dries up, so the attacker sees (almost) nothing new.
        net.run(80.0)
        assert len(attack.dropped) - drops_at_response <= \
            drops_at_response * 0.2 + 5


class TestRTTMonitor:
    def test_measures_path_latency(self):
        net = Network(abilene(bandwidth=10 * MBPS))
        from repro.net.routing import install_static_routes
        install_static_routes(net)
        rtt = RTTMonitor(net, "NewYork", "Sunnyvale", interval=0.5,
                         start=0.0, stop=5.0)
        net.run(8.0)
        assert rtt.samples
        assert rtt.mean_rtt() == pytest.approx(0.050, abs=0.003)

    def test_counts_lost_probes(self):
        net = Network(abilene(bandwidth=10 * MBPS))
        from repro.net.routing import install_static_routes
        install_static_routes(net)
        net.routers["KansasCity"].compromise = DropFractionAttack(1.0)
        rtt = RTTMonitor(net, "NewYork", "Sunnyvale", interval=0.5,
                         start=0.0, stop=3.0)
        net.run(10.0)
        assert rtt.samples == []
        assert rtt.lost > 0
