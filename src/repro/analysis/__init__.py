"""repro.analysis: AST-based invariant linting for the reproduction.

The runtime can only spot-check the properties everything else rests on
— bit-reproducible simulation, picklable sweep payloads, registry
contracts.  This package checks them statically, before the code runs:

* determinism rules (DET001-DET004) over the simulation packages,
* payload-safety rules (PAY001-PAY003) at every pickle boundary,
* registry-contract rules (REG001-REG003) over experiment specs and
  result types.

Run it as ``python -m repro lint`` (see :mod:`repro.analysis.cli`) or
call :func:`lint_paths` directly.
"""

from repro.analysis.baseline import Baseline, BaselineError
from repro.analysis.engine import LintReport, discover_files, lint_paths
from repro.analysis.findings import RULES, Finding, Rule

__all__ = [
    "Baseline",
    "BaselineError",
    "Finding",
    "LintReport",
    "RULES",
    "Rule",
    "discover_files",
    "lint_paths",
]
