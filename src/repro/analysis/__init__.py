"""repro.analysis: AST-based invariant linting for the reproduction.

The runtime can only spot-check the properties everything else rests on
— bit-reproducible simulation, picklable sweep payloads, registry
contracts.  This package checks them statically, before the code runs:

* determinism rules (DET001-DET004) over the simulation packages,
* payload-safety rules (PAY001-PAY003) at every pickle boundary,
* registry-contract rules (REG001-REG003) over experiment specs and
  result types,
* cache-key hygiene rules (CKY001-CKY003) over the sweep key path,
* time-domain taint rules (TDM001-TDM002) over sim-domain sinks.

The CKY/TDM families — and DET004's escape filter — ride a shared
flow-sensitive dataflow engine (:mod:`repro.analysis.dataflow`) that
propagates wall-clock/entropy/environment/set-order taint through each
function, with one-hop cross-file call summaries.

Run it as ``python -m repro lint`` (see :mod:`repro.analysis.cli`) or
call :func:`lint_paths` directly.  ``--fix`` applies the deterministic
autofixes attached to mechanical findings; an incremental result cache
under ``.repro-cache/lint/`` and ``--jobs N`` keep large trees fast.
"""

from repro.analysis.baseline import Baseline, BaselineError
from repro.analysis.cache import LintCache
from repro.analysis.engine import LintReport, discover_files, lint_paths
from repro.analysis.findings import RULES, Finding, Fix, Rule

__all__ = [
    "Baseline",
    "BaselineError",
    "Finding",
    "Fix",
    "LintCache",
    "LintReport",
    "RULES",
    "Rule",
    "discover_files",
    "lint_paths",
]
