"""Baseline files: grandfathered findings, each with a written reason.

A baseline is a checked-in JSON file mapping finding fingerprints to
``{rule, path, message, reason}``.  Findings whose fingerprint appears
in the baseline are reported as *baselined* instead of failing the run —
but only if the entry carries a non-empty ``reason``: a grandfathered
violation without a rationale is indistinguishable from a rubber stamp,
so the loader rejects it.

Fingerprints hash (rule, path, offending-line text, occurrence index)
rather than line numbers, so unrelated edits don't invalidate entries;
entries whose finding has disappeared are *stale* and reported (non-
fatally) so the file shrinks as violations get fixed.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Dict, List

from repro.analysis.findings import Finding

BASELINE_SCHEMA = "repro.lint-baseline/v1"
DEFAULT_BASELINE = ".repro-lint-baseline.json"


class BaselineError(ValueError):
    """The baseline file is malformed or missing required reasons."""


@dataclass
class Baseline:
    """In-memory view of one baseline file."""

    path: str
    entries: Dict[str, dict] = field(default_factory=dict)

    @classmethod
    def load(cls, path: str) -> "Baseline":
        if not os.path.exists(path):
            return cls(path=path)
        with open(path, encoding="utf-8") as handle:
            try:
                data = json.load(handle)
            except json.JSONDecodeError as error:
                raise BaselineError(
                    f"baseline {path}: not valid JSON ({error})") from None
        if not isinstance(data, dict) \
                or data.get("schema") != BASELINE_SCHEMA:
            raise BaselineError(
                f"baseline {path}: expected schema {BASELINE_SCHEMA!r}, "
                f"got {data.get('schema') if isinstance(data, dict) else data!r}")
        entries = data.get("findings", {})
        for fingerprint, entry in entries.items():
            if not str(entry.get("reason", "")).strip():
                raise BaselineError(
                    f"baseline {path}: entry {fingerprint} "
                    f"({entry.get('rule')} at {entry.get('path')}) has no "
                    f"reason; every grandfathered finding must say why "
                    f"it is allowed to stand")
        return cls(path=path, entries=dict(entries))

    def save(self, findings: List[Finding], *,
             reason: str = "grandfathered at baseline creation") -> None:
        """Write ``findings`` as the new baseline, preserving the reasons
        of entries that already existed."""
        entries = {}
        for finding in findings:
            fingerprint = finding.fingerprint()
            previous = self.entries.get(fingerprint, {})
            entries[fingerprint] = {
                "rule": finding.rule,
                "path": finding.path,
                "message": finding.message,
                "reason": previous.get("reason", reason),
            }
        payload = {"schema": BASELINE_SCHEMA, "findings": entries}
        with open(self.path, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
        self.entries = entries

    def match(self, finding: Finding) -> bool:
        return finding.fingerprint() in self.entries

    def drop(self, findings: List[Finding]) -> int:
        """Remove the entries matching ``findings`` and rewrite the file.

        Used by ``--fix``: an autofixed finding's baseline entry would
        otherwise go stale the moment the source line changes (the
        fingerprint hashes the line text).  Returns how many entries
        were dropped; the file is rewritten only when at least one was.
        """
        dropped = 0
        for finding in findings:
            if self.entries.pop(finding.fingerprint(), None) is not None:
                dropped += 1
        if dropped and os.path.exists(self.path):
            payload = {"schema": BASELINE_SCHEMA, "findings": self.entries}
            with open(self.path, "w", encoding="utf-8") as handle:
                json.dump(payload, handle, indent=2, sort_keys=True)
                handle.write("\n")
        return dropped

    def stale_entries(self, findings: List[Finding]) -> Dict[str, dict]:
        """Baseline entries no longer matched by any current finding."""
        live = {finding.fingerprint() for finding in findings}
        return {fp: entry for fp, entry in self.entries.items()
                if fp not in live}
