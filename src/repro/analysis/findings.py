"""Finding and rule-catalogue types shared by every lint pass.

A :class:`Finding` is one rule violation at one source location.  Its
:meth:`Finding.fingerprint` is deliberately line-number-free — it hashes
the rule, the file, and the *text* of the offending line (plus an
occurrence index for identical lines) — so a baseline entry keeps
matching while unrelated edits shift the file around it.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Dict, List


@dataclass(frozen=True)
class Rule:
    """One lint rule: stable ID, one-line summary, rationale."""

    id: str
    summary: str
    rationale: str = ""


@dataclass
class Finding:
    """One rule violation at one location."""

    rule: str
    path: str  # as given on the command line (normalized, relative ok)
    line: int  # 1-based
    col: int   # 0-based, ast convention
    message: str
    source_line: str = ""  # stripped text of the offending line
    #: occurrence index among findings with the same (rule, path, text);
    #: keeps fingerprints distinct when one line is duplicated verbatim.
    occurrence: int = 0

    def fingerprint(self) -> str:
        key = f"{self.rule}|{self.path}|{self.source_line}|{self.occurrence}"
        return hashlib.sha256(key.encode()).hexdigest()[:16]

    def to_dict(self) -> dict:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "fingerprint": self.fingerprint(),
        }

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col + 1}: {self.rule} {self.message}"


def assign_occurrences(findings: List[Finding]) -> None:
    """Number findings that share (rule, path, source text) 0, 1, 2, ...

    Must run before fingerprints are compared against a baseline.
    Findings are numbered in line order so the mapping is stable.
    """
    counts: Dict[tuple, int] = {}
    for finding in sorted(findings, key=lambda f: (f.path, f.line, f.col)):
        key = (finding.rule, finding.path, finding.source_line)
        finding.occurrence = counts.get(key, 0)
        counts[key] = finding.occurrence + 1


#: The rule catalogue.  IDs are stable public API: tests, suppression
#: comments and baselines all reference them.
RULES: Dict[str, Rule] = {}


def rule(id: str, summary: str, rationale: str = "") -> Rule:
    """Declare one rule in the catalogue (module-import time)."""
    entry = Rule(id, summary, rationale)
    RULES[id] = entry
    return entry


# Meta rules the engine itself emits (not tied to a pass).
LNT001 = rule(
    "LNT001",
    "suppression comment without a reason",
    "`# repro-lint: disable=RULE` must carry `-- <why>` so the next "
    "reader knows why the invariant is waived here.",
)
LNT002 = rule(
    "LNT002",
    "file does not parse",
    "a lint target with a syntax error cannot be checked at all.",
)
