"""Finding and rule-catalogue types shared by every lint pass.

A :class:`Finding` is one rule violation at one source location.  Its
:meth:`Finding.fingerprint` is deliberately line-number-free — it hashes
the rule, the file, and the *text* of the offending line (plus an
occurrence index for identical lines) — so a baseline entry keeps
matching while unrelated edits shift the file around it.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Dict, List, Optional


@dataclass(frozen=True)
class Rule:
    """One lint rule: stable ID, one-line summary, rationale."""

    id: str
    summary: str
    rationale: str = ""


@dataclass(frozen=True)
class Fix:
    """A deterministic source edit attached to a finding.

    A fix replaces one exact character span; ``original`` is the text
    the span must still hold when the fix is applied, so a stale fix
    (source drifted since analysis) is skipped instead of corrupting
    the file.
    """

    line: int       # 1-based span start
    col: int        # 0-based
    end_line: int   # 1-based, inclusive line of the span end
    end_col: int    # 0-based, exclusive
    original: str
    replacement: str
    description: str = ""

    def to_dict(self) -> dict:
        return {
            "line": self.line,
            "col": self.col,
            "end_line": self.end_line,
            "end_col": self.end_col,
            "original": self.original,
            "replacement": self.replacement,
            "description": self.description,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Fix":
        return cls(line=data["line"], col=data["col"],
                   end_line=data["end_line"], end_col=data["end_col"],
                   original=data["original"],
                   replacement=data["replacement"],
                   description=data.get("description", ""))


@dataclass
class Finding:
    """One rule violation at one location."""

    rule: str
    path: str  # as given on the command line (normalized, relative ok)
    line: int  # 1-based
    col: int   # 0-based, ast convention
    message: str
    source_line: str = ""  # stripped text of the offending line
    #: occurrence index among findings with the same (rule, path, text);
    #: keeps fingerprints distinct when one line is duplicated verbatim.
    occurrence: int = 0
    #: Mechanical autofix, when the rule can offer one (``--fix``).
    fix: Optional[Fix] = None

    def fingerprint(self) -> str:
        key = f"{self.rule}|{self.path}|{self.source_line}|{self.occurrence}"
        return hashlib.sha256(key.encode()).hexdigest()[:16]

    def to_dict(self) -> dict:
        data = {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "fingerprint": self.fingerprint(),
        }
        if self.fix is not None:
            data["fixable"] = True
        return data

    def to_cache_dict(self) -> dict:
        """Full round-trip form for the on-disk lint result cache."""
        data = {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "source_line": self.source_line,
        }
        if self.fix is not None:
            data["fix"] = self.fix.to_dict()
        return data

    @classmethod
    def from_cache_dict(cls, data: dict) -> "Finding":
        fix = data.get("fix")
        return cls(rule=data["rule"], path=data["path"], line=data["line"],
                   col=data["col"], message=data["message"],
                   source_line=data.get("source_line", ""),
                   fix=Fix.from_dict(fix) if fix else None)

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col + 1}: {self.rule} {self.message}"


def assign_occurrences(findings: List[Finding]) -> None:
    """Number findings that share (rule, path, source text) 0, 1, 2, ...

    Must run before fingerprints are compared against a baseline.
    Findings are numbered in line order so the mapping is stable.
    """
    counts: Dict[tuple, int] = {}
    for finding in sorted(findings, key=lambda f: (f.path, f.line, f.col)):
        key = (finding.rule, finding.path, finding.source_line)
        finding.occurrence = counts.get(key, 0)
        counts[key] = finding.occurrence + 1


#: The rule catalogue.  IDs are stable public API: tests, suppression
#: comments and baselines all reference them.
RULES: Dict[str, Rule] = {}


def rule(id: str, summary: str, rationale: str = "") -> Rule:
    """Declare one rule in the catalogue (module-import time)."""
    entry = Rule(id, summary, rationale)
    RULES[id] = entry
    return entry


# Meta rules the engine itself emits (not tied to a pass).
LNT001 = rule(
    "LNT001",
    "suppression comment without a reason",
    "`# repro-lint: disable=RULE` must carry `-- <why>` so the next "
    "reader knows why the invariant is waived here.",
)
LNT002 = rule(
    "LNT002",
    "file does not parse",
    "a lint target with a syntax error cannot be checked at all.",
)
