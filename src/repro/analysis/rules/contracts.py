"""Registry-contract rules: specs, signatures and result protocols agree.

The experiment registry promises two things the runtime only enforces
late (at registration import time, or when a worker tries to serialize a
result).  These rules move both to lint time, resolving callables
*across files* through the project index:

* **REG001** — an ``ExperimentSpec``'s declared ``defaults`` /
  ``params`` name a parameter the experiment function's signature does
  not accept.
* **REG002** — a result type registered via ``@register_result_type``
  (or subclassing ``EvalResultBase``) is missing part of the
  ``EvalResult`` protocol: its own ``to_dict``, or ``from_dict`` /
  ``fields`` (own or inherited).
* **REG003** — the callable handed to ``ExperimentSpec`` is a lambda or
  a nested function, which cannot be named by string or pickled into a
  sweep worker.
"""

from __future__ import annotations

import ast
from typing import List, Optional, Set

from repro.analysis.findings import Finding, rule
from repro.analysis.model import (
    ClassInfo,
    ModuleInfo,
    ProjectIndex,
)

rule("REG001",
     "ExperimentSpec parameter not in the experiment's signature",
     "defaults/params must match the callable's signature or sweeps "
     "fail at dispatch time with a TypeError deep in a worker.")
rule("REG002",
     "registered result type missing the EvalResult protocol",
     "every result type must speak to_dict/from_dict/fields so sweep "
     "records serialize and rehydrate without per-type switches.")
rule("REG003",
     "experiment callable is not a module-level function",
     "specs reference module-level callables only: the registry ships "
     "experiments to workers by name.")

#: Base classes that supply from_dict/fields (but never to_dict).
_PROTOCOL_BASES = {"EvalResultBase"}
_PROTOCOL_METHODS = ("to_dict", "from_dict", "fields")


def _dotted(node: ast.expr) -> str:
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return ""


def _literal_str(node: ast.expr) -> Optional[str]:
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    return None


def _declared_param_names(call: ast.Call) -> List[ast.expr]:
    """Name-bearing nodes from defaults=((name, v), ...) and params=(...)."""
    nodes: List[ast.expr] = []
    for kw in call.keywords:
        if kw.arg == "defaults" and isinstance(kw.value,
                                               (ast.Tuple, ast.List)):
            for pair in kw.value.elts:
                if isinstance(pair, (ast.Tuple, ast.List)) and pair.elts:
                    nodes.append(pair.elts[0])
        elif kw.arg == "params" and isinstance(kw.value,
                                               (ast.Tuple, ast.List)):
            for spec in kw.value.elts:
                if isinstance(spec, ast.Call) and spec.args:
                    nodes.append(spec.args[0])
    return nodes


class _NestedDefs(ast.NodeVisitor):
    def __init__(self) -> None:
        self.names: Set[str] = set()
        self._depth = 0

    def _visit_def(self, node) -> None:
        if self._depth > 0:
            self.names.add(node.name)
        self._depth += 1
        self.generic_visit(node)
        self._depth -= 1

    visit_FunctionDef = _visit_def
    visit_AsyncFunctionDef = _visit_def


def _check_spec_call(info: ModuleInfo, index: ProjectIndex,
                     call: ast.Call, nested: Set[str],
                     findings: List[Finding]) -> None:
    # ExperimentSpec(name, fn, reporter, ...)
    fn_node: Optional[ast.expr] = None
    for kw in call.keywords:
        if kw.arg == "fn":
            fn_node = kw.value
    if fn_node is None and len(call.args) >= 2:
        fn_node = call.args[1]
    spec_name = None
    for kw in call.keywords:
        if kw.arg == "name":
            spec_name = _literal_str(kw.value)
    if spec_name is None and call.args:
        spec_name = _literal_str(call.args[0])
    label = f"experiment {spec_name!r}" if spec_name else "experiment spec"

    def emit(rule_id: str, node: ast.AST, message: str) -> None:
        findings.append(Finding(
            rule=rule_id, path=info.path, line=node.lineno,
            col=node.col_offset, message=message,
            source_line=info.source_line(node.lineno)))

    if fn_node is None:
        return
    # REG003: lambdas and nested functions can't be shipped by name.
    if isinstance(fn_node, ast.Lambda):
        emit("REG003", fn_node,
             f"{label}: fn is a lambda; experiments must be "
             f"module-level functions (pickled by name into workers)")
        return
    if isinstance(fn_node, ast.Name) and fn_node.id in nested:
        emit("REG003", fn_node,
             f"{label}: fn {fn_node.id!r} is a nested function; move "
             f"it to module level so workers can import it")
        return

    fn_info = index.resolve_function(info, fn_node)
    if fn_info is None:
        return  # out-of-index callable (plugin, class): nothing to check
    accepted = set(fn_info.params)
    for name_node in _declared_param_names(call):
        declared = _literal_str(name_node)
        if declared is None:
            continue
        if declared not in accepted and not fn_info.has_kwargs:
            emit("REG001", name_node,
                 f"{label}: parameter {declared!r} is not accepted by "
                 f"{fn_info.name}() (signature: "
                 f"{', '.join(fn_info.params) or 'no parameters'})")


def _resolve_base(info: ModuleInfo, index: ProjectIndex,
                  base_text: str) -> Optional[ClassInfo]:
    tail = base_text.split(".")[-1]
    target = info.imported_names.get(base_text)
    if target is not None:
        return index.classes.get(f"{target[0]}.{target[1]}")
    found = index.classes.get(f"{info.module}.{base_text}")
    if found is not None:
        return found
    # Attribute base like results.EvalResultBase.
    for key, cls in index.classes.items():
        if key.endswith("." + tail):
            return cls
    return None


def _check_result_class(info: ModuleInfo, index: ProjectIndex,
                        node: ast.ClassDef,
                        findings: List[Finding]) -> None:
    own = {item.name for item in node.body
           if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef))}
    provided = set(own)
    for base in node.bases:
        base_text = _dotted(base)
        if not base_text:
            continue
        if base_text.split(".")[-1] in _PROTOCOL_BASES:
            provided.update(("from_dict", "fields"))
            continue
        base_info = _resolve_base(info, index, base_text)
        if base_info is not None:
            provided.update(base_info.methods)
    missing = [m for m in _PROTOCOL_METHODS if m not in provided]
    if missing:
        findings.append(Finding(
            rule="REG002", path=info.path, line=node.lineno,
            col=node.col_offset,
            message=(f"result type {node.name!r} is registered but "
                     f"missing {', '.join(missing)} from the EvalResult "
                     f"protocol (define them or inherit EvalResultBase)"),
            source_line=info.source_line(node.lineno)))


def check_registry_contracts(info: ModuleInfo,
                             index: ProjectIndex) -> List[Finding]:
    findings: List[Finding] = []
    nested = _NestedDefs()
    nested.visit(info.tree)
    for node in ast.walk(info.tree):
        if isinstance(node, ast.Call):
            callee = _dotted(node.func).split(".")[-1]
            if callee == "ExperimentSpec":
                _check_spec_call(info, index, node, nested.names, findings)
        elif isinstance(node, ast.ClassDef):
            decorators = {_dotted(d) if not isinstance(d, ast.Call)
                          else _dotted(d.func)
                          for d in node.decorator_list}
            if any(d.split(".")[-1] == "register_result_type"
                   for d in decorators if d):
                _check_result_class(info, index, node, findings)
            elif any(_dotted(b).split(".")[-1] in _PROTOCOL_BASES
                     for b in node.bases):
                _check_result_class(info, index, node, findings)
    return findings
