"""Time-domain taint rules (TDM): keep wall time out of sim artifacts.

``repro.obs`` splits observability into two strictly separated time
domains: sim-domain traces/metrics timestamped exclusively with
simulator virtual time, and the wall-domain telemetry module.  DET003
polices that split syntactically — any clock *read* outside
``repro.obs.telemetry`` fires — but it deliberately ignores
``perf_counter``/``monotonic`` and cannot see a wall value *moving*
between domains through assignments and helper calls.  These rules
close both gaps with the dataflow engine:

* **TDM001** — a wall-clock-tainted value flows into a sim-domain sink:
  ``Recorder.event``, a trace sink's ``emit``, a metric's
  ``inc``/``set``/``observe``, or a ``TraceTap`` ``on_*`` callback.
  Unlike DET003 this tracks *values*, so ``t = time.perf_counter();
  rec.event("x", t)`` fires even though the read itself is DET003-clean,
  and it applies inside ``repro.obs.telemetry`` too — telemetry may read
  clocks, but it may not feed them into sim-domain records.  That
  replaces the old blanket module exemption with the actual invariant.
* **TDM002** — sim-domain code calls a helper whose return value is
  wall-tainted (one-hop summary: e.g. ``telemetry.now_wall()``).
  Laundering a clock through a function in another module is exactly
  the leak a per-statement rule cannot see.

Scope: the sim packages (same as DET), with ``repro.obs.telemetry``
included for TDM001 and excluded for TDM002 (telemetry calling its own
wall helpers is its job).
"""

from __future__ import annotations

from typing import List

from repro.analysis import dataflow
from repro.analysis.findings import Finding, rule
from repro.analysis.model import ModuleInfo, ProjectIndex
from repro.analysis.rules.determinism import SIM_PACKAGES, WALLCLOCK_EXEMPT

rule("TDM001",
     "wall-clock value flows into a sim-domain sink",
     "sim-domain traces/metrics are timestamped with simulator virtual "
     "time only; a wall-clock value in a Recorder/TraceTap/metrics sink "
     "breaks trace byte-identity across runs and hosts.")
rule("TDM002",
     "sim-domain code calls a wall-clock-returning helper",
     "a helper whose return value derives from the wall clock (e.g. "
     "telemetry.now_wall) launders nondeterminism past the syntactic "
     "clock-read rule; sim code must not consume wall-domain values.")


def _in_sim_scope(module: str) -> bool:
    return any(module == pkg or module.startswith(pkg + ".")
               for pkg in SIM_PACKAGES)


def _is_telemetry(module: str) -> bool:
    return any(module == m or module.startswith(m + ".")
               for m in WALLCLOCK_EXEMPT)


def check_timedomain(info: ModuleInfo,
                     index: ProjectIndex) -> List[Finding]:
    if not _in_sim_scope(info.module):
        return []
    telemetry = _is_telemetry(info.module)
    findings: List[Finding] = []
    flow = dataflow.module_flow(info, index)
    for hit in flow.hits:
        if hit.family == "sim-sink" and dataflow.WALL in hit.kinds:
            findings.append(Finding(
                rule="TDM001", path=info.path, line=hit.line, col=hit.col,
                message=(f"wall-clock-tainted value reaches sim-domain "
                         f"sink {hit.sink}; sim records carry virtual "
                         f"time only"),
                source_line=info.source_line(hit.line)))
        elif hit.family == "wall-call" and not telemetry:
            helper = hit.detail or hit.sink
            findings.append(Finding(
                rule="TDM002", path=info.path, line=hit.line, col=hit.col,
                message=(f"call to {hit.sink} returns a wall-clock-"
                         f"derived value ({helper}); sim code must not "
                         f"consume wall-domain values"),
                source_line=info.source_line(hit.line)))
    return findings
