"""Determinism rules: keep simulation code bit-reproducible.

The traffic-validation detectors and the sweep engine's shard-merge
identity both assume that a run is a pure function of its
:class:`~repro.sweep.grid.RunSpec` — same seed, same bytes.  These rules
fence off the three classic leaks inside the simulation packages
(``repro.net``, ``repro.core``, ``repro.dist``, ``repro.crypto``,
``repro.obs``):

* **DET001** — the process-global ``random`` generator (``random.random()``,
  ``random.choice`` ...).  Seeded ``random.Random(seed)`` instances are
  fine; the global generator's state is shared, order-dependent, and
  invisible to the cache key.
* **DET002** — unseeded numpy RNGs (``np.random.rand()``,
  ``default_rng()`` with no seed).  ``default_rng(seed)`` /
  ``RandomState(seed)`` are fine.
* **DET003** — wall-clock and OS entropy reads (``time.time``,
  ``datetime.now``, ``os.urandom``, ``uuid.uuid1/uuid4``, ``secrets``)
  in simulation code.  Key generation (``repro.crypto.keys``) is exempt
  from the entropy half by design; the sweep-telemetry module
  (``repro.obs.telemetry``) is exempt from the wall-clock half — it is
  the one sanctioned wall-domain module in the observability subsystem,
  and its output lives in the manifest, never in sim artifacts.
* **DET004** — iterating a ``set``/``frozenset`` whose order actually
  escapes into downstream state.  String hashing is salted per process
  (PYTHONHASHSEED), so set order differs across the very worker
  processes a sweep fans out to.  Wrap the iterable in ``sorted(...)``
  or keep an ordered container.  Order-insensitive reducers
  (``sum``/``min``/``max``/``len``/``any``/``all``/``sorted``/set
  constructors) are recognized and not flagged, and since the
  flow-sensitive engine landed the rule is *escape-filtered*: the
  syntactic candidates (every set iteration/materialization site) are
  kept only when the dataflow analysis sees an order-dependent value
  derived from that site reach a return/yield, an output or hash sink,
  object state, or a mutated parameter.  A loop that folds set members
  into an order-insensitive aggregate no longer fires.  The filter is
  an intersection, so the new rule's findings are always a subset of
  the old syntactic rule's.
"""

from __future__ import annotations

import ast
from typing import List, Set

from repro.analysis import dataflow
from repro.analysis.dataflow import collect_set_names, is_set_expr
from repro.analysis.findings import Finding, Fix, rule
from repro.analysis.fixes import span_text as _span_text
from repro.analysis.model import ModuleInfo, ProjectIndex

# Shared AST helpers live in the dataflow engine now; keep the old
# private names importable for in-repo users of this module.
_dotted = dataflow.dotted_name

rule("DET001",
     "call through the process-global random generator",
     "global RNG state is shared and order-dependent; thread a seeded "
     "random.Random(seed) instance instead so runs are pure functions "
     "of their RunSpec.")
rule("DET002",
     "unseeded numpy random call",
     "np.random.* and default_rng() without a seed draw from hidden "
     "global state; pass an explicit seed or Generator.")
rule("DET003",
     "wall-clock or OS-entropy read in simulation code",
     "time.time()/datetime.now()/os.urandom() make a run depend on when "
     "and where it executed, breaking cache keys and shard-merge "
     "bit-identity.")
rule("DET004",
     "iteration over an unordered set reaches downstream state",
     "set order is salted per process (PYTHONHASHSEED); iterate "
     "sorted(...) or an ordered container when order can feed "
     "scheduling, serialization, or hashing.")

#: Packages the determinism rules police.
SIM_PACKAGES = ("repro.net", "repro.core", "repro.dist", "repro.crypto",
                "repro.obs")
#: Modules allowed to read OS entropy (key generation by design).
ENTROPY_EXEMPT = ("repro.crypto.keys",)
#: Modules allowed to read the wall clock: sweep telemetry is the one
#: wall-domain module in repro.obs; everything else in the package is
#: sim-domain and must timestamp with Simulator virtual time.
WALLCLOCK_EXEMPT = ("repro.obs.telemetry",)

#: random-module attributes that are *not* global-state draws.
_RANDOM_SAFE = {"Random", "SystemRandom", "__name__"}
#: numpy.random attributes that are deterministic when given a seed arg.
_NUMPY_SEEDED_OK = {"default_rng", "RandomState", "Generator",
                    "SeedSequence", "PCG64", "Philox", "MT19937", "SFC64"}
#: Wrappers whose result does not depend on iteration order.
_ORDER_INSENSITIVE = {"sorted", "sum", "min", "max", "len", "any", "all",
                      "set", "frozenset", "Counter"}
#: datetime constructors that read the wall clock.
_WALLCLOCK_DATETIME = {"now", "utcnow", "today"}
#: time-module functions that read the wall clock.  perf_counter and
#: monotonic are deliberately excluded: they only ever feed elapsed-time
#: measurement, not simulated state.
_WALLCLOCK_TIME = {"time", "time_ns", "localtime", "gmtime", "ctime"}


def _in_sim_scope(module: str) -> bool:
    return any(module == pkg or module.startswith(pkg + ".")
               for pkg in SIM_PACKAGES)


# Backward-compatible alias: set inference moved into the dataflow
# engine so the taint analysis and the syntactic candidates agree on
# what "is a set" means.
_SetTracker = dataflow.SetTracker


class _DeterminismVisitor(ast.NodeVisitor):
    def __init__(self, info: ModuleInfo, set_names: Set[str],
                 entropy_ok: bool, wallclock_ok: bool = False) -> None:
        self.info = info
        self.set_names = set_names
        self.entropy_ok = entropy_ok
        self.wallclock_ok = wallclock_ok
        self.findings: List[Finding] = []
        #: comprehension nodes fed straight into an order-insensitive
        #: reducer (sum/min/max/any/all/sorted/...): exempt from DET004.
        self._exempt: Set[int] = set()
        #: local aliases for the random/numpy/time modules, from imports.
        self.random_aliases: Set[str] = set()
        self.numpy_aliases: Set[str] = set()
        self.global_random_names: Set[str] = set()  # from random import x
        self.datetime_aliases: Set[str] = set()     # datetime *class* names
        for alias, module in info.module_aliases.items():
            if module == "random":
                self.random_aliases.add(alias)
            elif module in ("numpy", "numpy.random"):
                self.numpy_aliases.add(alias)
            elif module == "datetime.datetime":
                self.datetime_aliases.add(alias)
        for local, (module, name) in info.imported_names.items():
            if module == "random" and name not in _RANDOM_SAFE:
                self.global_random_names.add(local)
            elif module == "datetime" and name == "datetime":
                self.datetime_aliases.add(local)

    def _emit(self, rule_id: str, node: ast.AST, message: str,
              fix: "Fix | None" = None) -> None:
        self.findings.append(Finding(
            rule=rule_id, path=self.info.path, line=node.lineno,
            col=node.col_offset, message=message,
            source_line=self.info.source_line(node.lineno), fix=fix))

    # -- DET001 / DET002 / DET003: calls -------------------------------
    def _check_call(self, node: ast.Call) -> None:
        dotted = _dotted(node.func)
        if not dotted:
            return
        head, _, tail = dotted.partition(".")

        # DET001: random.<fn>() through the module-global generator.
        if head in self.random_aliases and tail \
                and tail not in _RANDOM_SAFE:
            self._emit("DET001", node,
                       f"'{dotted}()' uses the process-global RNG; "
                       f"thread a seeded random.Random instance instead")
        elif dotted in self.global_random_names:
            self._emit("DET001", node,
                       f"'{dotted}()' (imported from random) uses the "
                       f"process-global RNG; thread a seeded "
                       f"random.Random instance instead")

        # DET002: numpy.random draws.
        parts = dotted.split(".")
        np_random = (
            (parts[0] in self.numpy_aliases and len(parts) >= 2
             and (self.info.module_aliases.get(parts[0]) == "numpy.random"
                  or parts[1] == "random")))
        if np_random:
            fn = parts[-1]
            if fn in _NUMPY_SEEDED_OK:
                if not node.args and not node.keywords:
                    self._emit("DET002", node,
                               f"'{dotted}()' without a seed draws OS "
                               f"entropy; pass an explicit seed")
            elif fn not in ("__name__",):
                self._emit("DET002", node,
                           f"'{dotted}()' uses numpy's global RNG state; "
                           f"use np.random.default_rng(seed)")

        # DET003: wall clock / entropy.
        if not self.wallclock_ok:
            if head == "time" and tail in _WALLCLOCK_TIME \
                    and "time" in self.info.module_aliases:
                self._emit("DET003", node,
                           f"'{dotted}()' reads the wall clock inside "
                           f"simulation code; derive times from the "
                           f"simulated clock or the seed")
            if len(parts) >= 2 and parts[-1] in _WALLCLOCK_DATETIME \
                    and (parts[0] in self.datetime_aliases
                         or (parts[0] == "datetime" and len(parts) == 3)):
                self._emit("DET003", node,
                           f"'{dotted}()' reads the wall clock inside "
                           f"simulation code")
        if not self.entropy_ok:
            if dotted.endswith("os.urandom") or dotted == "os.urandom":
                self._emit("DET003", node,
                           "'os.urandom()' reads OS entropy inside "
                           "simulation code; derive bytes from the seed")
            elif head == "secrets" and tail:
                self._emit("DET003", node,
                           f"'{dotted}()' reads OS entropy inside "
                           f"simulation code")
            elif head == "uuid" and tail in ("uuid1", "uuid4"):
                self._emit("DET003", node,
                           f"'{dotted}()' is non-deterministic; derive "
                           f"IDs from a counter or the seed")

    # -- DET004: set iteration ------------------------------------------
    def _sorted_fix(self, iterable: ast.expr) -> "Fix | None":
        """Wrap the flagged iterable in ``sorted(...)`` in place."""
        end_line = getattr(iterable, "end_lineno", None)
        end_col = getattr(iterable, "end_col_offset", None)
        if end_line is None or end_col is None:
            return None
        original = _span_text(self.info.lines, iterable.lineno,
                              iterable.col_offset, end_line, end_col)
        if original is None:
            return None
        return Fix(line=iterable.lineno, col=iterable.col_offset,
                   end_line=end_line, end_col=end_col,
                   original=original, replacement=f"sorted({original})",
                   description="wrap set iterable in sorted(...)")

    def _check_iteration(self, iterable: ast.expr, node: ast.AST) -> None:
        if is_set_expr(iterable, self.set_names):
            text = _dotted(iterable) or ast.unparse(iterable)
            self._emit("DET004", node,
                       f"iteration over set {text!r} has "
                       f"PYTHONHASHSEED-dependent order and escapes into "
                       f"downstream state; wrap in sorted(...) or use an "
                       f"ordered container",
                       fix=self._sorted_fix(iterable))

    def visit_For(self, node: ast.For) -> None:
        self._check_iteration(node.iter, node)
        self.generic_visit(node)

    def _visit_comprehension(self, node) -> None:
        if id(node) not in self._exempt:
            for gen in node.generators:
                self._check_iteration(gen.iter, node)
        self.generic_visit(node)

    visit_ListComp = _visit_comprehension
    visit_GeneratorExp = _visit_comprehension

    def visit_SetComp(self, node: ast.SetComp) -> None:
        # Building a set from a set is order-insensitive.
        self.generic_visit(node)

    def visit_DictComp(self, node: ast.DictComp) -> None:
        # Dict insertion order is iteration order: flag it.
        self._visit_comprehension(node)

    def visit_Call(self, node: ast.Call) -> None:
        self._check_call(node)
        # list(someset) / tuple(someset) materialize unordered state;
        # sorted(someset) / sum(...) etc. do not.
        callee = _dotted(node.func)
        if callee.split(".")[-1] in _ORDER_INSENSITIVE:
            self._exempt.update(
                id(arg) for arg in node.args
                if isinstance(arg, (ast.GeneratorExp, ast.ListComp,
                                    ast.SetComp)))
        if callee in ("list", "tuple") and len(node.args) == 1:
            self._check_iteration(node.args[0], node)
        if callee == "enumerate" and node.args:
            self._check_iteration(node.args[0], node)
        if callee in ("map", "filter", "zip"):
            for arg in node.args[1:] if callee in ("map", "filter") \
                    else node.args:
                self._check_iteration(arg, node)
        if callee.endswith(".join") and len(node.args) == 1:
            self._check_iteration(node.args[0], node)
        self.generic_visit(node)


def _syntactic_findings(info: ModuleInfo) -> List[Finding]:
    set_names = collect_set_names(info.tree)
    entropy_ok = any(info.module == m or info.module.startswith(m + ".")
                     for m in ENTROPY_EXEMPT)
    wallclock_ok = any(info.module == m or info.module.startswith(m + ".")
                       for m in WALLCLOCK_EXEMPT)
    visitor = _DeterminismVisitor(info, set_names, entropy_ok,
                                  wallclock_ok)
    visitor.visit(info.tree)
    return visitor.findings


def det004_candidates(info: ModuleInfo) -> List[Finding]:
    """The PR-4-era syntactic DET004: every set iteration site.

    Kept (a) so tests can prove the flow-sensitive rule is a strict
    subset, and (b) as the candidate generator the escape filter prunes.
    """
    return [f for f in _syntactic_findings(info) if f.rule == "DET004"]


def check_determinism(info: ModuleInfo,
                      index: ProjectIndex) -> List[Finding]:
    if not _in_sim_scope(info.module):
        return []
    findings = _syntactic_findings(info)
    # DET004 escape filter: keep a syntactic candidate only when the
    # dataflow engine saw an order-dependent value from that exact site
    # escape (return/yield, output/hash/trace sink, object state, or a
    # mutated parameter).  Intersection ⇒ new findings ⊆ old findings.
    escaped = dataflow.module_flow(info, index).escaped_set_sites
    return [f for f in findings
            if f.rule != "DET004" or (f.line, f.col) in escaped]
