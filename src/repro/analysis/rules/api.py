"""Public-API surface rules: internals stay internal.

``repro.net``, ``repro.core``, ``repro.eval`` and ``repro.obs`` export
their supported surface through an explicit ``__all__``; behind it is an
implementation module that may be reorganized freely.  The runtime
enforces this softly (PEP 562 ``__getattr__`` deprecation warnings on
package attribute access); this pass enforces it at lint time for
in-repo code:

* **API001** — code outside the owning package imports a name from an
  internal module (``from repro.net.queues import REDQueue``) when the
  package itself exports that name (``from repro.net import REDQueue``),
  imports an internal module wholesale (``import repro.net.queues``,
  ``from repro.net import queues``), or reaches one via package
  attribute access.  Names *without* a public re-export are exempt:
  importing them from the implementation module is the only way and is
  an accepted, visible signal that the dependency is on internals.
  A submodule whose name is itself in the package's ``__all__`` (e.g.
  ``repro.eval.registry``) is a public module: importing it — or names
  from it — is part of the promised surface and never flagged.
"""

from __future__ import annotations

import ast
from typing import Dict, FrozenSet, List, Optional, Tuple

from repro.analysis.findings import Finding, Fix, rule
from repro.analysis.fixes import span_text
from repro.analysis.model import ModuleInfo, ProjectIndex

rule("API001",
     "internal-module import bypasses the package's public surface",
     "repro.net / repro.core promise only their __all__; import "
     "publicly exported names from the package so internal modules can "
     "be reorganized without breaking callers.")

#: Packages with a defended public surface.
PUBLIC_PACKAGES = ("repro.net", "repro.core", "repro.eval", "repro.obs")


def _package_exports(index: ProjectIndex,
                     package: str) -> Optional[FrozenSet[str]]:
    """The package's ``__all__`` as parsed from its ``__init__``.

    Returns None when the package is not part of this lint run (single
    file invocations outside the tree) — the rule then stays silent
    rather than guessing.
    """
    info = index.modules.get(package)
    if info is None:
        return None
    for node in ast.walk(info.tree):
        if not isinstance(node, ast.Assign):
            continue
        for target in node.targets:
            if isinstance(target, ast.Name) and target.id == "__all__":
                if isinstance(node.value, (ast.List, ast.Tuple)):
                    names = [elt.value for elt in node.value.elts
                             if isinstance(elt, ast.Constant)
                             and isinstance(elt.value, str)]
                    return frozenset(names)
    return None


def _exports_for(index: ProjectIndex) -> Dict[str, Optional[FrozenSet[str]]]:
    return {pkg: _package_exports(index, pkg) for pkg in PUBLIC_PACKAGES}


def _owning_package(module: str) -> Optional[Tuple[str, str]]:
    """(package, submodule path) when ``module`` is inside a defended one."""
    for pkg in PUBLIC_PACKAGES:
        if module == pkg or module.startswith(pkg + "."):
            return pkg, module[len(pkg) + 1:]
    return None


def check_api_surface(info: ModuleInfo, index: ProjectIndex) -> List[Finding]:
    findings: List[Finding] = []
    # Intra-package imports are how the implementation is built; a module
    # inside a defended package is exempt for its own package only.
    home = _owning_package(info.module)
    exports = _exports_for(index)

    def emit(node: ast.AST, message: str,
             fix: "Fix | None" = None) -> None:
        findings.append(Finding(
            rule="API001", path=info.path, line=node.lineno,
            col=node.col_offset, message=message,
            source_line=info.source_line(node.lineno), fix=fix))

    def import_fix(node: ast.ImportFrom, pkg: str,
                   public: FrozenSet[str]) -> "Fix | None":
        """Rewrite ``from pkg.internal import X, Y`` onto the package.

        Only offered when *every* imported name is publicly re-exported
        — a partial rewrite would have to split the statement.
        """
        if any(alias.name not in public for alias in node.names):
            return None
        end_line = getattr(node, "end_lineno", None)
        end_col = getattr(node, "end_col_offset", None)
        if end_line is None or end_col is None:
            return None
        original = span_text(info.lines, node.lineno, node.col_offset,
                             end_line, end_col)
        if original is None:
            return None
        names = ", ".join(
            alias.name if alias.asname is None
            else f"{alias.name} as {alias.asname}"
            for alias in node.names)
        return Fix(line=node.lineno, col=node.col_offset,
                   end_line=end_line, end_col=end_col,
                   original=original,
                   replacement=f"from {pkg} import {names}",
                   description=f"import the public surface of {pkg}")

    for node in ast.walk(info.tree):
        if isinstance(node, ast.ImportFrom):
            if node.level or not node.module:
                continue
            owner = _owning_package(node.module)
            if owner is None:
                continue
            pkg, sub = owner
            if home is not None and home[0] == pkg:
                continue  # importing our own package's internals
            public = exports.get(pkg)
            if public is None:
                continue
            if not sub:
                # ``from repro.net import X``: flag only submodule pulls
                # (a submodule named in __all__ is a public module).
                for alias in node.names:
                    if (alias.name not in public
                            and f"{pkg}.{alias.name}" in index.modules):
                        emit(node,
                             f"'{pkg}.{alias.name}' is an internal module; "
                             f"import the supported names from {pkg} "
                             f"(see {pkg}.__all__)")
                continue
            if sub.split(".")[0] in public:
                continue  # public submodule: its contents are fair game
            for alias in node.names:
                if alias.name in public:
                    emit(node,
                         f"{alias.name!r} is part of the public {pkg} "
                         f"API; import it from {pkg}, not the internal "
                         f"module {node.module!r}",
                         fix=import_fix(node, pkg, public))
        elif isinstance(node, ast.Import):
            for alias in node.names:
                owner = _owning_package(alias.name)
                if owner is None or not owner[1]:
                    continue
                pkg = owner[0]
                if home is not None and home[0] == pkg:
                    continue
                public = exports.get(pkg)
                if public is None:
                    continue
                if owner[1].split(".")[0] in public:
                    continue  # public submodule import, e.g. repro.eval.registry
                emit(node,
                     f"{alias.name!r} is an internal module; import the "
                     f"supported names from {pkg} (see {pkg}.__all__)")
    return findings
