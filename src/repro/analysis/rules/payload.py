"""Payload-safety rules: keep pickle-boundary payloads picklable.

PR 3's executor redesign established a contract: everything that crosses
``Executor.submit`` or rides on a :class:`~repro.sweep.runner.SweepConfig`
/ :class:`~repro.sweep.executors.base.ShardSpec` /
:class:`~repro.sweep.grid.RunSpec` must pickle, because shard dispatch
may serialize it into a child process or onto another host.  These rules
catch the classic violations at the call site instead of at 2 a.m. in a
worker traceback:

* **PAY001** — a lambda or nested (non-module-level) function passed
  across the boundary.
* **PAY002** — an open file handle or a threading lock/primitive passed
  across the boundary.
* **PAY003** — a generator expression passed across the boundary
  (generators never pickle).

``submit`` receivers known to be thread pools
(``ThreadPoolExecutor()``) are exempt: threads share memory and have no
pickle boundary.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Set

from repro.analysis.findings import Finding, rule
from repro.analysis.model import ModuleInfo, ProjectIndex

rule("PAY001",
     "lambda or nested function crosses the pickle boundary",
     "only module-level callables pickle; a lambda/closure dies inside "
     "ProcessPoolExecutor or shard dispatch.")
rule("PAY002",
     "file handle or lock crosses the pickle boundary",
     "open files and threading primitives are process-local; pass paths "
     "and re-open/re-create on the worker side.")
rule("PAY003",
     "generator crosses the pickle boundary",
     "generators cannot be pickled; materialize a list/tuple before "
     "submitting.")

#: Constructors whose instances must stay pickle-clean.
_PAYLOAD_TYPES = {"SweepConfig", "ShardSpec", "RunSpec"}
#: Calls that construct unpicklable resources (PAY002).
_RESOURCE_CALLS = {"open", "Lock", "RLock", "Condition", "Semaphore",
                   "BoundedSemaphore", "Event", "Barrier",
                   "threading.Lock", "threading.RLock",
                   "threading.Condition", "threading.Semaphore",
                   "threading.BoundedSemaphore", "threading.Event",
                   "threading.Barrier", "multiprocessing.Lock",
                   "multiprocessing.RLock"}
_THREAD_POOLS = {"ThreadPoolExecutor", "futures.ThreadPoolExecutor",
                 "concurrent.futures.ThreadPoolExecutor"}


def _dotted(node: ast.expr) -> str:
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return ""


class _BindingCollector(ast.NodeVisitor):
    """File-wide maps: nested defs, thread-pool names, resource names."""

    def __init__(self) -> None:
        self.nested_defs: Set[str] = set()
        self.thread_pools: Set[str] = set()
        self.resources: Dict[str, str] = {}  # name -> resource call text
        self._depth = 0

    def _visit_def(self, node) -> None:
        if self._depth > 0:
            self.nested_defs.add(node.name)
        self._depth += 1
        self.generic_visit(node)
        self._depth -= 1

    visit_FunctionDef = _visit_def
    visit_AsyncFunctionDef = _visit_def

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        # Methods are attribute lookups at the call site, not bare names;
        # don't record them as nested defs.
        depth, self._depth = self._depth, -1000
        self.generic_visit(node)
        self._depth = depth

    def _record(self, targets, value: ast.expr) -> None:
        if not isinstance(value, ast.Call):
            return
        callee = _dotted(value.func)
        for target in targets:
            name = _dotted(target)
            if not name:
                continue
            if callee in _THREAD_POOLS:
                self.thread_pools.add(name)
            elif callee in _RESOURCE_CALLS:
                self.resources[name] = callee

    def visit_Assign(self, node: ast.Assign) -> None:
        self._record(node.targets, node.value)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if node.value is not None:
            self._record([node.target], node.value)
        self.generic_visit(node)

    def visit_withitem(self, node: ast.withitem) -> None:
        if node.optional_vars is not None:
            self._record([node.optional_vars], node.context_expr)
        self.generic_visit(node)


class _PayloadVisitor(ast.NodeVisitor):
    def __init__(self, info: ModuleInfo,
                 bindings: _BindingCollector) -> None:
        self.info = info
        self.bindings = bindings
        self.findings: List[Finding] = []

    def _emit(self, rule_id: str, node: ast.AST, message: str) -> None:
        self.findings.append(Finding(
            rule=rule_id, path=self.info.path, line=node.lineno,
            col=node.col_offset, message=message,
            source_line=self.info.source_line(node.lineno)))

    def _check_value(self, value: ast.expr, boundary: str) -> None:
        if isinstance(value, ast.Lambda):
            self._emit("PAY001", value,
                       f"lambda passed to {boundary} cannot be pickled; "
                       f"use a module-level function")
        elif isinstance(value, ast.GeneratorExp):
            self._emit("PAY003", value,
                       f"generator expression passed to {boundary} "
                       f"cannot be pickled; materialize a list first")
        elif isinstance(value, ast.Call):
            callee = _dotted(value.func)
            if callee in _RESOURCE_CALLS:
                self._emit("PAY002", value,
                           f"'{callee}(...)' result passed to {boundary} "
                           f"is process-local and cannot be pickled")
        else:
            name = _dotted(value)
            if name in self.bindings.nested_defs:
                self._emit("PAY001", value,
                           f"nested function {name!r} passed to "
                           f"{boundary} cannot be pickled; move it to "
                           f"module level")
            elif name in self.bindings.resources:
                self._emit("PAY002", value,
                           f"{name!r} (from "
                           f"{self.bindings.resources[name]}(...)) "
                           f"passed to {boundary} is process-local and "
                           f"cannot be pickled")

    def visit_Call(self, node: ast.Call) -> None:
        callee = _dotted(node.func)
        # Executor.submit(...) boundary.
        if isinstance(node.func, ast.Attribute) \
                and node.func.attr == "submit":
            receiver = _dotted(node.func.value)
            if receiver not in self.bindings.thread_pools:
                for arg in list(node.args) + [kw.value
                                              for kw in node.keywords]:
                    self._check_value(arg, f"{receiver or '<expr>'}.submit")
        # Payload-type constructors.
        tail = callee.split(".")[-1]
        if tail in _PAYLOAD_TYPES:
            for kw in node.keywords:
                self._check_value(kw.value, f"{tail}({kw.arg}=...)")
            for arg in node.args:
                self._check_value(arg, f"{tail}(...)")
        self.generic_visit(node)


def check_payload_safety(info: ModuleInfo,
                         index: ProjectIndex) -> List[Finding]:
    bindings = _BindingCollector()
    bindings.visit(info.tree)
    visitor = _PayloadVisitor(info, bindings)
    visitor.visit(info.tree)
    return visitor.findings
