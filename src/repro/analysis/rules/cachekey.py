"""Cache-key hygiene rules (CKY): what feeds the sweep content hash.

The sweep cache's whole correctness story is that a result file is a
pure function of its key — (experiment, params, seed, code version).
A nondeterministic value reaching the key machinery poisons every lookup
silently: the same scenario hashes differently per process (set order,
clocks) or collides across genuinely different runs (laundered entropy).
These rules ride the dataflow engine's sink hits, scoped to the two
packages that own the key path (``repro.sweep``, ``repro.eval``):

* **CKY001** — a tainted value reaches the content hash itself: a
  ``hashlib`` constructor/``update``, ``ResultCache.key/path/load/store``,
  or a ``RunSpec(...)`` construction.
* **CKY002** — a tainted value reaches scenario-spec serialization: a
  ``*Spec(...)`` constructor, ``*Spec.from_dict``, or ``to_dict()`` on a
  tainted spec.  Specs round-trip byte-stably through ``to_dict`` into
  the cache key, so anything nondeterministic inside one defeats the
  round-trip guarantee.
* **CKY003** — a tainted value reaches ``ParamSpec(...)`` or
  ``.coerce(...)``: parameter defaults/choices and coerced CLI values
  become the ``params`` half of the key.

"Tainted" means carrying any of the four kinds the engine tracks:
wall-clock, entropy, environment, or set-order.  Seeded RNG draws are
untainted (``random.Random(seed)`` is how specs are *supposed* to
derive randomness).
"""

from __future__ import annotations

from typing import Dict, List

from repro.analysis import dataflow
from repro.analysis.findings import Finding, rule
from repro.analysis.model import ModuleInfo, ProjectIndex

rule("CKY001",
     "nondeterministic value reaches the sweep content hash",
     "cache keys must be pure functions of (experiment, params, seed, "
     "code version); a clock/entropy/env/set-order value in the hash "
     "input makes every lookup silently unsound.")
rule("CKY002",
     "nondeterministic value reaches scenario-spec serialization",
     "ScenarioSpec and friends round-trip byte-stably through "
     "to_dict/from_dict into the cache key; nondeterminism inside a "
     "spec defeats the round-trip guarantee.")
rule("CKY003",
     "nondeterministic value reaches ParamSpec coercion",
     "parameter defaults, choices and coerced CLI values become the "
     "params half of the cache key; they must be deterministically "
     "derived.")

#: Packages that own the cache-key path.
CACHE_KEY_PACKAGES = ("repro.sweep", "repro.eval")

_FAMILY_RULE: Dict[str, str] = {
    "hash": "CKY001",
    "spec": "CKY002",
    "param": "CKY003",
}


def _in_scope(module: str) -> bool:
    return any(module == pkg or module.startswith(pkg + ".")
               for pkg in CACHE_KEY_PACKAGES)


def check_cachekey(info: ModuleInfo, index: ProjectIndex) -> List[Finding]:
    if not _in_scope(info.module):
        return []
    findings: List[Finding] = []
    flow = dataflow.module_flow(info, index)
    for hit in flow.hits:
        rule_id = _FAMILY_RULE.get(hit.family)
        if rule_id is None:
            continue
        kinds = ", ".join(sorted(hit.kinds))
        findings.append(Finding(
            rule=rule_id, path=info.path, line=hit.line, col=hit.col,
            message=(f"{hit.sink} receives a value tainted by "
                     f"{kinds}; everything feeding the cache key must "
                     f"be deterministically derived"),
            source_line=info.source_line(hit.line)))
    return findings
