"""Rule passes: each pass checks one invariant family over one module.

A pass is ``check(info, index) -> List[Finding]``.  ``PASSES`` maps the
pass name to its function; :data:`repro.analysis.findings.RULES` holds
the catalogue of rule IDs each pass can emit.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.analysis.findings import Finding
from repro.analysis.model import ModuleInfo, ProjectIndex
from repro.analysis.rules.api import check_api_surface
from repro.analysis.rules.cachekey import check_cachekey
from repro.analysis.rules.determinism import check_determinism
from repro.analysis.rules.payload import check_payload_safety
from repro.analysis.rules.contracts import check_registry_contracts
from repro.analysis.rules.timedomain import check_timedomain

Pass = Callable[[ModuleInfo, ProjectIndex], List[Finding]]

PASSES: Dict[str, Pass] = {
    "api-surface": check_api_surface,
    "cache-key": check_cachekey,
    "determinism": check_determinism,
    "payload-safety": check_payload_safety,
    "registry-contracts": check_registry_contracts,
    "time-domain": check_timedomain,
}
