"""The lint engine: discover files, run passes, apply pragmas + baseline.

:func:`lint_paths` is the one entry point (the CLI and the test suite
both call it).  It walks the targets, parses every ``.py`` file once,
builds the cross-file :class:`~repro.analysis.model.ProjectIndex` (plus
the dataflow engine's one-hop function summaries), runs each enabled
rule pass, then filters the raw findings through inline
``# repro-lint: disable=RULE -- reason`` suppressions and the baseline.
The result separates *new* findings (fail the run) from *suppressed* and
*baselined* ones (reported, never fatal).

Two throughput levers, both preserving byte-identical reports:

* an optional :class:`~repro.analysis.cache.LintCache` skips the rule
  passes for files whose (content, rule-set version, index digest) key
  is unchanged — parsing still happens, because the project index needs
  every module;
* ``jobs > 1`` fans per-file analysis across a process pool; results
  are merged in path order, so output is deterministic regardless of
  completion order.
"""

from __future__ import annotations

import hashlib
import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis import dataflow
from repro.analysis.baseline import Baseline
from repro.analysis.cache import LintCache, index_digest
from repro.analysis.findings import Finding, RULES, assign_occurrences
from repro.analysis.model import (
    ModuleInfo,
    ProjectIndex,
    index_module,
    load_module,
)
from repro.analysis.rules import PASSES


@dataclass
class LintReport:
    """Everything one lint run produced."""

    new: List[Finding] = field(default_factory=list)
    suppressed: List[Tuple[Finding, str]] = field(default_factory=list)
    baselined: List[Finding] = field(default_factory=list)
    stale_baseline: Dict[str, dict] = field(default_factory=dict)
    files_checked: int = 0
    #: Files whose rule passes actually ran this invocation.
    files_analyzed: int = 0
    #: Files served from the incremental result cache.
    files_cached: int = 0

    @property
    def exit_code(self) -> int:
        return 1 if self.new else 0

    def all_findings(self) -> List[Finding]:
        return (self.new + [f for f, _ in self.suppressed]
                + self.baselined)

    def to_dict(self) -> dict:
        return {
            "schema": "repro.lint/v1",
            "files_checked": self.files_checked,
            "files_analyzed": self.files_analyzed,
            "files_cached": self.files_cached,
            "exit_code": self.exit_code,
            "new": [f.to_dict() for f in self.new],
            "suppressed": [dict(f.to_dict(), reason=reason)
                           for f, reason in self.suppressed],
            "baselined": [f.to_dict() for f in self.baselined],
            "stale_baseline": self.stale_baseline,
            "rules": {rule_id: RULES[rule_id].summary
                      for rule_id in sorted(
                          {f.rule for f in self.all_findings()})},
        }


def discover_files(paths: Sequence[str]) -> List[str]:
    """Every ``.py`` file under the given files/directories, sorted."""
    found: List[str] = []
    for target in paths:
        if os.path.isfile(target):
            found.append(target)
        elif os.path.isdir(target):
            for root, dirs, names in os.walk(target):
                dirs[:] = sorted(d for d in dirs
                                 if not d.startswith(".")
                                 and d not in ("__pycache__",
                                               "build", "dist"))
                found.extend(os.path.join(root, name)
                             for name in sorted(names)
                             if name.endswith(".py"))
        else:
            raise FileNotFoundError(f"lint target not found: {target}")
    # De-duplicate while keeping deterministic order.
    seen = {}
    for path in found:
        seen.setdefault(os.path.normpath(path), None)
    return list(seen)


def _select_rules(only: Optional[Sequence[str]]) -> Optional[set]:
    if not only:
        return None
    unknown = sorted(set(only) - set(RULES))
    if unknown:
        raise ValueError(
            f"unknown rule(s): {', '.join(unknown)}; known: "
            f"{', '.join(sorted(RULES))}")
    return set(only)


def _run_passes(info: ModuleInfo, index: ProjectIndex) -> List[Finding]:
    """All rule passes over one module (rule filtering happens later)."""
    raw: List[Finding] = []
    for check in PASSES.values():
        raw.extend(check(info, index))
    return raw


# Per-worker state for ``jobs > 1``: the (pickled) module list and index
# are shipped once per worker via the pool initializer, not per task.
_WORKER: Dict[str, object] = {}


def _init_worker(modules: List[ModuleInfo], index: ProjectIndex) -> None:
    _WORKER["index"] = index
    _WORKER["by_path"] = {info.path: info for info in modules}


def _analyze_in_worker(path: str) -> Tuple[str, List[Finding]]:
    index = _WORKER["index"]
    info = _WORKER["by_path"][path]  # type: ignore[index]
    return path, _run_passes(info, index)  # type: ignore[arg-type]


def lint_paths(
    paths: Sequence[str],
    *,
    rules: Optional[Sequence[str]] = None,
    baseline: Optional[Baseline] = None,
    cache: Optional[LintCache] = None,
    jobs: int = 1,
) -> LintReport:
    """Lint every Python file under ``paths``; see module docstring."""
    selected = _select_rules(rules)
    report = LintReport()
    index = ProjectIndex()
    modules: List[ModuleInfo] = []
    file_hashes: Dict[str, str] = {}

    for path in discover_files(paths):
        info, syntax_error = load_module(path, display_path=path)
        if syntax_error is not None:
            report.new.append(Finding(
                rule="LNT002", path=path, line=1, col=0,
                message=f"file does not parse: {syntax_error}"))
            continue
        modules.append(info)
        index_module(info, index)
        if cache is not None:
            with open(path, "rb") as handle:
                file_hashes[info.path] = hashlib.sha256(
                    handle.read()).hexdigest()
    report.files_checked = len(modules)

    # One-hop call summaries: which functions return clock/entropy/env/
    # set-order-tainted values.  Part of the index, so part of its digest.
    dataflow.compute_summaries(index)

    digest = index_digest(index) if cache is not None else ""
    raw: List[Finding] = []
    findings_by_path: Dict[str, List[Finding]] = {}
    to_analyze: List[ModuleInfo] = []

    for info in modules:
        cached = (cache.load(info.path, file_hashes[info.path], digest)
                  if cache is not None else None)
        if cached is not None:
            findings_by_path[info.path] = cached
            report.files_cached += 1
        else:
            to_analyze.append(info)

    analyzed_paths = {info.path for info in to_analyze}
    report.files_analyzed = len(to_analyze)
    if jobs > 1 and len(to_analyze) > 1:
        with ProcessPoolExecutor(
                max_workers=min(jobs, len(to_analyze)),
                initializer=_init_worker,
                initargs=(to_analyze, index)) as pool:
            for path, found in pool.map(
                    _analyze_in_worker,
                    [info.path for info in to_analyze]):
                findings_by_path[path] = found
    else:
        for info in to_analyze:
            findings_by_path[info.path] = _run_passes(info, index)

    for info in modules:
        found = findings_by_path.get(info.path, [])
        if cache is not None and info.path in analyzed_paths:
            cache.store(info.path, file_hashes[info.path], digest, found)
        raw.extend(found)
        # Suppression pragmas missing a reason are findings themselves,
        # whether or not they matched anything.
        for sup in info.suppressions:
            if not sup.reason:
                raw.append(Finding(
                    rule="LNT001", path=info.path, line=sup.pragma_line,
                    col=0,
                    message=("suppression for "
                             f"{', '.join(sup.rules)} has no reason; "
                             "write '# repro-lint: disable=RULE -- why'"),
                    source_line=info.source_line(sup.pragma_line)))

    if selected is not None:
        # LNT meta-rules always apply: a broken pragma/file is a lint
        # problem regardless of which passes were requested.
        raw = [f for f in raw
               if f.rule in selected or f.rule.startswith("LNT")]
    raw.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    assign_occurrences(raw)

    by_path = {info.path: info for info in modules}
    for finding in raw:
        info = by_path.get(finding.path)
        sup = (info.suppressed(finding.rule, finding.line)
               if info is not None else None)
        if sup is not None and sup.reason:
            report.suppressed.append((finding, sup.reason))
        elif baseline is not None and baseline.match(finding):
            report.baselined.append(finding)
        else:
            report.new.append(finding)

    if baseline is not None:
        report.stale_baseline = baseline.stale_entries(raw)
    return report
