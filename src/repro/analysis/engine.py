"""The lint engine: discover files, run passes, apply pragmas + baseline.

:func:`lint_paths` is the one entry point (the CLI and the test suite
both call it).  It walks the targets, parses every ``.py`` file once,
builds the cross-file :class:`~repro.analysis.model.ProjectIndex`, runs
each enabled rule pass, then filters the raw findings through inline
``# repro-lint: disable=RULE -- reason`` suppressions and the baseline.
The result separates *new* findings (fail the run) from *suppressed* and
*baselined* ones (reported, never fatal).
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.baseline import Baseline
from repro.analysis.findings import Finding, RULES, assign_occurrences
from repro.analysis.model import (
    ModuleInfo,
    ProjectIndex,
    index_module,
    load_module,
)
from repro.analysis.rules import PASSES


@dataclass
class LintReport:
    """Everything one lint run produced."""

    new: List[Finding] = field(default_factory=list)
    suppressed: List[Tuple[Finding, str]] = field(default_factory=list)
    baselined: List[Finding] = field(default_factory=list)
    stale_baseline: Dict[str, dict] = field(default_factory=dict)
    files_checked: int = 0

    @property
    def exit_code(self) -> int:
        return 1 if self.new else 0

    def all_findings(self) -> List[Finding]:
        return (self.new + [f for f, _ in self.suppressed]
                + self.baselined)

    def to_dict(self) -> dict:
        return {
            "schema": "repro.lint/v1",
            "files_checked": self.files_checked,
            "exit_code": self.exit_code,
            "new": [f.to_dict() for f in self.new],
            "suppressed": [dict(f.to_dict(), reason=reason)
                           for f, reason in self.suppressed],
            "baselined": [f.to_dict() for f in self.baselined],
            "stale_baseline": self.stale_baseline,
            "rules": {rule_id: RULES[rule_id].summary
                      for rule_id in sorted(
                          {f.rule for f in self.all_findings()})},
        }


def discover_files(paths: Sequence[str]) -> List[str]:
    """Every ``.py`` file under the given files/directories, sorted."""
    found: List[str] = []
    for target in paths:
        if os.path.isfile(target):
            found.append(target)
        elif os.path.isdir(target):
            for root, dirs, names in os.walk(target):
                dirs[:] = sorted(d for d in dirs
                                 if not d.startswith(".")
                                 and d not in ("__pycache__",
                                               "build", "dist"))
                found.extend(os.path.join(root, name)
                             for name in sorted(names)
                             if name.endswith(".py"))
        else:
            raise FileNotFoundError(f"lint target not found: {target}")
    # De-duplicate while keeping deterministic order.
    seen = {}
    for path in found:
        seen.setdefault(os.path.normpath(path), None)
    return list(seen)


def _select_rules(only: Optional[Sequence[str]]) -> Optional[set]:
    if not only:
        return None
    unknown = sorted(set(only) - set(RULES))
    if unknown:
        raise ValueError(
            f"unknown rule(s): {', '.join(unknown)}; known: "
            f"{', '.join(sorted(RULES))}")
    return set(only)


def lint_paths(
    paths: Sequence[str],
    *,
    rules: Optional[Sequence[str]] = None,
    baseline: Optional[Baseline] = None,
) -> LintReport:
    """Lint every Python file under ``paths``; see module docstring."""
    selected = _select_rules(rules)
    report = LintReport()
    index = ProjectIndex()
    modules: List[ModuleInfo] = []

    for path in discover_files(paths):
        info, syntax_error = load_module(path, display_path=path)
        if syntax_error is not None:
            report.new.append(Finding(
                rule="LNT002", path=path, line=1, col=0,
                message=f"file does not parse: {syntax_error}"))
            continue
        modules.append(info)
        index_module(info, index)
    report.files_checked = len(modules)

    raw: List[Finding] = []
    for info in modules:
        for check in PASSES.values():
            raw.extend(check(info, index))
        # Suppression pragmas missing a reason are findings themselves,
        # whether or not they matched anything.
        for sup in info.suppressions:
            if not sup.reason:
                raw.append(Finding(
                    rule="LNT001", path=info.path, line=sup.pragma_line,
                    col=0,
                    message=("suppression for "
                             f"{', '.join(sup.rules)} has no reason; "
                             "write '# repro-lint: disable=RULE -- why'"),
                    source_line=info.source_line(sup.pragma_line)))

    if selected is not None:
        # LNT meta-rules always apply: a broken pragma/file is a lint
        # problem regardless of which passes were requested.
        raw = [f for f in raw
               if f.rule in selected or f.rule.startswith("LNT")]
    raw.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    assign_occurrences(raw)

    by_path = {info.path: info for info in modules}
    for finding in raw:
        info = by_path.get(finding.path)
        sup = (info.suppressed(finding.rule, finding.line)
               if info is not None else None)
        if sup is not None and sup.reason:
            report.suppressed.append((finding, sup.reason))
        elif baseline is not None and baseline.match(finding):
            report.baselined.append(finding)
        else:
            report.new.append(finding)

    if baseline is not None:
        report.stale_baseline = baseline.stale_entries(raw)
    return report
