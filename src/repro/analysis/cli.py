"""The ``python -m repro lint`` subcommand."""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from repro.analysis.baseline import (
    DEFAULT_BASELINE,
    Baseline,
    BaselineError,
)
from repro.analysis.cache import DEFAULT_CACHE_DIR, LintCache
from repro.analysis.engine import LintReport, lint_paths
from repro.analysis.findings import RULES
from repro.analysis.fixes import apply_fixes, fixes_by_path, unified_diff


def add_lint_parser(sub) -> argparse.ArgumentParser:
    parser = sub.add_parser(
        "lint",
        help="static invariant checks (determinism, payload safety, "
             "registry contracts, cache-key hygiene, time domains)",
        description=(
            "AST-based linter for the reproduction's correctness "
            "invariants: no hidden nondeterminism in simulation code "
            "(DET*), nothing unpicklable across the sweep dispatch "
            "boundary (PAY*), experiment specs and result types that "
            "honor the registry contracts (REG*), nothing "
            "nondeterministic feeding the sweep cache key (CKY*), and "
            "no wall-clock values crossing into sim-domain traces "
            "(TDM*).  Exits 1 on any finding that is neither "
            "suppressed inline "
            "(# repro-lint: disable=RULE -- reason) nor grandfathered "
            "in the baseline file."),
    )
    parser.add_argument("paths", nargs="*", default=["src"],
                        help="files/directories to lint (default: src)")
    parser.add_argument("--format", choices=("text", "json"),
                        default="text", help="output format")
    parser.add_argument("--rule", action="append", default=[],
                        metavar="ID",
                        help="check only these rule IDs (repeatable)")
    parser.add_argument("--baseline", default=DEFAULT_BASELINE,
                        metavar="FILE",
                        help=f"baseline of grandfathered findings "
                             f"(default {DEFAULT_BASELINE})")
    parser.add_argument("--no-baseline", action="store_true",
                        help="ignore the baseline file entirely")
    parser.add_argument("--write-baseline", action="store_true",
                        help="record every current finding into the "
                             "baseline file and exit 0")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule catalogue and exit")
    parser.add_argument("--fix", action="store_true",
                        help="apply the deterministic autofixes attached "
                             "to findings (sorted() wrapping for DET004, "
                             "public-surface import rewrites for API001), "
                             "then re-lint and report what remains")
    parser.add_argument("--diff", action="store_true",
                        help="with --fix: print the unified diff of what "
                             "would change instead of writing files")
    parser.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="analyze files with N parallel worker "
                             "processes (output is path-sorted and "
                             "identical to --jobs 1)")
    parser.add_argument("--no-cache", action="store_true",
                        help="disable the incremental result cache")
    parser.add_argument("--cache-dir", default=DEFAULT_CACHE_DIR,
                        metavar="DIR",
                        help=f"incremental result cache location "
                             f"(default {DEFAULT_CACHE_DIR})")
    parser.set_defaults(_handler=cmd_lint)
    return parser


def _render_report(report: LintReport, fmt: str) -> int:
    if fmt == "json":
        print(json.dumps(report.to_dict(), indent=2))
        return report.exit_code
    for finding in report.new:
        print(finding.render())
    for finding, reason in report.suppressed:
        print(f"{finding.render()}  [suppressed: {reason}]")
    for finding in report.baselined:
        print(f"{finding.render()}  [baselined]")
    for fingerprint, entry in sorted(report.stale_baseline.items()):
        print(f"note: stale baseline entry {fingerprint} "
              f"({entry.get('rule')} at {entry.get('path')}): finding "
              f"no longer present; prune it", file=sys.stderr)
    summary = (f"{report.files_checked} file(s) checked "
               f"({report.files_analyzed} analyzed, "
               f"{report.files_cached} cached): "
               f"{len(report.new)} new, {len(report.suppressed)} "
               f"suppressed, {len(report.baselined)} baselined")
    print(summary)
    return report.exit_code


def _cmd_fix(args: argparse.Namespace, report: LintReport,
             baseline: Optional[Baseline],
             cache: Optional[LintCache]) -> int:
    """Apply (or preview) autofixes, then re-lint from scratch."""
    # Baselined findings are fixed too: an autofix is strictly better
    # than a grandfathered violation, and their entries are dropped
    # below so they don't rot into stale noise.
    candidates = report.new + report.baselined
    fixable = [f for f in candidates if f.fix is not None]
    if not fixable:
        print("no fixable findings")
        return _render_report(report, args.format)

    if args.diff:
        for path in sorted(fixes_by_path(fixable)):
            with open(path, encoding="utf-8") as handle:
                before = handle.read()
            after, _ = apply_fixes(before, fixes_by_path(fixable)[path])
            sys.stdout.write(unified_diff(path, before, after))
        print(f"would fix {len(fixable)} finding(s) in "
              f"{len(fixes_by_path(fixable))} file(s)")
        return report.exit_code

    applied_total = 0
    for path, fixes in sorted(fixes_by_path(fixable).items()):
        with open(path, encoding="utf-8") as handle:
            before = handle.read()
        after, applied = apply_fixes(before, fixes)
        if applied:
            with open(path, "w", encoding="utf-8") as handle:
                handle.write(after)
            applied_total += applied
    # The fixed lines' fingerprints change, which would strand their
    # baseline entries as stale — drop them in the same run.
    if baseline is not None:
        dropped = baseline.drop([f for f in fixable
                                 if f in report.baselined
                                 or baseline.match(f)])
        if dropped:
            print(f"dropped {dropped} fixed entr"
                  f"{'y' if dropped == 1 else 'ies'} from "
                  f"{baseline.path}")
    print(f"fixed {applied_total} finding(s)")

    # Re-lint so the report reflects the rewritten tree (and proves the
    # fixes actually satisfied the rules).
    fresh = lint_paths(args.paths, rules=args.rule or None,
                       baseline=baseline, cache=cache, jobs=args.jobs)
    return _render_report(fresh, args.format)


def cmd_lint(args: argparse.Namespace) -> int:
    if args.list_rules:
        width = max(len(rule_id) for rule_id in RULES)
        for rule_id in sorted(RULES):
            print(f"{rule_id:<{width}}  {RULES[rule_id].summary}")
        return 0

    if args.diff and not args.fix:
        print("error: --diff requires --fix", file=sys.stderr)
        return 2
    if args.jobs < 1:
        print("error: --jobs must be >= 1", file=sys.stderr)
        return 2

    try:
        baseline: Optional[Baseline] = (
            None if args.no_baseline else Baseline.load(args.baseline))
    except BaselineError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2

    cache: Optional[LintCache] = (
        None if args.no_cache else LintCache(args.cache_dir))

    try:
        report = lint_paths(args.paths, rules=args.rule or None,
                            baseline=baseline, cache=cache,
                            jobs=args.jobs)
    except (FileNotFoundError, ValueError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2

    if args.fix:
        return _cmd_fix(args, report, baseline, cache)

    if args.write_baseline:
        if baseline is None:
            print("error: --write-baseline conflicts with --no-baseline",
                  file=sys.stderr)
            return 2
        baseline.save(report.new + report.baselined)
        print(f"wrote {len(report.new) + len(report.baselined)} "
              f"finding(s) to {baseline.path}")
        return 0

    return _render_report(report, args.format)


def main(argv: List[str]) -> int:
    parser = argparse.ArgumentParser(prog="python -m repro.analysis")
    sub = parser.add_subparsers(dest="command", required=True)
    add_lint_parser(sub)
    args = parser.parse_args(argv)
    return args._handler(args)


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
