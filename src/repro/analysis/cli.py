"""The ``python -m repro lint`` subcommand."""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from repro.analysis.baseline import (
    DEFAULT_BASELINE,
    Baseline,
    BaselineError,
)
from repro.analysis.engine import lint_paths
from repro.analysis.findings import RULES


def add_lint_parser(sub) -> argparse.ArgumentParser:
    parser = sub.add_parser(
        "lint",
        help="static invariant checks (determinism, payload safety, "
             "registry contracts)",
        description=(
            "AST-based linter for the reproduction's correctness "
            "invariants: no hidden nondeterminism in simulation code "
            "(DET*), nothing unpicklable across the sweep dispatch "
            "boundary (PAY*), experiment specs and result types that "
            "honor the registry contracts (REG*).  Exits 1 on any "
            "finding that is neither suppressed inline "
            "(# repro-lint: disable=RULE -- reason) nor grandfathered "
            "in the baseline file."),
    )
    parser.add_argument("paths", nargs="*", default=["src"],
                        help="files/directories to lint (default: src)")
    parser.add_argument("--format", choices=("text", "json"),
                        default="text", help="output format")
    parser.add_argument("--rule", action="append", default=[],
                        metavar="ID",
                        help="check only these rule IDs (repeatable)")
    parser.add_argument("--baseline", default=DEFAULT_BASELINE,
                        metavar="FILE",
                        help=f"baseline of grandfathered findings "
                             f"(default {DEFAULT_BASELINE})")
    parser.add_argument("--no-baseline", action="store_true",
                        help="ignore the baseline file entirely")
    parser.add_argument("--write-baseline", action="store_true",
                        help="record every current finding into the "
                             "baseline file and exit 0")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule catalogue and exit")
    parser.set_defaults(_handler=cmd_lint)
    return parser


def cmd_lint(args: argparse.Namespace) -> int:
    if args.list_rules:
        width = max(len(rule_id) for rule_id in RULES)
        for rule_id in sorted(RULES):
            print(f"{rule_id:<{width}}  {RULES[rule_id].summary}")
        return 0

    try:
        baseline: Optional[Baseline] = (
            None if args.no_baseline else Baseline.load(args.baseline))
    except BaselineError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2

    try:
        report = lint_paths(args.paths, rules=args.rule or None,
                            baseline=baseline)
    except (FileNotFoundError, ValueError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2

    if args.write_baseline:
        if baseline is None:
            print("error: --write-baseline conflicts with --no-baseline",
                  file=sys.stderr)
            return 2
        baseline.save(report.new + report.baselined)
        print(f"wrote {len(report.new) + len(report.baselined)} "
              f"finding(s) to {baseline.path}")
        return 0

    if args.format == "json":
        print(json.dumps(report.to_dict(), indent=2))
        return report.exit_code

    for finding in report.new:
        print(finding.render())
    for finding, reason in report.suppressed:
        print(f"{finding.render()}  [suppressed: {reason}]")
    for finding in report.baselined:
        print(f"{finding.render()}  [baselined]")
    for fingerprint, entry in sorted(report.stale_baseline.items()):
        print(f"note: stale baseline entry {fingerprint} "
              f"({entry.get('rule')} at {entry.get('path')}): finding "
              f"no longer present; prune it", file=sys.stderr)
    summary = (f"{report.files_checked} file(s) checked: "
               f"{len(report.new)} new, {len(report.suppressed)} "
               f"suppressed, {len(report.baselined)} baselined")
    print(summary)
    return report.exit_code


def main(argv: List[str]) -> int:
    parser = argparse.ArgumentParser(prog="python -m repro.analysis")
    sub = parser.add_subparsers(dest="command", required=True)
    add_lint_parser(sub)
    args = parser.parse_args(argv)
    return args._handler(args)


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
