"""Parsed-source model: per-file info and the cross-file project index.

Rule passes never touch the filesystem; they see a :class:`ModuleInfo`
(one parsed file: AST, source lines, dotted module name, suppressions)
and a :class:`ProjectIndex` (every linted module's top-level functions
and classes, keyed by dotted name) so contract rules can resolve
``ex.fig5_2_pr_pi2`` through the importing module's aliases and check
the real signature.
"""

from __future__ import annotations

import ast
import os
import re
from dataclasses import dataclass, field
from typing import Any, Dict, FrozenSet, List, Optional, Set, Tuple

#: ``# repro-lint: disable=DET001,REG002 -- reason`` (reason optional at
#: parse time; the engine reports LNT001 when it is missing).
_SUPPRESS_RE = re.compile(
    r"#\s*repro-lint:\s*disable=([A-Za-z0-9_,\s]+?)"
    r"(?:\s*--\s*(.*\S))?\s*$")
#: ``# repro-lint: module=repro.net.fixture`` — override the inferred
#: dotted module name (used by test fixtures to opt into scoped rules).
_MODULE_RE = re.compile(r"#\s*repro-lint:\s*module=([\w.]+)")


@dataclass
class Suppression:
    """One ``disable=`` pragma: which rules, on which line, and why."""

    line: int  # the line the pragma waives (its own, or the next one)
    rules: Tuple[str, ...]
    reason: str
    pragma_line: int  # where the comment physically sits


@dataclass
class FunctionInfo:
    """A top-level function's signature, as contract rules need it."""

    name: str
    params: Tuple[str, ...]  # positional-or-keyword + keyword-only names
    has_kwargs: bool
    lineno: int


@dataclass
class ClassInfo:
    """A class's methods, base names and decorator names."""

    name: str
    methods: Set[str]
    bases: Tuple[str, ...]      # source text of each base expression
    decorators: Tuple[str, ...]  # source text of each decorator
    lineno: int


@dataclass
class ModuleInfo:
    """One parsed lint target."""

    path: str            # normalized path as reported in findings
    module: str          # dotted module name ("" when unknown)
    tree: ast.Module
    lines: List[str]     # raw source lines, 0-indexed
    suppressions: List[Suppression] = field(default_factory=list)
    #: import alias -> dotted module name (``import x.y as z``,
    #: ``from x import y`` when y is a module we indexed).
    module_aliases: Dict[str, str] = field(default_factory=dict)
    #: local name -> (module, attr) for ``from x import y [as z]``.
    imported_names: Dict[str, Tuple[str, str]] = field(default_factory=dict)
    #: Memoized dataflow result (`repro.analysis.dataflow.ModuleFlow`);
    #: typed ``Any`` to keep the model layer free of engine imports.
    flow_cache: Any = field(default=None, repr=False, compare=False)

    def source_line(self, lineno: int) -> str:
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1].strip()
        return ""

    def suppressed(self, rule: str, line: int) -> Optional[Suppression]:
        for sup in self.suppressions:
            if sup.line == line and rule in sup.rules:
                return sup
        return None


@dataclass
class ProjectIndex:
    """Cross-file lookup tables for contract rules."""

    functions: Dict[str, FunctionInfo] = field(default_factory=dict)  # "mod.fn"
    classes: Dict[str, ClassInfo] = field(default_factory=dict)       # "mod.Cls"
    modules: Dict[str, ModuleInfo] = field(default_factory=dict)      # by dotted name
    #: "mod.fn" -> taint kinds its return value carries (one-hop call
    #: summaries, populated by ``repro.analysis.dataflow.compute_summaries``).
    summaries: Dict[str, FrozenSet[str]] = field(default_factory=dict)

    def resolve_function_name(self, info: ModuleInfo,
                              node: ast.expr) -> Optional[str]:
        """Resolve a Name/Attribute call target to its indexed dotted name."""
        if isinstance(node, ast.Name):
            target = info.imported_names.get(node.id)
            if target is not None:
                name = f"{target[0]}.{target[1]}"
                if name in self.functions:
                    return name
            name = f"{info.module}.{node.id}"
            return name if name in self.functions else None
        if isinstance(node, ast.Attribute) and isinstance(node.value, ast.Name):
            module = info.module_aliases.get(node.value.id)
            if module is not None:
                name = f"{module}.{node.attr}"
                return name if name in self.functions else None
        return None

    def resolve_function(self, info: ModuleInfo,
                         node: ast.expr) -> Optional[FunctionInfo]:
        """Resolve a Name/Attribute expression to an indexed function."""
        name = self.resolve_function_name(info, node)
        return self.functions.get(name) if name is not None else None


def infer_module_name(path: str) -> str:
    """Dotted module name from a file path, by walking up __init__.py."""
    path = os.path.abspath(path)
    parts = [os.path.splitext(os.path.basename(path))[0]]
    directory = os.path.dirname(path)
    while os.path.isfile(os.path.join(directory, "__init__.py")):
        parts.append(os.path.basename(directory))
        parent = os.path.dirname(directory)
        if parent == directory:
            break
        directory = parent
    if parts[0] == "__init__":
        parts = parts[1:] or [""]
    return ".".join(reversed(parts))


def _parse_pragmas(info: ModuleInfo) -> None:
    """Collect suppressions and the module-name override from comments."""
    for index, raw in enumerate(info.lines, start=1):
        text = raw.rstrip()
        match = _SUPPRESS_RE.search(text)
        if match:
            rules = tuple(part.strip() for part in match.group(1).split(",")
                          if part.strip())
            reason = (match.group(2) or "").strip()
            # A comment-only line waives the next line; a trailing
            # comment waives its own line.
            code = text[:match.start()].strip()
            target = index + 1 if not code else index
            info.suppressions.append(
                Suppression(line=target, rules=rules, reason=reason,
                            pragma_line=index))
        module_match = _MODULE_RE.search(text)
        if module_match:
            info.module = module_match.group(1)


def _collect_imports(info: ModuleInfo) -> None:
    for node in ast.walk(info.tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                info.module_aliases[alias.asname or
                                    alias.name.split(".")[0]] = (
                    alias.name if alias.asname else alias.name.split(".")[0])
                if alias.asname:
                    info.module_aliases[alias.asname] = alias.name
        elif isinstance(node, ast.ImportFrom) and node.module \
                and node.level == 0:
            for alias in node.names:
                local = alias.asname or alias.name
                full = f"{node.module}.{alias.name}"
                # Could be a submodule (alias it) or a name (map it);
                # record both views, resolvers try each.
                info.module_aliases.setdefault(local, full)
                info.imported_names[local] = (node.module, alias.name)


def load_module(path: str, display_path: str) -> Tuple[Optional[ModuleInfo],
                                                       Optional[str]]:
    """Parse one file; returns (info, None) or (None, syntax error text)."""
    with open(path, encoding="utf-8") as handle:
        source = handle.read()
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as error:
        return None, f"line {error.lineno}: {error.msg}"
    info = ModuleInfo(path=display_path, module=infer_module_name(path),
                      tree=tree, lines=source.splitlines())
    _parse_pragmas(info)
    _collect_imports(info)
    return info, None


def index_module(info: ModuleInfo, index: ProjectIndex) -> None:
    """Add one module's top-level functions/classes to the index."""
    index.modules[info.module] = info
    for node in info.tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            args = node.args
            params = tuple(a.arg for a in args.posonlyargs + args.args
                           + args.kwonlyargs)
            index.functions[f"{info.module}.{node.name}"] = FunctionInfo(
                name=node.name, params=params,
                has_kwargs=args.kwarg is not None, lineno=node.lineno)
        elif isinstance(node, ast.ClassDef):
            methods = {item.name for item in node.body
                       if isinstance(item, (ast.FunctionDef,
                                            ast.AsyncFunctionDef))}
            index.classes[f"{info.module}.{node.name}"] = ClassInfo(
                name=node.name, methods=methods,
                bases=tuple(ast.unparse(base) for base in node.bases),
                decorators=tuple(ast.unparse(dec)
                                 for dec in node.decorator_list),
                lineno=node.lineno)
