"""Intraprocedural flow-sensitive dataflow/taint engine for lint rules.

The per-statement pattern matching in the original rule passes answers
"does this expression read a clock?"; the questions the cache-key and
time-domain rules need are about *flows*: does a wall-clock value ever
reach a sim-domain trace sink, does an unordered iteration actually
escape into output, does anything nondeterministic feed the sweep
content hash?  This module answers those with a forward abstract
interpretation over each function body:

* the abstract value of an expression is a set of :class:`Taint` tags —
  ``wall-clock``, ``entropy``, ``environment``, ``set-order`` — plus
  object-provenance tags (``obj:recorder``, ``obj:hasher``, ...) used to
  recognize sink receivers;
* assignments are strong updates (``x = time.time(); x = 0`` leaves
  ``x`` clean), branches join by union, loops run to a small fixpoint so
  taint carried around a back edge is seen;
* containers, attribute stores, f-strings, arithmetic and *mutating*
  method calls (``out.append(x)``) propagate taint; ``sorted`` and the
  order-insensitive reducers kill ``set-order``; ``len``/``any``/
  ``all``/``bool`` kill everything;
* calls resolve one hop through :class:`~repro.analysis.model.
  ProjectIndex` **function summaries** (the taint kinds a top-level
  function's return value carries, computed without further call
  resolution), so a helper in another module that returns
  ``time.perf_counter()`` taints its callers' values too.

The result of analyzing one module is a :class:`ModuleFlow`: the set of
``set-order`` iteration sites whose values escaped (DET004's flow-
sensitive filter) and every :class:`SinkHit` — a tainted value reaching
a hash/spec/param/sim-domain sink (the CKY and TDM rule families).

Known imprecision, on purpose: calls to unknown functions launder taint
(no inter-procedural argument tracking beyond the one-hop return
summaries), implicit flows through branch conditions are ignored, and
attributes are tracked as dotted names, not objects.  Both err toward
silence; the syntactic DET rules still catch the direct reads.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from repro.analysis.model import ModuleInfo, ProjectIndex

# -- taint kinds ------------------------------------------------------------

WALL = "wall-clock"
ENTROPY = "entropy"
ENV = "environment"
SET_ORDER = "set-order"
#: The value-taint kinds (object-provenance tags are ``obj:*``).
VALUE_KINDS = frozenset({WALL, ENTROPY, ENV, SET_ORDER})

OBJ_RECORDER = "obj:recorder"
OBJ_METRICS = "obj:metrics"
OBJ_METRIC = "obj:metric"
OBJ_SINK = "obj:sink"
OBJ_TRACETAP = "obj:tracetap"
OBJ_HASHER = "obj:hasher"
OBJ_CACHE = "obj:cache"


@dataclass(frozen=True)
class Taint:
    """One tag on an abstract value.

    ``site`` is the (line, col) where the taint originated — for
    ``set-order`` it identifies the iteration/materialization site the
    DET004 finding will anchor to.
    """

    kind: str
    site: Tuple[int, int] = (0, 0)
    detail: str = ""


Taints = FrozenSet[Taint]
EMPTY: Taints = frozenset()


@dataclass(frozen=True)
class SinkHit:
    """A tainted value reaching a rule-relevant sink."""

    family: str  # "hash" | "spec" | "param" | "sim-sink" | "wall-call"
    line: int
    col: int
    sink: str  # human-readable sink description, e.g. "rec.event()"
    kinds: FrozenSet[str]
    detail: str = ""


@dataclass
class ModuleFlow:
    """Everything one module's dataflow analysis produced."""

    escaped_set_sites: Set[Tuple[int, int]] = field(default_factory=set)
    hits: List[SinkHit] = field(default_factory=list)


# -- sources, sanitizers, sinks --------------------------------------------

#: time-module reads that produce wall-domain values.  Unlike DET003,
#: perf_counter/monotonic ARE wall sources here: an elapsed-time value is
#: harmless until it flows into a sim-domain sink, which is exactly what
#: the flow rules check.
_WALL_TIME_FNS = frozenset({
    "time", "time_ns", "perf_counter", "perf_counter_ns", "monotonic",
    "monotonic_ns", "process_time", "process_time_ns", "localtime",
    "gmtime", "ctime"})
_WALL_DATETIME_FNS = frozenset({"now", "utcnow", "today"})
_ENTROPY_OS = frozenset({"urandom", "getrandom"})
_UUID_RANDOM = frozenset({"uuid1", "uuid4"})
#: random-module attributes that are *not* global-state draws.
_RANDOM_SAFE = frozenset({"Random", "SystemRandom", "__name__"})

#: Reducers whose result does not depend on iteration order: they kill
#: ``set-order`` but keep other kinds (sum of wall times is still wall).
_ORDER_KILL = frozenset({"sorted", "sum", "min", "max", "set", "frozenset",
                         "Counter"})
#: Calls whose result carries none of its argument's taint.
_KILL_ALL = frozenset({"len", "any", "all", "bool", "isinstance", "id",
                       "hash", "callable"})
#: Conversions that pass every taint kind through unchanged.
_TRANSPARENT = frozenset({"str", "int", "float", "complex", "round", "abs",
                          "repr", "format", "bytes", "list", "tuple",
                          "dict", "reversed", "copy", "deepcopy", "replace",
                          "iter", "next"})
#: Receiver-mutating methods: taint flows from args into the receiver.
_MUTATORS = frozenset({"append", "add", "extend", "insert", "update",
                       "setdefault", "appendleft", "push", "put"})
#: Write-ish method names treated as output sinks for escape analysis.
_WRITE_METHODS = frozenset({"write", "writelines", "writerow", "writerows",
                            "send", "sendall"})

#: hashlib constructors (content-hash sinks and hasher provenance).
_HASHLIB_CTORS = frozenset({"sha1", "sha224", "sha256", "sha384", "sha512",
                            "sha3_256", "sha3_512", "blake2b", "blake2s",
                            "md5", "new"})
#: Spec classes whose construction/serialization feeds the cache key.
_SPEC_CLASSES = frozenset({"ScenarioSpec", "TopologySpec", "AdversarySpec",
                           "PlacementSpec", "TrafficSpec"})
#: ResultCache methods that consume a RunSpec when computing the key.
_CACHE_KEY_METHODS = frozenset({"key", "path", "load", "store"})
#: Metric handle constructors on a MetricsRegistry.
_METRIC_CTORS = frozenset({"counter", "gauge", "histogram"})
#: Mutating calls on a metric handle (the sim-domain measurement sinks).
_METRIC_SINKS = frozenset({"inc", "set", "observe"})

#: Set-type annotation spellings for within-file set inference.
SET_ANNOTATIONS = ("set", "Set", "FrozenSet", "frozenset", "AbstractSet",
                   "MutableSet")

#: Parameter annotations that seed object provenance: a function taking
#: ``rec: Recorder`` has a sim-domain sink in hand even though it never
#: constructed one.
_ANNOTATION_PROVENANCE = {
    "Recorder": OBJ_RECORDER,
    "MetricsRegistry": OBJ_METRICS,
    "TraceTap": OBJ_TRACETAP,
    "Gauge": OBJ_METRIC,
    "Histogram": OBJ_METRIC,
    "ResultCache": OBJ_CACHE,
}


def dotted_name(node: ast.expr) -> str:
    """'a.b.c' for nested Name/Attribute chains, '' otherwise."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return ""


class SetTracker(ast.NodeVisitor):
    """Within-file inference of set-typed names and attributes.

    Over-approximates on purpose: a name assigned from a set expression
    or annotated ``Set[...]`` anywhere in the file is treated as
    set-typed everywhere.  Scope-precise inference is not worth the
    complexity for a codebase this size; the flow filter downstream
    (escape analysis) is what trims the false positives.
    """

    def __init__(self) -> None:
        self.set_names: Set[str] = set()

    def _is_set_annotation(self, node: ast.expr) -> bool:
        if isinstance(node, ast.Subscript):
            node = node.value
        if isinstance(node, ast.Constant) and isinstance(node.value, str):
            text = node.value.split("[")[0].strip()
            return text.split(".")[-1] in SET_ANNOTATIONS
        text = dotted_name(node)
        return text.split(".")[-1] in SET_ANNOTATIONS

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        target = dotted_name(node.target)
        if target and self._is_set_annotation(node.annotation):
            self.set_names.add(target)
        self.generic_visit(node)

    def visit_Assign(self, node: ast.Assign) -> None:
        if is_set_expr(node.value, self.set_names):
            for target in node.targets:
                text = dotted_name(target)
                if text:
                    self.set_names.add(text)
        self.generic_visit(node)

    def visit_arg(self, node: ast.arg) -> None:
        if node.annotation is not None \
                and self._is_set_annotation(node.annotation):
            self.set_names.add(node.arg)
        self.generic_visit(node)


def is_set_expr(node: ast.expr, set_names: Set[str]) -> bool:
    """Is this expression certainly a set/frozenset?"""
    if isinstance(node, (ast.SetComp, ast.Set)):
        return True
    if isinstance(node, ast.Call):
        callee = dotted_name(node.func)
        if callee in ("set", "frozenset"):
            return True
        if isinstance(node.func, ast.Attribute) and node.func.attr in (
                "union", "intersection", "difference",
                "symmetric_difference"):
            return is_set_expr(node.func.value, set_names)
        return False
    if isinstance(node, ast.BinOp) and isinstance(
            node.op, (ast.BitAnd, ast.BitOr, ast.Sub, ast.BitXor)):
        return (is_set_expr(node.left, set_names)
                or is_set_expr(node.right, set_names))
    text = dotted_name(node)
    if text:
        return text in set_names or text.split(".", 1)[-1] in set_names
    return False


def collect_set_names(tree: ast.Module) -> Set[str]:
    tracker = SetTracker()
    tracker.visit(tree)
    return tracker.set_names


# -- the analyzer -----------------------------------------------------------

def _annotation_provenance(annotation: Optional[ast.expr]) -> Optional[str]:
    """Object-provenance tag implied by a parameter's type annotation."""
    if annotation is None:
        return None
    node = annotation
    if isinstance(node, ast.Subscript):  # Optional[Recorder] etc.
        node = node.slice
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        terminal = node.value.split("[")[0].strip().split(".")[-1]
    else:
        terminal = dotted_name(node).split(".")[-1]
    return _ANNOTATION_PROVENANCE.get(terminal)


def _kinds(taints: Taints) -> FrozenSet[str]:
    return frozenset(t.kind for t in taints if t.kind in VALUE_KINDS)


def _values(taints: Taints) -> Taints:
    return frozenset(t for t in taints if t.kind in VALUE_KINDS)


def _has(taints: Taints, kind: str) -> bool:
    return any(t.kind == kind for t in taints)


class _FlowAnalyzer:
    """Forward taint interpretation over one function (or module) body."""

    MAX_LOOP_PASSES = 3

    def __init__(self, info: ModuleInfo, index: Optional[ProjectIndex],
                 set_names: Set[str], flow: ModuleFlow,
                 use_summaries: bool) -> None:
        self.info = info
        self.index = index
        self.set_names = set_names
        self.flow = flow
        self.use_summaries = use_summaries
        self.env: Dict[str, Taints] = {}
        self.params: Set[str] = set()
        self.returns: Taints = EMPTY
        self._hit_keys: Set[Tuple[str, int, int, str]] = set()
        # Wall/entropy names imported directly ("from time import time").
        self.wall_names: Set[str] = set()
        self.entropy_names: Set[str] = set()
        self.datetime_names: Set[str] = set()
        self.random_names: Set[str] = set()
        for local, (module, name) in info.imported_names.items():
            if module == "time" and name in _WALL_TIME_FNS:
                self.wall_names.add(local)
            elif module == "datetime" and name in ("datetime", "date"):
                self.datetime_names.add(local)
            elif module == "os" and name in _ENTROPY_OS:
                self.entropy_names.add(local)
            elif module == "uuid" and name in _UUID_RANDOM:
                self.entropy_names.add(local)
            elif module == "secrets":
                self.entropy_names.add(local)
            elif module == "random" and name not in _RANDOM_SAFE:
                self.random_names.add(local)

    # -- bookkeeping -------------------------------------------------------

    def _hit(self, family: str, node: ast.AST, sink: str,
             taints: Taints, detail: str = "") -> None:
        kinds = _kinds(taints)
        if not kinds:
            return
        key = (family, node.lineno, node.col_offset, sink)
        if key in self._hit_keys:
            return
        self._hit_keys.add(key)
        self.flow.hits.append(SinkHit(
            family=family, line=node.lineno, col=node.col_offset,
            sink=sink, kinds=kinds, detail=detail))

    def _escape(self, taints: Taints) -> None:
        for taint in taints:
            if taint.kind == SET_ORDER and taint.site != (0, 0):
                self.flow.escaped_set_sites.add(taint.site)

    def _site(self, node: ast.AST) -> Tuple[int, int]:
        return (node.lineno, node.col_offset)

    # -- statements --------------------------------------------------------

    def run(self, body: List[ast.stmt], params: Iterable[str] = ()) -> None:
        self.params = set(params)
        for name in self.params:
            self.env.setdefault(name, EMPTY)
        self.exec_block(body)

    def exec_block(self, body: List[ast.stmt]) -> None:
        for stmt in body:
            self.exec_stmt(stmt)

    def _merge(self, *envs: Dict[str, Taints]) -> Dict[str, Taints]:
        merged: Dict[str, Taints] = {}
        for env in envs:
            for name, taints in env.items():
                merged[name] = merged.get(name, EMPTY) | taints
        return merged

    def _exec_branch(self, body: List[ast.stmt]) -> Dict[str, Taints]:
        saved = dict(self.env)
        self.exec_block(body)
        result = self.env
        self.env = saved
        return result

    def _exec_loop(self, body: List[ast.stmt],
                   orelse: List[ast.stmt]) -> None:
        # Small fixpoint: run the body until the env stops growing so
        # taint flowing around a back edge (a = b; b = tainted) is seen.
        # Hits/escapes dedupe, so repeated passes are harmless.
        for _ in range(self.MAX_LOOP_PASSES):
            before = dict(self.env)
            after = self._exec_branch(body)
            merged = self._merge(before, after)
            if merged == before:
                break
            self.env = merged
        self.exec_block(orelse)

    def exec_stmt(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            self._analyze_function(stmt)
            self.env[stmt.name] = EMPTY
        elif isinstance(stmt, ast.ClassDef):
            for item in stmt.body:
                if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    self._analyze_function(item)
            self.env[stmt.name] = EMPTY
        elif isinstance(stmt, ast.Assign):
            taints = self.eval(stmt.value)
            for target in stmt.targets:
                self.assign(target, taints)
        elif isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None:
                self.assign(stmt.target, self.eval(stmt.value))
        elif isinstance(stmt, ast.AugAssign):
            taints = self.eval(stmt.value)
            name = dotted_name(stmt.target)
            if name:
                taints = taints | self.env.get(name, EMPTY)
            self.assign(stmt.target, taints)
        elif isinstance(stmt, ast.Return):
            if stmt.value is not None:
                taints = self.eval(stmt.value)
                self.returns |= _values(taints)
                self._escape(taints)
        elif isinstance(stmt, ast.Expr):
            value = self.eval(stmt.value)
            if isinstance(stmt.value, (ast.Yield, ast.YieldFrom)):
                self._escape(value)
        elif isinstance(stmt, ast.If):
            self.eval(stmt.test)
            then_env = self._exec_branch(stmt.body)
            else_env = self._exec_branch(stmt.orelse)
            self.env = self._merge(then_env, else_env)
        elif isinstance(stmt, ast.For) or isinstance(stmt, ast.AsyncFor):
            element = self.eval_iterable(stmt.iter, site_node=stmt)
            self.assign(stmt.target, element)
            self._exec_loop(stmt.body, stmt.orelse)
        elif isinstance(stmt, ast.While):
            self.eval(stmt.test)
            self._exec_loop(stmt.body, stmt.orelse)
        elif isinstance(stmt, ast.Try):
            envs = [self._exec_branch(stmt.body)]
            for handler in stmt.handlers:
                envs.append(self._exec_branch(handler.body))
            self.env = self._merge(*envs)
            self.exec_block(stmt.orelse)
            self.exec_block(stmt.finalbody)
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                taints = self.eval(item.context_expr)
                if item.optional_vars is not None:
                    self.assign(item.optional_vars, taints)
            self.exec_block(stmt.body)
        elif isinstance(stmt, ast.Raise):
            if stmt.exc is not None:
                self.eval(stmt.exc)
        elif isinstance(stmt, ast.Delete):
            for target in stmt.targets:
                self.env.pop(dotted_name(target), None)
        elif isinstance(stmt, ast.Assert):
            self.eval(stmt.test)
        # Import/Global/Nonlocal/Pass/Break/Continue: no dataflow.

    def _analyze_function(self, node) -> None:
        """Nested/method function: fresh environment, shared sinks."""
        sub = _FlowAnalyzer(self.info, self.index, self.set_names,
                            self.flow, self.use_summaries)
        args = node.args
        annotated = args.posonlyargs + args.args + args.kwonlyargs
        names = [a.arg for a in annotated]
        if args.vararg:
            names.append(args.vararg.arg)
        if args.kwarg:
            names.append(args.kwarg.arg)
        for arg in annotated:
            kind = _annotation_provenance(arg.annotation)
            if kind is not None:
                sub.env[arg.arg] = frozenset({Taint(kind)})
        sub.run(node.body, params=names)

    # -- assignment targets ------------------------------------------------

    def assign(self, target: ast.expr, taints: Taints) -> None:
        if isinstance(target, ast.Name):
            self.env[target.id] = taints  # strong update
        elif isinstance(target, ast.Attribute):
            name = dotted_name(target)
            if name:
                self.env[name] = taints
                base = name.split(".", 1)[0]
                # The object outlives the attribute name: taint it too,
                # and stores onto self/parameters escape the function.
                self.env[base] = self.env.get(base, EMPTY) | _values(taints)
                if base == "self" or base in self.params:
                    self._escape(taints)
        elif isinstance(target, ast.Subscript):
            self.eval(target.slice)
            container = dotted_name(target.value)
            if container:
                self.env[container] = \
                    self.env.get(container, EMPTY) | _values(taints)
                base = container.split(".", 1)[0]
                if base == "self" or base in self.params:
                    self._escape(taints)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self.assign(elt, taints)
        elif isinstance(target, ast.Starred):
            self.assign(target.value, taints)

    # -- expressions --------------------------------------------------------

    def eval_iterable(self, node: ast.expr, site_node: ast.AST) -> Taints:
        """Taints of the *elements* produced by iterating ``node``.

        When the iterable is an unordered set, the elements additionally
        carry a ``set-order`` taint anchored at ``site_node`` — the
        location the syntactic DET004 candidate reports.
        """
        taints = self.eval(node)
        if is_set_expr(node, self.set_names):
            taints = taints | frozenset(
                {Taint(SET_ORDER, self._site(site_node))})
        return taints

    def eval(self, node: ast.expr) -> Taints:  # noqa: C901 - dispatcher
        if isinstance(node, ast.Name):
            return self.env.get(node.id, EMPTY)
        if isinstance(node, ast.Constant):
            return EMPTY
        if isinstance(node, ast.Attribute):
            name = dotted_name(node)
            if name == "os.environ":
                return frozenset({Taint(ENV, self._site(node))})
            if name and name in self.env:
                return self.env[name]
            base = self.eval(node.value)
            # Provenance only flows through the known object graph.
            mapped = set()
            if OBJ_RECORDER in {t.kind for t in base}:
                if node.attr == "metrics":
                    mapped.add(Taint(OBJ_METRICS))
                elif node.attr == "sink":
                    mapped.add(Taint(OBJ_SINK))
            return _values(base) | frozenset(mapped)
        if isinstance(node, ast.Call):
            return self.eval_call(node)
        if isinstance(node, (ast.Tuple, ast.List)):
            out = EMPTY
            for elt in node.elts:
                out |= self.eval(elt)
            return out
        if isinstance(node, ast.Set):
            out = EMPTY
            for elt in node.elts:
                # Re-potting values in a set erases any previous order.
                out |= frozenset(t for t in self.eval(elt)
                                 if t.kind != SET_ORDER)
            return out
        if isinstance(node, ast.Dict):
            out = EMPTY
            for key in node.keys:
                if key is not None:
                    out |= self.eval(key)
            for value in node.values:
                out |= self.eval(value)
            return out
        if isinstance(node, ast.BinOp):
            return self.eval(node.left) | self.eval(node.right)
        if isinstance(node, ast.BoolOp):
            out = EMPTY
            for value in node.values:
                out |= self.eval(value)
            return out
        if isinstance(node, ast.UnaryOp):
            if isinstance(node.op, ast.Not):
                self.eval(node.operand)
                return EMPTY
            return self.eval(node.operand)
        if isinstance(node, ast.Compare):
            self.eval(node.left)
            for comp in node.comparators:
                self.eval(comp)
            return EMPTY  # booleans carry no order/clock information
        if isinstance(node, ast.IfExp):
            self.eval(node.test)
            return self.eval(node.body) | self.eval(node.orelse)
        if isinstance(node, ast.Subscript):
            # The value fetched is the container's content: container
            # taint propagates, but a tainted *index* does not make the
            # looked-up value tainted (specs[i] is clean even when i
            # came from iterating a timing dict).
            self.eval(node.slice)
            return self.eval(node.value)
        if isinstance(node, ast.Slice):
            out = EMPTY
            for part in (node.lower, node.upper, node.step):
                if part is not None:
                    out |= self.eval(part)
            return out
        if isinstance(node, ast.JoinedStr):
            out = EMPTY
            for value in node.values:
                out |= self.eval(value)
            return out
        if isinstance(node, ast.FormattedValue):
            return self.eval(node.value)
        if isinstance(node, (ast.ListComp, ast.GeneratorExp, ast.SetComp,
                             ast.DictComp)):
            return self.eval_comprehension(node)
        if isinstance(node, (ast.Yield, ast.YieldFrom)):
            if node.value is not None:
                return self.eval(node.value)
            return EMPTY
        if isinstance(node, ast.Await):
            return self.eval(node.value)
        if isinstance(node, ast.Starred):
            return self.eval(node.value)
        if isinstance(node, ast.NamedExpr):
            taints = self.eval(node.value)
            self.assign(node.target, taints)
            return taints
        if isinstance(node, ast.Lambda):
            return EMPTY
        return EMPTY

    def eval_comprehension(self, node) -> Taints:
        saved = dict(self.env)
        out = EMPTY
        ordered_source = False
        for gen in node.generators:
            element = self.eval_iterable(gen.iter, site_node=node)
            if is_set_expr(gen.iter, self.set_names):
                ordered_source = True
            self.assign(gen.target, element)
            for cond in gen.ifs:
                self.eval(cond)
        if isinstance(node, ast.DictComp):
            out = self.eval(node.key) | self.eval(node.value)
        else:
            out = self.eval(node.elt)
        self.env = saved
        if isinstance(node, ast.SetComp):
            # The result is itself unordered: materialization order gone.
            out = frozenset(t for t in out if t.kind != SET_ORDER)
        elif ordered_source:
            out = out | frozenset({Taint(SET_ORDER, self._site(node))})
        return out

    # -- calls ---------------------------------------------------------------

    def _arg_taints(self, node: ast.Call) -> Taints:
        out = EMPTY
        for arg in node.args:
            out |= self.eval(arg)
        for keyword in node.keywords:
            out |= self.eval(keyword.value)
        return out

    def _summary_for(self, node: ast.Call) -> Tuple[Optional[str],
                                                    FrozenSet[str]]:
        if not self.use_summaries or self.index is None:
            return None, frozenset()
        name = self.index.resolve_function_name(self.info, node.func)
        if name is None:
            return None, frozenset()
        return name, self.index.summaries.get(name, frozenset())

    def eval_call(self, node: ast.Call) -> Taints:
        args = self._arg_taints(node)
        dotted = dotted_name(node.func)
        terminal = dotted.split(".")[-1] if dotted else ""
        head = dotted.split(".")[0] if dotted else ""
        receiver = EMPTY
        method = ""
        if isinstance(node.func, ast.Attribute):
            receiver = self.eval(node.func.value)
            method = node.func.attr

        result = EMPTY

        # -- sources ------------------------------------------------------
        source = self._source_taint(node, dotted, terminal, head)
        if source is not None:
            return source

        # -- sanitizers / transparent conversions --------------------------
        if not method and terminal in _KILL_ALL:
            return EMPTY
        if not method and terminal in _ORDER_KILL:
            return frozenset(t for t in args if t.kind != SET_ORDER)

        # -- set materializations (same sites the syntactic rule flags) ----
        site_taint = frozenset({Taint(SET_ORDER, self._site(node))})
        if terminal in ("list", "tuple") and len(node.args) == 1 \
                and not method:
            if is_set_expr(node.args[0], self.set_names):
                return args | site_taint
            return args
        if terminal == "enumerate" and node.args and not method:
            if is_set_expr(node.args[0], self.set_names):
                return args | site_taint
            return args
        if terminal in ("map", "filter", "zip") and not method:
            pool = node.args[1:] if terminal in ("map", "filter") \
                else node.args
            if any(is_set_expr(arg, self.set_names) for arg in pool):
                return args | site_taint
            return args
        if method == "join" and len(node.args) == 1:
            if is_set_expr(node.args[0], self.set_names):
                return args | receiver | site_taint
            return args | _values(receiver)

        # -- provenance constructors ---------------------------------------
        provenance = self._constructed_provenance(dotted, terminal, head,
                                                  node, args)
        if provenance is not None:
            return provenance

        # -- sinks ----------------------------------------------------------
        self._check_sinks(node, dotted, terminal, method, receiver, args)

        # -- one-hop summaries ----------------------------------------------
        summary_name, kinds = self._summary_for(node)
        if kinds:
            result |= frozenset(
                Taint(kind, self._site(node), detail=summary_name or "")
                for kind in kinds)
            if WALL in kinds:
                self._hit("wall-call", node,
                          f"{dotted or ast.unparse(node.func)}()",
                          result, detail=summary_name or "")

        if not method and terminal in _TRANSPARENT:
            return result | _values(args)

        if method:
            # A registry's counter()/gauge()/histogram() hands back a
            # metric handle; later .inc()/.set()/.observe() on it is a
            # sim-domain sink.
            if method in _METRIC_CTORS and _has(receiver, OBJ_METRICS):
                return result | frozenset({Taint(OBJ_METRIC)})
            # Mutating methods push argument taint into the receiver.
            if method in _MUTATORS:
                name = dotted_name(node.func.value)
                if name:
                    self.env[name] = self.env.get(name, EMPTY) | _values(args)
                    base = name.split(".", 1)[0]
                    if base == "self" or base in self.params \
                            or "." in name:
                        self._escape(args)
            # A method result carries its receiver's (and args') taint.
            return result | _values(receiver) | _values(args)

        return result

    def _source_taint(self, node: ast.Call, dotted: str, terminal: str,
                      head: str) -> Optional[Taints]:
        aliases = self.info.module_aliases
        site = self._site(node)
        # Wall clock.
        if head == "time" and terminal in _WALL_TIME_FNS \
                and aliases.get("time") == "time":
            return frozenset({Taint(WALL, site)})
        if dotted in self.wall_names:
            return frozenset({Taint(WALL, site)})
        parts = dotted.split(".")
        if len(parts) >= 2 and parts[-1] in _WALL_DATETIME_FNS and (
                parts[0] in self.datetime_names
                or parts[0] == "datetime"):
            return frozenset({Taint(WALL, site)})
        # OS entropy / uuids / secrets / the global random generator.
        if head == "os" and terminal in _ENTROPY_OS:
            return frozenset({Taint(ENTROPY, site)})
        if head == "secrets" and terminal and head in aliases:
            return frozenset({Taint(ENTROPY, site)})
        if head == "uuid" and terminal in _UUID_RANDOM:
            return frozenset({Taint(ENTROPY, site)})
        if dotted in self.entropy_names:
            return frozenset({Taint(ENTROPY, site)})
        if head == "random" and aliases.get("random") == "random" \
                and terminal and terminal not in _RANDOM_SAFE \
                and len(parts) == 2:
            return frozenset({Taint(ENTROPY, site)})
        if dotted in self.random_names:
            return frozenset({Taint(ENTROPY, site)})
        # Environment reads.
        if dotted in ("os.getenv", "os.environ.get"):
            return frozenset({Taint(ENV, site)})
        if dotted == "getenv" and "getenv" in self.info.imported_names:
            return frozenset({Taint(ENV, site)})
        return None

    def _constructed_provenance(self, dotted: str, terminal: str, head: str,
                                node: ast.Call,
                                args: Taints) -> Optional[Taints]:
        if terminal in ("recorder", "Recorder") and not node.args:
            return frozenset({Taint(OBJ_RECORDER)})
        if terminal == "MetricsRegistry":
            return frozenset({Taint(OBJ_METRICS)})
        if terminal == "TraceTap":
            return frozenset({Taint(OBJ_TRACETAP)})
        if terminal == "ResultCache":
            return frozenset({Taint(OBJ_CACHE)})
        if terminal in _HASHLIB_CTORS and (
                head == "hashlib"
                or self.info.imported_names.get(terminal, ("", ""))[0]
                == "hashlib"):
            self._hit("hash", node, f"{dotted}()", args)
            self._escape(args)
            return frozenset({Taint(OBJ_HASHER)})
        return None

    def _check_sinks(self, node: ast.Call, dotted: str, terminal: str,
                     method: str, receiver: Taints, args: Taints) -> None:
        kinds_of = {t.kind for t in receiver}
        # Content-hash sinks (cache keys).
        if method == "update" and OBJ_HASHER in kinds_of:
            self._hit("hash", node, f"{dotted}()", args)
            self._escape(args)
        if method in _CACHE_KEY_METHODS and OBJ_CACHE in kinds_of:
            # Only the first argument (the RunSpec) feeds the key;
            # store()'s second argument is the cached *payload*, which
            # legitimately carries wall-clock timings.
            key_arg = self.eval(node.args[0]) if node.args else EMPTY
            self._hit("hash", node, f"{dotted}()", key_arg)
        if not method and terminal == "RunSpec":
            self._hit("hash", node, "RunSpec()", args)
        # Scenario-spec construction/serialization.
        if terminal in _SPEC_CLASSES and not method:
            self._hit("spec", node, f"{terminal}()", args)
        if method == "from_dict" and \
                dotted.split(".")[-2:-1] and \
                dotted.split(".")[-2] in _SPEC_CLASSES:
            self._hit("spec", node, f"{dotted}()", args)
        if method == "to_dict" and _values(receiver):
            self._hit("spec", node, f"{dotted or 'to_dict'}()",
                      receiver)
            self._escape(receiver)
        # ParamSpec coercion.
        if terminal == "ParamSpec" and not method:
            self._hit("param", node, "ParamSpec()", args)
        if method == "coerce":
            self._hit("param", node, f"{dotted or 'coerce'}()", args)
        # Sim-domain observability sinks.
        if method == "event" and OBJ_RECORDER in kinds_of:
            self._hit("sim-sink", node, f"{dotted or 'event'}()", args)
            self._escape(args)
        if method == "emit" and OBJ_SINK in kinds_of:
            self._hit("sim-sink", node, f"{dotted or 'emit'}()", args)
            self._escape(args)
        if method in _METRIC_SINKS and OBJ_METRIC in kinds_of:
            self._hit("sim-sink", node, f"{dotted or method}()", args)
            self._escape(args)
        if method.startswith("on_") and OBJ_TRACETAP in kinds_of:
            self._hit("sim-sink", node, f"{dotted or method}()", args)
            self._escape(args)
        # Output sinks: escape points for set-order taint.
        if method in _WRITE_METHODS or (not method and terminal == "print"):
            self._escape(args)
        if dotted in ("json.dump", "json.dumps", "pickle.dump",
                      "pickle.dumps", "marshal.dump", "marshal.dumps"):
            self._escape(args)


# -- public entry points ----------------------------------------------------

def function_summaries(info: ModuleInfo) -> Dict[str, FrozenSet[str]]:
    """Return-taint kinds for each top-level function in ``info``.

    Computed without call resolution, so the project-wide summary table
    gives exactly one hop of cross-function propagation.
    """
    set_names = collect_set_names(info.tree)
    summaries: Dict[str, FrozenSet[str]] = {}
    for node in info.tree.body:
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        flow = ModuleFlow()
        analyzer = _FlowAnalyzer(info, None, set_names, flow,
                                 use_summaries=False)
        args = node.args
        names = [a.arg for a in args.posonlyargs + args.args
                 + args.kwonlyargs]
        analyzer.run(node.body, params=names)
        kinds = _kinds(analyzer.returns)
        if kinds:
            summaries[f"{info.module}.{node.name}"] = kinds
    return summaries


def compute_summaries(index: ProjectIndex) -> None:
    """Populate ``index.summaries`` for every indexed module."""
    for info in index.modules.values():
        index.summaries.update(function_summaries(info))


def module_flow(info: ModuleInfo, index: ProjectIndex) -> ModuleFlow:
    """The (memoized) dataflow analysis result for one module."""
    cached = info.flow_cache
    if isinstance(cached, ModuleFlow):
        return cached
    set_names = collect_set_names(info.tree)
    flow = ModuleFlow()
    # Module body: a pseudo-function with no parameters.  Top-level
    # statements and every (nested) function/method body are analyzed;
    # _analyze_function recurses with fresh environments.
    analyzer = _FlowAnalyzer(info, index, set_names, flow,
                             use_summaries=True)
    analyzer.run(info.tree.body)
    flow.hits.sort(key=lambda h: (h.line, h.col, h.family, h.sink))
    info.flow_cache = flow
    return flow
