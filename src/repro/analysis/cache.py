"""On-disk incremental lint result cache (``.repro-cache/lint/``).

Linting must stay a hard CI gate as the tree grows, so re-analysis is
skipped for files whose inputs cannot have changed the result.  A cache
entry for one file is valid only when all three keys match:

* the file's **content hash** — any edit invalidates it;
* the **rule-set version** — a content hash over every source file of
  ``repro.analysis`` itself, so changing a rule (or the engine) flushes
  the whole cache, the same trick ``repro.sweep`` uses for its
  ``code_version`` key;
* the **index digest** — a hash of the cross-file facts rules can see
  (function signatures, class shapes, dataflow summaries, public
  ``__all__`` exports).  Cross-file rules (REG, API001, TDM002) make a
  per-file cache unsound in general; hashing the *visible* slice of the
  project index restores soundness: edit a module others depend on and
  the digest shifts, flushing everyone.

Files are always parsed (the index and suppression tables need every
module); a cache hit skips only the rule passes — which is where the
time goes — and the engine reports ``files_analyzed``/``files_cached``
so CI can assert a warm run re-analyzes nothing.
"""

from __future__ import annotations

import hashlib
import json
import os
from typing import Dict, List, Optional

from repro.analysis.findings import Finding

#: Schema tag for cache entries; bump on incompatible layout changes.
CACHE_SCHEMA = "repro.lint-cache/v1"
#: Default cache directory, matching the sweep cache's home.
DEFAULT_CACHE_DIR = os.path.join(".repro-cache", "lint")


def content_hash(data: bytes) -> str:
    return hashlib.sha256(data).hexdigest()


def rules_version() -> str:
    """Content hash over the ``repro.analysis`` package's own sources."""
    package_dir = os.path.dirname(os.path.abspath(__file__))
    hasher = hashlib.sha256()
    for root, dirs, files in os.walk(package_dir):
        dirs[:] = sorted(d for d in dirs if d != "__pycache__")
        for name in sorted(files):
            if not name.endswith(".py"):
                continue
            path = os.path.join(root, name)
            hasher.update(os.path.relpath(path, package_dir).encode())
            with open(path, "rb") as handle:
                hasher.update(handle.read())
    return hasher.hexdigest()


def index_digest(index) -> str:
    """Hash of every cross-file fact a rule pass can observe."""
    from repro.analysis.rules.api import PUBLIC_PACKAGES, _package_exports

    facts: Dict[str, object] = {
        "functions": {
            name: [fn.params, fn.has_kwargs]
            for name, fn in sorted(index.functions.items())
        },
        "classes": {
            name: [sorted(cls.methods), cls.bases, cls.decorators]
            for name, cls in sorted(index.classes.items())
        },
        "summaries": {
            name: sorted(kinds)
            for name, kinds in sorted(index.summaries.items())
        },
        "modules": sorted(index.modules),
        "exports": {
            pkg: sorted(exports) if exports is not None else None
            for pkg, exports in (
                (pkg, _package_exports(index, pkg))
                for pkg in PUBLIC_PACKAGES)
        },
    }
    blob = json.dumps(facts, sort_keys=True, default=list).encode()
    return hashlib.sha256(blob).hexdigest()


class LintCache:
    """Per-file lint results keyed by (content, rule-set, index) hashes."""

    def __init__(self, cache_dir: str = DEFAULT_CACHE_DIR) -> None:
        self.cache_dir = cache_dir
        self.rules_version = rules_version()
        self.hits = 0
        self.misses = 0

    def _entry_path(self, display_path: str, file_hash: str) -> str:
        name = hashlib.sha256(display_path.encode()).hexdigest()[:24]
        return os.path.join(self.cache_dir, f"{name}-{file_hash[:16]}.json")

    def load(self, display_path: str, file_hash: str,
             digest: str) -> Optional[List[Finding]]:
        """Cached raw findings for one file, or None on any mismatch."""
        path = self._entry_path(display_path, file_hash)
        try:
            with open(path, encoding="utf-8") as handle:
                entry = json.load(handle)
        except (OSError, json.JSONDecodeError):
            self.misses += 1
            return None
        if (entry.get("schema") != CACHE_SCHEMA
                or entry.get("path") != display_path
                or entry.get("file_hash") != file_hash
                or entry.get("rules_version") != self.rules_version
                or entry.get("index_digest") != digest):
            self.misses += 1
            return None
        self.hits += 1
        return [Finding.from_cache_dict(item)
                for item in entry.get("findings", [])]

    def store(self, display_path: str, file_hash: str, digest: str,
              findings: List[Finding]) -> None:
        os.makedirs(self.cache_dir, exist_ok=True)
        entry = {
            "schema": CACHE_SCHEMA,
            "path": display_path,
            "file_hash": file_hash,
            "rules_version": self.rules_version,
            "index_digest": digest,
            "findings": [f.to_cache_dict() for f in findings],
        }
        path = self._entry_path(display_path, file_hash)
        tmp = f"{path}.tmp.{os.getpid()}"
        with open(tmp, "w", encoding="utf-8") as handle:
            json.dump(entry, handle, sort_keys=True)
        os.replace(tmp, path)
