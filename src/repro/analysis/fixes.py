"""Applying autofixes: exact-span edits, bottom-up, verify-then-write.

``repro lint --fix`` collects the :class:`~repro.analysis.findings.Fix`
attached to each finding and rewrites the files here.  Three properties
keep this safe enough to run unattended in CI:

* **verification** — every fix records the exact text of the span it
  replaces; if the file drifted since analysis the fix is skipped, never
  misapplied;
* **bottom-up application** — spans are applied last-to-first so earlier
  offsets stay valid, and overlapping spans are skipped after the first;
* **idempotence by re-lint** — fixes only rewrite constructs the rule
  stops flagging afterwards (``sorted(x)`` satisfies DET004, a package
  import satisfies API001), so a second ``--fix`` run finds nothing to
  do.  The CLI re-lints after writing and reports what remains.
"""

from __future__ import annotations

import difflib
from typing import Dict, Iterable, List, Optional, Tuple

from repro.analysis.findings import Finding, Fix


def span_text(lines: List[str], line: int, col: int,
              end_line: int, end_col: int) -> Optional[str]:
    """Exact source text of a (line, col)..(end_line, end_col) span.

    ``lines`` are raw source lines without terminators, 1-based line
    numbers, ast column conventions.  Returns None when out of range.
    """
    if not (1 <= line <= end_line <= len(lines)):
        return None
    if line == end_line:
        text = lines[line - 1]
        if end_col > len(text):
            return None
        return text[col:end_col]
    parts = [lines[line - 1][col:]]
    parts.extend(lines[index] for index in range(line, end_line - 1))
    tail = lines[end_line - 1]
    if end_col > len(tail):
        return None
    parts.append(tail[:end_col])
    return "\n".join(parts)


def _sorted_fixes(fixes: Iterable[Fix]) -> List[Fix]:
    """Deduplicated fixes, last span first, overlaps dropped."""
    unique = sorted(set(fixes),
                    key=lambda f: (f.line, f.col, f.end_line, f.end_col))
    kept: List[Fix] = []
    previous_start: Tuple[int, int] = (1 << 30, 1 << 30)
    for fix in reversed(unique):
        if (fix.end_line, fix.end_col) > previous_start:
            continue  # overlaps the fix we already kept after it
        kept.append(fix)
        previous_start = (fix.line, fix.col)
    return kept


def apply_fixes(source: str, fixes: Iterable[Fix]) -> Tuple[str, int]:
    """Apply fixes to one file's source; returns (new_source, n_applied).

    Fixes whose recorded ``original`` no longer matches the file are
    skipped (the caller re-lints afterwards, so nothing is lost — the
    finding simply stays).
    """
    lines = source.splitlines()
    applied = 0
    for fix in _sorted_fixes(fixes):
        current = span_text(lines, fix.line, fix.col,
                            fix.end_line, fix.end_col)
        if current != fix.original:
            continue
        head = lines[fix.line - 1][:fix.col]
        tail = lines[fix.end_line - 1][fix.end_col:]
        replacement_lines = (head + fix.replacement + tail).split("\n")
        lines[fix.line - 1:fix.end_line] = replacement_lines
        applied += 1
    new_source = "\n".join(lines)
    if source.endswith("\n"):
        new_source += "\n"
    return new_source, applied


def fixes_by_path(findings: Iterable[Finding]) -> Dict[str, List[Fix]]:
    """Group the attached fixes of ``findings`` by file path."""
    grouped: Dict[str, List[Fix]] = {}
    for finding in findings:
        if finding.fix is not None:
            grouped.setdefault(finding.path, []).append(finding.fix)
    return grouped


def unified_diff(path: str, before: str, after: str) -> str:
    """A ``--diff``-mode unified diff for one file ('' when unchanged)."""
    if before == after:
        return ""
    return "".join(difflib.unified_diff(
        before.splitlines(keepends=True), after.splitlines(keepends=True),
        fromfile=f"a/{path}", tofile=f"b/{path}"))
