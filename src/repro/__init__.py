"""repro — Detecting Malicious Routers (PODC 2004), reproduced in Python.

A traffic-validation framework for detecting routers whose data plane has
been compromised, together with the full substrate the paper's evaluation
needs: a discrete-event packet network simulator, cryptographic tooling,
distributed-systems primitives, the prior-work baselines, and a benchmark
harness regenerating every table and figure.

Package map
-----------
``repro.net``        network simulator (routers, queues, routing, TCP,
                     adversaries)
``repro.crypto``     fingerprints, keys, signatures, hash chains
``repro.dist``       clocks/rounds, robust flooding, signed consensus,
                     set reconciliation
``repro.core``       the paper's contribution: traffic summaries, TV
                     predicates, the failure-detector spec, protocols Π2 /
                     Πk+2 / χ, Fatih, the §2.3 replica detector
``repro.baselines``  WATCHERS, HERZBERG, PERLMAN, SecTrace, AWERBUCH,
                     HSER, StealthProbing, ZHANG, SATS
``repro.eval``       metrics, canned scenarios, one function per figure

Quick start: see ``examples/quickstart.py`` or run
``python -m repro run fig5_7`` for the Fatih timeline.
"""

__version__ = "1.0.0"

__all__ = ["net", "crypto", "dist", "core", "baselines", "eval",
           "__version__"]
