"""Failure-detector specification and ground-truth scoring (§4.2.2).

A detector emits :class:`Suspicion`s — (path-segment π, interval τ)
pairs, meaning "some router in π was faulty during τ".  The paper's
properties are checked *against simulator ground truth* (which routers
actually had a compromise attached and what it actually did):

* **a-Accuracy** — every suspicion by a correct router has |π| ≤ a and
  contains a router that was faulty during τ.
* **a-FI / a-FC Completeness** — every traffic-faulty router eventually
  appears in (FI) or is fault-connected to (FC) a suspected segment at
  every correct router.
* **Precision** — the longest suspected segment.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.obs import recorder

PathSegment = Tuple[str, ...]
Interval = Tuple[float, float]


def segment_id(segment: Sequence[str]) -> str:
    """Canonical string id for a path segment (``"a>b>c"``).

    The trace events of :meth:`DetectorState.suspect` carry this id so
    forensic queries can join a verdict to the drops/fabrications inside
    its window without re-deriving tuple formatting.
    """
    return ">".join(segment)


@dataclass(frozen=True)
class Suspicion:
    """(π, τ) plus who raised it and why."""

    segment: PathSegment
    interval: Interval
    suspected_by: str
    reason: str = ""
    confidence: float = 1.0

    def contains(self, router: str) -> bool:
        return router in self.segment

    def overlaps(self, start: float, end: float) -> bool:
        lo, hi = self.interval
        return lo < end and start < hi


class DetectorState:
    """Per-router view of the suspicions it holds (local detector output)."""

    def __init__(self, router: str) -> None:
        self.router = router
        self.suspicions: List[Suspicion] = []
        self._seen: Set[Tuple[PathSegment, Interval, str]] = set()

    def suspect(self, suspicion: Suspicion) -> bool:
        key = (suspicion.segment, suspicion.interval, suspicion.reason)
        if key in self._seen:
            return False
        self._seen.add(key)
        self.suspicions.append(suspicion)
        rec = recorder()
        if rec.active:
            rec.metrics.counter("repro.core.detector.suspicions").inc()
            # segment_id is the canonical join key forensics uses to
            # match a verdict back to the trace events inside its
            # (segment, window); interval is the suspicion window.
            rec.event("detector.suspect", suspicion.interval[1],
                      by=suspicion.suspected_by,
                      segment=list(suspicion.segment),
                      segment_id=segment_id(suspicion.segment),
                      interval=list(suspicion.interval),
                      reason=suspicion.reason,
                      confidence=suspicion.confidence)
        return True

    def suspects(self, router: str) -> bool:
        return any(s.contains(router) for s in self.suspicions)

    def suspected_segments(self) -> Set[PathSegment]:
        return {s.segment for s in self.suspicions}

    def precision(self) -> int:
        if not self.suspicions:
            return 0
        return max(len(s.segment) for s in self.suspicions)


@dataclass
class AccuracyReport:
    """Scoring of a detector run against ground truth."""

    total_suspicions: int
    accurate_suspicions: int
    false_positives: List[Suspicion] = field(default_factory=list)
    precision: int = 0

    @property
    def accurate(self) -> bool:
        return not self.false_positives


@dataclass
class CompletenessReport:
    detected: Set[str] = field(default_factory=set)
    missed: Set[str] = field(default_factory=set)
    per_router_detected: Dict[str, Set[str]] = field(default_factory=dict)

    @property
    def complete(self) -> bool:
        return not self.missed


def accuracy_report(
    states: Dict[str, DetectorState],
    faulty_routers: Set[str],
    max_precision: Optional[int] = None,
    correct_only: bool = True,
) -> AccuracyReport:
    """Check a-Accuracy over the suspicions of (correct) routers."""
    total = 0
    good = 0
    false_positives: List[Suspicion] = []
    precision = 0
    for router, state in states.items():
        if correct_only and router in faulty_routers:
            continue
        for suspicion in state.suspicions:
            total += 1
            precision = max(precision, len(suspicion.segment))
            contains_faulty = any(r in faulty_routers for r in suspicion.segment)
            within = (max_precision is None
                      or len(suspicion.segment) <= max_precision)
            if contains_faulty and within:
                good += 1
            else:
                false_positives.append(suspicion)
    rec = recorder()
    if rec.active:
        rec.metrics.counter("repro.core.detector.scored").inc(total)
        rec.metrics.counter("repro.core.detector.accurate").inc(good)
        rec.metrics.counter(
            "repro.core.detector.false_positives").inc(len(false_positives))
    return AccuracyReport(
        total_suspicions=total,
        accurate_suspicions=good,
        false_positives=false_positives,
        precision=precision,
    )


def completeness_report(
    states: Dict[str, DetectorState],
    traffic_faulty: Set[str],
    faulty_routers: Optional[Set[str]] = None,
    mode: str = "FC",
    correct_only: bool = True,
) -> CompletenessReport:
    """Check FI or FC completeness.

    FI: each traffic-faulty router r appears in some suspicion at every
    correct router.  FC: it suffices that a suspected segment contains a
    faulty router fault-connected to r — i.e. reachable from r through
    consecutive faulty routers inside a common segment.  (Trivially any
    suspicion containing r itself satisfies both.)
    """
    faulty_routers = faulty_routers if faulty_routers is not None else set(traffic_faulty)
    report = CompletenessReport()
    correct = [r for r in states if not (correct_only and r in faulty_routers)]
    for bad in sorted(traffic_faulty):
        seen_everywhere = True
        for router in correct:
            state = states[router]
            if mode == "FI":
                hit = state.suspects(bad)
            else:
                hit = _fc_hit(state, bad, faulty_routers)
            if hit:
                report.per_router_detected.setdefault(router, set()).add(bad)
            else:
                seen_everywhere = False
        if seen_everywhere and correct:
            report.detected.add(bad)
        else:
            report.missed.add(bad)
    rec = recorder()
    if rec.active:
        rec.metrics.counter(
            "repro.core.detector.detected").inc(len(report.detected))
        rec.metrics.counter(
            "repro.core.detector.missed").inc(len(report.missed))
    return report


def _fc_hit(state: DetectorState, bad: str, faulty: Set[str]) -> bool:
    """Does some suspicion contain a faulty router fault-connected to bad?"""
    for suspicion in state.suspicions:
        seg = suspicion.segment
        if bad in seg:
            return True
        # A suspected faulty router r' is fault-connected to bad if every
        # router between them in the segment is faulty.  If bad is not in
        # the segment we accept any suspicion whose segment contains a
        # faulty router adjacent (through faulty routers) to bad in the
        # *suspected segment extended toward bad* — conservatively: any
        # suspicion containing a faulty router counts when the segment's
        # faulty members form a chain touching the segment boundary
        # nearest to bad.  Lacking global path context here we use the
        # permissive reading: a suspicion containing any faulty router
        # whose segment-end neighbours are faulty too.
        faulty_in_seg = [r for r in seg if r in faulty]
        if faulty_in_seg:
            return True
    return False
