"""Summary exchange codecs — the §2.4.1 bandwidth/accuracy tradeoff.

Conservation-of-content validation needs the symmetric difference of two
fingerprint sets.  Three ways to ship the information, with very
different wire costs:

============  =====================================  ===================
codec         wire size                              accuracy
============  =====================================  ===================
full          8 B × |set|                            exact
polynomial    8 B × (d+1), d = agreed diff bound     exact while the true
              (Minsky–Trachtenberg, Appendix A)      difference ≤ d;
                                                     overflow is detected
bloom         m/8 B (fixed)                          estimate only; can
                                                     under/over-count
============  =====================================  ===================

``encode_summary``/``validate_encoded`` plug into Πk+2's exchange: the
sending end encodes its "sent into π" summary, the receiving end
validates against its own observations.  A polynomial overflow (the
difference exceeded the agreed bound) is treated as a failed validation:
whatever happened was far beyond the benign-loss allowance.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.summaries import SummaryPolicy, TrafficSummary
from repro.core.validation import TVResult
from repro.dist.reconcile import (
    BloomFilter,
    CharacteristicPolynomialSet,
    ReconciliationError,
    bloom_difference_estimate,
    reconcile,
)

FINGERPRINT_WIRE_BYTES = 8
HEADER_WIRE_BYTES = 16  # counts + round/segment identifiers


@dataclass
class EncodedSummary:
    """A summary as it would travel on the wire."""

    codec: str  # "full" | "polynomial" | "bloom"
    count: int
    byte_count: int
    payload: object
    wire_bytes: int


def encode_summary(summary: TrafficSummary, codec: str = "full",
                   max_diff: int = 16, bloom_bits: int = 2048,
                   bloom_hashes: int = 4) -> EncodedSummary:
    if summary.policy is not SummaryPolicy.CONTENT:
        raise ValueError("codecs operate on content summaries")
    fps = summary.fingerprints or frozenset()
    if codec == "full":
        payload: object = fps
        wire = HEADER_WIRE_BYTES + FINGERPRINT_WIRE_BYTES * len(fps)
    elif codec == "polynomial":
        payload = CharacteristicPolynomialSet.from_set(fps, max_diff)
        wire = HEADER_WIRE_BYTES + FINGERPRINT_WIRE_BYTES * (max_diff + 1)
    elif codec == "bloom":
        bloom = BloomFilter(bits=bloom_bits, hashes=bloom_hashes)
        for fp in fps:
            bloom.add(fp)
        # Wire (and signature) friendly representation.
        payload = (bloom_bits, bloom_hashes, bloom.count, bloom.to_bytes())
        wire = HEADER_WIRE_BYTES + bloom_bits // 8
    else:
        raise ValueError(f"unknown codec {codec!r}")
    return EncodedSummary(codec=codec, count=summary.count,
                          byte_count=summary.byte_count, payload=payload,
                          wire_bytes=wire)


def validate_encoded(encoded: EncodedSummary, local: TrafficSummary,
                     threshold: int = 0,
                     max_diff: int = 16,
                     bloom_bits: int = 2048,
                     bloom_hashes: int = 4) -> TVResult:
    """Conservation-of-content TV against an encoded remote summary."""
    local_fps = set(local.fingerprints or frozenset())
    if encoded.codec == "full":
        remote_fps = set(encoded.payload)  # type: ignore[arg-type]
        missing = len(remote_fps - local_fps)
        extra = len(local_fps - remote_fps)
        discrepancy = missing + extra
        return TVResult(ok=discrepancy <= threshold,
                        discrepancy=discrepancy,
                        missing=missing, extra=extra,
                        detail=f"full: |Δ|={discrepancy}")
    if encoded.codec == "polynomial":
        message: CharacteristicPolynomialSet = encoded.payload  # type: ignore
        max_diff = len(message.evaluations) - 1
        try:
            remote_only, local_only = reconcile(local_fps, message, max_diff)
        except ReconciliationError:
            return TVResult(
                ok=False, discrepancy=float(max_diff + 1),
                missing=max_diff + 1,
                detail=f"polynomial: difference exceeds bound {max_diff}",
            )
        discrepancy = len(remote_only) + len(local_only)
        return TVResult(ok=discrepancy <= threshold,
                        discrepancy=discrepancy,
                        missing=len(remote_only), extra=len(local_only),
                        detail=f"polynomial: |Δ|={discrepancy}")
    if encoded.codec == "bloom":
        bits, hashes, count, data = encoded.payload  # type: ignore
        remote_bloom = BloomFilter.from_bytes(data, bits, hashes, count)
        local_bloom = BloomFilter(bits=bits, hashes=hashes)
        for fp in sorted(local_fps):
            local_bloom.add(fp)
        estimate = bloom_difference_estimate(remote_bloom, local_bloom)
        threshold = float(threshold)
        return TVResult(ok=estimate <= threshold + 0.5,
                        discrepancy=estimate,
                        detail=f"bloom: |Δ|≈{estimate:.1f}")
    raise ValueError(f"unknown codec {encoded.codec!r}")
