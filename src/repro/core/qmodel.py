"""Traffic-modeling formulas (§6.1.2) — the approach the paper rejects.

Two classic analytic models are implemented both as library utilities and
as the straw-man congestion predictors whose imprecision motivates χ:

* the TCP "square root formula"  B = (1/RTT)·√(3/(2 b p));
* Appenzeller et al.'s buffer-occupancy model: the bottleneck queue is
  ~normal with σ_Q = (2 T_p C + B)/(3√3 · √n)  (Eq. 6.1), giving a loss
  probability  p = (1 − erf(B/2 / (√2 σ_Q)))/2  (Eq. 6.2).

The paper verified the normality of Q but found the (µ, σ) prediction too
rough to drive detection — our benches reproduce that comparison.
"""

from __future__ import annotations

import math


def tcp_square_root_throughput(rtt: float, loss_prob: float, b: int = 1) -> float:
    """Steady-state long-lived TCP throughput in packets/second.

    ``rtt`` seconds, ``loss_prob`` in (0, 1], ``b`` packets per ACK.
    """
    if rtt <= 0:
        raise ValueError("rtt must be positive")
    if not (0 < loss_prob <= 1):
        raise ValueError("loss probability must be in (0, 1]")
    return (1.0 / rtt) * math.sqrt(3.0 / (2.0 * b * loss_prob))


def tcp_loss_from_throughput(rtt: float, throughput_pps: float, b: int = 1) -> float:
    """Invert the square-root formula: the loss rate implied by a rate."""
    if throughput_pps <= 0:
        raise ValueError("throughput must be positive")
    return 3.0 / (2.0 * b * (throughput_pps * rtt) ** 2)


def appenzeller_sigma(
    propagation_delay: float,
    capacity_pps: float,
    buffer_packets: float,
    n_flows: int,
) -> float:
    """σ_Q of Eq. (6.1), in packets.

    ``propagation_delay`` is the average two-way propagation delay T_p in
    seconds, ``capacity_pps`` the bottleneck capacity C (packets/s),
    ``buffer_packets`` the maximum queue B, ``n_flows`` the number of
    desynchronized long-lived TCP flows.
    """
    if n_flows <= 0:
        raise ValueError("need at least one flow")
    return (1.0 / (3.0 * math.sqrt(3.0))) * (
        (2.0 * propagation_delay * capacity_pps + buffer_packets)
        / math.sqrt(n_flows)
    )


def appenzeller_loss_probability(
    buffer_packets: float, sigma_q: float
) -> float:
    """p of Eq. (6.2): probability the ~normal queue exceeds the buffer."""
    if sigma_q <= 0:
        raise ValueError("sigma must be positive")
    return (1.0 - math.erf((buffer_packets / 2.0) / (math.sqrt(2.0) * sigma_q))) / 2.0


def required_buffer(propagation_delay: float, capacity_pps: float,
                    n_flows: int) -> float:
    """The √n rule of thumb: delay-bandwidth product over √n, packets."""
    if n_flows <= 0:
        raise ValueError("need at least one flow")
    return (2.0 * propagation_delay * capacity_pps) / math.sqrt(n_flows)
