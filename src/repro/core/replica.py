"""Centralized failure detection via active replication (§2.3, Fig 2.1).

The ideal detector: an identical replica r′ of router r listens to r's
inputs in promiscuous mode, recomputes what r *should* emit, and compares
with what r actually emits.  Any divergence means either r or the
detector is faulty.

The paper uses this construction to frame the two limitations the
distributed protocols remove:

* **complexity/nondeterminism** — the replica must reproduce internal
  multiplexing and randomization exactly.  Our RED replica demonstrates
  this: give it the monitored queue's RNG seed and it is exact; deny it
  the seed and a *correct* router trips false alarms
  (``tests/test_replica.py`` exercises both).
* **resource cost** — a full shadow per router; the traffic-validation
  protocols amortize this into summaries.

The droptail replica is a deterministic single-server FIFO recomputation
(arrival order in = departure order out, drop iff the waiting room
overflows), so for droptail the detector is exact up to a configurable
timing slack.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.crypto.fingerprint import fingerprint
from repro.net import (
    MonitorTap,
    Network,
    Packet,
    REDParams,
    REDQueue,
    Router,
)


@dataclass
class ReplicaDiscrepancy:
    kind: str  # "missing" | "unexpected" | "reordered"
    interface: str
    fp: int
    detail: str = ""


@dataclass
class _PredictedOutput:
    fp: int
    size: int
    finish_time: float


class _FifoReplica:
    """Deterministic recomputation of one droptail output interface."""

    def __init__(self, bandwidth: float, limit_bytes: int) -> None:
        self.bandwidth = bandwidth
        self.limit_bytes = limit_bytes
        self._service_free_at = 0.0
        # (service_start, size) of admitted packets, for occupancy checks
        self._waiting: List[Tuple[float, int]] = []
        self.outputs: List[_PredictedOutput] = []
        self.predicted_drops: List[int] = []

    def arrival(self, fp: int, size: int, when: float) -> None:
        # Waiting-room occupancy: admitted packets whose service has not
        # started by ``when`` (the live queue pops at service start).
        occupancy = sum(s for start, s in self._waiting if start > when)
        if occupancy + size > self.limit_bytes:
            self.predicted_drops.append(fp)
            return
        start = max(when, self._service_free_at)
        finish = start + size / self.bandwidth
        self._service_free_at = finish
        self._waiting.append((start, size))
        self.outputs.append(_PredictedOutput(fp, size, finish))


class _REDReplica:
    """Recomputation of a RED interface; exact only with the shared RNG.

    Mirrors the live OutputInterface exactly: the queue holds packets
    until the transmitter pops them at service start, so the occupancy
    (and hence the RED average and every probabilistic decision, given
    the shared RNG) evolves identically.
    """

    def __init__(self, bandwidth: float, limit_bytes: int,
                 params: REDParams, rng: random.Random) -> None:
        self.bandwidth = bandwidth
        self.queue = REDQueue(limit_bytes, params=params, rng=rng)
        self._service_free_at = 0.0
        self._fps: Dict[int, int] = {}  # packet uid -> fingerprint
        self.outputs: List[_PredictedOutput] = []
        self.predicted_drops: List[int] = []

    def _drain(self, when: float) -> None:
        """Pop-and-transmit every packet whose service starts by ``when``."""
        while not self.queue.empty and self._service_free_at <= when:
            packet = self.queue.pop(self._service_free_at)
            if packet is None:
                return
            finish = max(self._service_free_at, 0.0) + packet.size / self.bandwidth
            self.outputs.append(_PredictedOutput(
                self._fps.pop(packet.uid, 0), packet.size, finish))
            self._service_free_at = finish

    def arrival(self, fp: int, size: int, when: float) -> None:
        self._service_free_at = max(self._service_free_at, 0.0)
        self._drain(when)
        if self.queue.empty and self._service_free_at < when:
            self._service_free_at = when
        packet = Packet(src="replica", dst="replica", size=size)
        accepted, _, _ = self.queue.offer(packet, when)
        if not accepted:
            self.predicted_drops.append(fp)
            return
        self._fps[packet.uid] = fp
        self._drain(when)  # the live interface starts service immediately

    def flush(self, until: float) -> None:
        self._drain(until)


class ReplicaDetector(MonitorTap):
    """Shadow one router with a replica and compare output streams.

    For droptail interfaces the replica is exact; for RED pass
    ``red_seeds[(router, neighbor)]`` matching the live queue's RNG seed
    to share the randomization source (§2.3), or omit it to observe the
    nondeterminism problem first-hand.
    """

    def __init__(self, network: Network, router: str,
                 fingerprint_key: bytes = b"",
                 red_seeds: Optional[Dict[Tuple[str, str], int]] = None,
                 time_slack: float = 0.01) -> None:
        self.network = network
        self.router = router
        self.fingerprint_key = fingerprint_key
        self.time_slack = time_slack
        self.replicas: Dict[str, object] = {}
        self.actual_outputs: Dict[str, List[Tuple[int, float]]] = {}
        target = network.routers[router]
        red_seeds = red_seeds or {}
        for nbr, iface in target.interfaces.items():
            queue = iface.queue
            if isinstance(queue, REDQueue):
                seed = red_seeds.get((router, nbr))
                # No seed => deliberately divergent RNG (the §2.3
                # nondeterminism problem, observable as false alarms).
                rng = random.Random(seed if seed is not None else 0xBAD5EED)
                self.replicas[nbr] = _REDReplica(
                    iface.link.bandwidth, queue.limit_bytes, queue.params,
                    rng)
            else:
                self.replicas[nbr] = _FifoReplica(
                    iface.link.bandwidth, queue.limit_bytes)
            self.actual_outputs[nbr] = []

    def _fp(self, packet: Packet) -> int:
        return fingerprint(packet, self.fingerprint_key)

    # -- promiscuous listening --------------------------------------------------
    def on_receive(self, router: Router, from_nbr: str, packet: Packet,
                   time: float) -> None:
        if router.name != self.router or packet.dst == self.router:
            return
        out_nbr = router.next_hop(packet)
        if out_nbr is None or out_nbr not in self.replicas:
            return
        self.replicas[out_nbr].arrival(self._fp(packet), packet.size, time)

    def on_transmit(self, router: Router, out_nbr: str, packet: Packet,
                    time: float) -> None:
        if router.name != self.router:
            return
        if out_nbr in self.actual_outputs:
            self.actual_outputs[out_nbr].append((self._fp(packet), time))

    # -- comparison ----------------------------------------------------------------
    def compare(self, until: Optional[float] = None) -> List[ReplicaDiscrepancy]:
        """Diff replica predictions against the router's actual outputs.

        Only predictions whose finish time is at least ``time_slack``
        before ``until`` are demanded (later ones may still be in
        flight).
        """
        horizon = until if until is not None else self.network.sim.now
        discrepancies: List[ReplicaDiscrepancy] = []
        for nbr, replica in self.replicas.items():
            if hasattr(replica, "flush"):
                replica.flush(horizon)
            predicted = [p for p in replica.outputs
                         if p.finish_time + self.time_slack < horizon]
            actual = self.actual_outputs[nbr]
            actual_fps = [fp for fp, _ in actual]
            actual_set = set(actual_fps)
            predicted_set = {p.fp for p in predicted}
            for p in predicted:
                if p.fp not in actual_set:
                    discrepancies.append(ReplicaDiscrepancy(
                        "missing", nbr, p.fp,
                        f"replica emitted by {p.finish_time:.4f}, "
                        f"router never did"))
            for fp, when in actual:
                if when + self.time_slack >= horizon:
                    continue
                if fp not in predicted_set and fp not in {
                        d for d in getattr(replica, "predicted_drops", [])}:
                    discrepancies.append(ReplicaDiscrepancy(
                        "unexpected", nbr, fp,
                        f"router emitted at {when:.4f}, replica did not"))
            # Order check over the common fingerprints.
            common = predicted_set & actual_set
            pred_order = [p.fp for p in predicted if p.fp in common]
            act_order = [fp for fp in actual_fps if fp in common]
            if pred_order != act_order:
                discrepancies.append(ReplicaDiscrepancy(
                    "reordered", nbr, pred_order[0] if pred_order else 0,
                    "output order diverges from replica"))
        return discrepancies

    def alarmed(self, until: Optional[float] = None) -> bool:
        return bool(self.compare(until))
