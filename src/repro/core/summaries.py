"""Traffic summaries: info(r, π, τ).

A summary is what one router remembers about the traffic it forwarded
along a monitored path-segment during a validation round.  The four
conservation policies of §2.4.1 need increasingly rich summaries:

==================  ==========================================
policy              summary content
==================  ==========================================
conservation of     packet & byte counters
flow
conservation of     set of packet fingerprints (+ counters)
content
conservation of     *ordered* list of fingerprints
order
conservation of     fingerprints with timestamps
timeliness
==================  ==========================================

The :class:`SegmentMonitor` tap plays the role of Fatih's in-kernel
Traffic Summary Generator (§5.3.1): it watches transmit/receive events,
attributes packets to monitored path-segments using the routing-derived
:class:`PathOracle`, and accumulates per-round :class:`SummaryBuilder`s.

**Round attribution.**  Both ends of a link attribute a packet to the
round of the moment the packet *left the upstream router* (receivers
subtract the known link propagation delay).  This removes the in-flight
boundary ambiguity the paper folds into TV slack; residual disagreement
comes only from clock skew, which the TV threshold still covers.
"""

from __future__ import annotations

import enum
from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from repro.crypto.fingerprint import FingerprintSampler, fingerprint
from repro.dist.sync import ClockModel, RoundSchedule
from repro.net import MonitorTap, Network, Packet, Router

PathSegment = Tuple[str, ...]


class SummaryPolicy(enum.Enum):
    """Which conservation-of-traffic property a summary supports."""

    FLOW = "flow"
    CONTENT = "content"
    ORDER = "order"
    TIMELINESS = "timeliness"


@dataclass(frozen=True)
class TrafficSummary:
    """Immutable info(r, π, τ) for one direction of observation."""

    router: str
    segment: PathSegment
    round_index: int
    direction: str  # "sent" (transmit toward next hop) | "received"
    policy: SummaryPolicy
    count: int
    byte_count: int
    fingerprints: Optional[FrozenSet[int]] = None
    ordered: Optional[Tuple[int, ...]] = None
    timestamps: Optional[Tuple[Tuple[int, float], ...]] = None


class SummaryBuilder:
    """Accumulates one router's observations for one (segment, round)."""

    def __init__(self, router: str, segment: PathSegment, round_index: int,
                 direction: str, policy: SummaryPolicy) -> None:
        self.router = router
        self.segment = segment
        self.round_index = round_index
        self.direction = direction
        self.policy = policy
        self.count = 0
        self.byte_count = 0
        self._fingerprints: Set[int] = set()
        self._ordered: List[int] = []
        self._timestamps: List[Tuple[int, float]] = []

    def observe(self, fp: int, size: int, when: float) -> None:
        self.count += 1
        self.byte_count += size
        if self.policy in (SummaryPolicy.CONTENT, SummaryPolicy.ORDER,
                           SummaryPolicy.TIMELINESS):
            self._fingerprints.add(fp)
        if self.policy in (SummaryPolicy.ORDER, SummaryPolicy.TIMELINESS):
            self._ordered.append(fp)
        if self.policy is SummaryPolicy.TIMELINESS:
            self._timestamps.append((fp, when))

    def freeze(self) -> TrafficSummary:
        return TrafficSummary(
            router=self.router,
            segment=self.segment,
            round_index=self.round_index,
            direction=self.direction,
            policy=self.policy,
            count=self.count,
            byte_count=self.byte_count,
            fingerprints=(frozenset(self._fingerprints)
                          if self.policy is not SummaryPolicy.FLOW else None),
            ordered=(tuple(self._ordered)
                     if self.policy in (SummaryPolicy.ORDER,
                                        SummaryPolicy.TIMELINESS) else None),
            timestamps=(tuple(self._timestamps)
                        if self.policy is SummaryPolicy.TIMELINESS else None),
        )

    def state_size(self) -> int:
        """Rough per-round state footprint in 'units' (for overhead benches)."""
        if self.policy is SummaryPolicy.FLOW:
            return 2  # packet + byte counter
        if self.policy is SummaryPolicy.CONTENT:
            return len(self._fingerprints)
        if self.policy is SummaryPolicy.ORDER:
            return len(self._ordered)
        return 2 * len(self._timestamps)


class PathOracle:
    """Predicts the forwarding path of a packet (§4.1).

    With link-state routing and deterministic ECMP hashing, any router can
    compute the stable-state path a packet will take from its own tables.
    The oracle is built from the same path map the routing layer installed
    so monitors and forwarding agree by construction.
    """

    def __init__(self, paths: Dict[Tuple[str, str], List[str]]) -> None:
        self._paths = {pair: tuple(path) for pair, path in paths.items()}

    def path(self, src: str, dst: str) -> Optional[Tuple[str, ...]]:
        return self._paths.get((src, dst))

    def packet_path(self, packet: Packet) -> Optional[Tuple[str, ...]]:
        return self.path(packet.src, packet.dst)

    def traverses(self, packet: Packet, segment: PathSegment) -> Optional[int]:
        """Index of ``segment`` inside the packet's path, or None."""
        path = self.packet_path(packet)
        if path is None:
            return None
        seg_len = len(segment)
        for i in range(len(path) - seg_len + 1):
            if path[i:i + seg_len] == segment:
                return i
        return None

    def next_hop_after(self, packet: Packet, router: str) -> Optional[str]:
        path = self.packet_path(packet)
        if path is None or router not in path:
            return None
        idx = path.index(router)
        if idx + 1 >= len(path):
            return None
        return path[idx + 1]

    def all_paths(self) -> List[Tuple[str, ...]]:
        return list(self._paths.values())


class EcmpPathOracle(PathOracle):
    """Path prediction that honours ECMP and policy routing (§7.4.1).

    §4.1: with deterministic ECMP hashing "a router can predict the path
    that a packet will take in the stable state based on its own routing
    tables and the hash functions."  This oracle does exactly that: it
    walks the live routers' ``next_hop`` decision per packet (which folds
    in the flow-hash ECMP choice and any policy entries), so monitors
    stay correct when the forwarding tables hold multiple next hops.

    Predictions are memoized per (src, dst, flow_id); call
    :meth:`invalidate` after a routing change.
    """

    def __init__(self, network) -> None:
        super().__init__({})
        self.network = network
        self._cache: Dict[Tuple[str, str, str], Optional[Tuple[str, ...]]] = {}

    def invalidate(self) -> None:
        self._cache.clear()

    def packet_path(self, packet: Packet) -> Optional[Tuple[str, ...]]:
        key = (packet.src, packet.dst, packet.flow_id)
        if key in self._cache:
            return self._cache[key]
        path = self._trace(packet)
        self._cache[key] = path
        return path

    def path(self, src: str, dst: str) -> Optional[Tuple[str, ...]]:
        # Flow-less prediction: trace with an anonymous flow.
        probe = Packet(src=src, dst=dst, flow_id="")
        return self._trace(probe)

    def _trace(self, packet: Packet) -> Optional[Tuple[str, ...]]:
        here = packet.src
        hops = [here]
        limit = len(self.network.routers) + 1
        while here != packet.dst:
            router = self.network.routers.get(here)
            if router is None:
                return None
            nxt = router.next_hop(packet)
            if nxt is None or nxt in hops:
                return None  # no route or loop
            hops.append(nxt)
            here = nxt
            if len(hops) > limit:
                return None
        return tuple(hops)

    def traverses(self, packet: Packet, segment: PathSegment) -> Optional[int]:
        path = self.packet_path(packet)
        if path is None:
            return None
        seg_len = len(segment)
        for i in range(len(path) - seg_len + 1):
            if path[i:i + seg_len] == segment:
                return i
        return None

    def next_hop_after(self, packet: Packet, router: str) -> Optional[str]:
        path = self.packet_path(packet)
        if path is None or router not in path:
            return None
        idx = path.index(router)
        if idx + 1 >= len(path):
            return None
        return path[idx + 1]


class SegmentMonitor(MonitorTap):
    """Per-router traffic summary generator for a set of path-segments.

    For each monitored segment π = ⟨r1..rx⟩ and each member rᵢ the
    monitor records:

    * ``sent`` — packets rᵢ transmitted to rᵢ₊₁ that follow π (i < x);
    * ``received`` — packets rᵢ received from rᵢ₋₁ that follow π (i > 0).

    Only routers named in ``monitors`` actually record (Π2 needs every
    member; Πk+2 only the two ends).  A :class:`FingerprintSampler` may
    restrict recording to an agreed hash range (§5.2.1); a
    :class:`ClockModel` lets tests inject bounded clock skew into round
    attribution.
    """

    def __init__(
        self,
        network: Network,
        oracle: PathOracle,
        schedule: RoundSchedule,
        policy: SummaryPolicy = SummaryPolicy.CONTENT,
        fingerprint_key: bytes = b"",
        clock: Optional[ClockModel] = None,
        samplers: Optional[Dict[PathSegment, FingerprintSampler]] = None,
    ) -> None:
        self.network = network
        self.oracle = oracle
        self.schedule = schedule
        self.policy = policy
        self.fingerprint_key = fingerprint_key
        self.clock = clock or ClockModel(epsilon=0.0)
        self.samplers = samplers or {}
        # segment -> member -> role bookkeeping
        self._segments: Set[PathSegment] = set()
        self._monitors: Dict[PathSegment, Set[str]] = {}
        # Watch index: (router, neighbor) -> [(segment, member position)].
        # The member's index inside the segment is fixed at watch time, so
        # it is precomputed here instead of ``segment.index(...)`` per
        # packet on the tap hot path.
        self._send_watch: Dict[Tuple[str, str], List[Tuple[PathSegment, int]]] = defaultdict(list)
        self._recv_watch: Dict[Tuple[str, str], List[Tuple[PathSegment, int]]] = defaultdict(list)
        # (segment, router, direction, round) -> SummaryBuilder
        self._builders: Dict[Tuple[PathSegment, str, str, int], SummaryBuilder] = {}

    # -- configuration -------------------------------------------------------
    def watch_segment(self, segment: PathSegment,
                      monitors: Optional[Iterable[str]] = None) -> None:
        segment = tuple(segment)
        if len(segment) < 2:
            raise ValueError("a path-segment has at least two routers")
        self._segments.add(segment)
        members = set(monitors) if monitors is not None else set(segment)
        self._monitors[segment] = members
        for i, router in enumerate(segment):
            if router not in members:
                continue
            if i + 1 < len(segment):
                self._send_watch[(router, segment[i + 1])].append((segment, i))
            if i > 0:
                self._recv_watch[(router, segment[i - 1])].append((segment, i))

    @property
    def segments(self) -> Set[PathSegment]:
        return set(self._segments)

    # -- observation ----------------------------------------------------------
    def _record(self, segment: PathSegment, router: str, direction: str,
                packet: Packet, left_upstream_at: float) -> None:
        sampler = self.samplers.get(segment)
        if sampler is not None and not sampler.sampled(packet):
            return
        local = self.clock.local_time(router, left_upstream_at)
        round_index = self.schedule.round_of(local)
        key = (segment, router, direction, round_index)
        builder = self._builders.get(key)
        if builder is None:
            builder = SummaryBuilder(router, segment, round_index,
                                     direction, self.policy)
            self._builders[key] = builder
        fp = fingerprint(packet, self.fingerprint_key)
        builder.observe(fp, packet.size, local)

    @staticmethod
    def _segment_at(path: Tuple[str, ...], segment: PathSegment) -> Optional[int]:
        """First index of ``segment`` as a contiguous run of ``path``."""
        seg_len = len(segment)
        for i in range(len(path) - seg_len + 1):
            if path[i:i + seg_len] == segment:
                return i
        return None

    def on_transmit(self, router: Router, out_nbr: str, packet: Packet,
                    time: float) -> None:
        watches = self._send_watch.get((router.name, out_nbr))
        if not watches:
            return
        # One oracle lookup per packet; each watch entry carries the
        # member's precomputed position inside the segment.
        path = self.oracle.packet_path(packet)
        if path is None:
            return
        name = router.name
        for segment, pos in watches:
            idx = self._segment_at(path, segment)
            # The packet must actually be at our position of the segment.
            if idx is None or path[idx + pos] != name:
                continue
            self._record(segment, name, "sent", packet, time)

    def on_receive(self, router: Router, from_nbr: str, packet: Packet,
                   time: float) -> None:
        watches = self._recv_watch.get((router.name, from_nbr))
        if not watches:
            return
        path = self.oracle.packet_path(packet)
        if path is None:
            return
        link = self.network.topology.link(from_nbr, router.name)
        left_upstream = time - link.delay
        name = router.name
        for segment, pos in watches:
            idx = self._segment_at(path, segment)
            if idx is None or path[idx + pos] != name:
                continue
            self._record(segment, name, "received", packet, left_upstream)

    # -- retrieval -------------------------------------------------------------
    def summary(self, segment: PathSegment, router: str, direction: str,
                round_index: int) -> TrafficSummary:
        key = (tuple(segment), router, direction, round_index)
        builder = self._builders.get(key)
        if builder is None:
            builder = SummaryBuilder(router, tuple(segment), round_index,
                                     direction, self.policy)
        return builder.freeze()

    def segment_summaries(self, segment: PathSegment,
                          round_index: int) -> Dict[Tuple[str, str], TrafficSummary]:
        """All members' summaries for one round: (router, direction) keyed."""
        segment = tuple(segment)
        out: Dict[Tuple[str, str], TrafficSummary] = {}
        for i, router in enumerate(segment):
            if router not in self._monitors.get(segment, ()):
                continue
            if i + 1 < len(segment):
                out[(router, "sent")] = self.summary(segment, router, "sent",
                                                     round_index)
            if i > 0:
                out[(router, "received")] = self.summary(
                    segment, router, "received", round_index
                )
        return out

    def state_units(self, router: str) -> int:
        """Current summary state held at ``router`` (overhead benches)."""
        return sum(b.state_size() for (seg, r, d, _), b in self._builders.items()
                   if r == router)

    def drop_rounds_before(self, round_index: int) -> None:
        """Forget state for rounds older than ``round_index`` (GC)."""
        stale = [key for key in self._builders if key[3] < round_index]
        for key in stale:
            del self._builders[key]
