"""The static-threshold baseline (§6.1.1).

Every pre-χ protocol resolved congestion ambiguity the same way: count
losses per path-segment per round, and call the segment faulty when the
count (or rate) exceeds a user-defined threshold.  §6.4.3 argues this is
fundamentally unsound — a threshold low enough to catch a subtle attack
false-positives on benign congestion, and one high enough to stay quiet
under congestion grants the attacker that many free drops.

This detector consumes the same summaries as Πk+2 (upstream "sent" vs
downstream "received" per round) so the χ-vs-threshold bench compares
like for like.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.core.summaries import PathSegment, TrafficSummary


@dataclass
class ThresholdVerdict:
    segment: PathSegment
    round_index: int
    losses: int
    sent: int
    rate: float
    alarmed: bool


class StaticThresholdDetector:
    """Alarm when per-round losses exceed a fixed count or rate."""

    def __init__(self, loss_threshold: Optional[int] = None,
                 rate_threshold: Optional[float] = None) -> None:
        if loss_threshold is None and rate_threshold is None:
            raise ValueError("need a count threshold, a rate threshold, or both")
        self.loss_threshold = loss_threshold
        self.rate_threshold = rate_threshold
        self.verdicts: List[ThresholdVerdict] = []

    def observe_round(
        self,
        segment: PathSegment,
        round_index: int,
        upstream: TrafficSummary,
        downstream: TrafficSummary,
    ) -> ThresholdVerdict:
        if upstream.fingerprints is not None and downstream.fingerprints is not None:
            losses = len(upstream.fingerprints - downstream.fingerprints)
        else:
            losses = max(0, upstream.count - downstream.count)
        sent = upstream.count
        rate = losses / sent if sent else 0.0
        alarmed = False
        if self.loss_threshold is not None and losses > self.loss_threshold:
            alarmed = True
        if self.rate_threshold is not None and sent > 0 and rate > self.rate_threshold:
            alarmed = True
        verdict = ThresholdVerdict(
            segment=tuple(segment), round_index=round_index,
            losses=losses, sent=sent, rate=rate, alarmed=alarmed,
        )
        self.verdicts.append(verdict)
        return verdict

    def alarms(self) -> List[ThresholdVerdict]:
        return [v for v in self.verdicts if v.alarmed]

    def false_positive_rounds(self, malicious_rounds: set) -> List[ThresholdVerdict]:
        return [v for v in self.alarms()
                if (v.segment, v.round_index) not in malicious_rounds]
