"""The paper's primary contribution.

* traffic summaries and conservation-of-traffic validation (§2.4.1, §4.2.1)
* the failure-detector specification (§4.2.2)
* Protocol Π2 (Fig 5.1) and Protocol Πk+2 (Fig 5.3)
* Protocol χ with droptail queue prediction and RED validation (Ch. 6)
* the static-threshold baseline (§6.1.1) and the rejected traffic-modeling
  approach (§6.1.2)
* the Fatih prototype system (§5.3)

The supported surface is exactly ``__all__``; the submodules behind it
are internal.  Reaching them through the package emits a
:class:`DeprecationWarning` naming the supported import path, and the
``API001`` lint rule flags in-repo imports that bypass the package for
names it already exports.
"""

import importlib as _importlib
import warnings as _warnings

from repro.core.summaries import (
    SummaryPolicy,
    TrafficSummary,
    SummaryBuilder,
    PathOracle,
    EcmpPathOracle,
    SegmentMonitor,
)
from repro.core.validation import (
    TVResult,
    tv_flow,
    tv_content,
    tv_order,
    tv_timeliness,
    validate,
)
from repro.core.detector import (
    Suspicion,
    DetectorState,
    accuracy_report,
    completeness_report,
    segment_id,
)
from repro.core.segments import (
    all_routing_paths,
    enumerate_segments,
    monitored_segments_pi2,
    monitored_segments_pik2,
    pr_statistics,
)
from repro.core.pi2 import Pi2Config, ProtocolPi2
from repro.core.pik2 import PiK2Config, ProtocolPiK2
from repro.core.chi import ProtocolChi, ChiConfig, QueueValidator
from repro.core.static_threshold import StaticThresholdDetector
from repro.core.qmodel import (
    tcp_square_root_throughput,
    appenzeller_sigma,
    appenzeller_loss_probability,
)
from repro.core.fatih import FatihSystem, FatihConfig
from repro.core.replica import ReplicaDetector, ReplicaDiscrepancy
from repro.core.codecs import EncodedSummary, encode_summary, validate_encoded

__all__ = [
    "SummaryPolicy",
    "TrafficSummary",
    "SummaryBuilder",
    "PathOracle",
    "EcmpPathOracle",
    "SegmentMonitor",
    "TVResult",
    "tv_flow",
    "tv_content",
    "tv_order",
    "tv_timeliness",
    "validate",
    "Suspicion",
    "DetectorState",
    "accuracy_report",
    "completeness_report",
    "segment_id",
    "all_routing_paths",
    "enumerate_segments",
    "monitored_segments_pi2",
    "monitored_segments_pik2",
    "pr_statistics",
    "Pi2Config",
    "ProtocolPi2",
    "PiK2Config",
    "ProtocolPiK2",
    "ProtocolChi",
    "ChiConfig",
    "QueueValidator",
    "StaticThresholdDetector",
    "tcp_square_root_throughput",
    "appenzeller_sigma",
    "appenzeller_loss_probability",
    "FatihSystem",
    "FatihConfig",
    "ReplicaDetector",
    "ReplicaDiscrepancy",
    "EncodedSummary",
    "encode_summary",
    "validate_encoded",
]

#: Internal implementation modules, deprecated as import targets.
_INTERNAL_MODULES = (
    "chi",
    "codecs",
    "detector",
    "fatih",
    "pi2",
    "pik2",
    "qmodel",
    "replica",
    "segments",
    "static_threshold",
    "summaries",
    "validation",
)

# Drop the submodule bindings the re-exports above created on the
# package, so attribute access routes through __getattr__ (PEP 562)
# and carries a deprecation warning.
for _name in _INTERNAL_MODULES:
    globals().pop(_name, None)
del _name


def __getattr__(name: str):
    if name in _INTERNAL_MODULES:
        _warnings.warn(
            f"repro.core.{name} is an internal module; import the "
            f"supported names from the repro.core package instead "
            f"(see repro.core.__all__)",
            DeprecationWarning,
            stacklevel=2,
        )
        return _importlib.import_module(f"repro.core.{name}")
    raise AttributeError(f"module 'repro.core' has no attribute {name!r}")


def __dir__():
    return sorted(set(__all__) | set(_INTERNAL_MODULES))
