"""Fatih — the prototype system of §5.3.

Fatih glues the pieces of Fig 5.5 together on a live network:

* a **coordinator** per system that decides which path-segments to
  monitor (k = 1 by default: every 3-segment, reflecting the realistic
  attacker who controls isolated routers);
* **traffic validators** — a :class:`ProtocolPiK2` instance whose
  summaries come from the in-kernel-style :class:`SegmentMonitor`;
* the **link-state routing daemon** (:class:`LinkStateRouting`) which
  floods alerts and recomputes tables after its SPF delay + hold timers,
  excluding suspected path-segments via policy routing;
* **NTP-grade clocks** via :class:`ClockModel`.

When routing changes (post-detection), the coordinator rebuilds its path
oracle and monitored-segment set — the paper's "coordinator is kept
abreast of routing changes" (§5.3.1).

:class:`RTTMonitor` provides the measurement stream plotted in Fig 5.7.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from repro.core.detector import Suspicion
from repro.core.pik2 import PiK2Config, ProtocolPiK2
from repro.core.segments import monitored_segments_pik2
from repro.core.summaries import PathOracle, SegmentMonitor, SummaryPolicy
from repro.crypto.keys import KeyInfrastructure
from repro.dist.sync import ClockModel, RoundSchedule
from repro.net import LinkStateRouting, Network, Packet, PacketKind
from repro.net.routing import compute_all_paths


@dataclass
class FatihConfig:
    k: int = 1
    tau: float = 5.0  # validation round length (§5.3.1: 5 s)
    threshold: int = 2  # benign loss allowance per segment-round
    settle_delay: float = 0.3
    exchange_timeout: float = 1.0
    policy: SummaryPolicy = SummaryPolicy.CONTENT
    rebuild_grace: float = 20.0  # wait for reroute before re-arming monitors


class FatihSystem:
    """Coordinator + validators + routing response on one network."""

    def __init__(
        self,
        network: Network,
        routing: LinkStateRouting,
        keys: Optional[KeyInfrastructure] = None,
        config: Optional[FatihConfig] = None,
        clock: Optional[ClockModel] = None,
    ) -> None:
        self.network = network
        self.routing = routing
        self.keys = keys or KeyInfrastructure()
        self.config = config or FatihConfig()
        self.clock = clock or ClockModel(epsilon=0.002)
        self.protocol: Optional[ProtocolPiK2] = None
        self.monitor: Optional[SegmentMonitor] = None
        self.suspicions: List[Suspicion] = []
        self.detection_times: List[Tuple[float, Suspicion]] = []
        self._rebuild_pending = False
        self._monitor_until: Optional[float] = None
        self._schedule: Optional[RoundSchedule] = None

    # -- lifecycle --------------------------------------------------------------
    def start_monitoring(self, at: float, until: float) -> None:
        """Arm validators from ``at`` (post-convergence) to ``until``."""
        self._monitor_until = until
        self.network.sim.schedule_at(at, self._arm, at, until)

    def _arm(self, start: float, until: float) -> None:
        suspected = {tuple(s.segment) for s in self.suspicions}
        paths = compute_all_paths(self.network.topology, suspected)
        oracle = PathOracle(paths)
        schedule = RoundSchedule(tau=self.config.tau, start=start)
        self._schedule = schedule
        monitor = SegmentMonitor(
            self.network, oracle, schedule,
            policy=self.config.policy, clock=self.clock,
        )
        segments_by_router = monitored_segments_pik2(
            [tuple(p) for p in paths.values()], self.config.k
        )
        segments: Set[Tuple[str, ...]] = set()
        for segs in segments_by_router.values():
            segments.update(segs)
        # Never re-monitor segments already excluded from the fabric.
        segments = {s for s in segments if s not in suspected}
        protocol = ProtocolPiK2(
            self.network, monitor, segments, self.keys, schedule,
            config=PiK2Config(
                k=self.config.k,
                threshold=self.config.threshold,
                settle_delay=self.config.settle_delay,
                exchange_timeout=self.config.exchange_timeout,
            ),
            on_suspicion=self._on_suspicion,
        )
        self.network.add_tap(monitor)
        if self.monitor is not None:
            self.network.remove_tap(self.monitor)
        self.monitor = monitor
        self.protocol = protocol
        n_rounds = max(0, int((until - start) / self.config.tau) - 1)
        protocol.schedule_rounds(0, n_rounds)

    # -- detection & response ------------------------------------------------------
    def _on_suspicion(self, suspicion: Suspicion) -> None:
        now = self.network.sim.now
        self.suspicions.append(suspicion)
        self.detection_times.append((now, suspicion))
        # Alert the routing daemon (flooded network-wide, Fig 5.5).
        self.routing.announce_suspicion(
            suspicion.suspected_by, suspicion.segment, suspicion.interval
        )
        # The response is about to reroute traffic, so this protocol
        # instance's oracle is stale: disarm future rounds and re-arm a
        # fresh instance against the post-response topology.
        if self.protocol is not None:
            self.protocol.stop()
        if not self._rebuild_pending and self._monitor_until is not None:
            self._rebuild_pending = True
            restart = now + self.config.rebuild_grace
            if restart < self._monitor_until:
                self.network.sim.schedule_at(restart, self._rearm, restart)

    def _rearm(self, start: float) -> None:
        self._rebuild_pending = False
        if self.protocol is not None:
            # Drop the old instance: its oracle predates the reroute.
            self.protocol = None
        self._arm(start, self._monitor_until or start)

    # -- reporting --------------------------------------------------------------------
    def first_detection_time(self) -> Optional[float]:
        return self.detection_times[0][0] if self.detection_times else None

    def suspected_segments(self) -> Set[Tuple[str, ...]]:
        return {tuple(s.segment) for s in self.suspicions}


class RTTMonitor:
    """Round-trip probes between two routers (the Fig 5.7 latency trace)."""

    _ids = itertools.count(1)

    def __init__(self, network: Network, src: str, dst: str,
                 interval: float = 1.0, start: float = 0.0,
                 stop: Optional[float] = None) -> None:
        self.network = network
        self.src = src
        self.dst = dst
        self.interval = interval
        self.stop = stop
        self.flow_id = f"rtt-{next(self._ids)}"
        self.samples: List[Tuple[float, float]] = []  # (send time, rtt)
        self.lost = 0
        self._outstanding: Dict[int, float] = {}
        self._seq = 0
        network.routers[dst].register_flow(self.flow_id, self._echo)
        network.routers[src].register_flow(self.flow_id + ":back", self._pong)
        network.sim.schedule_at(start, self._probe)

    def _probe(self) -> None:
        now = self.network.sim.now
        if self.stop is not None and now >= self.stop:
            return
        seq = self._seq
        self._seq += 1
        self._outstanding[seq] = now
        probe = Packet(src=self.src, dst=self.dst, size=100,
                       kind=PacketKind.PROBE, flow_id=self.flow_id, seq=seq,
                       payload=b"ping")
        self.network.routers[self.src].originate(probe)
        # Probes unanswered after 5 intervals count as lost.
        self.network.sim.schedule(5 * self.interval, self._expire, seq)
        self.network.sim.schedule(self.interval, self._probe)

    def _echo(self, packet: Packet, now: float) -> None:
        pong = Packet(src=self.dst, dst=self.src, size=100,
                      kind=PacketKind.PROBE,
                      flow_id=self.flow_id + ":back", seq=packet.seq,
                      payload=b"pong")
        self.network.routers[self.dst].originate(pong)

    def _pong(self, packet: Packet, now: float) -> None:
        sent = self._outstanding.pop(packet.seq, None)
        if sent is not None:
            self.samples.append((sent, now - sent))

    def _expire(self, seq: int) -> None:
        if self._outstanding.pop(seq, None) is not None:
            self.lost += 1

    def rtt_series(self) -> List[Tuple[float, float]]:
        return list(self.samples)

    def mean_rtt(self, since: float = 0.0, until: float = float("inf")) -> Optional[float]:
        window = [rtt for t, rtt in self.samples if since <= t < until]
        if not window:
            return None
        return sum(window) / len(window)
