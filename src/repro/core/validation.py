"""Traffic validation predicates TV(π, info(ri), info(rj)) — §4.2.1.

Each conservation policy gets a predicate comparing an upstream summary
(what ri claims to have sent along π) against a downstream one (what rj
observed).  Real networks lose a little traffic benignly, so every
predicate takes a ``threshold``: the acceptable discrepancy below which
behaviour is deemed normal.  (Protocol χ exists precisely because picking
this threshold statically is unsound; see :mod:`repro.core.chi`.)

Thresholds are expressed in packets.  ``validate`` dispatches on the
summaries' policy.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.core.summaries import SummaryPolicy, TrafficSummary


@dataclass
class TVResult:
    """Outcome of one traffic validation."""

    ok: bool
    discrepancy: float
    detail: str = ""
    missing: int = 0  # packets upstream saw but downstream did not
    extra: int = 0  # packets downstream saw but upstream did not (fabricated/modified)
    reordered: int = 0
    delayed: int = 0

    def __bool__(self) -> bool:  # pragma: no cover - convenience
        return self.ok


def _check_policies(upstream: TrafficSummary, downstream: TrafficSummary,
                    *allowed: SummaryPolicy) -> None:
    if upstream.policy is not downstream.policy:
        raise ValueError("summaries use different policies")
    if upstream.policy not in allowed:
        raise ValueError(
            f"policy {upstream.policy} unsupported by this predicate"
        )


def tv_flow(upstream: TrafficSummary, downstream: TrafficSummary,
            threshold: int = 0) -> TVResult:
    """Conservation of flow: packet counts must agree within threshold.

    Fragile (a router that fabricates can fudge the count, §2.4.1) but
    nearly free — the WATCHERS policy.
    """
    missing = max(0, upstream.count - downstream.count)
    extra = max(0, downstream.count - upstream.count)
    discrepancy = abs(upstream.count - downstream.count)
    return TVResult(
        ok=discrepancy <= threshold,
        discrepancy=discrepancy,
        missing=missing,
        extra=extra,
        detail=f"counts {upstream.count} vs {downstream.count}",
    )


def tv_content(upstream: TrafficSummary, downstream: TrafficSummary,
               threshold: int = 0) -> TVResult:
    """Conservation of content: fingerprint sets must agree.

    Detects loss, modification, fabrication and misrouting: a modified
    packet appears as one missing + one extra fingerprint.
    """
    _check_policies(upstream, downstream, SummaryPolicy.CONTENT,
                    SummaryPolicy.ORDER, SummaryPolicy.TIMELINESS)
    up = upstream.fingerprints or frozenset()
    down = downstream.fingerprints or frozenset()
    missing = len(up - down)
    extra = len(down - up)
    discrepancy = missing + extra
    return TVResult(
        ok=discrepancy <= threshold,
        discrepancy=discrepancy,
        missing=missing,
        extra=extra,
        detail=f"|Δ|={discrepancy} (missing={missing}, extra={extra})",
    )


def _longest_increasing_subsequence_length(seq: List[int]) -> int:
    tails: List[int] = []
    for value in seq:
        pos = bisect.bisect_left(tails, value)
        if pos == len(tails):
            tails.append(value)
        else:
            tails[pos] = value
    return len(tails)


def reorder_metric(sent: Tuple[int, ...], received: Tuple[int, ...]) -> int:
    """|S| − |ℓ| of §2.2.1: common packets minus their longest common
    subsequence.  Fingerprints are unique, so the LCS of the two orders
    equals the longest increasing subsequence of the received packets'
    send positions — computable in O(n log n)."""
    send_pos = {fp: i for i, fp in enumerate(sent)}
    positions = [send_pos[fp] for fp in received if fp in send_pos]
    if not positions:
        return 0
    return len(positions) - _longest_increasing_subsequence_length(positions)


def tv_order(upstream: TrafficSummary, downstream: TrafficSummary,
             content_threshold: int = 0, reorder_threshold: int = 0) -> TVResult:
    """Conservation of order: content must agree *and* order be preserved."""
    _check_policies(upstream, downstream, SummaryPolicy.ORDER,
                    SummaryPolicy.TIMELINESS)
    base = tv_content(upstream, downstream, content_threshold)
    reordered = reorder_metric(upstream.ordered or (), downstream.ordered or ())
    ok = base.ok and reordered <= reorder_threshold
    return TVResult(
        ok=ok,
        discrepancy=base.discrepancy + reordered,
        missing=base.missing,
        extra=base.extra,
        reordered=reordered,
        detail=f"{base.detail}; reordered={reordered}",
    )


def tv_timeliness(upstream: TrafficSummary, downstream: TrafficSummary,
                  max_delay: float, content_threshold: int = 0,
                  delayed_threshold: int = 0) -> TVResult:
    """Conservation of timeliness: per-packet transit within ``max_delay``.

    ``max_delay`` covers legitimate forwarding latency between the two
    observation points (propagation + queueing allowance + clock skew).
    """
    _check_policies(upstream, downstream, SummaryPolicy.TIMELINESS)
    base = tv_content(upstream, downstream, content_threshold)
    sent_at: Dict[int, float] = dict(upstream.timestamps or ())
    delayed = 0
    worst = 0.0
    for fp, t_arrive in (downstream.timestamps or ()):
        t_sent = sent_at.get(fp)
        if t_sent is None:
            continue
        transit = t_arrive - t_sent
        worst = max(worst, transit)
        if transit > max_delay:
            delayed += 1
    ok = base.ok and delayed <= delayed_threshold
    return TVResult(
        ok=ok,
        discrepancy=base.discrepancy + delayed,
        missing=base.missing,
        extra=base.extra,
        delayed=delayed,
        detail=f"{base.detail}; delayed={delayed} (worst={worst:.4f}s)",
    )


def validate(upstream: TrafficSummary, downstream: TrafficSummary,
             threshold: int = 0, reorder_threshold: int = 0,
             max_delay: Optional[float] = None) -> TVResult:
    """Dispatch to the right predicate for the summaries' policy."""
    policy = upstream.policy
    if policy is SummaryPolicy.FLOW:
        return tv_flow(upstream, downstream, threshold)
    if policy is SummaryPolicy.CONTENT:
        return tv_content(upstream, downstream, threshold)
    if policy is SummaryPolicy.ORDER:
        return tv_order(upstream, downstream, threshold, reorder_threshold)
    if policy is SummaryPolicy.TIMELINESS:
        if max_delay is None:
            raise ValueError("timeliness validation needs max_delay")
        return tv_timeliness(upstream, downstream, max_delay, threshold)
    raise ValueError(f"unknown policy {policy!r}")
