"""Path-segment enumeration and the monitored sets P_r (§5.1, §5.2).

Under AdjacentFault(k), a protocol must monitor segments long enough that
any run of ≤k faulty routers is flanked by correct ones — length k+2.

* Π2: every router monitors **all** (k+2)-segments it belongs to, plus
  shorter x-segments (3 ≤ x < k+2) whose ends are the path's terminal
  routers (whole short paths).  |P_r| drives Fig 5.2.
* Πk+2: a router monitors the x-segments (3 ≤ x ≤ k+2) **of which it is
  an end** — much smaller; |P_r| drives Fig 5.4.

Segments are derived from the actual routing paths (a link-state protocol
chooses one path per pair, which is why the empirical counts are far
below the O(R^{k+1}) worst case — §5.1.1).
"""

from __future__ import annotations

import heapq
import statistics
from collections import defaultdict
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.net import Topology

PathSegment = Tuple[str, ...]


def all_routing_paths(topology: Topology) -> List[Tuple[str, ...]]:
    """One deterministic shortest path per ordered router pair.

    Dijkstra with lexicographic tie-breaking, mirroring a link-state
    protocol that picks a single stable path per destination.
    """
    paths: List[Tuple[str, ...]] = []
    for src in topology.routers:
        tree = _shortest_path_tree(topology, src)
        for dst in topology.routers:
            if dst == src:
                continue
            path = _extract_path(tree, src, dst)
            if path is not None:
                paths.append(path)
    return paths


def _shortest_path_tree(topology: Topology, src: str) -> Dict[str, Optional[str]]:
    dist: Dict[str, float] = {src: 0.0}
    prev: Dict[str, Optional[str]] = {src: None}
    # Heap entries carry the predecessor name so ties break lexicographically
    # on (cost, predecessor, node), deterministically.
    heap: List[Tuple[float, str, str]] = [(0.0, "", src)]
    done: Set[str] = set()
    while heap:
        d, via, node = heapq.heappop(heap)
        if node in done:
            continue
        done.add(node)
        for nbr in sorted(topology.neighbors(node)):
            if nbr in done:
                continue
            cost = d + topology.link(node, nbr).metric
            old = dist.get(nbr)
            if old is None or cost < old - 1e-12 or (
                abs(cost - old) <= 1e-12 and node < (prev.get(nbr) or "~")
            ):
                dist[nbr] = cost
                prev[nbr] = node
                heapq.heappush(heap, (cost, node, nbr))
    return prev


def _extract_path(prev: Dict[str, Optional[str]], src: str,
                  dst: str) -> Optional[Tuple[str, ...]]:
    if dst not in prev:
        return None
    path = [dst]
    while path[-1] != src:
        parent = prev[path[-1]]
        if parent is None:
            break
        path.append(parent)
    path.reverse()
    return tuple(path) if path[0] == src else None


def enumerate_segments(path: Tuple[str, ...], length: int) -> Iterable[PathSegment]:
    """All contiguous ``length``-subsequences of ``path``."""
    for i in range(len(path) - length + 1):
        yield tuple(path[i:i + length])


def monitored_segments_pi2(
    paths: Iterable[Tuple[str, ...]], k: int
) -> Dict[str, Set[PathSegment]]:
    """P_r for every router under Π2 and AdjacentFault(k).

    Every member of a monitored segment participates, so a segment lands
    in P_r for each of its routers.
    """
    if k < 1:
        raise ValueError("AdjacentFault(k) needs k >= 1")
    x = k + 2
    by_router: Dict[str, Set[PathSegment]] = defaultdict(set)
    for path in sorted(set(paths)):
        if len(path) >= x:
            for segment in enumerate_segments(path, x):
                for router in segment:
                    by_router[router].add(segment)
        elif len(path) >= 3:
            # Whole short paths: both ends are terminal routers.
            segment = tuple(path)
            for router in segment:
                by_router[router].add(segment)
    return dict(by_router)


def monitored_segments_pik2(
    paths: Iterable[Tuple[str, ...]], k: int
) -> Dict[str, Set[PathSegment]]:
    """P_r for every router under Πk+2 and AdjacentFault(k).

    A router monitors the x-segments (3 ≤ x ≤ k+2) of which it is an
    *end*; both ends hold the segment in their P_r (§5.2).
    """
    if k < 1:
        raise ValueError("AdjacentFault(k) needs k >= 1")
    by_router: Dict[str, Set[PathSegment]] = defaultdict(set)
    for path in sorted(set(paths)):
        for x in range(3, k + 3):
            for segment in enumerate_segments(path, x):
                by_router[segment[0]].add(segment)
                by_router[segment[-1]].add(segment)
    return dict(by_router)


def pr_statistics(by_router: Dict[str, Set[PathSegment]],
                  all_routers: Optional[Iterable[str]] = None
                  ) -> Dict[str, float]:
    """max / mean / median of |P_r| — the series plotted in Figs 5.2/5.4."""
    if all_routers is None:
        sizes = [len(s) for s in by_router.values()]
    else:
        sizes = [len(by_router.get(r, ())) for r in all_routers]
    if not sizes:
        return {"max": 0, "mean": 0.0, "median": 0.0}
    return {
        "max": float(max(sizes)),
        "mean": float(sum(sizes) / len(sizes)),
        "median": float(statistics.median(sizes)),
    }


def watchers_counter_count(topology: Topology) -> Dict[str, int]:
    """Counters per router under WATCHERS: 7 per (neighbor, destination).

    §5.1.1's comparison point: 7 × degree × N counters.
    """
    n = len(topology)
    return {r: 7 * topology.degree(r) * n for r in topology.routers}


def pik2_counter_count(by_router: Dict[str, Set[PathSegment]],
                       topology: Topology) -> Dict[str, int]:
    """Conservation-of-flow counters under Πk+2: two per monitored segment
    (one per direction, §5.2.1)."""
    return {r: 2 * len(by_router.get(r, ())) for r in topology.routers}
