"""Protocol Π2 — complete, accurate, precision 2 (Fig 5.1).

Every router monitors every (k+2)-path-segment it belongs to.  At the end
of each agreed round τ the members of each segment run *consensus* on
their digitally signed traffic summaries, so that all correct members
hold the same vector of values; each member then evaluates TV pairwise
along the segment and suspects the 2-segment ⟨rᵢ, rᵢ₊₁⟩ wherever
validation fails, reliably broadcasting the signed evidence network-wide.

Two pairwise checks per adjacent pair implement TV:

* **link check** — what rᵢ claims to have sent to rᵢ₊₁ vs what rᵢ₊₁
  claims to have received: catches in-transit tampering and lying about
  the link.
* **transit check** — what rᵢ received from rᵢ₋₁ along π vs what it sent
  on to rᵢ₊₁: catches a router that truthfully reports while dropping
  inside itself (the threshold absorbs its benign congestion drops).

A member that is *silent* or *equivocates* in consensus is protocol
faulty with cryptographic/synchrony proof; the adjacent 2-segments are
suspected, preserving 2-accuracy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Tuple

from repro.core.detector import DetectorState, Suspicion
from repro.core.summaries import PathSegment, SegmentMonitor, TrafficSummary
from repro.core.validation import TVResult, validate
from repro.crypto.keys import KeyInfrastructure
from repro.dist.broadcast import robust_flood
from repro.dist.consensus import Equivocator, FaultyBehavior, Silent, SignedConsensus
from repro.dist.sync import RoundSchedule
from repro.net import Network

# A reporter maps the honest summary pair to what the router actually
# claims: the honest value, an altered one, a pair (equivocation), or
# None (silence).  Honest routers use the identity.
Reporter = Callable[[Tuple[TrafficSummary, TrafficSummary]], object]


def honest_reporter(value: Tuple[TrafficSummary, TrafficSummary]) -> object:
    return value


@dataclass
class Pi2Config:
    k: int = 1
    threshold: int = 0
    reorder_threshold: int = 0
    settle_delay: float = 0.2  # wait after round end for in-flight packets
    max_delay: Optional[float] = None  # for timeliness policy


class ProtocolPi2:
    """Distributed Π2 over a simulated network."""

    def __init__(
        self,
        network: Network,
        monitor: SegmentMonitor,
        segments: Iterable[PathSegment],
        keys: KeyInfrastructure,
        schedule: RoundSchedule,
        config: Optional[Pi2Config] = None,
        reporters: Optional[Dict[str, Reporter]] = None,
        on_suspicion: Optional[Callable[[Suspicion], None]] = None,
    ) -> None:
        self.network = network
        self.monitor = monitor
        self.keys = keys
        self.schedule = schedule
        self.config = config or Pi2Config()
        self.reporters = reporters or {}
        self.on_suspicion = on_suspicion
        self.segments: List[PathSegment] = sorted(set(tuple(s) for s in segments))
        for segment in self.segments:
            monitor.watch_segment(segment)  # every member records
        self.states: Dict[str, DetectorState] = {
            name: DetectorState(name) for name in network.topology.routers
        }
        self.tv_log: List[Tuple[int, PathSegment, str, TVResult]] = []

    # -- scheduling ------------------------------------------------------------
    def schedule_rounds(self, first_round: int, last_round: int) -> None:
        for r in range(first_round, last_round + 1):
            when = self.schedule.round_end(r) + self.config.settle_delay
            self.network.sim.schedule_at(when, self.evaluate_round, r)

    # -- one round --------------------------------------------------------------
    def evaluate_round(self, round_index: int) -> None:
        for segment in self.segments:
            self._evaluate_segment(segment, round_index)

    def _evaluate_segment(self, segment: PathSegment, round_index: int) -> None:
        members = list(segment)
        interval = self.schedule.interval(round_index)
        # 1. Each member produces its (received, sent) summary pair; the
        #    reporter hook models protocol-faulty claims.
        inputs: Dict[str, object] = {}
        behaviors: Dict[str, FaultyBehavior] = {}
        for i, member in enumerate(members):
            received = self.monitor.summary(segment, member, "received",
                                            round_index)
            sent = self.monitor.summary(segment, member, "sent", round_index)
            honest = (received, sent)
            claim = self.reporters.get(member, honest_reporter)(honest)
            if claim is None:
                behaviors[member] = Silent()
            elif isinstance(claim, tuple) and len(claim) == 2 and all(
                isinstance(c, tuple) for c in claim
            ):
                # Pair of two distinct claims => equivocation.
                behaviors[member] = Equivocator(claim[0], claim[1])
            else:
                inputs[member] = claim

        # 2. Consensus on the signed claims (f = members that could be bad).
        consensus = SignedConsensus(members, self.keys,
                                    max_faults=max(1, len(members) - 2))
        results = consensus.run(inputs, faulty=behaviors)

        # 3. Every correct member evaluates TV on the agreed vector.
        decided = next(iter(results.values()), None)
        if decided is None:
            return
        agreed: Dict[str, Optional[Tuple[TrafficSummary, TrafficSummary]]] = {}
        for member in members:
            value = decided.values.get(member)
            agreed[member] = value if isinstance(value, tuple) else None

        suspicions: List[Suspicion] = []
        for idx, member in enumerate(members):
            if agreed[member] is not None:
                continue
            # Silent or equivocating: protocol faulty with proof.  Suspect
            # the adjacent 2-segments (precision 2 preserved; each contains
            # the provably faulty member).
            for nbr_idx in (idx - 1, idx + 1):
                if 0 <= nbr_idx < len(members):
                    seg2 = ((members[nbr_idx], member) if nbr_idx < idx
                            else (member, members[nbr_idx]))
                    suspicions.append(Suspicion(
                        segment=seg2, interval=interval,
                        suspected_by=member,
                        reason=f"protocol-faulty {member} in consensus",
                    ))
        self._finish_segment(segment, round_index, members, interval,
                             agreed, suspicions)

    def _finish_segment(self, segment, round_index, members, interval,
                        agreed, suspicions) -> None:
        # link + transit checks over the agreed vector
        for i in range(len(members) - 1):
            a, b = members[i], members[i + 1]
            if agreed[a] is None or agreed[b] is None:
                continue
            sent_a = agreed[a][1]
            recv_b = agreed[b][0]
            result = self._tv(sent_a, recv_b)
            self.tv_log.append((round_index, segment, f"link {a}->{b}", result))
            if not result.ok:
                suspicions.append(Suspicion(
                    segment=(a, b), interval=interval, suspected_by=a,
                    reason=f"link TV failed: {result.detail}",
                ))
        for i in range(1, len(members) - 1):
            member = members[i]
            if agreed[member] is None:
                continue
            received, sent = agreed[member]
            result = self._tv(received, sent)
            self.tv_log.append((round_index, segment,
                                f"transit {member}", result))
            if not result.ok:
                suspicions.append(Suspicion(
                    segment=(member, members[i + 1]), interval=interval,
                    suspected_by=member,
                    reason=f"transit TV failed at {member}: {result.detail}",
                ))

        if not suspicions:
            return
        # 4. All correct members adopt the suspicions; evidence is
        #    reliably broadcast so every correct router in the network
        #    converges on the same detections (strong completeness).
        compromised = {name for name, r in self.network.routers.items()
                       if r.compromise is not None}
        unique = {(s.segment, s.reason): s for s in suspicions}
        for suspicion in unique.values():
            # Every correct member adopts the suspicion and floods the
            # signed evidence.  Flooding from *each* member matters: a
            # protocol-faulty router may suppress relays, and only the
            # members on its far side can reach the routers there.
            for member in members:
                if member in compromised:
                    continue
                self.states[member].suspect(suspicion)
                robust_flood(
                    self.network, member, suspicion,
                    on_deliver=lambda at, msg, t: self.states[at].suspect(msg),
                )
            if self.on_suspicion is not None:
                self.on_suspicion(suspicion)

    def _tv(self, upstream: TrafficSummary, downstream: TrafficSummary) -> TVResult:
        return validate(
            upstream, downstream,
            threshold=self.config.threshold,
            reorder_threshold=self.config.reorder_threshold,
            max_delay=self.config.max_delay,
        )
