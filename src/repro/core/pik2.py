"""Protocol Πk+2 — complete, accurate, precision k+2 (Fig 5.3).

Only the *ends* of each monitored x-path-segment (3 ≤ x ≤ k+2) validate.
At the end of each round the two ends exchange digitally signed summaries
**through the monitored path-segment itself** within a timeout µ; if the
exchange fails (a protocol-faulty intermediate suppressed it) or TV over
the exchanged summaries fails, the end suspects the whole segment and
reliably broadcasts the signed suspicion [π]_r.

Because intermediate routers neither record nor relay summaries, the
protocol is cheap (Fig 5.4) and admits *secret sampling*: the ends agree
on a keyed hash range unknown to intermediaries, so a faulty router
cannot confine its attack to unmonitored packets (§5.2.1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Tuple

from repro.core.detector import DetectorState, Suspicion
from repro.core.codecs import EncodedSummary, encode_summary, validate_encoded
from repro.core.summaries import (
    PathSegment,
    SegmentMonitor,
    SummaryPolicy,
    TrafficSummary,
)
from repro.core.validation import TVResult, validate
from repro.crypto.keys import KeyInfrastructure
from repro.crypto.signatures import Signed
from repro.dist.broadcast import robust_flood
from repro.dist.sync import RoundSchedule
from repro.net import Network


@dataclass
class PiK2Config:
    k: int = 1
    threshold: int = 0
    reorder_threshold: int = 0
    settle_delay: float = 0.2
    exchange_timeout: float = 1.0  # µ
    max_delay: Optional[float] = None
    # How content summaries travel (§2.4.1): "full" fingerprints,
    # "polynomial" set reconciliation (exact up to codec_max_diff), or
    # "bloom" filters (approximate, constant size).
    codec: str = "full"
    codec_max_diff: int = 16
    codec_bloom_bits: int = 2048
    codec_bloom_hashes: int = 4


# Protocol-faulty claim hook for an *end* router: maps the honest summary
# to what it actually sends (or None to stay silent).
EndReporter = Callable[[TrafficSummary], Optional[TrafficSummary]]


class ProtocolPiK2:
    """Distributed Πk+2 over a simulated network."""

    def __init__(
        self,
        network: Network,
        monitor: SegmentMonitor,
        segments: Iterable[PathSegment],
        keys: KeyInfrastructure,
        schedule: RoundSchedule,
        config: Optional[PiK2Config] = None,
        reporters: Optional[Dict[str, EndReporter]] = None,
        on_suspicion: Optional[Callable[[Suspicion], None]] = None,
    ) -> None:
        self.network = network
        self.monitor = monitor
        self.keys = keys
        self.schedule = schedule
        self.config = config or PiK2Config()
        self.reporters = reporters or {}
        self.on_suspicion = on_suspicion
        self.segments = sorted(set(tuple(s) for s in segments))
        for segment in self.segments:
            # Only the two ends record traffic for this segment.
            monitor.watch_segment(segment,
                                  monitors=(segment[0], segment[-1]))
        self.states: Dict[str, DetectorState] = {
            name: DetectorState(name) for name in network.topology.routers
        }
        self.tv_log: List[Tuple[int, PathSegment, TVResult]] = []
        self.stopped = False
        self.exchange_bytes = 0  # summary bandwidth (ablation metric)
        # (segment, round) -> received remote summary at the sink end
        self._mailbox: Dict[Tuple[PathSegment, int, str], TrafficSummary] = {}

    def schedule_rounds(self, first_round: int, last_round: int) -> None:
        for r in range(first_round, last_round + 1):
            when = self.schedule.round_end(r) + self.config.settle_delay
            self.network.sim.schedule_at(when, self._start_exchanges, r)

    # -- exchange phase -----------------------------------------------------
    def stop(self) -> None:
        """Disarm future rounds (in-flight conclusions still finish).

        Used after a detection: the response reroutes traffic, so this
        instance's path oracle is stale and further rounds would
        misattribute traffic during the transient (§4.1).
        """
        self.stopped = True

    def _start_exchanges(self, round_index: int) -> None:
        if self.stopped:
            return
        for segment in self.segments:
            self._exchange_segment(segment, round_index)

    def _exchange_segment(self, segment: PathSegment, round_index: int) -> None:
        source, sink = segment[0], segment[-1]
        # The source sends its "sent into π" summary to the sink, through π.
        honest = self.monitor.summary(segment, source, "sent", round_index)
        claim = self.reporters.get(source, lambda s: s)(honest)
        if claim is not None:
            if (self.config.codec != "full"
                    and isinstance(claim, TrafficSummary)
                    and claim.policy is SummaryPolicy.CONTENT):
                claim = encode_summary(
                    claim, codec=self.config.codec,
                    max_diff=self.config.codec_max_diff,
                    bloom_bits=self.config.codec_bloom_bits,
                    bloom_hashes=self.config.codec_bloom_hashes,
                )
                self.exchange_bytes += claim.wire_bytes
            elif isinstance(claim, TrafficSummary):
                fps = claim.fingerprints
                self.exchange_bytes += 16 + 8 * (len(fps) if fps else 0)
            signed = Signed.sign(claim, source, self.keys.signing_key(source))
            self.network.send_control(
                source, sink, (segment, round_index, signed),
                on_deliver=self._deliver_summary,
                via_path=segment,
            )
        # Timeout at the sink: if nothing verifiable arrived by µ, suspect.
        self.network.sim.schedule(
            self.config.exchange_timeout, self._conclude, segment, round_index
        )

    def _deliver_summary(self, message) -> None:
        segment, round_index, signed = message
        sink = segment[-1]
        if not isinstance(signed, Signed):
            return
        if not signed.verify(self.keys.signing_key(signed.signer)):
            return  # tampered in transit; timeout will fire
        if signed.signer != segment[0]:
            return
        self._mailbox[(tuple(segment), round_index, sink)] = signed.payload

    def _conclude(self, segment: PathSegment, round_index: int) -> None:
        sink = segment[-1]
        # A compromised sink is a faulty *validator*: it simply stays
        # silent.  This is why AdjacentFault(k) forces monitored segments
        # of length k+2 — only then is some segment spanning the faulty
        # run guaranteed two correct ends (§5.2, Appendix B).
        if self.network.routers[sink].compromise is not None:
            self._mailbox.pop((tuple(segment), round_index, sink), None)
            return
        interval = self.schedule.interval(round_index)
        remote = self._mailbox.pop((tuple(segment), round_index, sink), None)
        if remote is None:
            self._suspect(segment, interval, sink,
                          "summary exchange timed out")
            return
        local = self.monitor.summary(segment, sink, "received", round_index)
        if isinstance(remote, EncodedSummary):
            result = validate_encoded(
                remote, local, threshold=self.config.threshold,
                bloom_bits=self.config.codec_bloom_bits,
                bloom_hashes=self.config.codec_bloom_hashes,
            )
        else:
            result = validate(
                remote, local,
                threshold=self.config.threshold,
                reorder_threshold=self.config.reorder_threshold,
                max_delay=self.config.max_delay,
            )
        self.tv_log.append((round_index, segment, result))
        if not result.ok:
            self._suspect(segment, interval, sink,
                          f"TV failed: {result.detail}")

    def _suspect(self, segment: PathSegment, interval, origin: str,
                 reason: str) -> None:
        suspicion = Suspicion(segment=tuple(segment), interval=interval,
                              suspected_by=origin, reason=reason)
        compromised = {name for name, r in self.network.routers.items()
                       if r.compromise is not None}
        if origin not in compromised:
            self.states[origin].suspect(suspicion)
        # Strong completeness: the signed suspicion is reliably broadcast;
        # every correct router adopts it (§5.2: announce [π]_r).
        robust_flood(
            self.network, origin, suspicion,
            on_deliver=lambda at, msg, t: self.states[at].suspect(msg),
        )
        if self.on_suspicion is not None:
            self.on_suspicion(suspicion)
