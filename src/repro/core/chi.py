"""Protocol χ — detecting malicious packet losses (Chapter 6).

χ validates each output-interface queue Q of each router r: the upstream
neighbours record the traffic they feed into Q (fingerprint, size,
predicted entry time), the downstream router r_d records what leaves Q,
and r_d *simulates* Q from those records (Fig 6.1, §6.2.1).  A packet
that disappears when the predicted queue had room is attributed to
malice, with a confidence derived from the learned distribution of the
prediction error X = q_act − q_pred ≈ N(µ, σ):

* **single-packet test** (Fig 6.2):
  c_single = Φ((q_limit − q_pred(ts) − ps − µ)/σ); alarm if ≥ th_single.
* **combined test** (Z-test over the round's n losses):
  z₁ = (q_limit − q̄_pred − p̄s − µ)/(σ/√n); alarm if Φ(z₁) ≥ th_combined.

For RED queues the drop decision is randomized, so exact replay is
impossible; §6.5.2 instead reasons about the drop *probability* each
packet faced (Fig 6.10).  :class:`REDQueueValidator` reconstructs the
average-queue trajectory, derives every packet's RED drop probability,
and applies three tests: a *definite* test (a packet dropped while the
average queue was below min_th and the buffer had room cannot be a RED
drop), an *aggregate* Poisson-binomial Z-test (observed vs expected drop
count), and a *per-flow* test with Bonferroni correction that exposes
flow-selective attacks hiding inside a plausible total.
"""

from __future__ import annotations

import math
from bisect import bisect_right
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.core.detector import DetectorState, Suspicion
from repro.core.summaries import PathOracle
from repro.crypto.fingerprint import fingerprint
from repro.crypto.keys import KeyInfrastructure
from repro.dist.broadcast import robust_flood
from repro.dist.sync import RoundSchedule
from repro.net import MonitorTap, Network, Packet, REDParams, Router
from repro.net.queues import red_packet_drop_probability


def _phi(x: float) -> float:
    """Standard normal CDF."""
    return 0.5 * (1.0 + math.erf(x / math.sqrt(2.0)))


def single_loss_confidence(q_limit: float, q_pred: float, packet_size: float,
                           mu: float, sigma: float) -> float:
    """c_single of Fig 6.2: the probability the drop was malicious."""
    if sigma <= 0:
        raise ValueError("sigma must be positive")
    margin = q_limit - q_pred - packet_size
    return _phi((margin - mu) / sigma)


def combined_loss_confidence(q_limit: float, q_preds: Sequence[float],
                             sizes: Sequence[float], mu: float,
                             sigma: float) -> float:
    """c_combined: Z-test over a set of losses (§6.2.1)."""
    n = len(q_preds)
    if n == 0:
        return 0.0
    if sigma <= 0:
        raise ValueError("sigma must be positive")
    mean_qpred = sum(q_preds) / n
    mean_ps = sum(sizes) / n
    z1 = (q_limit - mean_qpred - mean_ps - mu) / (sigma / math.sqrt(n))
    return _phi(z1)


@dataclass(frozen=True)
class TrafficRecord:
    """One Tinfo entry: fingerprint, size, and queue entry/exit time."""

    fp: int
    size: int
    time: float
    flow_id: str = ""
    src: str = ""
    dst: str = ""
    reporter: str = ""


@dataclass
class DropVerdict:
    """The validator's ruling on one missing packet."""

    record: TrafficRecord
    q_pred: float
    congestive: bool
    confidence: float  # probability of malice (c_single or 1 - p_red)
    red_drop_prob: float = 0.0

    @property
    def malicious_candidate(self) -> bool:
        return not self.congestive


@dataclass
class RoundFinding:
    """Per-round validator output for one monitored queue."""

    round_index: int
    target: Tuple[str, str]
    drops: List[DropVerdict] = field(default_factory=list)
    arrivals: int = 0
    single_alarm: bool = False
    combined_alarm: bool = False
    flow_alarm: bool = False
    definite_alarm: bool = False
    combined_confidence: float = 0.0
    max_single_confidence: float = 0.0
    suspicious_flows: List[str] = field(default_factory=list)
    cumulative_flows: List[str] = field(default_factory=list)
    cumulative_alarm: bool = False
    unmatched_out: int = 0  # fabricated / unexpected departures
    misreporting_neighbors: List[str] = field(default_factory=list)
    misrouted_or_fabricated: int = 0  # departures this queue should never carry

    @property
    def alarmed(self) -> bool:
        return (self.single_alarm or self.combined_alarm
                or self.flow_alarm or self.definite_alarm
                or self.cumulative_alarm or bool(self.misreporting_neighbors)
                or self.misroute_alarm)

    misroute_alarm: bool = False

    @property
    def congestive_drops(self) -> int:
        return sum(1 for d in self.drops if d.congestive)

    @property
    def candidate_drops(self) -> int:
        return sum(1 for d in self.drops if not d.congestive)


class QueueTap(MonitorTap):
    """Collects Tinfo around one monitored output queue (r → r_d).

    Upstream neighbours' records carry *predicted* entry times (transmit
    completion + propagation delay, §6.2.1); the downstream router's
    records carry exit times (arrival minus propagation).  Ground-truth
    occupancy samples are recorded too, used **only** by calibration.
    """

    def __init__(self, network: Network, oracle: PathOracle, router: str,
                 downstream: str, fingerprint_key: bytes = b"") -> None:
        self.network = network
        self.oracle = oracle
        self.router = router
        self.downstream = downstream
        self.fingerprint_key = fingerprint_key
        self.records_in: List[TrafficRecord] = []
        self.records_out: List[TrafficRecord] = []
        self.truth_occupancy: List[Tuple[float, int]] = []
        self._in_link_delay: Dict[str, float] = {}
        out_link = network.topology.link(router, downstream)
        self._out_link_delay = out_link.delay
        self._out_bandwidth = out_link.bandwidth

    def _fp(self, packet: Packet) -> int:
        return fingerprint(packet, self.fingerprint_key)

    def on_transmit(self, router: Router, out_nbr: str, packet: Packet,
                    time: float) -> None:
        if out_nbr != self.router or router.name == self.downstream:
            return
        if self.oracle.next_hop_after(packet, self.router) != self.downstream:
            return
        delay = self._in_link_delay.get(router.name)
        if delay is None:
            delay = self.network.topology.link(router.name, self.router).delay
            self._in_link_delay[router.name] = delay
        self.records_in.append(TrafficRecord(
            fp=self._fp(packet), size=packet.size, time=time + delay,
            flow_id=packet.flow_id, src=packet.src, dst=packet.dst,
            reporter=router.name,
        ))

    def on_receive(self, router: Router, from_nbr: str, packet: Packet,
                   time: float) -> None:
        if router.name != self.downstream or from_nbr != self.router:
            return
        # Exit time = when the packet left the queue for transmission:
        # arrival minus propagation minus serialization (§6.2.1's q_pred
        # accounts a packet from queue entry to transmission start).
        exit_time = (time - self._out_link_delay
                     - packet.size / self._out_bandwidth) + 1e-9
        self.records_out.append(TrafficRecord(
            fp=self._fp(packet), size=packet.size, time=exit_time,
            flow_id=packet.flow_id, src=packet.src, dst=packet.dst,
            reporter=router.name,
        ))

    def on_enqueue(self, router: Router, out_nbr: str, packet: Packet,
                   time: float, occupancy: int) -> None:
        if router.name == self.router and out_nbr == self.downstream:
            self.truth_occupancy.append((time, occupancy))


class QueueValidator:
    """Streaming droptail queue simulation over Tinfo records (§6.2.1).

    Feed records as they become available and call :meth:`advance` with a
    watermark; events older than ``watermark − max_wait`` are processed
    (``max_wait`` bounds how long a packet can legitimately sit in the
    queue, so an unmatched arrival older than that is a genuine loss).
    """

    def __init__(self, queue_limit: int, bandwidth: float,
                 mu: float = 0.0, sigma: float = 1.0,
                 wait_slack: float = 0.05) -> None:
        self.queue_limit = queue_limit
        self.mu = mu
        self.sigma = max(sigma, 1e-9)
        self.max_wait = queue_limit / bandwidth + wait_slack
        self.q_pred = 0.0
        self._pending_in: List[TrafficRecord] = []
        self._pending_out: List[TrafficRecord] = []
        # Multiset bookkeeping: a diverted-and-returned packet can appear
        # twice on the arrival side; each departure redeems exactly one
        # predicted arrival, the surplus is a genuine loss.
        self._out_credits: Dict[int, int] = {}
        self._added: Dict[int, int] = {}
        self.timeline: List[Tuple[float, float]] = [(0.0, 0.0)]
        # Times column of ``timeline``, kept in lockstep so q_pred_at
        # can bisect without rebuilding the list per query (calibration
        # queries it once per truth sample).
        self._timeline_times: List[float] = [0.0]
        self.unmatched_out = 0
        self.unmatched_records: List[TrafficRecord] = []
        self.processed_arrivals = 0

    def feed(self, records_in: Iterable[TrafficRecord],
             records_out: Iterable[TrafficRecord]) -> None:
        new_out = list(records_out)
        self._pending_in.extend(records_in)
        self._pending_out.extend(new_out)
        for r in new_out:
            self._out_credits[r.fp] = self._out_credits.get(r.fp, 0) + 1

    def advance(self, watermark: float) -> List[DropVerdict]:
        """Process events up to ``watermark − max_wait``; return drops."""
        horizon = watermark - self.max_wait
        ready_in = [r for r in self._pending_in if r.time <= horizon]
        ready_out = [r for r in self._pending_out if r.time <= horizon]
        self._pending_in = [r for r in self._pending_in if r.time > horizon]
        self._pending_out = [r for r in self._pending_out if r.time > horizon]
        events: List[Tuple[float, int, TrafficRecord]] = []
        for rec in ready_in:
            events.append((rec.time, 0, rec))  # arrivals first on ties
        for rec in ready_out:
            events.append((rec.time, 1, rec))
        events.sort(key=lambda e: (e[0], e[1]))

        verdicts: List[DropVerdict] = []
        for when, kind, rec in events:
            if kind == 1:  # departure
                if self._added.get(rec.fp, 0) > 0:
                    self._added[rec.fp] -= 1
                    self.q_pred = max(0.0, self.q_pred - rec.size)
                else:
                    # Unexpected departure: nothing we enqueued.  Count it
                    # (fabrication, misrouting, or an under-reporting
                    # neighbour); q_pred never accounted for it, so leave
                    # the prediction untouched.
                    self.unmatched_out += 1
                    self.unmatched_records.append(rec)
                self.timeline.append((when, self.q_pred))
                self._timeline_times.append(when)
            else:  # arrival (kind == 0)
                self.processed_arrivals += 1
                if self._out_credits.get(rec.fp, 0) > 0:
                    self._out_credits[rec.fp] -= 1
                    self.q_pred += rec.size
                    self._added[rec.fp] = self._added.get(rec.fp, 0) + 1
                    self.timeline.append((when, self.q_pred))
                    self._timeline_times.append(when)
                else:
                    congestive = self.q_pred + rec.size > self.queue_limit
                    confidence = 0.0
                    if not congestive:
                        confidence = single_loss_confidence(
                            self.queue_limit, self.q_pred, rec.size,
                            self.mu, self.sigma,
                        )
                    verdicts.append(DropVerdict(
                        record=rec, q_pred=self.q_pred,
                        congestive=congestive, confidence=confidence,
                    ))
        return verdicts

    def q_pred_at(self, when: float) -> float:
        if len(self._timeline_times) != len(self.timeline):
            # External code appended to ``timeline`` directly; resync.
            self._timeline_times = [t for t, _ in self.timeline]
        idx = bisect_right(self._timeline_times, when) - 1
        if idx < 0:
            return 0.0
        return self.timeline[idx][1]

    def calibrate(self, truth_samples: Sequence[Tuple[float, int]],
                  min_sigma: float = 1.0) -> Tuple[float, float]:
        """Fit (µ, σ) of X = q_act − q_pred from a trusted learning run."""
        errors = [occ - self.q_pred_at(t) for t, occ in truth_samples]
        if not errors:
            return (self.mu, self.sigma)
        mu = sum(errors) / len(errors)
        var = sum((e - mu) ** 2 for e in errors) / max(1, len(errors) - 1)
        sigma = max(math.sqrt(var), min_sigma)
        self.mu, self.sigma = mu, sigma
        return (mu, sigma)


class REDQueueValidator:
    """Probabilistic traffic validation for a RED queue (§6.5.2).

    Replays the RED average-queue dynamics from the records (using the
    same EWMA and idle-decay rules as :class:`repro.net.queues.REDQueue`)
    to recover the drop probability every packet faced, then tests the
    observed drop pattern against it.
    """

    def __init__(self, queue_limit: int, bandwidth: float, params: REDParams,
                 wait_slack: float = 0.05) -> None:
        self.queue_limit = queue_limit
        self.params = params
        self.max_wait = queue_limit / bandwidth + wait_slack
        self.occupancy = 0.0
        self.avg = 0.0
        self.count = -1
        self._idle_since: Optional[float] = 0.0
        self._pending_in: List[TrafficRecord] = []
        self._pending_out: List[TrafficRecord] = []
        self._out_credits: Dict[int, int] = {}
        self._added: Dict[int, int] = {}
        self.unmatched_out = 0
        self.unmatched_records: List[TrafficRecord] = []
        # per-advance accumulators
        self.arrival_probs: List[Tuple[TrafficRecord, float, bool]] = []

    def feed(self, records_in: Iterable[TrafficRecord],
             records_out: Iterable[TrafficRecord]) -> None:
        new_out = list(records_out)
        self._pending_in.extend(records_in)
        self._pending_out.extend(new_out)
        for r in new_out:
            self._out_credits[r.fp] = self._out_credits.get(r.fp, 0) + 1

    def _update_average(self, now: float) -> None:
        w = self.params.weight
        if self.occupancy == 0 and self._idle_since is not None:
            idle = max(0.0, now - self._idle_since)
            m = idle / 0.001
            self.avg *= (1.0 - w) ** min(m, 10_000.0)
            self._idle_since = now
        self.avg = (1.0 - w) * self.avg + w * self.occupancy

    def advance(self, watermark: float) -> List[DropVerdict]:
        horizon = watermark - self.max_wait
        ready_in = [r for r in self._pending_in if r.time <= horizon]
        ready_out = [r for r in self._pending_out if r.time <= horizon]
        self._pending_in = [r for r in self._pending_in if r.time > horizon]
        self._pending_out = [r for r in self._pending_out if r.time > horizon]
        events: List[Tuple[float, int, TrafficRecord]] = []
        for rec in ready_in:
            events.append((rec.time, 0, rec))  # arrivals first on ties
        for rec in ready_out:
            events.append((rec.time, 1, rec))
        events.sort(key=lambda e: (e[0], e[1]))

        verdicts: List[DropVerdict] = []
        for when, kind, rec in events:
            if kind == 1:
                if self._added.get(rec.fp, 0) > 0:
                    self._added[rec.fp] -= 1
                    self.occupancy = max(0.0, self.occupancy - rec.size)
                else:
                    self.unmatched_out += 1
                    self.unmatched_records.append(rec)
                if self.occupancy == 0:
                    self._idle_since = when
                continue
            self._update_average(when)
            prob = red_packet_drop_probability(self.avg, self.params,
                                               self.count, rec.size)
            transmitted = self._out_credits.get(rec.fp, 0) > 0
            if transmitted:
                self._out_credits[rec.fp] -= 1
                if prob > 0.0:
                    self.count += 1
                else:
                    self.count = -1
                self.occupancy += rec.size
                self._added[rec.fp] = self._added.get(rec.fp, 0) + 1
                self._idle_since = None
                self.arrival_probs.append((rec, prob, False))
            else:
                forced = (self.occupancy + rec.size > self.queue_limit
                          or prob >= 1.0)
                self.count = 0 if not forced else -1
                effective = 1.0 if forced else prob
                self.arrival_probs.append((rec, effective, True))
                verdicts.append(DropVerdict(
                    record=rec, q_pred=self.occupancy,
                    congestive=forced,
                    confidence=max(0.0, 1.0 - effective),
                    red_drop_prob=effective,
                ))
        return verdicts

    def drain_arrival_probs(self) -> List[Tuple[TrafficRecord, float, bool]]:
        out = self.arrival_probs
        self.arrival_probs = []
        return out


def red_aggregate_confidence(
    arrival_probs: Sequence[Tuple[TrafficRecord, float, bool]]
) -> float:
    """Poisson-binomial Z-test: observed vs expected RED drops."""
    expected = sum(p for _, p, _ in arrival_probs)
    variance = sum(p * (1 - p) for _, p, _ in arrival_probs)
    observed = sum(1 for _, _, dropped in arrival_probs if dropped)
    if variance <= 0:
        return 1.0 if observed > expected else 0.0
    z = (observed - expected) / math.sqrt(variance)
    return _phi(z)


def red_flow_confidences(
    arrival_probs: Sequence[Tuple[TrafficRecord, float, bool]],
    min_arrivals: int = 20,
    key=None,
) -> Dict[str, Tuple[float, float, float]]:
    """Per-flow drop-count Z-tests for flow-selective attacks.

    Returns flow -> (confidence, observed drops, expected drops).  The
    caller combines the confidence with an effect-size floor: a z-score
    alone would fire on chance excursions when many (flow, round) cells
    are tested.  A continuity correction (−0.5) keeps the normal
    approximation honest at small counts.
    """
    if key is None:
        key = lambda rec: rec.flow_id
    by_flow: Dict[str, List[Tuple[float, bool]]] = {}
    for rec, p, dropped in arrival_probs:
        by_flow.setdefault(key(rec), []).append((p, dropped))
    out: Dict[str, Tuple[float, float, float]] = {}
    for flow, entries in by_flow.items():
        if len(entries) < min_arrivals:
            continue
        expected = sum(p for p, _ in entries)
        variance = sum(p * (1 - p) for p, _ in entries)
        observed = sum(1 for _, dropped in entries if dropped)
        if variance <= 0:
            conf = 1.0 if observed > expected else 0.0
        else:
            conf = _phi((observed - 0.5 - expected) / math.sqrt(variance))
        out[flow] = (conf, float(observed), expected)
    return out


@dataclass
class ChiConfig:
    th_single: float = 0.999
    th_combined: float = 0.999
    th_definite: float = 0.999  # RED definite test uses 1 - p directly
    settle_delay: float = 0.3
    wait_slack: float = 0.05
    min_flow_arrivals: int = 20
    # A flow is only suspicious if its drop excess is material: at least
    # ``flow_effect_floor`` drops above expectation and at least
    # ``flow_excess_fraction`` of the expectation.
    flow_effect_floor: float = 6.0
    flow_excess_fraction: float = 0.3
    # TCP burstiness correlates a flow's RED outcomes, so single-round
    # z excursions happen; demand the flow look suspicious this many
    # rounds in a row before alarming (latency traded for accuracy).
    flow_persistence: int = 2
    # RED single-packet test: alarm once this many near-impossible drops
    # (confidence >= th_single each) have accumulated.
    red_single_min_count: int = 2
    # A neighbour whose claimed Tinfo omits this many packets that
    # nevertheless *left* the monitored queue is protocol faulty
    # (§6.2.2: signed traffic information is cross-checked; silence about
    # forwarded traffic is as damning as lying about it).
    misreport_threshold: int = 3
    # Cumulative (since monitoring began) per-flow and aggregate tests
    # catch sustained fine-grained attacks whose per-round excess is too
    # small to notice: z grows like sqrt(rounds) under a real attack.
    th_cumulative: float = 0.99997  # ~4 sigma
    cum_effect_floor: float = 10.0
    red_params: Optional[REDParams] = None  # None => droptail validation


class ProtocolChi:
    """Distributed χ over a simulated network.

    ``targets`` lists the monitored output interfaces as (router,
    downstream) pairs; each gets a :class:`QueueTap` and a validator at
    the downstream router.  Per round, the downstream router evaluates
    the queue and — on alarm — floods a signed suspicion of the 2-segment
    ⟨r, r_d⟩ (χ is accurate with precision 2, §6.3.1).
    """

    def __init__(
        self,
        network: Network,
        oracle: PathOracle,
        schedule: RoundSchedule,
        targets: Sequence[Tuple[str, str]],
        keys: Optional[KeyInfrastructure] = None,
        config: Optional[ChiConfig] = None,
        reporters: Optional[Dict[str, Callable[[List[TrafficRecord]], List[TrafficRecord]]]] = None,
    ) -> None:
        self.network = network
        self.oracle = oracle
        self.schedule = schedule
        self.config = config or ChiConfig()
        self.keys = keys or KeyInfrastructure()
        self.reporters = reporters or {}
        self.taps: Dict[Tuple[str, str], QueueTap] = {}
        self.validators: Dict[Tuple[str, str], object] = {}
        self.findings: List[RoundFinding] = []
        self.states: Dict[str, DetectorState] = {
            name: DetectorState(name) for name in network.topology.routers
        }
        self._consumed: Dict[Tuple[str, str], Tuple[int, int]] = {}
        self._flow_streak: Dict[Tuple[Tuple[str, str], str], int] = {}
        # (target, flow) -> [cum_obs, cum_exp, cum_var]
        self._flow_cum: Dict[Tuple[Tuple[str, str], str], List[float]] = {}
        self._agg_cum: Dict[Tuple[str, str], List[float]] = {}
        self._red_single_count: Dict[Tuple[str, str], int] = {}
        # target -> accumulated droptail candidate drops (q_pred, size):
        # sustained low-rate attacks are caught by the Z-test over the
        # whole accumulated set (benign congestive margins have
        # non-positive expectation, so the statistic only drifts up
        # under malice).
        self._candidate_cum: Dict[Tuple[str, str], List[Tuple[float, float]]] = {}
        for router, downstream in targets:
            tap = QueueTap(network, oracle, router, downstream)
            network.add_tap(tap)
            link = network.topology.link(router, downstream)
            if self.config.red_params is not None:
                validator: object = REDQueueValidator(
                    link.queue_limit, link.bandwidth, self.config.red_params,
                    wait_slack=self.config.wait_slack,
                )
            else:
                validator = QueueValidator(
                    link.queue_limit, link.bandwidth,
                    wait_slack=self.config.wait_slack,
                )
            key = (router, downstream)
            self.taps[key] = tap
            self.validators[key] = validator
            self._consumed[key] = (0, 0)

    # -- calibration -------------------------------------------------------------
    def calibrate(self, target: Tuple[str, str],
                  min_sigma: float = 500.0) -> Tuple[float, float]:
        """Learning period (§6.2.1): fit (µ, σ) from the trace so far.

        Must be run on attack-free traffic; uses trusted occupancy
        telemetry from the monitored router.  Only meaningful for
        droptail validators.
        """
        tap = self.taps[target]
        validator = self.validators[target]
        if not isinstance(validator, QueueValidator):
            raise TypeError("calibration applies to droptail validation")
        self._feed(target)
        validator.advance(self.network.sim.now)
        return validator.calibrate(tap.truth_occupancy, min_sigma=min_sigma)

    # -- round scheduling -----------------------------------------------------------
    def schedule_rounds(self, first_round: int, last_round: int) -> None:
        for r in range(first_round, last_round + 1):
            when = self.schedule.round_end(r) + self.config.settle_delay
            self.network.sim.schedule_at(when, self.evaluate_round, r)

    def _feed(self, target: Tuple[str, str]) -> None:
        tap = self.taps[target]
        validator = self.validators[target]
        used_in, used_out = self._consumed[target]
        new_in = tap.records_in[used_in:]
        new_out = tap.records_out[used_out:]
        self._consumed[target] = (len(tap.records_in), len(tap.records_out))
        # Protocol-faulty neighbours may misreport their Tinfo.
        if self.reporters:
            filtered = []
            for rec in new_in:
                reporter = self.reporters.get(rec.reporter)
                if reporter is None:
                    filtered.append(rec)
                else:
                    filtered.extend(reporter([rec]))
            new_in = filtered
        validator.feed(new_in, new_out)

    def evaluate_round(self, round_index: int) -> List[RoundFinding]:
        out: List[RoundFinding] = []
        for target in self.taps:
            finding = self._evaluate_target(target, round_index)
            self.findings.append(finding)
            out.append(finding)
            if finding.alarmed:
                self._announce(target, round_index, finding)
        return out

    def _evaluate_target(self, target: Tuple[str, str],
                         round_index: int) -> RoundFinding:
        validator = self.validators[target]
        self._feed(target)
        watermark = self.network.sim.now
        verdicts = validator.advance(watermark)
        finding = RoundFinding(round_index=round_index, target=target,
                               drops=verdicts)
        finding.unmatched_out = validator.unmatched_out
        self._attribute_unmatched(target, finding, validator)
        cfg = self.config
        if isinstance(validator, REDQueueValidator):
            arrivals = validator.drain_arrival_probs()
            finding.arrivals = len(arrivals)
            definite = [v for v in verdicts
                        if not v.congestive and v.red_drop_prob == 0.0]
            finding.definite_alarm = bool(definite)
            finding.max_single_confidence = max(
                (v.confidence for v in verdicts), default=0.0
            )
            # Single-packet test, RED flavour: a drop whose RED probability
            # was negligible (e.g. a 40-byte SYN in byte mode) is near-proof
            # of malice; require a couple of them to guard the tail.
            near_impossible = [v for v in verdicts
                               if not v.congestive
                               and v.confidence >= cfg.th_single]
            self._red_single_count[target] = (
                self._red_single_count.get(target, 0) + len(near_impossible)
            )
            finding.single_alarm = (
                self._red_single_count[target] >= cfg.red_single_min_count
                and bool(near_impossible)
            )
            finding.combined_confidence = red_aggregate_confidence(arrivals)
            finding.combined_alarm = (
                finding.combined_confidence >= cfg.th_combined
                and any(dropped for _, _, dropped in arrivals)
            )
            # Group the per-round selective test two ways: by transport
            # flow (selected-flow attacks) and by destination (victim-host
            # attacks such as SYN dropping, where each connection is a new
            # flow id but the victim destination accumulates the damage).
            suspicious: List[str] = []
            groupings = [
                ("flow", lambda rec: rec.flow_id),
                ("dst", lambda rec: "dst:" + rec.dst),
            ]
            for label, key_fn in groupings:
                flow_conf = red_flow_confidences(
                    arrivals, min_arrivals=cfg.min_flow_arrivals, key=key_fn
                )
                n_groups = max(1, len(flow_conf))
                bonferroni = 1.0 - (1.0 - cfg.th_combined) / n_groups
                for group, (conf, observed, expected) in flow_conf.items():
                    excess = observed - expected
                    key = (target, group)
                    if (conf >= bonferroni
                            and excess >= cfg.flow_effect_floor
                            and excess >= cfg.flow_excess_fraction * expected):
                        self._flow_streak[key] = self._flow_streak.get(key, 0) + 1
                        if self._flow_streak[key] >= cfg.flow_persistence:
                            suspicious.append(group)
                    else:
                        self._flow_streak[key] = 0
            finding.suspicious_flows = suspicious
            finding.flow_alarm = bool(suspicious)
            self._apply_cumulative(target, finding, arrivals)
        else:
            finding.arrivals = validator.processed_arrivals
            candidates = [v for v in verdicts if not v.congestive]
            finding.max_single_confidence = max(
                (v.confidence for v in candidates), default=0.0
            )
            finding.single_alarm = any(
                v.confidence >= cfg.th_single for v in candidates
            )
            if len(candidates) > 1 and not finding.single_alarm:
                finding.combined_confidence = combined_loss_confidence(
                    validator.queue_limit,
                    [v.q_pred for v in candidates],
                    [v.record.size for v in candidates],
                    validator.mu, validator.sigma,
                )
                finding.combined_alarm = (
                    finding.combined_confidence >= cfg.th_combined
                )
            cum = self._candidate_cum.setdefault(target, [])
            cum.extend((v.q_pred, v.record.size) for v in candidates)
            # Only (re)raise the cumulative alarm when this round added
            # evidence; a latched alarm on drop-free rounds is noise.
            if len(cum) >= 3 and candidates:
                cum_conf = combined_loss_confidence(
                    validator.queue_limit,
                    [q for q, _ in cum], [s for _, s in cum],
                    validator.mu, validator.sigma,
                )
                finding.cumulative_alarm = cum_conf >= cfg.th_cumulative
                if finding.cumulative_alarm:
                    finding.combined_confidence = max(
                        finding.combined_confidence, cum_conf
                    )
        return finding

    def _apply_cumulative(self, target: Tuple[str, str],
                          finding: RoundFinding, arrivals) -> None:
        """Accumulate obs/exp/var since monitoring began (RED targets)."""
        cfg = self.config
        per_flow: Dict[str, List[float]] = {}
        agg = self._agg_cum.setdefault(target, [0.0, 0.0, 0.0])
        for rec, p, dropped in arrivals:
            agg[0] += 1.0 if dropped else 0.0
            agg[1] += p
            agg[2] += p * (1 - p)
            for group in (rec.flow_id, "dst:" + rec.dst):
                cum = self._flow_cum.setdefault((target, group),
                                                [0.0, 0.0, 0.0])
                cum[0] += 1.0 if dropped else 0.0
                cum[1] += p
                cum[2] += p * (1 - p)
        flagged: List[str] = []
        keys = [k for k in self._flow_cum if k[0] == target]
        n_flows = max(1, len(keys))
        th = 1.0 - (1.0 - cfg.th_cumulative) / n_flows
        for key in keys:
            obs, exp, var = self._flow_cum[key]
            if var <= 0:
                continue
            conf = _phi((obs - 0.5 - exp) / math.sqrt(var))
            if conf >= th and (obs - exp) >= cfg.cum_effect_floor:
                flagged.append(key[1])
        finding.cumulative_flows = flagged
        agg_alarm = False
        if agg[2] > 0:
            agg_conf = _phi((agg[0] - 0.5 - agg[1]) / math.sqrt(agg[2]))
            agg_alarm = (agg_conf >= cfg.th_cumulative
                         and (agg[0] - agg[1]) >= cfg.cum_effect_floor)
        dropped_this_round = any(dropped for _, _, dropped in arrivals)
        finding.cumulative_alarm = ((bool(flagged) or agg_alarm)
                                    and dropped_this_round)

    def _attribute_unmatched(self, target: Tuple[str, str],
                             finding: RoundFinding, validator) -> None:
        """§6.2.2: classify departures nobody claimed to have sent.

        * If the packet's routed path really does cross this queue, the
          upstream neighbour on that path under-reported its Tinfo — name
          it protocol faulty (past a threshold).
        * If the packet should never have left on this interface at all,
          the monitored router misrouted or fabricated it — evidence
          against the router itself, never against a neighbour.
        """
        router, downstream = target
        fresh = validator.unmatched_records
        validator.unmatched_records = []
        by_reporter: Dict[str, int] = {}
        misrouted = 0
        for rec in fresh:
            path = self.oracle.path(rec.src, rec.dst)
            if path is None or router not in path[:-1]:
                misrouted += 1  # not even r's transit traffic
                continue
            idx = path.index(router)
            if path[idx + 1] != downstream:
                misrouted += 1  # r's traffic, but for a different interface
                continue
            if idx == 0:
                continue  # originated at the monitored router itself
            expected = path[idx - 1]
            by_reporter[expected] = by_reporter.get(expected, 0) + 1
        finding.misreporting_neighbors = [
            nbr for nbr, count in sorted(by_reporter.items())
            if count > self.config.misreport_threshold
        ]
        finding.misrouted_or_fabricated = misrouted
        finding.misroute_alarm = misrouted > self.config.misreport_threshold

    def _announce(self, target: Tuple[str, str], round_index: int,
                  finding: RoundFinding) -> None:
        router, downstream = target
        interval = self.schedule.interval(round_index)
        reasons = []
        if finding.definite_alarm:
            reasons.append("definite RED-impossible drop")
        if finding.single_alarm:
            reasons.append(
                f"single-loss confidence {finding.max_single_confidence:.4f}"
            )
        if finding.combined_alarm:
            reasons.append(
                f"combined confidence {finding.combined_confidence:.4f}"
            )
        if finding.flow_alarm:
            reasons.append(f"flow-selective: {finding.suspicious_flows}")
        if finding.cumulative_alarm:
            reasons.append(
                f"cumulative excess (flows: {finding.cumulative_flows})"
            )
        if finding.misreporting_neighbors:
            reasons.append(
                f"under-reporting neighbours: {finding.misreporting_neighbors}"
            )
        if finding.misroute_alarm:
            reasons.append(
                f"{finding.misrouted_or_fabricated} misrouted/fabricated "
                f"departures"
            )
        segments = []
        if (finding.single_alarm or finding.combined_alarm
                or finding.flow_alarm or finding.definite_alarm
                or finding.cumulative_alarm or finding.misroute_alarm):
            segments.append((router, downstream))
        for neighbor in finding.misreporting_neighbors:
            segments.append((neighbor, router))
        compromised = {name for name, r in self.network.routers.items()
                       if r.compromise is not None}
        for segment in segments:
            suspicion = Suspicion(
                segment=segment, interval=interval,
                suspected_by=downstream,
                reason="; ".join(reasons),
                confidence=max(finding.max_single_confidence,
                               finding.combined_confidence, 0.0),
            )
            if downstream not in compromised:
                self.states[downstream].suspect(suspicion)
            robust_flood(
                self.network, downstream, suspicion,
                on_deliver=lambda at, msg, t: self.states[at].suspect(msg),
            )

    # -- reporting ----------------------------------------------------------------
    def alarmed_rounds(self, target: Optional[Tuple[str, str]] = None) -> List[RoundFinding]:
        return [f for f in self.findings if f.alarmed
                and (target is None or f.target == target)]
