"""cProfile wrapper emitting top-N cumulative stats as JSON.

``--profile`` on ``repro run`` / ``repro sweep`` wraps the run in
:func:`profile_call` and writes the result with :func:`write_profile`.
Profiling is wall-domain by nature; it never alters what the profiled
call computes, only observes where its time went.
"""

from __future__ import annotations

import cProfile
import json
import os
import pstats
from typing import Any, Callable, Tuple

#: Schema tag for profile artifacts.
PROFILE_SCHEMA = "repro.obs.profile/v1"


def profile_call(fn: Callable[..., Any], *args: Any, top: int = 25,
                 **kwargs: Any) -> Tuple[Any, dict]:
    """Run ``fn(*args, **kwargs)`` under cProfile.

    Returns ``(result, stats)`` where *stats* is a JSON-ready dict of
    the ``top`` functions by cumulative time.  Exceptions propagate
    unprofiled — a crashed run produces no profile artifact.
    """
    profiler = cProfile.Profile()
    result = profiler.runcall(fn, *args, **kwargs)
    return result, stats_to_dict(pstats.Stats(profiler), top=top)


def stats_to_dict(stats: pstats.Stats, *, top: int = 25) -> dict:
    """Top-N rows of a pstats table, sorted by cumulative time."""
    stats.sort_stats("cumulative")
    rows = []
    for func in stats.fcn_list[:top]:  # type: ignore[attr-defined]
        filename, lineno, name = func
        cc, ncalls, tottime, cumtime, _callers = stats.stats[func]  # type: ignore[attr-defined]
        rows.append({
            "function": name,
            "file": filename,
            "line": lineno,
            "ncalls": ncalls,
            "primitive_calls": cc,
            "tottime_s": tottime,
            "cumtime_s": cumtime,
        })
    return {
        "schema": PROFILE_SCHEMA,
        "top": top,
        "total_calls": getattr(stats, "total_calls", 0),
        "total_time_s": getattr(stats, "total_tt", 0.0),
        "rows": rows,
    }


def write_profile(stats: dict, path: str) -> str:
    """Write a profile stats dict as a JSON artifact; returns *path*."""
    parent = os.path.dirname(path)
    if parent:
        os.makedirs(parent, exist_ok=True)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(stats, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return path


def format_profile_lines(stats: dict, limit: int = 10) -> list:
    """Human-readable headline lines for the CLI."""
    lines = [f"profile: {stats['total_calls']} calls in "
             f"{stats['total_time_s']:.3f} s (top {limit} by cumulative)"]
    for row in stats["rows"][:limit]:
        where = f"{os.path.basename(str(row['file']))}:{row['line']}"
        lines.append(f"  {row['cumtime_s']:8.3f}s  {row['ncalls']:>8}x  "
                     f"{row['function']} ({where})")
    return lines
