"""Sim-domain metrics registry: counters, gauges, histograms.

Metrics are *deterministic aggregates of simulation events*: they carry
no timestamps of their own and must only be fed values derived from
simulated state (event counts, queue occupancies, virtual-time
horizons).  Anything wall-clock-shaped belongs in
:mod:`repro.obs.telemetry`, the one wall-domain module.

Names follow the ``repro.<pkg>.<name>`` convention — e.g.
``repro.net.pkt.dropped``, ``repro.core.detector.suspicions`` — and are
validated at creation time so trace consumers can rely on the prefix to
group metrics by subsystem.  Snapshots are plain dicts in sorted name
order, so two runs that saw the same events serialize byte-identically.
"""

from __future__ import annotations

import math
import re
from typing import Dict, List, Optional, Union

#: ``repro.<pkg>.<name>`` with at least one dotted segment after the
#: package, all lowercase identifiers.
_NAME_RE = re.compile(r"^repro\.[a-z0-9_]+(\.[a-z0-9_]+)+$")

Number = Union[int, float]


def validate_metric_name(name: str) -> str:
    """Enforce the ``repro.<pkg>.<name>`` naming convention."""
    if not _NAME_RE.match(name):
        raise ValueError(
            f"bad metric name {name!r}; expected "
            f"'repro.<pkg>.<name>' (lowercase identifiers, e.g. "
            f"'repro.net.pkt.dropped')")
    return name


class Counter:
    """A monotonically increasing count of events."""

    kind = "counter"
    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: Number = 0

    def inc(self, amount: Number = 1) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease "
                             f"(inc by {amount})")
        self.value += amount

    def to_dict(self) -> dict:
        return {"kind": self.kind, "value": self.value}


class Gauge:
    """A last-written value (plus its observed extremes)."""

    kind = "gauge"
    __slots__ = ("name", "value", "min", "max", "_written")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: Number = 0
        self.min: Number = 0
        self.max: Number = 0
        self._written = False

    def set(self, value: Number) -> None:
        self.value = value
        if not self._written:
            self.min = self.max = value
            self._written = True
        else:
            self.min = min(self.min, value)
            self.max = max(self.max, value)

    def to_dict(self) -> dict:
        return {"kind": self.kind, "value": self.value,
                "min": self.min, "max": self.max}


def bucket_bound(value: Number) -> float:
    """Upper bound of the power-of-two bucket containing *value*.

    Buckets are ``(2**(e-1), 2**e]`` plus a ``0`` bucket for
    non-positive values.  :func:`math.frexp` makes the boundary exact:
    an exact power of two lands in the bucket it bounds (1024 counts in
    the ``1024`` bucket, not ``2048``), with no ``log2`` rounding drift.
    """
    if value <= 0:
        return 0.0
    m, e = math.frexp(value)  # value = m * 2**e with 0.5 <= m < 1
    if m == 0.5:
        e -= 1
    return math.ldexp(1.0, e)


def _bucket_key(bound: float) -> str:
    """Canonical JSON key for a bucket bound (``"0"``, ``"0.5"``, ``"8"``)."""
    return format(bound, "g")


class Histogram:
    """Order-insensitive summary of observed values.

    Keeps count/total/min/max (mean is derived) plus power-of-two
    buckets, all of which merge cleanly across runs and never depend on
    observation order — the histogram of a sharded sweep equals the
    histogram of the unsharded one.
    """

    kind = "histogram"
    __slots__ = ("name", "count", "total", "min", "max", "buckets")

    def __init__(self, name: str) -> None:
        self.name = name
        self.count = 0
        self.total: Number = 0
        self.min: Optional[Number] = None
        self.max: Optional[Number] = None
        self.buckets: Dict[float, int] = {}

    def observe(self, value: Number) -> None:
        self.count += 1
        self.total += value
        self.min = value if self.min is None else min(self.min, value)
        self.max = value if self.max is None else max(self.max, value)
        bound = bucket_bound(value)
        self.buckets[bound] = self.buckets.get(bound, 0) + 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def to_dict(self) -> dict:
        return {"kind": self.kind, "count": self.count,
                "total": self.total, "min": self.min, "max": self.max,
                "mean": self.mean,
                "buckets": {_bucket_key(b): self.buckets[b]
                            for b in sorted(self.buckets)}}


Metric = Union[Counter, Gauge, Histogram]


class MetricsRegistry:
    """Named metrics, created on first use, snapshot in sorted order."""

    def __init__(self) -> None:
        self._metrics: Dict[str, Metric] = {}

    def _get(self, name: str, factory) -> Metric:
        metric = self._metrics.get(name)
        if metric is None:
            metric = factory(validate_metric_name(name))
            self._metrics[name] = metric
        elif not isinstance(metric, factory):
            raise TypeError(
                f"metric {name!r} already registered as "
                f"{metric.kind}, not {factory.kind}")
        return metric

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter)  # type: ignore[return-value]

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge)  # type: ignore[return-value]

    def histogram(self, name: str) -> Histogram:
        return self._get(name, Histogram)  # type: ignore[return-value]

    def names(self) -> List[str]:
        return sorted(self._metrics)

    def __len__(self) -> int:
        return len(self._metrics)

    def reset(self) -> None:
        self._metrics.clear()

    def snapshot(self) -> Dict[str, dict]:
        """Sorted, JSON-ready view of every metric's current state."""
        return {name: self._metrics[name].to_dict()
                for name in sorted(self._metrics)}


def _normalized_buckets(row: dict) -> Dict[str, int]:
    """Bucket dict of a histogram row under canonical keys.

    Rows from older traces may lack buckets entirely, and hand-written
    or round-tripped snapshots can spell the same bound differently
    (``"2"`` vs ``"2.0"``); canonicalizing through :func:`_bucket_key`
    keeps merge associative across those representations.
    """
    out: Dict[str, int] = {}
    for key, count in (row.get("buckets") or {}).items():
        canon = _bucket_key(float(key))
        out[canon] = out.get(canon, 0) + count
    return out


def merge_snapshots(snapshots: List[Dict[str, dict]]) -> Dict[str, dict]:
    """Combine metric snapshots from several runs/trace files.

    Counters and histogram counts/totals/buckets add; gauges keep the
    widest min/max and the last value seen; mixed-kind names raise.
    The merge is associative and commutative up to gauge ``value`` (the
    one order-sensitive field) and float-summation rounding in histogram
    ``total``/``mean``, and never mutates its inputs.
    """
    merged: Dict[str, dict] = {}
    for snapshot in snapshots:
        for name, row in snapshot.items():
            if name not in merged:
                # Copy one level deeper than dict(row): histogram rows
                # carry a nested bucket dict that the merge below
                # mutates, and a shallow copy would alias (and corrupt)
                # the caller's snapshot.
                fresh = dict(row)
                if row.get("kind") == "histogram":
                    fresh["buckets"] = _normalized_buckets(row)
                merged[name] = fresh
                continue
            into = merged[name]
            if into.get("kind") != row.get("kind"):
                raise ValueError(
                    f"metric {name!r} has conflicting kinds: "
                    f"{into.get('kind')} vs {row.get('kind')}")
            kind = row.get("kind")
            if kind == "counter":
                into["value"] += row["value"]
            elif kind == "gauge":
                into["value"] = row["value"]
                into["min"] = min(into["min"], row["min"])
                into["max"] = max(into["max"], row["max"])
            elif kind == "histogram":
                into["count"] += row["count"]
                into["total"] += row["total"]
                for key, pick in (("min", min), ("max", max)):
                    if row[key] is not None:
                        into[key] = (row[key] if into[key] is None
                                     else pick(into[key], row[key]))
                into["mean"] = (into["total"] / into["count"]
                                if into["count"] else 0.0)
                buckets = into["buckets"]
                for bkey, bcount in _normalized_buckets(row).items():
                    buckets[bkey] = buckets.get(bkey, 0) + bcount
    for row in merged.values():
        if row.get("kind") == "histogram":
            row["buckets"] = {key: row["buckets"][key] for key in
                              sorted(row["buckets"], key=float)}
    return {name: merged[name] for name in sorted(merged)}
