"""repro.obs: the observability subsystem.

Two strictly separated time domains:

* **sim domain** — :mod:`~repro.obs.record` (global :class:`Recorder`),
  :mod:`~repro.obs.metrics`, :mod:`~repro.obs.trace`,
  :mod:`~repro.obs.sinks`, plus the trace analytics layer
  (:mod:`~repro.obs.query`, :mod:`~repro.obs.forensics`,
  :mod:`~repro.obs.diff`).  Trace timestamps are Simulator virtual
  time only; output is deterministic and byte-stable across runs.
* **wall domain** — :mod:`~repro.obs.telemetry` (sweep wall times,
  cache/retry/worker stats) and :mod:`~repro.obs.profile` (cProfile
  wrapper).  Wall readings never influence simulated behaviour.

The global recorder is disabled by default; every instrumentation site
guards on ``recorder().active`` so the subsystem costs one attribute
read + branch when off.

The supported surface is exactly ``__all__`` — which includes the two
wall-domain modules ``telemetry`` and ``profile`` as *public modules*
(sweep machinery addresses their schemas directly).  The remaining
submodules are internal: reaching them through the package emits a
:class:`DeprecationWarning` naming the supported import path, and the
``API001`` lint rule flags in-repo imports that bypass the package for
names it already exports.
"""

import importlib as _importlib
import warnings as _warnings

from repro.obs.diff import DiffReport, diff_sweeps
from repro.obs.forensics import (
    RouterExplanation,
    VerdictReport,
    explain_router,
    explain_sweep,
    flow_timeline,
)
from repro.obs.metrics import (Counter, Gauge, Histogram, MetricsRegistry,
                               merge_snapshots)
from repro.obs.query import (
    QueryFilter,
    TraceEvent,
    TraceReader,
    trace_files,
)
from repro.obs.record import Recorder, recorder
from repro.obs.sinks import JsonlSink, MemorySink, NullSink

__all__ = [
    "profile",
    "telemetry",
    "Counter",
    "DiffReport",
    "Gauge",
    "Histogram",
    "JsonlSink",
    "MemorySink",
    "MetricsRegistry",
    "NullSink",
    "QueryFilter",
    "Recorder",
    "RouterExplanation",
    "TraceEvent",
    "TraceReader",
    "VerdictReport",
    "diff_sweeps",
    "explain_router",
    "explain_sweep",
    "flow_timeline",
    "merge_snapshots",
    "recorder",
    "trace_files",
]

#: Public submodules — importable through the package without warning.
_PUBLIC_MODULES = ("profile", "telemetry")

#: Internal implementation modules, deprecated as import targets.
_INTERNAL_MODULES = (
    "cli",
    "diff",
    "forensics",
    "metrics",
    "query",
    "record",
    "sinks",
    "trace",
)

# Drop the submodule bindings the re-exports above created on the
# package, so attribute access routes through __getattr__ (PEP 562)
# and carries a deprecation warning for the internal modules.
for _name in _INTERNAL_MODULES:
    globals().pop(_name, None)
del _name


def __getattr__(name: str):
    if name in _PUBLIC_MODULES:
        return _importlib.import_module(f"repro.obs.{name}")
    if name in _INTERNAL_MODULES:
        _warnings.warn(
            f"repro.obs.{name} is an internal module; import the "
            f"supported names from the repro.obs package instead "
            f"(see repro.obs.__all__)",
            DeprecationWarning,
            stacklevel=2,
        )
        return _importlib.import_module(f"repro.obs.{name}")
    raise AttributeError(f"module 'repro.obs' has no attribute {name!r}")


def __dir__():
    return sorted(set(__all__) | set(_INTERNAL_MODULES))
