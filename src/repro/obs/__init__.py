"""repro.obs: the observability subsystem.

Two strictly separated time domains:

* **sim domain** — :mod:`~repro.obs.record` (global :class:`Recorder`),
  :mod:`~repro.obs.metrics`, :mod:`~repro.obs.trace`,
  :mod:`~repro.obs.sinks`.  Trace timestamps are Simulator virtual
  time only; output is deterministic and byte-stable across runs.
* **wall domain** — :mod:`~repro.obs.telemetry` (sweep wall times,
  cache/retry/worker stats) and :mod:`~repro.obs.profile` (cProfile
  wrapper).  Wall readings never influence simulated behaviour.

The global recorder is disabled by default; every instrumentation site
guards on ``recorder().active`` so the subsystem costs one attribute
read + branch when off.
"""

from repro.obs.metrics import (Counter, Gauge, Histogram, MetricsRegistry,
                               merge_snapshots)
from repro.obs.record import Recorder, recorder
from repro.obs.sinks import JsonlSink, MemorySink, NullSink

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "JsonlSink",
    "MemorySink",
    "MetricsRegistry",
    "NullSink",
    "Recorder",
    "merge_snapshots",
    "recorder",
]
