"""Trace sinks: where structured trace events go.

A sink receives already-serializable dicts and owns their encoding.
The JSONL encoding is canonical (sorted keys, compact separators) so
two runs emitting the same events produce byte-identical trace files.
"""

from __future__ import annotations

import io
import json
import os
from typing import List, Optional


def encode_line(record: dict) -> str:
    """Canonical single-line JSON encoding for one trace record."""
    return json.dumps(record, sort_keys=True, separators=(",", ":"))


class NullSink:
    """Discards everything.  The disabled-recorder default."""

    def emit(self, record: dict) -> None:
        pass

    def close(self) -> None:
        pass


class MemorySink:
    """Keeps records in a list — for tests and `obs` aggregation."""

    def __init__(self) -> None:
        self.records: List[dict] = []
        self.closed = False

    def emit(self, record: dict) -> None:
        self.records.append(record)

    def close(self) -> None:
        self.closed = True


class JsonlSink:
    """Appends canonical JSONL lines to a file, one record per line."""

    def __init__(self, path: str) -> None:
        self.path = path
        parent = os.path.dirname(path)
        if parent:
            os.makedirs(parent, exist_ok=True)
        self._fh: Optional[io.TextIOWrapper] = open(
            path, "w", encoding="utf-8", newline="\n")

    def emit(self, record: dict) -> None:
        if self._fh is None:
            raise ValueError(f"sink for {self.path} is closed")
        self._fh.write(encode_line(record))
        self._fh.write("\n")

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None
