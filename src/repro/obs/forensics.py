"""Verdict forensics: join detector output against trace ground truth.

Three questions this module answers from a trace file (plus, when
available, the sweep manifest of the run that wrote it):

* **What happened to flow X?**  :func:`flow_timeline` reconstructs the
  flow's journey — first-seen hops, deliveries, drops, fabrications and
  misroutes — ordered by virtual time.
* **Why was router R suspected (or missed)?**  :func:`explain_router`
  joins every ``detector.suspect`` event naming R against the drops /
  fabrications / misroutes inside the suspicion's (segment, window),
  classifies the router as TP/FP/FN/TN against adversary ground truth,
  and attributes detection latency (first covering verdict's window end
  minus adversary activation — the same definition
  ``repro.eval.experiments.attack_matrix`` scores).
* **Which run produced this trace?**  :func:`trace_run_records` maps
  trace filenames to manifest run records, and
  :func:`ground_truth_for_trace` resolves adversary ground truth from
  the trace's ``scenario.ground_truth`` event or — for traces written
  before that event existed — deterministically re-derives it from the
  run record's serialized scenario parameters.

Everything here is sim-domain: inputs are virtual-time traces, outputs
are plain sorted-key dicts, and nothing reads a wall clock.  The one
``repro.eval`` dependency (spec-based ground-truth re-derivation) is
imported lazily to keep ``repro.obs`` import-light and cycle-free.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.obs.query import (
    QueryFilter,
    TraceEvent,
    TraceReader,
    trace_files,
)

#: Event kinds that are direct evidence of traffic-faulty behavior.
EVIDENCE_EVENTS = ("net.drop", "net.fabricate", "net.misroute")


# -- sweep manifest joins ---------------------------------------------------

def load_manifest(path: str) -> Optional[dict]:
    """The sweep manifest at *path* (a sweep dir or sweep.json file)."""
    manifest_path = (path if os.path.isfile(path)
                     else os.path.join(path, "sweep.json"))
    if not os.path.isfile(manifest_path):
        return None
    with open(manifest_path, "r", encoding="utf-8") as fh:
        return json.load(fh)


def trace_run_records(path: str) -> Dict[str, dict]:
    """Trace filename (basename) -> manifest run record, for a sweep.

    Trace filenames embed the cell's param digest, so basenames are
    unique across shards and a flat map covers dispatched layouts too.
    """
    manifest = load_manifest(path)
    if manifest is None:
        return {}
    records: Dict[str, dict] = {}
    for record in manifest.get("runs", []):
        trace = record.get("trace")
        if trace:
            records[os.path.basename(trace)] = record
    return records


def ground_truth_from_record(record: dict) -> Optional[dict]:
    """Re-derive adversary ground truth from a manifest run record.

    Only ``attack_matrix`` cells place adversaries; their run params
    are exactly a serialized :class:`~repro.eval.specs.ScenarioSpec`,
    and placement resolution is deterministic, so the planted router
    can be recovered without touching the trace.
    """
    if record.get("experiment") != "attack_matrix":
        return None
    from repro.eval import ScenarioSpec, TopologySpec, resolve_ground_truth
    from repro.sweep.grid import fold_dotted_params

    # Manifest records keep grid params in dotted form
    # ("placement.router"); fold them into the nested dicts the
    # experiment itself receives before rebuilding the spec.
    params = fold_dotted_params(record.get("params") or {})
    topology = params.get("topology", "abilene")
    seed = record.get("seed")
    if seed is None:
        seed = params.get("seed", 0)
    spec = ScenarioSpec(
        topology=(TopologySpec(name=topology)
                  if isinstance(topology, str) else topology),
        adversary=params.get("adversary"),
        placement=params.get("placement"),
        traffic=params.get("traffic"),
        tau=float(params.get("tau", 1.0)),
        rounds=int(params.get("rounds", 3)),
        seed=int(seed))
    return resolve_ground_truth(spec)


def ground_truth_for_trace(trace_path: str,
                           record: Optional[dict] = None) -> Optional[dict]:
    """Adversary ground truth for a trace: recorded event, else spec.

    The ``scenario.ground_truth`` event the scenario builder emits is
    authoritative (it names the router the run actually compromised);
    the run-record fallback re-derives the same answer for traces that
    predate the event.
    """
    reader = TraceReader(trace_path)
    for event in reader.events(
            QueryFilter(events=("scenario.ground_truth",))):
        truth = dict(event.fields)
        truth["t"] = event.t
        return truth
    if record is not None:
        return ground_truth_from_record(record)
    return None


# -- flow timelines ---------------------------------------------------------

def flow_timeline(trace_path: str, flow: str) -> List[TraceEvent]:
    """Every event mentioning *flow*, ordered by virtual time.

    Emission order breaks virtual-time ties, so the timeline is total
    and deterministic (trace files are written in emission order).
    """
    reader = TraceReader(trace_path)
    indexed = list(enumerate(reader.events(QueryFilter(flow=flow))))
    indexed.sort(key=lambda pair: (
        pair[1].t if pair[1].t is not None else float("inf"), pair[0]))
    return [event for _, event in indexed]


# -- verdict provenance -----------------------------------------------------

@dataclass(frozen=True)
class VerdictReport:
    """One suspicion naming the queried router, with its evidence."""

    by: str
    segment: Tuple[str, ...]
    segment_id: str
    interval: Tuple[float, float]
    reason: str
    confidence: float
    true_positive: bool
    #: Evidence event kind -> count inside this (segment, window).
    evidence: Dict[str, int] = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "by": self.by,
            "segment": list(self.segment),
            "segment_id": self.segment_id,
            "interval": list(self.interval),
            "reason": self.reason,
            "confidence": self.confidence,
            "true_positive": self.true_positive,
            "evidence": {k: self.evidence[k]
                         for k in sorted(self.evidence)},
        }


@dataclass(frozen=True)
class RouterExplanation:
    """TP/FP/FN/TN classification of one router in one trace."""

    trace: str
    router: Optional[str]
    ground_truth: Optional[dict]
    #: "tp" | "fp" | "fn" | "tn" — suspected/not x adversary/not.
    classification: str
    detection_latency: Optional[float]
    total_suspicions: int
    verdicts: List[VerdictReport] = field(default_factory=list)

    def to_dict(self) -> dict:
        return {
            "trace": self.trace,
            "router": self.router,
            "ground_truth": self.ground_truth,
            "classification": self.classification,
            "detection_latency": self.detection_latency,
            "total_suspicions": self.total_suspicions,
            "verdicts": [v.to_dict() for v in self.verdicts],
        }


def _evidence_counts(evidence: List[TraceEvent],
                     segment: Tuple[str, ...],
                     interval: Tuple[float, float]) -> Dict[str, int]:
    """Evidence events whose actor is in *segment* during *interval*."""
    lo, hi = interval
    counts: Dict[str, int] = {}
    for event in evidence:
        if event.t is None or not lo <= event.t < hi:
            continue
        if event.fields.get("router") not in segment:
            continue
        counts[event.event] = counts.get(event.event, 0) + 1
    return counts


def explain_router(trace_path: str, router: Optional[str] = None,
                   record: Optional[dict] = None) -> RouterExplanation:
    """Classify *router* against one trace's detector output.

    Without an explicit *router* the ground-truth adversary is
    explained (the common forensic question: "did we catch it, and
    why?").  Classification: TP = adversary and suspected, FN =
    adversary but never suspected, FP = correct router suspected
    anyway, TN = correct router never suspected.
    """
    reader = TraceReader(trace_path)
    truth = ground_truth_for_trace(trace_path, record)
    adversary = (truth or {}).get("router")
    attack_at = (truth or {}).get("attack_at")
    target = router if router is not None else adversary

    suspicions = list(reader.events(
        QueryFilter(events=("detector.suspect",))))
    evidence = list(reader.events(QueryFilter(events=EVIDENCE_EVENTS)))

    verdicts: List[VerdictReport] = []
    for event in suspicions:
        segment = tuple(str(r) for r in (event.get("segment") or ()))
        if target is None or target not in segment:
            continue
        raw_interval = event.get("interval") or [event.t, event.t]
        interval = (float(raw_interval[0]), float(raw_interval[1]))
        is_tp = (adversary is not None and adversary in segment
                 and (attack_at is None or interval[1] > attack_at))
        verdicts.append(VerdictReport(
            by=str(event.get("by", "")),
            segment=segment,
            segment_id=str(event.get("segment_id",
                                     ">".join(segment))),
            interval=interval,
            reason=str(event.get("reason", "")),
            confidence=float(event.get("confidence", 1.0) or 1.0),
            true_positive=is_tp,
            evidence=_evidence_counts(evidence, segment, interval),
        ))

    suspected = bool(verdicts)
    if target is not None and target == adversary:
        classification = "tp" if suspected else "fn"
    else:
        classification = "fp" if suspected else "tn"

    latency: Optional[float] = None
    if classification == "tp" and attack_at is not None:
        covering = [v.interval[1] for v in verdicts if v.true_positive]
        if covering:
            latency = min(covering) - float(attack_at)

    return RouterExplanation(
        trace=trace_path,
        router=target,
        ground_truth=truth,
        classification=classification,
        detection_latency=latency,
        total_suspicions=len(suspicions),
        verdicts=verdicts,
    )


def explain_sweep(path: str,
                  router: Optional[str] = None) -> List[RouterExplanation]:
    """Explain *router* (or each trace's own adversary) across a sweep."""
    records = trace_run_records(path)
    explanations: List[RouterExplanation] = []
    for trace in trace_files(path):
        record = records.get(os.path.basename(trace))
        explanations.append(explain_router(trace, router, record))
    return explanations
