"""Sim-domain trace tap for the packet forwarding plane.

:class:`TraceTap` implements the :class:`repro.net.router.MonitorTap`
interface by duck typing — it deliberately imports nothing from
``repro.net`` so the observability layer stays zero-dependency and the
network layer can attach it with a local import without a cycle.

Counting happens in metrics (cheap, order-insensitive); full trace
*events* are emitted only for the rare, diagnosis-critical transitions:
drops, fabricated-packet injections, and *first-seen* flow waypoints.
Per-packet receive/enqueue/transmit events would dominate trace volume
without adding much beyond what the counters and the queue-occupancy
histogram already capture — but forensics (:mod:`repro.obs.forensics`)
needs each flow's per-hop journey, so the tap emits one
``net.flow_hop`` event the first time a flow crosses a
(router, out-neighbour) edge and one ``net.flow_deliver`` event the
first time it reaches a destination.  That bounds the extra volume to
O(flows x hops) regardless of packet count, and the events carry the
virtual time of the first crossing, which is exactly the causal order
a timeline reconstruction wants.
"""

from __future__ import annotations

from typing import Set, Tuple

from repro.obs.record import Recorder


def _reason_token(reason) -> str:
    """DropReason enum value → metric-name segment."""
    value = getattr(reason, "value", reason)
    return str(value)


class TraceTap:
    """Monitor tap that feeds the recorder's metrics and trace sink."""

    def __init__(self, rec: Recorder) -> None:
        self.rec = rec
        metrics = rec.metrics
        self._received = metrics.counter("repro.net.pkt.received")
        self._enqueued = metrics.counter("repro.net.pkt.enqueued")
        self._transmitted = metrics.counter("repro.net.pkt.transmitted")
        self._delivered = metrics.counter("repro.net.pkt.delivered")
        self._originated = metrics.counter("repro.net.pkt.originated")
        self._fabricated = metrics.counter("repro.net.pkt.fabricated")
        self._dropped = metrics.counter("repro.net.pkt.dropped")
        self._occupancy = metrics.histogram("repro.net.queue.occupancy")
        # First-seen flow waypoints (membership only — never iterated).
        self._seen_hops: Set[Tuple[object, str, str]] = set()
        self._seen_delivered: Set[Tuple[object, str]] = set()

    # -- MonitorTap interface (duck-typed) ----------------------------

    def on_receive(self, router, from_nbr, packet, time) -> None:
        self._received.inc()

    def on_enqueue(self, router, out_nbr, packet, time, occupancy) -> None:
        self._enqueued.inc()
        self._occupancy.observe(occupancy)
        flow = getattr(packet, "flow_id", None)
        key = (flow, router.name, out_nbr)
        if key not in self._seen_hops:
            self._seen_hops.add(key)
            self.rec.event(
                "net.flow_hop", time,
                router=router.name,
                out_nbr=out_nbr,
                flow=flow,
                src=getattr(packet, "src", None),
                dst=getattr(packet, "dst", None),
            )

    def on_transmit(self, router, out_nbr, packet, time) -> None:
        self._transmitted.inc()

    def on_deliver(self, router, packet, time) -> None:
        self._delivered.inc()
        flow = getattr(packet, "flow_id", None)
        key = (flow, router.name)
        if key not in self._seen_delivered:
            self._seen_delivered.add(key)
            self.rec.event(
                "net.flow_deliver", time,
                router=router.name,
                flow=flow,
                src=getattr(packet, "src", None),
                dst=getattr(packet, "dst", None),
            )

    def on_originate(self, router, packet, time) -> None:
        self._originated.inc()

    def on_drop(self, router, out_nbr, packet, time, reason, drop_prob) -> None:
        token = _reason_token(reason)
        self._dropped.inc()
        self.rec.metrics.counter(f"repro.net.drops.{token}").inc()
        self.rec.event(
            "net.drop", time,
            router=router.name,
            out_nbr=out_nbr,
            reason=token,
            flow=getattr(packet, "flow_id", None),
            src=getattr(packet, "src", None),
            dst=getattr(packet, "dst", None),
        )
