"""Sim-domain trace tap for the packet forwarding plane.

:class:`TraceTap` implements the :class:`repro.net.router.MonitorTap`
interface by duck typing — it deliberately imports nothing from
``repro.net`` so the observability layer stays zero-dependency and the
network layer can attach it with a local import without a cycle.

Counting happens in metrics (cheap, order-insensitive); full trace
*events* are emitted only for the rare, diagnosis-critical transitions:
drops and fabricated-packet injections.  Per-packet receive/enqueue/
transmit events would dominate trace volume without adding much beyond
what the counters and the queue-occupancy histogram already capture.
"""

from __future__ import annotations

from repro.obs.record import Recorder


def _reason_token(reason) -> str:
    """DropReason enum value → metric-name segment."""
    value = getattr(reason, "value", reason)
    return str(value)


class TraceTap:
    """Monitor tap that feeds the recorder's metrics and trace sink."""

    def __init__(self, rec: Recorder) -> None:
        self.rec = rec
        metrics = rec.metrics
        self._received = metrics.counter("repro.net.pkt.received")
        self._enqueued = metrics.counter("repro.net.pkt.enqueued")
        self._transmitted = metrics.counter("repro.net.pkt.transmitted")
        self._delivered = metrics.counter("repro.net.pkt.delivered")
        self._originated = metrics.counter("repro.net.pkt.originated")
        self._fabricated = metrics.counter("repro.net.pkt.fabricated")
        self._dropped = metrics.counter("repro.net.pkt.dropped")
        self._occupancy = metrics.histogram("repro.net.queue.occupancy")

    # -- MonitorTap interface (duck-typed) ----------------------------

    def on_receive(self, router, from_nbr, packet, time) -> None:
        self._received.inc()

    def on_enqueue(self, router, out_nbr, packet, time, occupancy) -> None:
        self._enqueued.inc()
        self._occupancy.observe(occupancy)

    def on_transmit(self, router, out_nbr, packet, time) -> None:
        self._transmitted.inc()

    def on_deliver(self, router, packet, time) -> None:
        self._delivered.inc()

    def on_originate(self, router, packet, time) -> None:
        self._originated.inc()

    def on_drop(self, router, out_nbr, packet, time, reason, drop_prob) -> None:
        token = _reason_token(reason)
        self._dropped.inc()
        self.rec.metrics.counter(f"repro.net.drops.{token}").inc()
        self.rec.event(
            "net.drop", time,
            router=router.name,
            out_nbr=out_nbr,
            reason=token,
            flow=getattr(packet, "flow_id", None),
            src=getattr(packet, "src", None),
            dst=getattr(packet, "dst", None),
        )
