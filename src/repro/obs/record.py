"""The global trace recorder.

One process-wide :class:`Recorder` instance sits behind ``recorder()``.
It is disabled by default: ``rec.active`` is a plain attribute read, so
instrumentation sites guard with ``if rec.active:`` and cost one
attribute load + branch when tracing is off.  Sites that would build a
tap object or format an event do so only inside that guard.

Time-domain rule: every ``t=`` passed to :meth:`Recorder.event` must be
simulator virtual time (``sim.now``) or an interval bound derived from
it — never a wall clock.  Wall-clock measurement lives exclusively in
:mod:`repro.obs.telemetry`.
"""

from __future__ import annotations

from typing import Optional

from repro.obs.metrics import MetricsRegistry
from repro.obs.sinks import NullSink


class Recorder:
    """Pairs a trace sink with a metrics registry behind one switch."""

    def __init__(self) -> None:
        self.active = False
        self.sink = NullSink()
        self.metrics = MetricsRegistry()
        self._events = 0

    # -- lifecycle ----------------------------------------------------

    def enable(self, sink) -> None:
        """Start recording into *sink* with a fresh metrics registry."""
        if self.active:
            raise RuntimeError("recorder already enabled; disable() first")
        self.sink = sink
        self.metrics = MetricsRegistry()
        self._events = 0
        self.active = True

    def disable(self) -> dict:
        """Stop recording; flush a final metrics snapshot to the sink.

        Returns the snapshot so callers can use it without re-reading
        the trace file.  Safe to call when already disabled.
        """
        if not self.active:
            return {}
        snapshot = self.metrics.snapshot()
        self.sink.emit({"event": "obs.metrics", "t": None,
                        "metrics": snapshot, "events": self._events})
        self.active = False
        sink, self.sink = self.sink, NullSink()
        self.metrics = MetricsRegistry()  # disabled means fully inert
        sink.close()
        return snapshot

    # -- recording ----------------------------------------------------

    def event(self, name: str, t: Optional[float], **fields) -> None:
        """Emit one structured trace event at sim time *t*."""
        record = {"event": name, "t": t}
        record.update(fields)
        self._events += 1
        self.sink.emit(record)

    @property
    def events_emitted(self) -> int:
        return self._events


_GLOBAL = Recorder()


def recorder() -> Recorder:
    """The process-wide recorder used by all instrumentation sites."""
    return _GLOBAL
