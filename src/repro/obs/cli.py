"""``python -m repro obs``: inspect and aggregate trace artifacts.

Subcommands:

``obs summarize PATH...``
    Aggregate one or more trace files / sweep directories: per-event
    counts, merged metrics, and the sweep manifest's telemetry section
    when present.  ``--format json`` emits the aggregate as JSON.

The former ``obs bench`` alias has been removed: sweep distillation
lives at ``python -m repro bench sweep`` (:mod:`repro.bench.sweep`).
Invoking ``obs bench`` exits with status 2 and a pointer.
"""

from __future__ import annotations

import argparse
import glob
import json
import os
import sys
from typing import Dict, List, Optional, Tuple

from repro.obs.metrics import merge_snapshots

#: Subdirectory of a sweep output dir where per-run traces land.
TRACE_DIRNAME = "traces"


def trace_files(path: str) -> List[str]:
    """Trace files under *path* (a file, sweep dir, or traces dir)."""
    if os.path.isfile(path):
        return [path]
    candidates = []
    if os.path.isdir(path):
        candidates = sorted(glob.glob(os.path.join(path, "*.jsonl")))
        if not candidates:
            # A sweep dir: its own traces/ plus any per-shard traces a
            # dispatched sweep left under shards/shard-*/traces/.
            candidates = sorted(
                glob.glob(os.path.join(path, TRACE_DIRNAME, "*.jsonl"))
                + glob.glob(os.path.join(path, "shards", "*",
                                         TRACE_DIRNAME, "*.jsonl")))
    return candidates


def read_trace(path: str) -> Tuple[Dict[str, int], List[dict], int]:
    """One trace file -> (event name counts, metric snapshots, lines)."""
    counts: Dict[str, int] = {}
    snapshots: List[dict] = []
    lines = 0
    with open(path, "r", encoding="utf-8") as fh:
        for raw in fh:
            raw = raw.strip()
            if not raw:
                continue
            lines += 1
            record = json.loads(raw)
            name = record.get("event", "?")
            if name == "obs.metrics":
                snapshots.append(record.get("metrics") or {})
                continue
            counts[name] = counts.get(name, 0) + 1
    return counts, snapshots, lines


def load_manifest_telemetry(path: str) -> Optional[dict]:
    """The telemetry section of *path*'s sweep.json, if either exists."""
    manifest_path = (path if os.path.isfile(path)
                     else os.path.join(path, "sweep.json"))
    if not os.path.exists(manifest_path) \
            or not manifest_path.endswith(".json"):
        return None
    with open(manifest_path, "r", encoding="utf-8") as fh:
        manifest = json.load(fh)
    return manifest.get("telemetry")


def summarize_paths(paths: List[str]) -> dict:
    """Aggregate traces (and any manifest telemetry) across *paths*."""
    files: List[str] = []
    for path in paths:
        files.extend(trace_files(path))
    events: Dict[str, int] = {}
    snapshots: List[dict] = []
    total_lines = 0
    for path in files:
        counts, file_snapshots, lines = read_trace(path)
        total_lines += lines
        snapshots.extend(file_snapshots)
        for name, count in counts.items():
            events[name] = events.get(name, 0) + count
    telemetry = None
    for path in paths:
        telemetry = load_manifest_telemetry(path)
        if telemetry is not None:
            break
    return {
        "traces": len(files),
        "records": total_lines,
        "events": {name: events[name] for name in sorted(events)},
        "metrics": merge_snapshots(snapshots),
        "telemetry": telemetry,
    }


def format_summary(summary: dict) -> List[str]:
    lines = [f"traces: {summary['traces']} file(s), "
             f"{summary['records']} record(s)"]
    if summary["events"]:
        lines.append("events:")
        for name in sorted(summary["events"]):
            lines.append(f"  {name}: {summary['events'][name]}")
    if summary["metrics"]:
        lines.append("metrics:")
        for name in sorted(summary["metrics"]):
            row = summary["metrics"][name]
            kind = row.get("kind")
            if kind == "counter":
                detail = f"{row['value']}"
            elif kind == "gauge":
                detail = (f"{row['value']} (min {row['min']}, "
                          f"max {row['max']})")
            else:
                detail = (f"count {row['count']}, mean {row['mean']:.3f}, "
                          f"max {row['max']}")
            lines.append(f"  {name} [{kind}]: {detail}")
    telemetry = summary.get("telemetry")
    if telemetry:
        runs = telemetry.get("runs", {})
        cache = telemetry.get("cache", {})
        lines.append(
            f"telemetry: wall {telemetry.get('wall_s', 0.0):.2f} s, "
            f"runs {runs.get('ok', 0)}/{runs.get('total', 0)} ok "
            f"({runs.get('cached', 0)} cached), cache hit rate "
            f"{cache.get('hit_rate', 0.0):.0%}")
        workers = telemetry.get("workers", {})
        lines.append(
            f"workers: jobs={workers.get('jobs', 1)}, utilization "
            f"{workers.get('utilization', 0.0):.0%}")
    return lines


# -- argparse wiring --------------------------------------------------------

def add_obs_parser(subparsers) -> None:
    parser = subparsers.add_parser(
        "obs", help="inspect and aggregate observability artifacts")
    obs_sub = parser.add_subparsers(dest="obs_command", required=True)

    summarize = obs_sub.add_parser(
        "summarize", help="aggregate trace files / sweep directories")
    summarize.add_argument("paths", nargs="+", metavar="PATH",
                           help="trace .jsonl file(s) or sweep dir(s)")
    summarize.add_argument("--format", choices=("text", "json"),
                           default="text")
    summarize.set_defaults(func=cmd_summarize)

    bench = obs_sub.add_parser(
        "bench",
        help="[removed] sweep distillation moved to `repro bench sweep`")
    bench.add_argument("args", nargs=argparse.REMAINDER)
    bench.set_defaults(func=cmd_bench_removed)


def cmd_summarize(args: argparse.Namespace) -> int:
    summary = summarize_paths(args.paths)
    if args.format == "json":
        print(json.dumps(summary, indent=2, sort_keys=True))
    else:
        for line in format_summary(summary):
            print(line)
    return 0


def cmd_bench_removed(args: argparse.Namespace) -> int:
    print("error: `repro obs bench` has been removed; use "
          "`python -m repro bench sweep SWEEP_DIR --out BENCH_obs.json` "
          "instead (see `python -m repro bench --help`)", file=sys.stderr)
    return 2
