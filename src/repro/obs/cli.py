"""``python -m repro obs``: inspect, query and diff trace artifacts.

Subcommands:

``obs summarize PATH...``
    Aggregate one or more trace files / sweep directories: per-event
    counts, merged metrics, and the summed telemetry of every sweep
    manifest found (top-level or per-shard).  ``--format json`` emits
    the aggregate as JSON.

``obs query PATH...``
    Stream matching trace events as canonical JSONL, filtered by
    ``--event/--flow/--router/--t0/--t1`` (conjunctive).  Uses the lazy
    ``*.idx.json`` sidecar index when available; ``--no-index`` forces
    a full scan (and builds no sidecars).

``obs flow FLOW PATH``
    Reconstruct one flow's timeline — hops, deliveries, drops,
    fabrications, misroutes — ordered by virtual time.

``obs explain ROUTER PATH``
    Verdict forensics for a router: every suspicion naming it, the
    drop/fabricate/misroute evidence inside each (segment, window),
    TP/FP/FN/TN classification against adversary ground truth, and
    detection latency.

``obs diff A B``
    Compare two sweep outputs (merged trace metrics, manifest
    aggregates, telemetry).  Exit 0 = no gating drift beyond
    ``--threshold``, 1 = regression, 2 = usage error.  Telemetry is
    informational unless ``--gate-telemetry``.

The former ``obs bench`` alias has been removed: sweep distillation
lives at ``python -m repro bench sweep`` (:mod:`repro.bench.sweep`).
Invoking ``obs bench`` exits with status 2 and a pointer.
"""

from __future__ import annotations

import argparse
import glob
import json
import os
import sys
from typing import Dict, List, Optional, Tuple

from repro.obs.diff import diff_sweeps, format_diff
from repro.obs.forensics import explain_sweep, flow_timeline
from repro.obs.metrics import merge_snapshots
from repro.obs.query import (
    QueryFilter,
    TRACE_DIRNAME,
    scan,
    trace_files,
)
from repro.obs.sinks import encode_line
from repro.obs.telemetry import merge_telemetry


def read_trace(path: str) -> Tuple[Dict[str, int], List[dict], int]:
    """One trace file -> (event name counts, metric snapshots, lines)."""
    counts: Dict[str, int] = {}
    snapshots: List[dict] = []
    lines = 0
    with open(path, "r", encoding="utf-8") as fh:
        for raw in fh:
            raw = raw.strip()
            if not raw:
                continue
            lines += 1
            record = json.loads(raw)
            name = record.get("event", "?")
            if name == "obs.metrics":
                snapshots.append(record.get("metrics") or {})
                continue
            counts[name] = counts.get(name, 0) + 1
    return counts, snapshots, lines


def load_manifest_telemetry(path: str) -> Optional[dict]:
    """The telemetry section of *path*'s sweep.json, if either exists."""
    manifest_path = (path if os.path.isfile(path)
                     else os.path.join(path, "sweep.json"))
    if not os.path.exists(manifest_path) \
            or not manifest_path.endswith(".json"):
        return None
    with open(manifest_path, "r", encoding="utf-8") as fh:
        manifest = json.load(fh)
    return manifest.get("telemetry")


def collect_telemetry(paths: List[str]) -> Optional[dict]:
    """Summed telemetry across every manifest the paths cover.

    Each path contributes its own sweep.json; a dispatched sweep whose
    top-level manifest is missing (or predates telemetry) falls back to
    summing its per-shard manifests under ``shards/*/sweep.json``.
    Multiple paths sum rather than first-one-wins, so summarizing two
    shard directories together reports their combined telemetry.
    """
    sections: List[dict] = []
    for path in paths:
        telemetry = load_manifest_telemetry(path)
        if telemetry is None and os.path.isdir(path):
            shard_manifests = sorted(glob.glob(
                os.path.join(path, "shards", "*", "sweep.json")))
            shard_sections = [load_manifest_telemetry(p)
                              for p in shard_manifests]
            shard_present = [s for s in shard_sections if s]
            if shard_present:
                sections.extend(shard_present)
                continue
        if telemetry is not None:
            sections.append(telemetry)
    if not sections:
        return None
    if len(sections) == 1:
        return sections[0]
    return merge_telemetry(sections)


def summarize_paths(paths: List[str]) -> dict:
    """Aggregate traces (and any manifest telemetry) across *paths*."""
    files: List[str] = []
    for path in paths:
        files.extend(trace_files(path))
    events: Dict[str, int] = {}
    snapshots: List[dict] = []
    total_lines = 0
    for path in files:
        counts, file_snapshots, lines = read_trace(path)
        total_lines += lines
        snapshots.extend(file_snapshots)
        for name, count in counts.items():
            events[name] = events.get(name, 0) + count
    return {
        "traces": len(files),
        "records": total_lines,
        "events": {name: events[name] for name in sorted(events)},
        "metrics": merge_snapshots(snapshots),
        "telemetry": collect_telemetry(paths),
    }


def format_summary(summary: dict) -> List[str]:
    lines = [f"traces: {summary['traces']} file(s), "
             f"{summary['records']} record(s)"]
    if summary["events"]:
        lines.append("events:")
        for name in sorted(summary["events"]):
            lines.append(f"  {name}: {summary['events'][name]}")
    if summary["metrics"]:
        lines.append("metrics:")
        for name in sorted(summary["metrics"]):
            row = summary["metrics"][name]
            kind = row.get("kind")
            if kind == "counter":
                detail = f"{row['value']}"
            elif kind == "gauge":
                detail = (f"{row['value']} (min {row['min']}, "
                          f"max {row['max']})")
            else:
                detail = (f"count {row['count']}, mean {row['mean']:.3f}, "
                          f"max {row['max']}")
            lines.append(f"  {name} [{kind}]: {detail}")
    telemetry = summary.get("telemetry")
    if telemetry:
        runs = telemetry.get("runs", {})
        cache = telemetry.get("cache", {})
        lines.append(
            f"telemetry: wall {telemetry.get('wall_s', 0.0):.2f} s, "
            f"runs {runs.get('ok', 0)}/{runs.get('total', 0)} ok "
            f"({runs.get('cached', 0)} cached), cache hit rate "
            f"{cache.get('hit_rate', 0.0):.0%}")
        workers = telemetry.get("workers", {})
        lines.append(
            f"workers: jobs={workers.get('jobs', 1)}, utilization "
            f"{workers.get('utilization', 0.0):.0%}")
    return lines


# -- argparse wiring --------------------------------------------------------

def add_obs_parser(subparsers) -> None:
    parser = subparsers.add_parser(
        "obs", help="inspect, query and diff observability artifacts")
    obs_sub = parser.add_subparsers(dest="obs_command", required=True)

    summarize = obs_sub.add_parser(
        "summarize", help="aggregate trace files / sweep directories")
    summarize.add_argument("paths", nargs="+", metavar="PATH",
                           help="trace .jsonl file(s) or sweep dir(s)")
    summarize.add_argument("--format", choices=("text", "json"),
                           default="text")
    summarize.set_defaults(func=cmd_summarize)

    query = obs_sub.add_parser(
        "query", help="stream matching trace events as JSONL")
    query.add_argument("paths", nargs="+", metavar="PATH",
                       help="trace .jsonl file(s) or sweep dir(s)")
    query.add_argument("--event", action="append", dest="events",
                       metavar="NAME",
                       help="event kind to match (repeatable)")
    query.add_argument("--flow", help="flow id to match")
    query.add_argument("--router", help="router name to match")
    query.add_argument("--t0", type=float,
                       help="virtual-time window start (inclusive)")
    query.add_argument("--t1", type=float,
                       help="virtual-time window end (exclusive)")
    query.add_argument("--limit", type=int, default=0,
                       help="stop after N matches (0 = unlimited)")
    query.add_argument("--count", action="store_true",
                       help="print only the number of matches")
    query.add_argument("--no-index", action="store_true",
                       help="full scan; build no .idx.json sidecars")
    query.set_defaults(func=cmd_query)

    flow = obs_sub.add_parser(
        "flow", help="reconstruct one flow's virtual-time timeline")
    flow.add_argument("flow", metavar="FLOW", help="flow id (e.g. f1)")
    flow.add_argument("paths", nargs="+", metavar="PATH",
                      help="trace .jsonl file(s) or sweep dir(s)")
    flow.add_argument("--format", choices=("text", "json"),
                      default="text")
    flow.set_defaults(func=cmd_flow)

    explain = obs_sub.add_parser(
        "explain", help="verdict forensics for one router")
    explain.add_argument("router", metavar="ROUTER",
                         help="router name to explain")
    explain.add_argument("paths", nargs="+", metavar="PATH",
                         help="trace .jsonl file(s) or sweep dir(s)")
    explain.add_argument("--format", choices=("text", "json"),
                         default="text")
    explain.set_defaults(func=cmd_explain)

    diff = obs_sub.add_parser(
        "diff", help="compare two sweep outputs (exit 1 on regression)")
    diff.add_argument("a", metavar="SWEEP_A", help="baseline sweep dir")
    diff.add_argument("b", metavar="SWEEP_B", help="candidate sweep dir")
    diff.add_argument("--threshold", type=float, default=0.0,
                      help="relative change tolerated on gating keys "
                           "(e.g. 0.02 = 2%%; default 0 = exact)")
    diff.add_argument("--gate-telemetry", action="store_true",
                      help="let wall-domain telemetry drift gate too")
    diff.add_argument("--format", choices=("text", "json"),
                      default="text")
    diff.set_defaults(func=cmd_diff)

    bench = obs_sub.add_parser(
        "bench",
        help="[removed] sweep distillation moved to `repro bench sweep`")
    bench.add_argument("args", nargs=argparse.REMAINDER)
    bench.set_defaults(func=cmd_bench_removed)


def cmd_summarize(args: argparse.Namespace) -> int:
    summary = summarize_paths(args.paths)
    if args.format == "json":
        print(json.dumps(summary, indent=2, sort_keys=True))
    else:
        for line in format_summary(summary):
            print(line)
    return 0


def cmd_query(args: argparse.Namespace) -> int:
    query = QueryFilter(
        events=tuple(args.events) if args.events else None,
        flow=args.flow, router=args.router, t0=args.t0, t1=args.t1)
    matched = 0
    for _, event in scan(args.paths, query,
                         use_index=not args.no_index):
        matched += 1
        if not args.count:
            print(encode_line(event.to_dict()))
        if args.limit and matched >= args.limit:
            break
    if args.count:
        print(matched)
    return 0


def _format_event_line(event) -> str:
    extras = " ".join(f"{key}={event.fields[key]}"
                      for key in sorted(event.fields))
    return f"t={event.t:.6f} {event.event} {extras}"


def cmd_flow(args: argparse.Namespace) -> int:
    files: List[str] = []
    for path in args.paths:
        files.extend(trace_files(path))
    if not files:
        print(f"error: no trace files under {', '.join(args.paths)}",
              file=sys.stderr)
        return 2
    payload = []
    for trace in files:
        timeline = flow_timeline(trace, args.flow)
        if not timeline:
            continue
        payload.append({"trace": trace,
                        "events": [e.to_dict() for e in timeline]})
        if args.format == "text":
            print(f"{trace}: flow {args.flow} "
                  f"({len(timeline)} event(s))")
            for event in timeline:
                print(f"  {_format_event_line(event)}")
    if args.format == "json":
        print(json.dumps(payload, indent=2, sort_keys=True))
    elif not payload:
        print(f"flow {args.flow}: no events in {len(files)} trace(s)")
    return 0


def cmd_explain(args: argparse.Namespace) -> int:
    explanations = []
    for path in args.paths:
        explanations.extend(explain_sweep(path, args.router))
    if not explanations:
        print(f"error: no trace files under {', '.join(args.paths)}",
              file=sys.stderr)
        return 2
    if args.format == "json":
        print(json.dumps([e.to_dict() for e in explanations],
                         indent=2, sort_keys=True))
        return 0
    for explanation in explanations:
        latency = (f"{explanation.detection_latency:.3f}s"
                   if explanation.detection_latency is not None
                   else "n/a")
        print(f"{explanation.trace}: router {explanation.router} -> "
              f"{explanation.classification.upper()} "
              f"(latency {latency}, "
              f"{len(explanation.verdicts)}/"
              f"{explanation.total_suspicions} suspicion(s) name it)")
        truth = explanation.ground_truth
        if truth:
            print(f"  ground truth: adversary={truth.get('router')} "
                  f"behavior={truth.get('behavior')} "
                  f"attack_at={truth.get('attack_at')}")
        for verdict in explanation.verdicts:
            evidence = ", ".join(
                f"{kind.split('.')[-1]}={count}"
                for kind, count in sorted(verdict.evidence.items()))
            print(f"  [{'TP' if verdict.true_positive else 'FP'}] "
                  f"{verdict.segment_id} "
                  f"window=[{verdict.interval[0]:g}, "
                  f"{verdict.interval[1]:g}) by {verdict.by} "
                  f"reason={verdict.reason or '-'} "
                  f"evidence: {evidence or 'none in window'}")
    return 0


def cmd_diff(args: argparse.Namespace) -> int:
    for path in (args.a, args.b):
        if not os.path.isdir(path) and not os.path.isfile(path):
            print(f"error: no such sweep: {path}", file=sys.stderr)
            return 2
    report = diff_sweeps(args.a, args.b, threshold=args.threshold,
                         gate_telemetry=args.gate_telemetry)
    if args.format == "json":
        print(json.dumps(report.to_dict(), indent=2, sort_keys=True))
    else:
        for line in format_diff(report):
            print(line)
    return report.exit_code


def cmd_bench_removed(args: argparse.Namespace) -> int:
    print("error: `repro obs bench` has been removed; use "
          "`python -m repro bench sweep SWEEP_DIR --out BENCH_obs.json` "
          "instead (see `python -m repro bench --help`)", file=sys.stderr)
    return 2
