# repro-lint: module=repro.obs.telemetry
"""Wall-domain sweep telemetry.

This is the **only** module in the observability subsystem allowed to
touch the wall clock: it measures how long real execution took — per-run
wall time, cache effectiveness, retries and crashes, worker utilization,
shard dispatch latency — and records it in the ``telemetry`` section of
a ``repro.sweep/v4`` manifest.  None of it feeds back into simulated
behaviour, so determinism of results is untouched; the DET003 lint
exemption is scoped to exactly this module.

Sim-domain quantities (event counts, virtual-time horizons) belong in
:mod:`repro.obs.metrics` / :mod:`repro.obs.trace`, never here.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Sequence

#: Schema tag for the manifest ``telemetry`` section.
TELEMETRY_SCHEMA = "repro.obs.telemetry/v1"


def now_wall() -> float:
    """Monotonic wall-clock reading for interval measurement."""
    return time.perf_counter()


def _error_kinds(records: Sequence[dict]) -> Dict[str, int]:
    kinds: Dict[str, int] = {}
    for record in records:
        error = record.get("error")
        if isinstance(error, dict):
            kind = str(error.get("kind", "error"))
            kinds[kind] = kinds.get(kind, 0) + 1
    return {kind: kinds[kind] for kind in sorted(kinds)}


def build_telemetry(
    *,
    wall_s: float,
    records: Sequence[dict],
    jobs: int,
    cache_stats: Optional[Dict[str, int]] = None,
    dispatch: Optional[dict] = None,
) -> dict:
    """Assemble the manifest ``telemetry`` section for one sweep.

    ``records`` are the serialized run records (the manifest ``runs``
    rows); everything here is derived from them plus wall-clock
    measurements the runner took around execution.
    """
    total = len(records)
    ok = sum(1 for r in records if r.get("status", "ok") == "ok")
    cached = sum(1 for r in records if r.get("cached"))
    executed = [r for r in records if not r.get("cached")]
    run_walls = [float(r.get("elapsed_s", 0.0)) for r in executed]
    attempts = [int(r.get("attempts", 1)) for r in executed]
    total_attempts = sum(attempts)
    retried_runs = sum(1 for a in attempts if a > 1)
    run_total = sum(run_walls)
    stats = dict(cache_stats or {})
    hits = int(stats.get("hits", cached))
    misses = int(stats.get("misses", len(executed)))
    lookups = hits + misses
    capacity = jobs * wall_s
    return {
        "schema": TELEMETRY_SCHEMA,
        "wall_s": wall_s,
        "runs": {
            "total": total,
            "ok": ok,
            "failed": total - ok,
            "cached": cached,
            "executed": len(executed),
        },
        "attempts": {
            "total": total_attempts,
            "retried_runs": retried_runs,
            "retries": total_attempts - len(executed),
        },
        "errors": _error_kinds(records),
        "run_wall": {
            "total_s": run_total,
            "mean_s": run_total / len(run_walls) if run_walls else 0.0,
            "max_s": max(run_walls) if run_walls else 0.0,
        },
        "workers": {
            "jobs": jobs,
            "utilization": run_total / capacity if capacity > 0 else 0.0,
        },
        "cache": {
            "hits": hits,
            "misses": misses,
            "hit_rate": hits / lookups if lookups else 0.0,
            "stores": int(stats.get("stores", 0)),
            "evictions": int(stats.get("evictions", 0)),
        },
        "dispatch": dispatch,
    }


def merge_telemetry(sections: Sequence[Optional[dict]]) -> Optional[dict]:
    """Combine the ``telemetry`` sections of merged sweep manifests.

    Manifests predating v4 (or shards whose telemetry was discarded,
    e.g. a SIGKILLed dispatch attempt) contribute nothing; if no input
    carries telemetry the merge result has none either.  Counters add,
    rates are recomputed from the merged counters, and per-section
    ``dispatch`` details are dropped — the merging caller owns the
    dispatch record for the combined sweep.
    """
    present = [s for s in sections if s]
    if not present:
        return None
    wall_s = sum(float(s.get("wall_s", 0.0)) for s in present)
    runs = {key: sum(int(s.get("runs", {}).get(key, 0)) for s in present)
            for key in ("total", "ok", "failed", "cached", "executed")}
    attempts = {key: sum(int(s.get("attempts", {}).get(key, 0))
                         for s in present)
                for key in ("total", "retried_runs", "retries")}
    errors: Dict[str, int] = {}
    for section in present:
        for kind, count in (section.get("errors") or {}).items():
            errors[kind] = errors.get(kind, 0) + int(count)
    run_total = sum(float(s.get("run_wall", {}).get("total_s", 0.0))
                    for s in present)
    run_max = max((float(s.get("run_wall", {}).get("max_s", 0.0))
                   for s in present), default=0.0)
    jobs = max((int(s.get("workers", {}).get("jobs", 1))
                for s in present), default=1)
    cache = {key: sum(int(s.get("cache", {}).get(key, 0)) for s in present)
             for key in ("hits", "misses", "stores", "evictions")}
    lookups = cache["hits"] + cache["misses"]
    capacity = jobs * wall_s
    return {
        "schema": TELEMETRY_SCHEMA,
        "wall_s": wall_s,
        "runs": runs,
        "attempts": attempts,
        "errors": {kind: errors[kind] for kind in sorted(errors)},
        "run_wall": {
            "total_s": run_total,
            "mean_s": (run_total / runs["executed"]
                       if runs["executed"] else 0.0),
            "max_s": run_max,
        },
        "workers": {
            "jobs": jobs,
            "utilization": run_total / capacity if capacity > 0 else 0.0,
        },
        "cache": {
            **cache,
            "hit_rate": cache["hits"] / lookups if lookups else 0.0,
        },
        "dispatch": None,
    }


class DispatchTimer:
    """Accumulates shard submit/collect wall times for one dispatch."""

    def __init__(self, executor_name: str) -> None:
        self.executor = executor_name
        self.submit_s = 0.0
        self.collect_s = 0.0

    def dispatch_section(self, shard_rows: List[dict]) -> dict:
        return {
            "executor": self.executor,
            "submit_s": self.submit_s,
            "collect_s": self.collect_s,
            "shards": shard_rows,
        }
