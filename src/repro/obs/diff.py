"""Sweep-vs-sweep drift detection over traces and manifests.

:func:`diff_sweeps` compares two sweep output directories across three
sections:

* ``metrics`` — the merged sim-domain metric snapshots of every trace
  under each sweep.  These are deterministic aggregates of simulation
  events, so *any* drift is signal; they gate by default.
* ``aggregate`` — the manifest's aggregated result statistics (means,
  CIs).  Fixed-seed sweeps make these deterministic too; gate by
  default.
* ``telemetry`` — the manifest's wall-domain telemetry section (wall
  seconds, worker utilization, cache hit rates).  Inherently noisy
  across machines and runs, so it is reported but only gates when the
  caller opts in.

A key counts as a **regression** when it gates and its relative change
exceeds the threshold in either direction (determinism checking is
two-sided: a metric going *down* unexpectedly is as suspicious as one
going up), or when it exists on only one side.  The exit-code contract
(``repro obs diff``): 0 = no gating drift, 1 = regression, 2 = usage
error (missing sweep/manifest).  Diffing a sweep against itself is
always exit 0 with zero deltas.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.obs.forensics import load_manifest
from repro.obs.metrics import merge_snapshots
from repro.obs.query import QueryFilter, TraceReader, trace_files

#: Sections whose values are sim-domain-deterministic and gate by default.
GATING_SECTIONS = ("metrics", "aggregate")


def collect_metrics(path: str) -> Dict[str, dict]:
    """Merged metric snapshots across every trace under *path*."""
    snapshots: List[dict] = []
    for trace in trace_files(path):
        reader = TraceReader(trace)
        for event in reader.events(QueryFilter(events=("obs.metrics",))):
            snapshot = event.fields.get("metrics")
            if isinstance(snapshot, dict):
                snapshots.append(snapshot)
    return merge_snapshots(snapshots)


def _flatten(prefix: str, value: object,
             out: Dict[str, float]) -> None:
    if isinstance(value, bool):
        return
    if isinstance(value, (int, float)):
        out[prefix] = float(value)
    elif isinstance(value, dict):
        for key in sorted(value):
            _flatten(f"{prefix}.{key}", value[key], out)


def flatten_numeric_tree(section: str, tree: object) -> Dict[str, float]:
    """Dotted-key -> numeric value for one diff section."""
    out: Dict[str, float] = {}
    _flatten(section, tree if tree is not None else {}, out)
    return out


@dataclass(frozen=True)
class Delta:
    """One key that differs between the two sweeps."""

    key: str
    a: Optional[float]
    b: Optional[float]
    gating: bool
    regression: bool

    @property
    def rel(self) -> Optional[float]:
        """Relative change b/a - 1; None when undefined (a=0 or missing)."""
        if self.a is None or self.b is None or self.a == 0:
            return None
        return self.b / self.a - 1.0

    def to_dict(self) -> dict:
        return {"key": self.key, "a": self.a, "b": self.b,
                "rel": self.rel, "gating": self.gating,
                "regression": self.regression}


@dataclass
class DiffReport:
    a: str
    b: str
    threshold: float
    deltas: List[Delta] = field(default_factory=list)
    unchanged: int = 0

    @property
    def regressions(self) -> List[Delta]:
        return [d for d in self.deltas if d.regression]

    @property
    def exit_code(self) -> int:
        return 1 if self.regressions else 0

    def to_dict(self) -> dict:
        return {
            "a": self.a,
            "b": self.b,
            "threshold": self.threshold,
            "unchanged": self.unchanged,
            "deltas": [d.to_dict() for d in self.deltas],
            "regressions": len(self.regressions),
            "exit_code": self.exit_code,
        }


def _is_regression(a: Optional[float], b: Optional[float],
                   threshold: float) -> bool:
    if a is None or b is None:
        return True
    if a == b:
        return False
    if a == 0:
        return True  # any change off zero is infinite relative drift
    return abs(b / a - 1.0) > threshold


def diff_flat(flat_a: Dict[str, float], flat_b: Dict[str, float],
              threshold: float, gating: bool,
              report: DiffReport) -> None:
    """Fold the deltas between two flattened sections into *report*."""
    for key in sorted(set(flat_a) | set(flat_b)):
        a, b = flat_a.get(key), flat_b.get(key)
        if a == b:
            report.unchanged += 1
            continue
        regression = gating and _is_regression(a, b, threshold)
        report.deltas.append(Delta(key=key, a=a, b=b, gating=gating,
                                   regression=regression))


def diff_sweeps(path_a: str, path_b: str, threshold: float = 0.0,
                gate_telemetry: bool = False) -> DiffReport:
    """Compare two sweep outputs; see the module docstring for gating."""
    report = DiffReport(a=path_a, b=path_b, threshold=threshold)
    manifest_a = load_manifest(path_a) or {}
    manifest_b = load_manifest(path_b) or {}

    sections = [
        ("metrics", collect_metrics(path_a), collect_metrics(path_b),
         True),
        ("aggregate", manifest_a.get("aggregate"),
         manifest_b.get("aggregate"), True),
        ("telemetry", manifest_a.get("telemetry"),
         manifest_b.get("telemetry"), gate_telemetry),
    ]
    for name, tree_a, tree_b, gating in sections:
        diff_flat(flatten_numeric_tree(name, tree_a),
                  flatten_numeric_tree(name, tree_b),
                  threshold, gating, report)
    return report


def format_diff(report: DiffReport) -> List[str]:
    """Human-readable rendering of a diff report."""
    lines = [f"diff {report.a} -> {report.b} "
             f"(threshold {report.threshold:g}, "
             f"{report.unchanged} unchanged)"]
    if not report.deltas:
        lines.append("no deltas")
        return lines
    for delta in report.deltas:
        rel = delta.rel
        rel_text = f"{rel:+.2%}" if rel is not None else "n/a"
        marker = "REGRESSION" if delta.regression else (
            "drift" if delta.gating else "info")
        lines.append(f"  [{marker}] {delta.key}: "
                     f"{delta.a} -> {delta.b} ({rel_text})")
    lines.append(f"{len(report.regressions)} regression(s)")
    return lines
