"""Streaming query engine over sim-domain trace files.

Trace files are canonical JSONL (:mod:`repro.obs.sinks`): one record per
line, sorted keys, every record carrying its ``event`` name and virtual
timestamp ``t``.  This module reads them back as typed
:class:`TraceEvent` records, filtered by :class:`QueryFilter` predicates
(event kinds, flow id, router, virtual-time window) without ever
materializing a whole file.

For repeated queries against the same trace, :class:`TraceReader`
maintains a *lazy index sidecar* — ``<trace>.idx.json`` next to the
trace — mapping flow ids, router names and event kinds to the byte
offsets of the lines that mention them.  A filtered query seeks straight
to candidate lines instead of scanning.  The sidecar is built on first
indexed query, is keyed to the trace's byte size (traces are
write-once, and size — unlike mtime — never reads a wall clock, keeping
this module inside the sim-domain lint rules), and is rebuilt whenever
the size disagrees.  Unwritable trace directories degrade gracefully to
a full scan.
"""

from __future__ import annotations

import glob
import json
import os
from dataclasses import dataclass
from typing import (
    Dict, Iterable, Iterator, List, Optional, Sequence, Tuple,
)

#: Subdirectory of a sweep output dir where per-run traces land.
TRACE_DIRNAME = "traces"

#: Sidecar format version; bump on layout changes to force rebuilds.
INDEX_VERSION = 1


def trace_files(path: str) -> List[str]:
    """Trace files under *path* (a file, sweep dir, or traces dir)."""
    if os.path.isfile(path):
        return [path]
    candidates = []
    if os.path.isdir(path):
        candidates = sorted(glob.glob(os.path.join(path, "*.jsonl")))
        if not candidates:
            # A sweep dir: its own traces/ plus any per-shard traces a
            # dispatched sweep left under shards/shard-*/traces/.
            candidates = sorted(
                glob.glob(os.path.join(path, TRACE_DIRNAME, "*.jsonl"))
                + glob.glob(os.path.join(path, "shards", "*",
                                         TRACE_DIRNAME, "*.jsonl")))
    return candidates


@dataclass(frozen=True)
class TraceEvent:
    """One trace record: event name, virtual time, remaining fields.

    ``t`` is None for the few run-scoped records with no sim timestamp
    (the final ``obs.metrics`` flush); time-window filters never match
    those.
    """

    event: str
    t: Optional[float]
    fields: Dict[str, object]

    def get(self, key: str, default: object = None) -> object:
        return self.fields.get(key, default)

    @property
    def flow(self) -> Optional[str]:
        value = self.fields.get("flow")
        return None if value is None else str(value)

    @property
    def routers(self) -> Tuple[str, ...]:
        """Every router this event names (router/by/segment fields)."""
        return _record_routers(self.fields)

    def to_dict(self) -> dict:
        record = {"event": self.event, "t": self.t}
        record.update(self.fields)
        return record


def _record_routers(fields: Dict[str, object]) -> Tuple[str, ...]:
    names: List[str] = []
    for key in ("router", "by", "expected", "out_nbr"):
        value = fields.get(key)
        if isinstance(value, str) and value not in names:
            names.append(value)
    segment = fields.get("segment")
    if isinstance(segment, (list, tuple)):
        for value in segment:
            if isinstance(value, str) and value not in names:
                names.append(value)
    return tuple(names)


@dataclass(frozen=True)
class QueryFilter:
    """Conjunctive predicates over trace events.

    ``events`` restricts to the named kinds; ``flow`` to events carrying
    that flow id; ``router`` to events *naming* that router anywhere
    (``router``/``by``/``expected``/``out_nbr`` fields or a ``segment``
    member); ``t0``/``t1`` to the half-open virtual-time window
    ``[t0, t1)``.  Unset predicates match everything.
    """

    events: Optional[Tuple[str, ...]] = None
    flow: Optional[str] = None
    router: Optional[str] = None
    t0: Optional[float] = None
    t1: Optional[float] = None

    def matches(self, event: TraceEvent) -> bool:
        if self.events is not None and event.event not in self.events:
            return False
        if (self.t0 is not None or self.t1 is not None) \
                and event.t is None:
            return False
        if self.t0 is not None and event.t < self.t0:
            return False
        if self.t1 is not None and event.t >= self.t1:
            return False
        if self.flow is not None and event.flow != self.flow:
            return False
        if self.router is not None and self.router not in event.routers:
            return False
        return True


def _parse_line(raw: bytes) -> Optional[TraceEvent]:
    line = raw.strip()
    if not line:
        return None
    record = json.loads(line.decode("utf-8"))
    event = str(record.pop("event", "?"))
    t = record.pop("t", None)
    return TraceEvent(event=event,
                      t=None if t is None else float(t),
                      fields=record)


def index_path(trace_path: str) -> str:
    """Sidecar path for *trace_path* (``foo.jsonl`` → ``foo.idx.json``)."""
    stem, ext = os.path.splitext(trace_path)
    return (stem if ext == ".jsonl" else trace_path) + ".idx.json"


def build_index(trace_path: str) -> dict:
    """Scan a trace once, producing its offset index (not yet written)."""
    flows: Dict[str, List[int]] = {}
    routers: Dict[str, List[int]] = {}
    events: Dict[str, List[int]] = {}
    with open(trace_path, "rb") as fh:
        while True:
            offset = fh.tell()
            raw = fh.readline()
            if not raw:
                break
            parsed = _parse_line(raw)
            if parsed is None:
                continue
            events.setdefault(parsed.event, []).append(offset)
            flow = parsed.flow
            if flow is not None:
                flows.setdefault(flow, []).append(offset)
            for name in parsed.routers:
                routers.setdefault(name, []).append(offset)
    return {
        "version": INDEX_VERSION,
        "trace_bytes": os.path.getsize(trace_path),
        "events": {k: events[k] for k in sorted(events)},
        "flows": {k: flows[k] for k in sorted(flows)},
        "routers": {k: routers[k] for k in sorted(routers)},
    }


def _candidate_offsets(index: dict, query: QueryFilter) -> Optional[List[int]]:
    """Smallest candidate line set the index offers for *query*.

    Picks the most selective indexed predicate; the full filter is still
    applied to every parsed candidate, so over-approximation is fine.
    Returns None when no indexed predicate is set (full scan needed).
    """
    pools: List[List[int]] = []
    if query.flow is not None:
        pools.append(index["flows"].get(query.flow, []))
    if query.router is not None:
        pools.append(index["routers"].get(query.router, []))
    if query.events is not None:
        merged: List[int] = []
        for name in query.events:
            merged.extend(index["events"].get(name, []))
        pools.append(sorted(set(merged)))
    if not pools:
        return None
    return min(pools, key=len)


class TraceReader:
    """Streaming, optionally indexed reader for one trace file."""

    def __init__(self, path: str) -> None:
        self.path = path
        self._index: Optional[dict] = None

    # -- index management ---------------------------------------------

    def index(self, create: bool = True) -> Optional[dict]:
        """The trace's offset index, loading or (re)building lazily.

        A sidecar is fresh iff its recorded ``trace_bytes`` matches the
        trace's current size (traces are write-once; a size match after
        a rewrite is out of scope).  With ``create`` the rebuilt index
        is persisted best-effort — a read-only trace directory just
        means the next reader rebuilds in memory again.
        """
        if self._index is not None:
            return self._index
        sidecar = index_path(self.path)
        size = os.path.getsize(self.path)
        index = None
        if os.path.isfile(sidecar):
            try:
                with open(sidecar, "r", encoding="utf-8") as fh:
                    candidate = json.load(fh)
                if (candidate.get("version") == INDEX_VERSION
                        and candidate.get("trace_bytes") == size):
                    index = candidate
            except (ValueError, OSError):
                index = None
        if index is None:
            index = build_index(self.path)
            if create:
                try:
                    with open(sidecar, "w", encoding="utf-8") as fh:
                        json.dump(index, fh, sort_keys=True,
                                  separators=(",", ":"))
                except OSError:
                    pass
        self._index = index
        return index

    def flows(self) -> List[str]:
        """Flow ids the trace mentions, sorted."""
        return sorted((self.index() or {}).get("flows", {}))

    def routers(self) -> List[str]:
        """Router names the trace mentions, sorted."""
        return sorted((self.index() or {}).get("routers", {}))

    def event_counts(self) -> Dict[str, int]:
        """Event kind -> occurrence count, from the index."""
        events = (self.index() or {}).get("events", {})
        return {name: len(offsets) for name, offsets in events.items()}

    # -- reading ------------------------------------------------------

    def events(self, query: Optional[QueryFilter] = None,
               use_index: bool = True) -> Iterator[TraceEvent]:
        """Stream matching events in file (= emission) order."""
        offsets: Optional[List[int]] = None
        if query is not None and use_index:
            index = self.index()
            if index is not None:
                offsets = _candidate_offsets(index, query)
        if offsets is None:
            yield from self._scan(query)
        else:
            yield from self._seek(sorted(offsets), query)

    def _scan(self, query: Optional[QueryFilter]) -> Iterator[TraceEvent]:
        with open(self.path, "rb") as fh:
            for raw in fh:
                parsed = _parse_line(raw)
                if parsed is None:
                    continue
                if query is None or query.matches(parsed):
                    yield parsed

    def _seek(self, offsets: Sequence[int],
              query: Optional[QueryFilter]) -> Iterator[TraceEvent]:
        with open(self.path, "rb") as fh:
            for offset in offsets:
                fh.seek(offset)
                parsed = _parse_line(fh.readline())
                if parsed is None:
                    continue
                if query is None or query.matches(parsed):
                    yield parsed


def scan(paths: Iterable[str], query: Optional[QueryFilter] = None,
         use_index: bool = True) -> Iterator[Tuple[str, TraceEvent]]:
    """Stream (trace path, event) over every trace under *paths*."""
    for path in paths:
        for trace in trace_files(path):
            reader = TraceReader(trace)
            for event in reader.events(query, use_index=use_index):
                yield trace, event
