"""Picklable experiment registry shared by the CLI, sweeps and benches.

Each paper table/figure is registered once as an :class:`ExperimentSpec`
naming a **top-level** experiment function plus a reporter that formats
its result for the terminal.  Because specs reference module-level
callables only, an experiment can be named by string, shipped to a
worker process, executed there, and its result serialized — which is
what ``python -m repro sweep`` does.

Every spec carries a typed :class:`ParamSpec` table (name, type,
default, choices), derived from the experiment function's signature
unless declared explicitly.  CLI ``--param``/``--grid`` values are
coerced and validated against that table **before** any worker starts,
so a typo'd parameter fails in milliseconds with an actionable message
instead of deep inside a process pool.
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass, replace
from typing import Callable, Dict, List, Mapping, Optional, Tuple

from repro.eval import experiments as ex
from repro.eval.specs import (
    BEHAVIORS,
    PLACEMENT_STRATEGIES,
    TRAFFIC_KINDS,
    topology_names,
)


# ---------------------------------------------------------------------------
# Reporters: result object -> printable lines
# ---------------------------------------------------------------------------

def report_scenario(result) -> List[str]:
    return [
        f"detected: {result.detected}",
        f"detection latency (rounds): {result.metrics.detection_latency_rounds}",
        f"false positive rounds: {result.metrics.false_positive_rounds}",
        f"drops: {result.total_drops} total, {result.congestive_drops} "
        f"congestive, {result.malicious_drops_truth} truly malicious",
    ]


def report_pr_curve(curve) -> List[str]:
    lines = [f"topology={curve.topology} protocol={curve.protocol}",
             "k  max  mean  median"]
    lines += [f"{k}  {mx:.0f}  {mean:.1f}  {med:.1f}"
              for k, mx, mean, med in curve.rows()]
    return lines


def report_fatih(r) -> List[str]:
    return [
        f"convergence: {r.convergence_time:.1f} s",
        f"attack at {r.attack_time:.1f} s, detected at "
        f"{r.first_detection:.1f} s, rerouted at {r.reroute_time:.1f} s",
        f"RTT {1000 * r.rtt_before:.1f} -> {1000 * r.rtt_after:.1f} ms",
        "suspected: " + "; ".join(" -> ".join(s)
                                  for s in r.suspected_segments),
    ]


def report_threshold(t) -> List[str]:
    lines = [f"benign max losses {t.benign_max_losses}; "
             f"malicious total {t.total_malicious_drops}"]
    for th in t.thresholds:
        lines.append(
            f"  T={th:3d}: fp={t.static_fp_rounds[th]:3d} "
            f"detected={t.static_detected[th]!s:5s} "
            f"free drops={t.static_free_drops[th]}")
    lines.append(f"  chi: fp={t.chi_fp_rounds} "
                 f"detected={t.chi_detected}")
    return lines


def report_response(res) -> List[str]:
    return [f"{k}: unreachable={v.unreachable_pairs} "
            f"mean stretch={v.mean_stretch:.3f}"
            for k, v in res.items()]


def report_ns_points(points) -> List[str]:
    return [f"rate {p.drop_rate:.2f}: detected={p.detected} "
            f"latency={p.detection_latency_rounds} "
            f"fp={p.false_positive_rounds}"
            for p in points]


def report_overhead(result) -> List[str]:
    return result.rows()


def report_protocol_bench(r) -> List[str]:
    return [
        f"{r.protocol} on {r.bad_router}: "
        f"suspicions={r.total_suspicions} accurate={r.accurate} "
        f"complete={r.complete} precision={r.precision}",
        f"simulator events: {r.sim_events}",
    ]


def report_attack_matrix(r) -> List[str]:
    latency = ("n/a" if r.latency is None else f"{r.latency:.2f}s")
    return [
        f"{r.topology}: {r.behavior}@{r.rate:g} on {r.adversary_router} "
        f"({r.placement_strategy})",
        f"detected={r.detected} precision={r.precision:.2f} "
        f"recall={r.recall:.2f} latency={latency}",
        f"suspicions: {r.total_suspicions} total, "
        f"{r.false_suspicions} false; simulator events: {r.sim_events}",
    ]


def report_baselines(demos) -> List[str]:
    return [f"{demo.name}: {demo.values}" for demo in demos]


def report_modeling(m) -> List[str]:
    return [f"predicted loss {m.predicted_loss_prob:.4f} "
            f"observed {m.observed_loss_rate:.4f} "
            f"rel err {m.relative_error:.2f}"]


def baseline_demos() -> List[ex.BaselineDemo]:
    """The Ch. 3 baseline flaw demonstrations, bundled as one experiment."""
    return [ex.watchers_flaw_demo(), ex.perlman_collusion_demo(),
            ex.sectrace_framing_demo(), ex.awerbuch_localization_demo()]


# ---------------------------------------------------------------------------
# Specs
# ---------------------------------------------------------------------------

class ParamError(ValueError):
    """A CLI/API parameter failed validation against an experiment spec."""


_MISSING = object()  # "no default declared" sentinel (None is a real default)

#: Annotation spellings we coerce; anything else passes through untouched.
_ANNOTATION_TYPES = {
    "int": int, "float": float, "bool": bool, "str": str,
    int: int, float: float, bool: bool, str: str,
}


@dataclass(frozen=True)
class ParamSpec:
    """One declared experiment parameter: name, type, default, choices.

    ``type=None`` means untyped — any value passes through.  ``choices``
    restricts accepted values after coercion.  ``fields`` declares a
    one-level nested parameter (a spec-shaped mapping): the value must
    be a mapping whose keys are validated/coerced against the sub-table,
    and the CLI addresses sub-keys with dotted names
    (``--grid adversary.rate=0.01,0.05``).
    """

    name: str
    type: Optional[type] = None
    default: object = _MISSING
    choices: Optional[Tuple[object, ...]] = None
    fields: Optional[Tuple["ParamSpec", ...]] = None

    @property
    def required(self) -> bool:
        return self.default is _MISSING

    def field_spec(self, sub: str) -> "ParamSpec":
        """The sub-parameter spec for ``<name>.<sub>``, dotted-renamed."""
        dotted = f"{self.name}.{sub}"
        if self.fields is None:
            raise ParamError(
                f"parameter {self.name!r} has no nested fields; "
                f"{dotted!r} is not a valid parameter")
        for field_param in self.fields:
            if field_param.name == sub:
                return replace(field_param, name=dotted)
        raise ParamError(
            f"unknown parameter {dotted!r}; accepted: "
            + ", ".join(f"{self.name}.{f.name}" for f in self.fields))

    def coerce(self, value: object, *, experiment: str = "") -> object:
        """Convert/validate one value, raising an actionable ParamError."""
        where = f"experiment {experiment!r} " if experiment else ""
        if self.fields is not None:
            if value is None:
                return None
            if not isinstance(value, Mapping):
                raise ParamError(
                    f"{where}parameter {self.name!r} expects a mapping "
                    f"(address sub-keys as {self.name}."
                    f"{self.fields[0].name} etc.); got {value!r}")
            return {key: self.field_spec(str(key)).coerce(
                        sub_value, experiment=experiment)
                    for key, sub_value in value.items()}
        coerced = value
        # CLI literal parsing turns the text "none" into Python None; a
        # str parameter whose choices include "none" (e.g. the adversary
        # behavior control cell) means that spelling, not "no value".
        if (value is None and self.type is str and self.choices is not None
                and "none" in self.choices):
            return "none"
        if self.type is not None and value is not None:
            if self.type is bool and not isinstance(value, bool):
                text = str(value).lower()
                if text in ("true", "1", "yes"):
                    coerced = True
                elif text in ("false", "0", "no"):
                    coerced = False
                else:
                    raise ParamError(
                        f"{where}parameter {self.name!r} expects bool, "
                        f"got {value!r} (use true/false)")
            elif isinstance(value, bool) and self.type in (int, float):
                raise ParamError(
                    f"{where}parameter {self.name!r} expects "
                    f"{self.type.__name__}, got bool {value!r}")
            elif not isinstance(value, self.type):
                try:
                    coerced = self.type(value)
                except (TypeError, ValueError):
                    raise ParamError(
                        f"{where}parameter {self.name!r} expects "
                        f"{self.type.__name__}, got {value!r}") from None
        if self.choices is not None and coerced not in self.choices:
            raise ParamError(
                f"{where}parameter {self.name!r} must be one of "
                f"{', '.join(repr(c) for c in self.choices)}; "
                f"got {coerced!r}")
        return coerced

    def describe(self) -> str:
        if self.fields is not None:
            inner = ", ".join(f.describe() for f in self.fields)
            return f"{self.name}.{{{inner}}}"
        bits = [self.name]
        if self.type is not None:
            bits.append(f": {self.type.__name__}")
        if self.default is not _MISSING:
            bits.append(f" = {self.default!r}")
        if self.choices is not None:
            bits.append(" in {" + ", ".join(repr(c) for c in self.choices)
                        + "}")
        return "".join(bits)


def params_from_signature(fn: Callable[..., object]) -> Tuple[ParamSpec, ...]:
    """Derive a ParamSpec table from a function's signature.

    Only simple scalar annotations (int/float/bool/str) become typed;
    sequences, unions and exotica stay untyped so arbitrary Python
    values can still be passed through the API.
    """
    specs = []
    for param in inspect.signature(fn).parameters.values():
        if param.kind not in (param.POSITIONAL_OR_KEYWORD, param.KEYWORD_ONLY):
            continue
        annotation = param.annotation
        declared = _ANNOTATION_TYPES.get(annotation)
        default = (_MISSING if param.default is inspect.Parameter.empty
                   else param.default)
        if declared is None and default is not _MISSING \
                and isinstance(default, (int, float, bool, str)):
            declared = type(default)
        specs.append(ParamSpec(param.name, declared, default))
    return tuple(specs)


@dataclass(frozen=True)
class ExperimentSpec:
    """One runnable experiment: a picklable function, reporter, params.

    ``params`` is the typed parameter table; leave it empty and it is
    derived from ``fn``'s signature (explicit entries override the
    derived ones by name, so a spec can e.g. add ``choices`` to one
    parameter without restating the rest).
    """

    name: str
    fn: Callable[..., object]
    reporter: Callable[[object], List[str]]
    defaults: Tuple[Tuple[str, object], ...] = ()
    description: str = ""
    params: Tuple[ParamSpec, ...] = ()

    def __post_init__(self) -> None:
        derived = params_from_signature(self.fn)
        overrides = {p.name: p for p in self.params}
        unknown = sorted(set(overrides) - {p.name for p in derived})
        if unknown:
            raise ValueError(
                f"experiment {self.name!r} declares ParamSpec(s) "
                f"{', '.join(unknown)} not in {self.fn.__name__}'s "
                f"signature")
        merged = tuple(overrides.get(p.name, p) for p in derived)
        object.__setattr__(self, "params", merged)

    @property
    def param_names(self) -> Tuple[str, ...]:
        return tuple(p.name for p in self.params)

    @property
    def accepts_seed(self) -> bool:
        return "seed" in self.param_names

    def param_spec(self, name: str) -> ParamSpec:
        """Resolve a (possibly dotted, ``root.sub``) parameter name."""
        root, _, rest = name.partition(".")
        for param in self.params:
            if param.name == root:
                if not rest:
                    return param
                try:
                    return param.field_spec(rest)
                except ParamError as error:
                    raise ParamError(
                        f"experiment {self.name!r}: {error}") from None
        raise ParamError(
            f"experiment {self.name!r} does not accept parameter "
            f"{name!r}; accepted: {', '.join(self.param_names) or '(none)'}")

    def coerce_params(self, values: Mapping[str, object]) -> Dict[str, object]:
        """Validate/coerce a parameter mapping against the table."""
        return {name: self.param_spec(name).coerce(value,
                                                   experiment=self.name)
                for name, value in values.items()}

    def run(self, **params):
        from repro.sweep.grid import fold_dotted_params

        merged = dict(self.defaults)
        merged.update(params)
        merged = fold_dotted_params(merged)
        return self.fn(**self.coerce_params(merged))

    def report(self, result) -> List[str]:
        return self.reporter(result)


_REGISTRY: Dict[str, ExperimentSpec] = {}


def register(spec: ExperimentSpec) -> ExperimentSpec:
    _REGISTRY[spec.name] = spec
    return spec


def unregister(name: str) -> None:
    _REGISTRY.pop(name, None)


def names() -> List[str]:
    return list(_REGISTRY)


def get(name: str) -> ExperimentSpec:
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown experiment {name!r}; available: "
            f"{', '.join(_REGISTRY)}") from None


def registry() -> Dict[str, ExperimentSpec]:
    return dict(_REGISTRY)


def run_experiment(name: str, params: Mapping[str, object] = {}) -> object:
    """Look an experiment up by name and run it — the worker entry point."""
    return get(name).run(**dict(params))


for _spec in (
    ExperimentSpec("fig5_2", ex.fig5_2_pr_pi2, report_pr_curve,
                   defaults=(("topology", "ebone"),),
                   description="Fig 5.2: segments monitored per router, Π2"),
    ExperimentSpec("fig5_4", ex.fig5_4_pr_pik2, report_pr_curve,
                   defaults=(("topology", "ebone"),),
                   description="Fig 5.4: segments monitored per router, Πk+2"),
    ExperimentSpec("overhead", ex.state_overhead, report_overhead,
                   description="§5.1.1/§5.2.1: counter state vs WATCHERS"),
    ExperimentSpec("fig5_7", ex.fig5_7_fatih, report_fatih,
                   description="Fig 5.7: Fatih attack/detect/reroute timeline"),
    ExperimentSpec("fig6_3", ex.fig6_3_ns_simulation, report_ns_points,
                   description="Fig 6.3: χ detection across attack rates"),
    ExperimentSpec("fig6_5", ex.fig6_5_no_attack, report_scenario,
                   description="Fig 6.5: droptail, pure congestion"),
    ExperimentSpec("fig6_6", ex.fig6_6_attack1, report_scenario,
                   description="Fig 6.6: drop 20% of the selected flow"),
    ExperimentSpec("chi", ex.chi_detection_bench, report_scenario,
                   description="bench: small, fast χ detection scenario "
                               "(CI smoke / profiling)"),
    ExperimentSpec("pi2_bench", ex.pi2_bench, report_protocol_bench,
                   description="bench: Π2 packet-plane run, 6-router chain"),
    ExperimentSpec("pik2_bench", ex.pik2_bench, report_protocol_bench,
                   description="bench: Πk+2 packet-plane run, 6-router chain"),
    ExperimentSpec("tcp_heavy", ex.tcp_heavy_bench, report_scenario,
                   description="bench: TCP-heavy droptail congestion, "
                               "no attack"),
    ExperimentSpec("adversary_heavy", ex.adversary_heavy_bench,
                   report_scenario,
                   description="bench: RED with combined conditional-drop "
                               "+ SYN-drop adversary"),
    ExperimentSpec("fig6_7", ex.fig6_7_attack2, report_scenario,
                   description="Fig 6.7: drop selected flow at queue 90%"),
    ExperimentSpec("fig6_8", ex.fig6_8_attack3, report_scenario,
                   description="Fig 6.8: drop selected flow at queue 95%"),
    ExperimentSpec("fig6_9", ex.fig6_9_attack4, report_scenario,
                   description="Fig 6.9: SYN-drop a connecting host"),
    ExperimentSpec("fig6_11", ex.fig6_11_red_no_attack, report_scenario,
                   description="Fig 6.11: RED, no attack"),
    ExperimentSpec("fig6_12", ex.fig6_12_red_attack1, report_scenario,
                   description="Fig 6.12: RED drop above 45,000 bytes"),
    ExperimentSpec("fig6_13", ex.fig6_13_red_attack2, report_scenario,
                   description="Fig 6.13: RED drop above 54,000 bytes"),
    ExperimentSpec("fig6_14", ex.fig6_14_red_attack3, report_scenario,
                   description="Fig 6.14: RED drop 10% above 45,000 bytes"),
    ExperimentSpec("fig6_15", ex.fig6_15_red_attack4, report_scenario,
                   description="Fig 6.15: RED drop 5% above 45,000 bytes"),
    ExperimentSpec("fig6_16", ex.fig6_16_red_attack5, report_scenario,
                   description="Fig 6.16: RED SYN-drop"),
    ExperimentSpec("threshold", ex.chi_vs_static_threshold, report_threshold,
                   description="§6.4.3: χ vs static loss thresholds"),
    ExperimentSpec("response", ex.response_strategy_ablation, report_response,
                   description="§2.4.3: segment vs router removal"),
    ExperimentSpec("baselines", baseline_demos, report_baselines,
                   description="Ch. 3 baseline flaw demonstrations"),
    ExperimentSpec("modeling", ex.traffic_modeling_comparison,
                   report_modeling,
                   description="§6.1.2: Appenzeller model vs simulation"),
    ExperimentSpec(
        "attack_matrix", ex.attack_matrix, report_attack_matrix,
        description="WedgeTail-style attack-matrix cell: Π2 detection "
                    "scored over topology x placement x behavior x rate",
        params=(
            ParamSpec("topology", str, "abilene",
                      choices=tuple(n for n in topology_names()
                                    if n != "simple")),
            ParamSpec("adversary", None, None, fields=(
                ParamSpec("behavior", str, "drop", choices=BEHAVIORS),
                ParamSpec("rate", float, 1.0),
                ParamSpec("targeting", str, "flows",
                          choices=("flows", "all")),
                ParamSpec("options", None, ()),
            )),
            ParamSpec("placement", None, None, fields=(
                ParamSpec("strategy", str, "seeded-random",
                          choices=PLACEMENT_STRATEGIES),
                ParamSpec("router", str, ""),
            )),
            ParamSpec("traffic", None, None, fields=(
                ParamSpec("kind", str, "cbr", choices=TRAFFIC_KINDS),
                ParamSpec("flows", int, 2),
                ParamSpec("rate_bps", float, 600_000.0),
                ParamSpec("duration", float, 4.0),
            )),
        )),
):
    register(_spec)


def _load_plugins() -> None:
    """Import the modules named in ``REPRO_PLUGINS`` so they register.

    ``REPRO_PLUGINS`` is an ``os.pathsep``-separated list of importable
    module names; each module registers its experiments at import time
    (via :func:`register`).  This is how extra experiments reach shard
    child processes, which only see this environment variable — a bad
    entry fails loudly rather than silently dropping experiments.
    """
    import importlib
    import os

    for name in os.environ.get("REPRO_PLUGINS", "").split(os.pathsep):
        name = name.strip()
        if not name:
            continue
        try:
            importlib.import_module(name)
        except Exception as error:
            # Without this, a worker on another host dies with a bare
            # traceback that never says which plugin entry was at fault.
            raise ImportError(
                f"REPRO_PLUGINS: plugin module {name!r} failed to "
                f"import/register ({type(error).__name__}: {error}); "
                f"fix the module or drop it from REPRO_PLUGINS"
            ) from error


_load_plugins()
