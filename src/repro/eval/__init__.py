"""Evaluation harness: metrics, typed scenario specs, per-figure experiments.

Every table/figure of the paper's evaluation maps to one function in
:mod:`repro.eval.experiments`; benches, tests and examples all call the
same functions so results are consistent everywhere.  Scenarios are
described by the typed, serializable specs of :mod:`repro.eval.specs`
and built with :func:`build_scenario`.

The supported surface is exactly ``__all__``.  The ``experiments`` and
``registry`` submodules are part of that promise (they are how sweeps
and plugins address experiment functions); the remaining submodules are
internal — reaching them through the package still works for one release
but emits a :class:`DeprecationWarning`, and the ``API001`` lint rule
flags in-repo imports that bypass the package for exported names.
"""

import importlib as _importlib
import warnings as _warnings

from repro.eval.metrics import DetectionMetrics, score_round_findings
from repro.eval.results import (
    EvalResult,
    EvalResultBase,
    deserialize_result,
    register_result_type,
    result_type_name,
    serialize_result,
)
from repro.eval.specs import (
    AdversarySpec,
    BEHAVIORS,
    PLACEMENT_STRATEGIES,
    PlacementSpec,
    ScenarioSpec,
    TopologySpec,
    TrafficSpec,
    register_topology,
    resolve_ground_truth,
    topology_names,
    transit_candidates,
)
from repro.eval.scenarios import (
    AttackScenario,
    DropTailScenario,
    REDScenario,
    build_droptail_scenario,
    build_red_scenario,
    build_scenario,
    droptail_spec,
    red_spec,
)

__all__ = [
    "experiments",
    "registry",
    "DetectionMetrics",
    "EvalResult",
    "EvalResultBase",
    "deserialize_result",
    "register_result_type",
    "result_type_name",
    "score_round_findings",
    "serialize_result",
    "AdversarySpec",
    "BEHAVIORS",
    "PLACEMENT_STRATEGIES",
    "PlacementSpec",
    "ScenarioSpec",
    "TopologySpec",
    "TrafficSpec",
    "register_topology",
    "resolve_ground_truth",
    "topology_names",
    "transit_candidates",
    "AttackScenario",
    "DropTailScenario",
    "REDScenario",
    "build_droptail_scenario",
    "build_red_scenario",
    "build_scenario",
    "droptail_spec",
    "red_spec",
]

#: Public submodules — importable through the package without warning.
_PUBLIC_MODULES = ("experiments", "registry")

#: Internal implementation modules, deprecated as import targets.
_INTERNAL_MODULES = ("metrics", "results", "scenarios", "specs")

# Drop the submodule bindings the re-exports above created on the
# package, so attribute access routes through __getattr__ (PEP 562)
# and carries a deprecation warning for the internal modules.
for _name in _INTERNAL_MODULES:
    globals().pop(_name, None)
del _name


def __getattr__(name: str):
    if name in _PUBLIC_MODULES:
        return _importlib.import_module(f"repro.eval.{name}")
    if name in _INTERNAL_MODULES:
        _warnings.warn(
            f"repro.eval.{name} is an internal module; import the "
            f"supported names from the repro.eval package instead "
            f"(see repro.eval.__all__)",
            DeprecationWarning,
            stacklevel=2,
        )
        return _importlib.import_module(f"repro.eval.{name}")
    raise AttributeError(f"module 'repro.eval' has no attribute {name!r}")


def __dir__():
    return sorted(set(__all__) | set(_INTERNAL_MODULES))
