"""Evaluation harness: metrics, canned scenarios, per-figure experiments.

Every table/figure of the paper's evaluation maps to one function in
:mod:`repro.eval.experiments`; benches, tests and examples all call the
same functions so results are consistent everywhere.
"""

from repro.eval.metrics import DetectionMetrics, score_round_findings
from repro.eval.results import (
    EvalResult,
    EvalResultBase,
    deserialize_result,
    register_result_type,
    serialize_result,
)
from repro.eval.scenarios import (
    DropTailScenario,
    REDScenario,
    build_droptail_scenario,
    build_red_scenario,
)

__all__ = [
    "DetectionMetrics",
    "EvalResult",
    "EvalResultBase",
    "deserialize_result",
    "register_result_type",
    "score_round_findings",
    "serialize_result",
    "DropTailScenario",
    "REDScenario",
    "build_droptail_scenario",
    "build_red_scenario",
]
