"""Evaluation harness: metrics, canned scenarios, per-figure experiments.

Every table/figure of the paper's evaluation maps to one function in
:mod:`repro.eval.experiments`; benches, tests and examples all call the
same functions so results are consistent everywhere.
"""

from repro.eval.metrics import DetectionMetrics, score_round_findings
from repro.eval.scenarios import (
    DropTailScenario,
    REDScenario,
    build_droptail_scenario,
    build_red_scenario,
)

__all__ = [
    "DetectionMetrics",
    "score_round_findings",
    "DropTailScenario",
    "REDScenario",
    "build_droptail_scenario",
    "build_red_scenario",
]
