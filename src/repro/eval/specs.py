"""Typed, composable, sweepable scenario specifications.

A :class:`ScenarioSpec` bundles the four axes the paper's evaluation (and
WedgeTail-style attack matrices) vary independently:

* :class:`TopologySpec` — which network, from a registered catalogue
  (``abilene``, ``sprintlink_like``, ``ebone_like``, ``line``, ``ring``,
  ``grid``, plus anything added via :func:`register_topology`);
* :class:`AdversarySpec` — what the compromised router does (behavior
  kind, intensity/rate, flow targeting);
* :class:`PlacementSpec` — where the compromised router sits (``fixed``,
  ``seeded-random``, ``max-betweenness``, ``articulation-point``);
* :class:`TrafficSpec` — the offered load crossing it.

Every spec serializes with ``to_dict``/``from_dict`` so it can flow
through the sweep engine's ``ParamSpec``/``--grid``/cache-key machinery:
``to_dict`` output is plain JSON data whose canonical dump
(``json.dumps(..., sort_keys=True)``) is byte-stable across a
round-trip, which is what makes grid cells cacheable and mergeable.
Construction is deterministic — placement resolution and adversary
builds draw only from seeds handed in explicitly.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Dict, Mapping, Optional, Sequence, Tuple

import networkx as nx

from repro.net import (
    Compromise,
    DelayAttack,
    DropFlowAttack,
    DropFractionAttack,
    FabricateAttack,
    MisrouteAttack,
    ModifyAttack,
    Network,
    ReorderAttack,
    Topology,
    abilene,
    chain,
    ebone_like,
    grid,
    ring,
    sprintlink_like,
)

#: Adversarial behaviors an :class:`AdversarySpec` can request (the
#: paper's traffic-faulty taxonomy, §2.2, plus "none" for control cells).
BEHAVIORS = (
    "none", "drop", "modify", "reorder", "delay", "fabricate", "misroute",
)

#: Strategies a :class:`PlacementSpec` can use to pick the bad router.
PLACEMENT_STRATEGIES = (
    "fixed", "seeded-random", "max-betweenness", "articulation-point",
)

#: Offered-load shapes a :class:`TrafficSpec` can request.
TRAFFIC_KINDS = ("cbr", "tcp")

#: Canonical option storage: a sorted tuple of (key, value) pairs.
Options = Tuple[Tuple[str, object], ...]


def _canonical_options(options: object) -> Options:
    """Sorted, duplicate-free (key, value) tuple from a mapping/iterable."""
    if isinstance(options, Mapping):
        items = list(options.items())
    else:
        items = [tuple(pair) for pair in options]  # type: ignore[union-attr]
    out = tuple(sorted((str(key), value) for key, value in items))
    names = [key for key, _ in out]
    if len(set(names)) != len(names):
        raise ValueError(f"duplicate option keys: {sorted(names)}")
    return out


def _lookup(options: Options, key: str, default: object = None) -> object:
    for name, value in options:
        if name == key:
            return value
    return default


# ---------------------------------------------------------------------------
# Topology catalogue
# ---------------------------------------------------------------------------

_TOPOLOGY_CATALOGUE: Dict[str, Callable[..., Topology]] = {}


def register_topology(name: str, factory: Callable[..., Topology]) -> None:
    """Register ``factory`` under ``name`` for :meth:`TopologySpec.build`.

    The factory receives the spec's options as keyword arguments and must
    be deterministic for a given option set.
    """
    if name in _TOPOLOGY_CATALOGUE:
        raise ValueError(f"topology {name!r} is already registered")
    _TOPOLOGY_CATALOGUE[name] = factory


def topology_names() -> Tuple[str, ...]:
    """Sorted names of every registered topology."""
    return tuple(sorted(_TOPOLOGY_CATALOGUE))


def _line_topology(n: int = 6, **link_kwargs) -> Topology:
    return chain(int(n), **link_kwargs)


def _ring_topology(n: int = 8, **link_kwargs) -> Topology:
    return ring(int(n), **link_kwargs)


def _grid_topology(rows: int = 3, cols: int = 3, **link_kwargs) -> Topology:
    return grid(int(rows), int(cols), **link_kwargs)


for _name, _factory in (
    ("abilene", abilene),
    ("sprintlink_like", sprintlink_like),
    ("ebone_like", ebone_like),
    ("line", _line_topology),
    ("ring", _ring_topology),
    ("grid", _grid_topology),
):
    register_topology(_name, _factory)
del _name, _factory


@dataclass(frozen=True)
class TopologySpec:
    """Which network to build, by catalogue name plus factory options."""

    name: str = "abilene"
    options: Options = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "name", str(self.name))
        object.__setattr__(self, "options", _canonical_options(self.options))

    def option(self, key: str, default: object = None) -> object:
        return _lookup(self.options, key, default)

    def build(self) -> Topology:
        try:
            factory = _TOPOLOGY_CATALOGUE[self.name]
        except KeyError:
            raise ValueError(
                f"unknown topology {self.name!r}; registered: "
                f"{', '.join(topology_names())}") from None
        return factory(**{key: value for key, value in self.options})

    def to_dict(self) -> dict:
        return {"name": self.name,
                "options": {key: value for key, value in self.options}}

    @classmethod
    def from_dict(cls, data: Mapping) -> "TopologySpec":
        _check_keys("topology", data, ("name", "options"))
        return cls(name=data.get("name", "abilene"),
                   options=_canonical_options(data.get("options", ())))


# ---------------------------------------------------------------------------
# Adversary
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class AdversarySpec:
    """What the compromised router does to traffic crossing it.

    ``rate`` is the behavior's intensity: the fraction of matched packets
    affected for ``drop``/``modify``/``misroute``; ignored for
    ``reorder``/``delay`` (use the ``period``/``hold``/``delay`` options);
    and the forged-packet rate multiplier for ``fabricate`` (injection
    runs at ``rate * 100`` packets/second unless a ``rate_pps`` option
    overrides it).  ``targeting`` is ``"flows"`` (only the scenario's
    monitored flows are matched) or ``"all"`` (every packet is fair game).
    """

    behavior: str = "drop"
    rate: float = 1.0
    targeting: str = "flows"
    options: Options = ()

    def __post_init__(self) -> None:
        behavior = str(self.behavior)
        if behavior not in BEHAVIORS:
            raise ValueError(
                f"unknown adversary behavior {behavior!r}; one of "
                f"{', '.join(BEHAVIORS)}")
        targeting = str(self.targeting)
        if targeting not in ("flows", "all"):
            raise ValueError(
                f"unknown adversary targeting {targeting!r}; "
                f"'flows' or 'all'")
        rate = float(self.rate)
        if not 0.0 <= rate or rate != rate:
            raise ValueError(f"adversary rate must be >= 0, got {rate}")
        object.__setattr__(self, "behavior", behavior)
        object.__setattr__(self, "rate", rate)
        object.__setattr__(self, "targeting", targeting)
        object.__setattr__(self, "options", _canonical_options(self.options))

    def option(self, key: str, default: object = None) -> object:
        return _lookup(self.options, key, default)

    def build(
        self,
        network: Network,
        router: str,
        flow_ids: Sequence[str],
        seed: int,
        *,
        wrong_neighbor: Optional[str] = None,
        inject_neighbor: Optional[str] = None,
        forged_src: Optional[str] = None,
        forged_dst: Optional[str] = None,
    ) -> Optional[Compromise]:
        """Instantiate the compromise for ``router`` (None for "none").

        ``wrong_neighbor`` is required for ``misroute``;
        ``inject_neighbor``/``forged_src``/``forged_dst`` for
        ``fabricate``.  The caller attaches the returned object to
        ``network.routers[router].compromise`` (and calls ``start`` for
        fabricate, which is an active behaviour).
        """
        flows = sorted(flow_ids)
        target = flows if self.targeting == "flows" else None
        if self.behavior == "none":
            return None
        if self.behavior == "drop":
            if target is None:
                return DropFractionAttack(self.rate, seed=seed)
            return DropFlowAttack(target, fraction=self.rate, seed=seed)
        if self.behavior == "modify":
            return ModifyAttack(target, fraction=self.rate, seed=seed)
        if self.behavior == "reorder":
            return ReorderAttack(target,
                                 period=int(self.option("period", 4)),
                                 hold=float(self.option("hold", 0.05)))
        if self.behavior == "delay":
            return DelayAttack(float(self.option("delay", 0.05)),
                               flows=target)
        if self.behavior == "misroute":
            if wrong_neighbor is None:
                raise ValueError("misroute needs a wrong_neighbor")
            return MisrouteAttack(wrong_neighbor, flows=target,
                                  fraction=self.rate, seed=seed)
        # fabricate
        if inject_neighbor is None or forged_src is None or forged_dst is None:
            raise ValueError(
                "fabricate needs inject_neighbor, forged_src and forged_dst")
        rate_pps = float(self.option("rate_pps", 100.0 * self.rate))
        if rate_pps <= 0.0:
            raise ValueError("fabricate needs a positive injection rate")
        return FabricateAttack(
            network, router, inject_neighbor, forged_src, forged_dst,
            flow_id=str(self.option("flow_id", f"forged-{router}")),
            rate_pps=rate_pps, seed=seed)

    def to_dict(self) -> dict:
        return {"behavior": self.behavior, "rate": self.rate,
                "targeting": self.targeting,
                "options": {key: value for key, value in self.options}}

    @classmethod
    def from_dict(cls, data: Mapping) -> "AdversarySpec":
        _check_keys("adversary", data,
                    ("behavior", "rate", "targeting", "options"))
        return cls(behavior=data.get("behavior", "drop"),
                   rate=data.get("rate", 1.0),
                   targeting=data.get("targeting", "flows"),
                   options=_canonical_options(data.get("options", ())))


# ---------------------------------------------------------------------------
# Placement
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class PlacementSpec:
    """Where the compromised router sits.

    * ``fixed`` — the named ``router`` (must be a transit candidate);
    * ``seeded-random`` — uniform over the sorted candidates, seeded;
    * ``max-betweenness`` — the candidate with the highest betweenness
      centrality (lexicographic tie-break);
    * ``articulation-point`` — the highest-betweenness articulation
      point among the candidates, falling back to ``max-betweenness``
      when the candidate set contains no cut vertex.
    """

    strategy: str = "seeded-random"
    router: str = ""

    def __post_init__(self) -> None:
        strategy = str(self.strategy)
        if strategy not in PLACEMENT_STRATEGIES:
            raise ValueError(
                f"unknown placement strategy {strategy!r}; one of "
                f"{', '.join(PLACEMENT_STRATEGIES)}")
        object.__setattr__(self, "strategy", strategy)
        object.__setattr__(self, "router", str(self.router))

    def resolve(self, topology: Topology, seed: int,
                candidates: Sequence[str]) -> str:
        """Pick the adversary's router, deterministically for a seed."""
        pool = sorted(set(candidates))
        if not pool:
            raise ValueError(
                f"no transit candidates to place an adversary on in "
                f"{topology.name!r}")
        if self.strategy == "fixed":
            if not self.router:
                raise ValueError(
                    "placement.strategy=fixed needs placement.router")
            if self.router not in pool:
                raise ValueError(
                    f"placement.router {self.router!r} is not a transit "
                    f"candidate in {topology.name!r}")
            return self.router
        if self.strategy == "seeded-random":
            return random.Random(seed).choice(pool)
        graph = topology.to_networkx()
        centrality = nx.betweenness_centrality(graph)
        if self.strategy == "articulation-point":
            cut = sorted(set(nx.articulation_points(graph)) & set(pool))
            if cut:
                pool = cut
        # max() keeps the first of equals, so sorted pool => lexicographic
        # tie-break and a deterministic pick.
        return max(pool, key=lambda name: centrality.get(name, 0.0))

    def to_dict(self) -> dict:
        return {"strategy": self.strategy, "router": self.router}

    @classmethod
    def from_dict(cls, data: Mapping) -> "PlacementSpec":
        _check_keys("placement", data, ("strategy", "router"))
        return cls(strategy=data.get("strategy", "seeded-random"),
                   router=data.get("router", ""))


# ---------------------------------------------------------------------------
# Traffic
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class TrafficSpec:
    """Offered load: how many flows, how fast, for how long."""

    kind: str = "cbr"
    flows: int = 2
    rate_bps: float = 600_000.0
    duration: float = 4.0

    def __post_init__(self) -> None:
        kind = str(self.kind)
        if kind not in TRAFFIC_KINDS:
            raise ValueError(
                f"unknown traffic kind {kind!r}; one of "
                f"{', '.join(TRAFFIC_KINDS)}")
        flows = int(self.flows)
        if flows < 1:
            raise ValueError("traffic needs at least one flow")
        rate_bps = float(self.rate_bps)
        duration = float(self.duration)
        if rate_bps <= 0.0 or duration <= 0.0:
            raise ValueError("traffic rate_bps and duration must be > 0")
        object.__setattr__(self, "kind", kind)
        object.__setattr__(self, "flows", flows)
        object.__setattr__(self, "rate_bps", rate_bps)
        object.__setattr__(self, "duration", duration)

    def to_dict(self) -> dict:
        return {"kind": self.kind, "flows": self.flows,
                "rate_bps": self.rate_bps, "duration": self.duration}

    @classmethod
    def from_dict(cls, data: Mapping) -> "TrafficSpec":
        _check_keys("traffic", data,
                    ("kind", "flows", "rate_bps", "duration"))
        return cls(kind=data.get("kind", "cbr"),
                   flows=data.get("flows", 2),
                   rate_bps=data.get("rate_bps", 600_000.0),
                   duration=data.get("duration", 4.0))


# ---------------------------------------------------------------------------
# The composed scenario
# ---------------------------------------------------------------------------

def transit_candidates(topology: Topology) -> Tuple[str, ...]:
    """Routers interior to at least one shortest path in *topology*.

    This is the candidate pool adversary placement draws from: only a
    transit router ever sees the traffic it could attack.  Shared by
    scenario construction and forensic ground-truth resolution so the
    two can never disagree about where an adversary may sit.
    """
    from repro.net.routing import compute_all_paths

    paths = compute_all_paths(topology)
    return tuple(sorted({hop for path in paths.values()
                         for hop in path[1:-1]}))


def resolve_ground_truth(spec: "ScenarioSpec") -> dict:
    """The adversary a spec plants, resolved without running anything.

    Returns a JSON-ready dict with the planted ``router`` (None for
    ``behavior="none"`` control cells), the ``behavior``/``rate``, the
    virtual time ``attack_at`` the adversary activates (start of round
    1, i.e. ``spec.tau``), and the topology/placement/seed coordinates.
    Placement resolution is exactly the deterministic procedure
    :func:`repro.eval.build_scenario` uses, so forensic tooling can
    recover ground truth from a sweep manifest's serialized spec alone.
    """
    base = {
        "behavior": spec.adversary.behavior,
        "rate": spec.adversary.rate,
        "placement": spec.placement.strategy,
        "topology": spec.topology.name,
        "seed": spec.seed,
    }
    if spec.adversary.behavior == "none":
        return dict(base, router=None, attack_at=None)
    topo = spec.topology.build()
    bad = spec.placement.resolve(topo, spec.seed,
                                 transit_candidates(topo))
    return dict(base, router=bad, attack_at=spec.tau)


def _as_spec(value: object, cls: type, label: str):
    if value is None:
        return cls()
    if isinstance(value, cls):
        return value
    if isinstance(value, Mapping):
        return cls.from_dict(value)
    raise ValueError(
        f"{label} must be a {cls.__name__} or a mapping, "
        f"got {type(value).__name__}")


def _check_keys(label: str, data: Mapping, allowed: Tuple[str, ...]) -> None:
    unknown = sorted(set(data) - set(allowed))
    if unknown:
        raise ValueError(
            f"unknown {label} key(s) {', '.join(repr(k) for k in unknown)}; "
            f"accepted: {', '.join(allowed)}")


@dataclass(frozen=True)
class ScenarioSpec:
    """A complete, serializable description of one evaluation cell."""

    topology: TopologySpec = TopologySpec()
    adversary: AdversarySpec = AdversarySpec()
    placement: PlacementSpec = PlacementSpec()
    traffic: TrafficSpec = TrafficSpec()
    tau: float = 1.0
    rounds: int = 3
    seed: int = 0
    options: Options = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "topology",
                           _as_spec(self.topology, TopologySpec, "topology"))
        object.__setattr__(self, "adversary",
                           _as_spec(self.adversary, AdversarySpec,
                                    "adversary"))
        object.__setattr__(self, "placement",
                           _as_spec(self.placement, PlacementSpec,
                                    "placement"))
        object.__setattr__(self, "traffic",
                           _as_spec(self.traffic, TrafficSpec, "traffic"))
        tau = float(self.tau)
        rounds = int(self.rounds)
        if tau <= 0.0:
            raise ValueError("tau must be > 0")
        if rounds < 1:
            raise ValueError("need at least one monitored round")
        object.__setattr__(self, "tau", tau)
        object.__setattr__(self, "rounds", rounds)
        object.__setattr__(self, "seed", int(self.seed))
        object.__setattr__(self, "options", _canonical_options(self.options))

    def option(self, key: str, default: object = None) -> object:
        return _lookup(self.options, key, default)

    def to_dict(self) -> dict:
        return {
            "topology": self.topology.to_dict(),
            "adversary": self.adversary.to_dict(),
            "placement": self.placement.to_dict(),
            "traffic": self.traffic.to_dict(),
            "tau": self.tau,
            "rounds": self.rounds,
            "seed": self.seed,
            "options": {key: value for key, value in self.options},
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "ScenarioSpec":
        _check_keys("scenario", data,
                    ("topology", "adversary", "placement", "traffic",
                     "tau", "rounds", "seed", "options"))
        return cls(
            topology=_as_spec(data.get("topology"), TopologySpec,
                              "topology"),
            adversary=_as_spec(data.get("adversary"), AdversarySpec,
                               "adversary"),
            placement=_as_spec(data.get("placement"), PlacementSpec,
                               "placement"),
            traffic=_as_spec(data.get("traffic"), TrafficSpec, "traffic"),
            tau=data.get("tau", 1.0),
            rounds=data.get("rounds", 3),
            seed=data.get("seed", 0),
            options=_canonical_options(data.get("options", ())),
        )
