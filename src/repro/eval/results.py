"""The ``EvalResult`` protocol: one serialization contract for all results.

Every experiment result type (``ScenarioResult``, ``DetectionMetrics``,
``PrCurve``, ...) speaks the same three-method protocol — ``to_dict()``,
``from_dict()`` and ``fields()`` — so sweeps, artifacts and figure
scripts can serialize and rehydrate any result without per-type
switches.  :func:`serialize_result` is the single generic encoder
(protocol first, then dataclass/container fallbacks);
:func:`deserialize_result` rehydrates a record whose producing type was
stamped into it by the sweep worker.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Mapping, Type

try:  # Protocol is 3.8+; keep a soft fallback for exotic interpreters.
    from typing import Protocol, runtime_checkable

    @runtime_checkable
    class EvalResult(Protocol):
        """What every experiment result type must implement."""

        def to_dict(self) -> dict: ...

        @classmethod
        def from_dict(cls, data: Mapping) -> "EvalResult": ...

        @classmethod
        def fields(cls) -> List[str]: ...

except ImportError:  # pragma: no cover
    EvalResult = object  # type: ignore[assignment,misc]


class EvalResultBase:
    """Mixin giving dataclass results the :class:`EvalResult` protocol.

    ``fields()`` enumerates the dataclass fields; ``from_dict`` pulls
    exactly those keys back out (types whose ``to_dict`` mangles keys —
    int-keyed maps, tuple rows — override it).  ``to_dict`` stays the
    responsibility of each type: what a result exports is part of its
    public schema, not boilerplate.
    """

    @classmethod
    def fields(cls) -> List[str]:
        return [f.name for f in dataclasses.fields(cls)]

    @classmethod
    def from_dict(cls, data: Mapping):
        return cls(**{name: data[name] for name in cls.fields()})


#: Registered result types, by class name — the deserialization table.
RESULT_TYPES: Dict[str, Type] = {}


def register_result_type(cls: Type) -> Type:
    """Class decorator: make ``cls`` rehydratable by name."""
    RESULT_TYPES[cls.__name__] = cls
    return cls


def result_type_name(result) -> str:
    """The registered type name of ``result``, or '' if unregistered.

    Only protocol-speaking registered types get a name; plain dicts,
    lists of results, and ad-hoc returns serialize fine but rehydrate
    as plain data.
    """
    name = type(result).__name__
    return name if name in RESULT_TYPES else ""


def serialize_result(result) -> object:
    """Serialize any experiment result to JSON-safe plain data.

    Prefers the protocol's ``to_dict``; falls back to dataclass fields,
    containers, then ``repr`` for anything exotic.
    """
    if hasattr(result, "to_dict"):
        return serialize_result(result.to_dict())
    if dataclasses.is_dataclass(result) and not isinstance(result, type):
        return {f.name: serialize_result(getattr(result, f.name))
                for f in dataclasses.fields(result)}
    if isinstance(result, Mapping):
        return {str(k): serialize_result(v) for k, v in result.items()}
    if isinstance(result, (list, tuple, set, frozenset)):
        items = (sorted(result) if isinstance(result, (set, frozenset))
                 else result)
        return [serialize_result(v) for v in items]
    if isinstance(result, (str, int, float, bool)) or result is None:
        return result
    return repr(result)


def deserialize_result(type_name: str, data):
    """Rehydrate a serialized result via its registered type.

    An empty/unknown ``type_name`` returns ``data`` unchanged — sweep
    records always stay readable even when the producing type has been
    renamed or was never registered.
    """
    cls = RESULT_TYPES.get(type_name)
    if cls is None or not isinstance(data, Mapping):
        return data
    return cls.from_dict(data)
