"""Detector scoring against simulator ground truth."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional, Sequence

from repro.core.chi import RoundFinding
from repro.eval.results import EvalResultBase, register_result_type


@register_result_type
@dataclass
class DetectionMetrics(EvalResultBase):
    """Round-level confusion for a detector on one experiment."""

    attack_rounds: int = 0
    benign_rounds: int = 0
    true_positive_rounds: int = 0
    false_positive_rounds: int = 0
    detection_round: Optional[int] = None  # first alarmed attack round
    detection_latency_rounds: Optional[int] = None

    @property
    def detected(self) -> bool:
        return self.detection_round is not None

    @property
    def false_positive_rate(self) -> float:
        if self.benign_rounds == 0:
            return 0.0
        return self.false_positive_rounds / self.benign_rounds

    @property
    def recall(self) -> float:
        if self.attack_rounds == 0:
            return 0.0
        return self.true_positive_rounds / self.attack_rounds

    def to_dict(self) -> dict:
        return {
            "attack_rounds": self.attack_rounds,
            "benign_rounds": self.benign_rounds,
            "true_positive_rounds": self.true_positive_rounds,
            "false_positive_rounds": self.false_positive_rounds,
            "detection_round": self.detection_round,
            "detection_latency_rounds": self.detection_latency_rounds,
            "detected": self.detected,
            "false_positive_rate": self.false_positive_rate,
            "recall": self.recall,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "DetectionMetrics":
        return cls(
            attack_rounds=data["attack_rounds"],
            benign_rounds=data["benign_rounds"],
            true_positive_rounds=data["true_positive_rounds"],
            false_positive_rounds=data["false_positive_rounds"],
            detection_round=data["detection_round"],
            detection_latency_rounds=data["detection_latency_rounds"],
        )


def score_round_findings(
    findings: Sequence[RoundFinding],
    attack_first_round: Optional[int],
    attack_last_round: Optional[int] = None,
) -> DetectionMetrics:
    """Score χ-style per-round findings.

    Rounds in [attack_first_round, attack_last_round] are attack rounds;
    everything else is benign.  ``attack_first_round=None`` means a pure
    benign run.
    """
    metrics = DetectionMetrics()
    for finding in findings:
        in_attack = (
            attack_first_round is not None
            and finding.round_index >= attack_first_round
            and (attack_last_round is None
                 or finding.round_index <= attack_last_round)
        )
        if in_attack:
            metrics.attack_rounds += 1
            if finding.alarmed:
                metrics.true_positive_rounds += 1
                if metrics.detection_round is None:
                    metrics.detection_round = finding.round_index
                    metrics.detection_latency_rounds = (
                        finding.round_index - attack_first_round
                    )
        else:
            metrics.benign_rounds += 1
            if finding.alarmed:
                metrics.false_positive_rounds += 1
    return metrics


def mean(values: Iterable[float]) -> float:
    values = list(values)
    return sum(values) / len(values) if values else 0.0
