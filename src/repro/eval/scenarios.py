"""Canned experiment scenarios, built from typed :mod:`repro.eval.specs`.

Two families live here:

* the emulation chapter's "simple topology" testbed (Fig 6.4): several
  source routers feeding one router ``r`` whose output link to ``rd`` is
  the bottleneck; TCP flows congest the bottleneck queue and a victim
  flow is what the compromised ``r`` attacks.  Spec helpers
  :func:`droptail_spec` / :func:`red_spec` describe it; the legacy
  positional builders :func:`build_droptail_scenario` /
  :func:`build_red_scenario` remain as one-release deprecation shims.
* WedgeTail-style attack matrices: :func:`build_scenario` on any
  catalogued :class:`~repro.eval.specs.ScenarioSpec` resolves adversary
  placement, routes monitored flows across the bad router and arms a
  Π2 detector over their segments, returning an :class:`AttackScenario`.
"""

from __future__ import annotations

import random
import warnings
from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple, Union

from repro.core import (
    ChiConfig,
    PathOracle,
    Pi2Config,
    ProtocolChi,
    ProtocolPi2,
    SegmentMonitor,
    SummaryPolicy,
    monitored_segments_pi2,
)
from repro.crypto.keys import KeyInfrastructure
from repro.dist.sync import RoundSchedule
from repro.net import (
    CBRSource,
    Compromise,
    DropTailQueue,
    FabricateAttack,
    MBPS,
    Network,
    REDParams,
    REDQueue,
    TCPFlow,
    Topology,
    install_static_routes,
)
from repro.eval.specs import (
    AdversarySpec,
    PlacementSpec,
    ScenarioSpec,
    TopologySpec,
    TrafficSpec,
    register_topology,
    transit_candidates,
)
from repro.obs import recorder


class RepeatedConnector:
    """A host that keeps opening short TCP connections to a victim server.

    The workload of Fig 6.9 / 6.16: SYN loss hurts disproportionately
    because the initial retransmission timeout is 3 s.  Each connection
    transfers a few segments then the next one starts.
    """

    def __init__(self, network: Network, src: str, dst: str,
                 label: str = "victim", packets_per_conn: int = 20,
                 spacing: float = 1.0, start: float = 0.0,
                 stop: Optional[float] = None) -> None:
        self.network = network
        self.src = src
        self.dst = dst
        self.label = label
        self.packets_per_conn = packets_per_conn
        self.spacing = spacing
        self.stop = stop
        self.connections: List[TCPFlow] = []
        network.sim.schedule_at(start, self._open_next)

    def _open_next(self) -> None:
        now = self.network.sim.now
        if self.stop is not None and now >= self.stop:
            return
        index = len(self.connections)
        flow = TCPFlow(
            self.network, self.src, self.dst,
            flow_id=f"{self.label}-conn{index}",
            total_packets=self.packets_per_conn, start=now,
        )
        self.connections.append(flow)
        self.network.sim.schedule(self.spacing, self._check_done, flow)

    def _check_done(self, flow: TCPFlow) -> None:
        if flow.done:
            self._open_next()
            return
        self.network.sim.schedule(self.spacing, self._check_done, flow)

    def setup_times(self) -> List[float]:
        return [f.connection_setup_time() for f in self.connections
                if f.connection_setup_time() is not None]

    def syn_retry_count(self) -> int:
        return sum(f.syn_retries for f in self.connections)


@dataclass
class DropTailScenario:
    network: Network
    chi: ProtocolChi
    schedule: RoundSchedule
    oracle: PathOracle
    flows: Dict[str, TCPFlow]
    target: Tuple[str, str]
    connector: Optional[RepeatedConnector] = None

    @property
    def bottleneck_queue(self):
        router, downstream = self.target
        return self.network.routers[router].interfaces[downstream].queue


@dataclass
class REDScenario:
    network: Network
    chi: ProtocolChi
    schedule: RoundSchedule
    oracle: PathOracle
    flows: Dict[str, TCPFlow]
    target: Tuple[str, str]
    red_params: REDParams
    connector: Optional[RepeatedConnector] = None

    @property
    def bottleneck_queue(self):
        router, downstream = self.target
        return self.network.routers[router].interfaces[downstream].queue


def _simple_topology(n_sources: int, bottleneck_bw: float,
                     queue_limit: int, with_victim_sink: bool) -> Topology:
    topo = Topology("fig6.4-simple")
    for i in range(n_sources):
        topo.add_link(f"s{i}", "r", bandwidth=80 * MBPS, delay=0.002)
    topo.add_link("r", "rd", bandwidth=bottleneck_bw, delay=0.005,
                  queue_limit=queue_limit)
    topo.add_link("rd", "sink", bandwidth=80 * MBPS, delay=0.002)
    if with_victim_sink:
        topo.add_link("rd", "vsink", bandwidth=80 * MBPS, delay=0.002)
    return topo


def _simple_topology_factory(n_sources: int = 3,
                             bottleneck_bw: float = 1.0 * MBPS,
                             queue_limit: int = 60_000,
                             with_victim_sink: bool = False) -> Topology:
    return _simple_topology(int(n_sources), float(bottleneck_bw),
                            int(queue_limit), bool(with_victim_sink))


register_topology("simple", _simple_topology_factory)


# -- deprecation shims ------------------------------------------------------

_SHIM_WARNED: set = set()


def _warn_once(name: str, replacement: str) -> None:
    if name in _SHIM_WARNED:
        return
    _SHIM_WARNED.add(name)
    warnings.warn(
        f"{name}() is deprecated; build a spec with {replacement} and "
        f"pass it to build_scenario() instead",
        DeprecationWarning, stacklevel=3)


def _droptail_scenario(
    n_sources: int = 3,
    bottleneck_bw: float = 1.0 * MBPS,
    queue_limit: int = 60_000,
    tau: float = 2.0,
    proc_jitter: float = 0.0004,
    with_connector: bool = False,
    chi_config: Optional[ChiConfig] = None,
    seed: int = 0,
) -> DropTailScenario:
    """The droptail testbed of Figs 6.5-6.9.

    One long-lived TCP flow per source router toward ``sink``; the flow
    from ``s1`` is the conventional attack victim ("selected flow").
    With ``with_connector`` a repeated-connection host runs from ``s0``
    toward ``vsink`` (the SYN-attack victim).
    """
    topo = _simple_topology(n_sources, bottleneck_bw, queue_limit,
                            with_victim_sink=with_connector)
    net = Network(topo, proc_jitter=proc_jitter, seed=seed)
    paths = install_static_routes(net)
    oracle = PathOracle(paths)
    schedule = RoundSchedule(tau=tau)
    chi = ProtocolChi(net, oracle, schedule, targets=[("r", "rd")],
                      config=chi_config or ChiConfig())
    flows = {}
    for i in range(n_sources):
        flow_id = f"tcp{i}"
        flows[flow_id] = TCPFlow(net, f"s{i}", "sink", flow_id,
                                 start=0.1 * (i + 1))
    connector = None
    if with_connector:
        connector = RepeatedConnector(net, "s0", "vsink", start=0.5)
    return DropTailScenario(network=net, chi=chi, schedule=schedule,
                            oracle=oracle, flows=flows, target=("r", "rd"),
                            connector=connector)


# RED parameters calibrated so that, under the default 8-flow load on a
# 1 Mbps bottleneck, the average queue oscillates through the paper's
# 45,000- and 54,000-byte attack thresholds (Figs 6.12-6.13).
DEFAULT_RED_PARAMS = REDParams(
    min_th=30_000, max_th=90_000, max_p=0.05, weight=0.002,
)


def _red_scenario(
    n_sources: int = 8,
    bottleneck_bw: float = 1.0 * MBPS,
    queue_limit: int = 120_000,
    tau: float = 5.0,
    red_params: Optional[REDParams] = None,
    with_connector: bool = False,
    chi_config: Optional[ChiConfig] = None,
    seed: int = 0,
) -> REDScenario:
    """The RED testbed of Figs 6.11-6.16."""
    params = red_params or DEFAULT_RED_PARAMS
    topo = _simple_topology(n_sources, bottleneck_bw, queue_limit,
                            with_victim_sink=with_connector)

    def queue_factory(link):
        if link.src == "r" and link.dst == "rd":
            return REDQueue(link.queue_limit, params=params,
                            rng=random.Random(seed + 1))
        return DropTailQueue(link.queue_limit)

    net = Network(topo, queue_factory=queue_factory, proc_jitter=0.0,
                  seed=seed)
    paths = install_static_routes(net)
    oracle = PathOracle(paths)
    schedule = RoundSchedule(tau=tau)
    config = chi_config or ChiConfig(red_params=params)
    if config.red_params is None:
        config.red_params = params
    chi = ProtocolChi(net, oracle, schedule, targets=[("r", "rd")],
                      config=config)
    flows = {}
    for i in range(n_sources):
        flow_id = f"tcp{i}"
        flows[flow_id] = TCPFlow(net, f"s{i}", "sink", flow_id,
                                 start=0.15 * (i + 1))
    connector = None
    if with_connector:
        connector = RepeatedConnector(net, "s0", "vsink", start=0.5)
    return REDScenario(network=net, chi=chi, schedule=schedule,
                       oracle=oracle, flows=flows, target=("r", "rd"),
                       red_params=params, connector=connector)


def build_droptail_scenario(
    n_sources: int = 3,
    bottleneck_bw: float = 1.0 * MBPS,
    queue_limit: int = 60_000,
    tau: float = 2.0,
    proc_jitter: float = 0.0004,
    with_connector: bool = False,
    chi_config: Optional[ChiConfig] = None,
    seed: int = 0,
) -> DropTailScenario:
    """Deprecated positional builder; use :func:`droptail_spec` +
    :func:`build_scenario` (kept for one release)."""
    _warn_once("build_droptail_scenario", "droptail_spec(...)")
    return _droptail_scenario(
        n_sources=n_sources, bottleneck_bw=bottleneck_bw,
        queue_limit=queue_limit, tau=tau, proc_jitter=proc_jitter,
        with_connector=with_connector, chi_config=chi_config, seed=seed)


def build_red_scenario(
    n_sources: int = 8,
    bottleneck_bw: float = 1.0 * MBPS,
    queue_limit: int = 120_000,
    tau: float = 5.0,
    red_params: Optional[REDParams] = None,
    with_connector: bool = False,
    chi_config: Optional[ChiConfig] = None,
    seed: int = 0,
) -> REDScenario:
    """Deprecated positional builder; use :func:`red_spec` +
    :func:`build_scenario` (kept for one release)."""
    _warn_once("build_red_scenario", "red_spec(...)")
    return _red_scenario(
        n_sources=n_sources, bottleneck_bw=bottleneck_bw,
        queue_limit=queue_limit, tau=tau, red_params=red_params,
        with_connector=with_connector, chi_config=chi_config, seed=seed)


# -- spec constructors for the simple testbed -------------------------------

def droptail_spec(
    n_sources: int = 3,
    bottleneck_bw: float = 1.0 * MBPS,
    queue_limit: int = 60_000,
    tau: float = 2.0,
    proc_jitter: float = 0.0004,
    with_connector: bool = False,
    seed: int = 0,
) -> ScenarioSpec:
    """Spec form of the droptail testbed (Figs 6.5-6.9)."""
    return ScenarioSpec(
        topology=TopologySpec("simple", options={
            "bottleneck_bw": float(bottleneck_bw),
            "queue_limit": int(queue_limit),
        }),
        adversary=AdversarySpec(behavior="none"),
        placement=PlacementSpec(strategy="fixed", router="r"),
        traffic=TrafficSpec(kind="tcp", flows=n_sources,
                            rate_bps=float(bottleneck_bw)),
        tau=tau, seed=seed,
        options={"queue": "droptail", "proc_jitter": float(proc_jitter),
                 "with_connector": bool(with_connector)},
    )


def red_spec(
    n_sources: int = 8,
    bottleneck_bw: float = 1.0 * MBPS,
    queue_limit: int = 120_000,
    tau: float = 5.0,
    with_connector: bool = False,
    seed: int = 0,
) -> ScenarioSpec:
    """Spec form of the RED testbed (Figs 6.11-6.16)."""
    return ScenarioSpec(
        topology=TopologySpec("simple", options={
            "bottleneck_bw": float(bottleneck_bw),
            "queue_limit": int(queue_limit),
        }),
        adversary=AdversarySpec(behavior="none"),
        placement=PlacementSpec(strategy="fixed", router="r"),
        traffic=TrafficSpec(kind="tcp", flows=n_sources,
                            rate_bps=float(bottleneck_bw)),
        tau=tau, seed=seed,
        options={"queue": "red",
                 "with_connector": bool(with_connector)},
    )


# -- attack-matrix scenarios ------------------------------------------------

@dataclass
class AttackScenario:
    """A built attack-matrix cell: network, armed Π2 detector, traffic.

    ``run()`` drives the simulator to :attr:`end_time`; detector output
    is then in ``protocol.states`` (score it with
    :func:`repro.core.accuracy_report` / ``completeness_report``).
    """

    spec: ScenarioSpec
    network: Network
    protocol: ProtocolPi2
    monitor: SegmentMonitor
    schedule: RoundSchedule
    oracle: PathOracle
    flows: Dict[str, object]
    flow_paths: Dict[str, Tuple[str, ...]]
    adversary_router: str
    attack: Optional[Compromise]

    @property
    def attack_at(self) -> float:
        """Virtual time the adversary activates (start of round 1)."""
        return self.spec.tau

    @property
    def end_time(self) -> float:
        """Monitored rounds plus settle time for the last summaries."""
        return self.spec.tau * (self.spec.rounds + 1) + 3.0 * self.spec.tau

    def run(self) -> "AttackScenario":
        self.network.run(self.end_time)
        return self


def _attack_scenario(spec: ScenarioSpec) -> AttackScenario:
    """Resolve placement, route flows across the bad router, arm Π2."""
    topo = spec.topology.build()
    net = Network(topo, seed=spec.seed)
    paths = install_static_routes(net)
    oracle = PathOracle(paths)
    schedule = RoundSchedule(tau=spec.tau)
    keys = KeyInfrastructure()

    behavior = spec.adversary.behavior
    if behavior == "reorder":
        policy = SummaryPolicy.ORDER
    elif behavior == "delay":
        policy = SummaryPolicy.TIMELINESS
    else:
        policy = SummaryPolicy.CONTENT
    monitor = SegmentMonitor(net, oracle, schedule, policy=policy)
    net.add_tap(monitor)

    # Transit candidates: routers that are interior to at least one
    # shortest path, so traffic can actually cross the adversary.  The
    # helper recomputes unconstrained shortest paths, which is exactly
    # what install_static_routes returned above — forensic ground-truth
    # resolution (resolve_ground_truth) shares it so the two can never
    # drift apart.
    candidates = list(transit_candidates(topo))
    bad = spec.placement.resolve(topo, spec.seed, candidates)

    pairs = sorted(ends for ends, path in paths.items()
                   if bad in path[1:-1])
    n_flows = min(spec.traffic.flows, len(pairs))
    chosen = [pairs[(i * len(pairs)) // n_flows] for i in range(n_flows)]
    flow_paths = {f"f{i + 1}": tuple(paths[ends])
                  for i, ends in enumerate(chosen)}

    segments: Set[Tuple[str, ...]] = set()
    enumerated = monitored_segments_pi2(sorted(flow_paths.values()), k=1)
    for segs in enumerated.values():
        segments |= segs
    config = Pi2Config(k=1)
    if policy is SummaryPolicy.TIMELINESS:
        attack_delay = float(spec.adversary.option("delay", 0.05))
        config = Pi2Config(
            k=1, max_delay=float(spec.option("max_delay",
                                             attack_delay / 2.0)))
    protocol = ProtocolPi2(net, monitor, segments, keys, schedule,
                           config=config)
    protocol.schedule_rounds(0, spec.rounds)

    flows: Dict[str, object] = {}
    for i, (src, dst) in enumerate(chosen):
        flow_id = f"f{i + 1}"
        if spec.traffic.kind == "tcp":
            flows[flow_id] = TCPFlow(net, src, dst, flow_id,
                                     start=0.1 * (i + 1))
        else:
            flows[flow_id] = CBRSource(net, src, dst, flow_id,
                                       rate_bps=spec.traffic.rate_bps,
                                       duration=spec.traffic.duration)

    # Deterministic adversary context from the first monitored flow.
    first_path = flow_paths["f1"]
    position = first_path.index(bad)
    next_hop = first_path[position + 1]
    wrong = sorted(name for name in topo.neighbors(bad)
                   if name != next_hop)
    attack = spec.adversary.build(
        net, bad, sorted(flow_paths), spec.seed + 1,
        wrong_neighbor=wrong[0] if wrong else None,
        inject_neighbor=next_hop,
        forged_src=first_path[0], forged_dst=first_path[-1])
    if attack is not None:
        attack.activate_between(spec.tau)
        net.routers[bad].compromise = attack
        if isinstance(attack, FabricateAttack):
            attack.start(spec.tau)

    rec = recorder()
    if rec.active:
        # Ground truth for forensics: which router is compromised, how,
        # and when it activates — joined later against detector.suspect
        # events to classify verdicts as true/false positives.
        rec.event(
            "scenario.ground_truth", net.sim.now,
            topology=spec.topology.name,
            behavior=behavior,
            rate=spec.adversary.rate,
            placement=spec.placement.strategy,
            seed=spec.seed,
            router=bad if attack is not None else None,
            attack_at=spec.tau if attack is not None else None,
            flows={fid: list(path) for fid, path in
                   sorted(flow_paths.items())},
        )

    return AttackScenario(spec=spec, network=net, protocol=protocol,
                          monitor=monitor, schedule=schedule, oracle=oracle,
                          flows=flows, flow_paths=flow_paths,
                          adversary_router=bad, attack=attack)


def build_scenario(
    spec: ScenarioSpec,
) -> Union[AttackScenario, DropTailScenario, REDScenario]:
    """Build the scenario a spec describes.

    The ``simple`` topology maps onto the emulation testbed (droptail or
    RED bottleneck, selected by the scenario option ``queue``); every
    other catalogued topology builds an :class:`AttackScenario`.
    """
    if spec.topology.name == "simple":
        kwargs = dict(
            n_sources=int(spec.traffic.flows),
            bottleneck_bw=float(
                spec.topology.option("bottleneck_bw", 1.0 * MBPS)),
            tau=spec.tau,
            with_connector=bool(spec.option("with_connector", False)),
            seed=spec.seed,
        )
        queue = str(spec.option("queue", "droptail"))
        if queue == "droptail":
            return _droptail_scenario(
                queue_limit=int(spec.topology.option("queue_limit",
                                                     60_000)),
                proc_jitter=float(spec.option("proc_jitter", 0.0004)),
                **kwargs)
        if queue == "red":
            return _red_scenario(
                queue_limit=int(spec.topology.option("queue_limit",
                                                     120_000)),
                **kwargs)
        raise ValueError(
            f"unknown queue option {queue!r}; 'droptail' or 'red'")
    return _attack_scenario(spec)
