"""Canned experiment scenarios (Fig 6.4's "simple topology" and friends).

The emulation chapter's testbed: several source routers feeding one
router ``r`` whose output link to ``rd`` is the bottleneck; TCP flows
from the sources congest the bottleneck queue; a victim flow (or a victim
destination's SYNs) is what the compromised ``r`` attacks.

Two builders return ready-to-run bundles:

* :func:`build_droptail_scenario` — droptail bottleneck, Figs 6.5-6.9;
* :func:`build_red_scenario` — RED bottleneck, Figs 6.11-6.16, calibrated
  so the average queue regularly crosses the paper's literal 45,000- and
  54,000-byte attack thresholds.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.core import ChiConfig, PathOracle, ProtocolChi
from repro.dist.sync import RoundSchedule
from repro.net import (
    DropTailQueue,
    MBPS,
    Network,
    REDParams,
    REDQueue,
    TCPFlow,
    Topology,
    install_static_routes,
)


class RepeatedConnector:
    """A host that keeps opening short TCP connections to a victim server.

    The workload of Fig 6.9 / 6.16: SYN loss hurts disproportionately
    because the initial retransmission timeout is 3 s.  Each connection
    transfers a few segments then the next one starts.
    """

    def __init__(self, network: Network, src: str, dst: str,
                 label: str = "victim", packets_per_conn: int = 20,
                 spacing: float = 1.0, start: float = 0.0,
                 stop: Optional[float] = None) -> None:
        self.network = network
        self.src = src
        self.dst = dst
        self.label = label
        self.packets_per_conn = packets_per_conn
        self.spacing = spacing
        self.stop = stop
        self.connections: List[TCPFlow] = []
        network.sim.schedule_at(start, self._open_next)

    def _open_next(self) -> None:
        now = self.network.sim.now
        if self.stop is not None and now >= self.stop:
            return
        index = len(self.connections)
        flow = TCPFlow(
            self.network, self.src, self.dst,
            flow_id=f"{self.label}-conn{index}",
            total_packets=self.packets_per_conn, start=now,
        )
        self.connections.append(flow)
        self.network.sim.schedule(self.spacing, self._check_done, flow)

    def _check_done(self, flow: TCPFlow) -> None:
        if flow.done:
            self._open_next()
            return
        self.network.sim.schedule(self.spacing, self._check_done, flow)

    def setup_times(self) -> List[float]:
        return [f.connection_setup_time() for f in self.connections
                if f.connection_setup_time() is not None]

    def syn_retry_count(self) -> int:
        return sum(f.syn_retries for f in self.connections)


@dataclass
class DropTailScenario:
    network: Network
    chi: ProtocolChi
    schedule: RoundSchedule
    oracle: PathOracle
    flows: Dict[str, TCPFlow]
    target: Tuple[str, str]
    connector: Optional[RepeatedConnector] = None

    @property
    def bottleneck_queue(self):
        router, downstream = self.target
        return self.network.routers[router].interfaces[downstream].queue


@dataclass
class REDScenario:
    network: Network
    chi: ProtocolChi
    schedule: RoundSchedule
    oracle: PathOracle
    flows: Dict[str, TCPFlow]
    target: Tuple[str, str]
    red_params: REDParams
    connector: Optional[RepeatedConnector] = None

    @property
    def bottleneck_queue(self):
        router, downstream = self.target
        return self.network.routers[router].interfaces[downstream].queue


def _simple_topology(n_sources: int, bottleneck_bw: float,
                     queue_limit: int, with_victim_sink: bool) -> Topology:
    topo = Topology("fig6.4-simple")
    for i in range(n_sources):
        topo.add_link(f"s{i}", "r", bandwidth=80 * MBPS, delay=0.002)
    topo.add_link("r", "rd", bandwidth=bottleneck_bw, delay=0.005,
                  queue_limit=queue_limit)
    topo.add_link("rd", "sink", bandwidth=80 * MBPS, delay=0.002)
    if with_victim_sink:
        topo.add_link("rd", "vsink", bandwidth=80 * MBPS, delay=0.002)
    return topo


def build_droptail_scenario(
    n_sources: int = 3,
    bottleneck_bw: float = 1.0 * MBPS,
    queue_limit: int = 60_000,
    tau: float = 2.0,
    proc_jitter: float = 0.0004,
    with_connector: bool = False,
    chi_config: Optional[ChiConfig] = None,
    seed: int = 0,
) -> DropTailScenario:
    """The droptail testbed of Figs 6.5-6.9.

    One long-lived TCP flow per source router toward ``sink``; the flow
    from ``s1`` is the conventional attack victim ("selected flow").
    With ``with_connector`` a repeated-connection host runs from ``s0``
    toward ``vsink`` (the SYN-attack victim).
    """
    topo = _simple_topology(n_sources, bottleneck_bw, queue_limit,
                            with_victim_sink=with_connector)
    net = Network(topo, proc_jitter=proc_jitter, seed=seed)
    paths = install_static_routes(net)
    oracle = PathOracle(paths)
    schedule = RoundSchedule(tau=tau)
    chi = ProtocolChi(net, oracle, schedule, targets=[("r", "rd")],
                      config=chi_config or ChiConfig())
    flows = {}
    for i in range(n_sources):
        flow_id = f"tcp{i}"
        flows[flow_id] = TCPFlow(net, f"s{i}", "sink", flow_id,
                                 start=0.1 * (i + 1))
    connector = None
    if with_connector:
        connector = RepeatedConnector(net, "s0", "vsink", start=0.5)
    return DropTailScenario(network=net, chi=chi, schedule=schedule,
                            oracle=oracle, flows=flows, target=("r", "rd"),
                            connector=connector)


# RED parameters calibrated so that, under the default 8-flow load on a
# 1 Mbps bottleneck, the average queue oscillates through the paper's
# 45,000- and 54,000-byte attack thresholds (Figs 6.12-6.13).
DEFAULT_RED_PARAMS = REDParams(
    min_th=30_000, max_th=90_000, max_p=0.05, weight=0.002,
)


def build_red_scenario(
    n_sources: int = 8,
    bottleneck_bw: float = 1.0 * MBPS,
    queue_limit: int = 120_000,
    tau: float = 5.0,
    red_params: Optional[REDParams] = None,
    with_connector: bool = False,
    chi_config: Optional[ChiConfig] = None,
    seed: int = 0,
) -> REDScenario:
    """The RED testbed of Figs 6.11-6.16."""
    params = red_params or DEFAULT_RED_PARAMS
    topo = _simple_topology(n_sources, bottleneck_bw, queue_limit,
                            with_victim_sink=with_connector)

    def queue_factory(link):
        if link.src == "r" and link.dst == "rd":
            return REDQueue(link.queue_limit, params=params,
                            rng=random.Random(seed + 1))
        return DropTailQueue(link.queue_limit)

    net = Network(topo, queue_factory=queue_factory, proc_jitter=0.0,
                  seed=seed)
    paths = install_static_routes(net)
    oracle = PathOracle(paths)
    schedule = RoundSchedule(tau=tau)
    config = chi_config or ChiConfig(red_params=params)
    if config.red_params is None:
        config.red_params = params
    chi = ProtocolChi(net, oracle, schedule, targets=[("r", "rd")],
                      config=config)
    flows = {}
    for i in range(n_sources):
        flow_id = f"tcp{i}"
        flows[flow_id] = TCPFlow(net, f"s{i}", "sink", flow_id,
                                 start=0.15 * (i + 1))
    connector = None
    if with_connector:
        connector = RepeatedConnector(net, "s0", "vsink", start=0.5)
    return REDScenario(network=net, chi=chi, schedule=schedule,
                       oracle=oracle, flows=flows, target=("r", "rd"),
                       red_params=params, connector=connector)
