"""One function per paper table/figure.

Benches (``benchmarks/``), tests and examples all call these; each
returns a small result object with the series the paper plots, so the
bench output can be read against the original figure.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.baselines.pathmodel import FaultyNode, PathModel
from repro.baselines.perlman import perlman_per_hop_acks, perlman_route_setup
from repro.baselines.sectrace import secure_traceroute
from repro.baselines.awerbuch import awerbuch_binary_search
from repro.baselines.watchers import (
    WatchersFault,
    WatchersFlow,
    WatchersProtocol,
)
from repro.core import (
    FatihConfig,
    FatihSystem,
    PathOracle,
    Pi2Config,
    PiK2Config,
    ProtocolPi2,
    ProtocolPiK2,
    SegmentMonitor,
    SummaryPolicy,
    accuracy_report,
    all_routing_paths,
    appenzeller_loss_probability,
    appenzeller_sigma,
    completeness_report,
    monitored_segments_pi2,
    monitored_segments_pik2,
    pr_statistics,
)
from repro.core.chi import single_loss_confidence
from repro.core.fatih import RTTMonitor
from repro.core.segments import pik2_counter_count, watchers_counter_count
from repro.crypto.keys import KeyInfrastructure
from repro.dist.sync import RoundSchedule
from repro.eval.metrics import DetectionMetrics, score_round_findings
from repro.eval.results import EvalResultBase, register_result_type
from repro.eval.scenarios import (
    AttackScenario,
    _droptail_scenario,
    _red_scenario,
    build_scenario,
)
from repro.eval.specs import ScenarioSpec, TopologySpec
from repro.net import (
    CBRSource,
    CombinedCompromise,
    DropFlowAttack,
    LinkStateRouting,
    MBPS,
    Network,
    QueueConditionalDropAttack,
    REDAverageConditionalDropAttack,
    SynDropAttack,
    Topology,
    abilene,
    chain,
    ebone_like,
    install_static_routes,
    sprintlink_like,
)


def _topology(name: str) -> Topology:
    if name == "sprintlink":
        return sprintlink_like()
    if name == "ebone":
        return ebone_like()
    if name == "abilene":
        return abilene()
    raise ValueError(f"unknown topology {name!r}")


# ---------------------------------------------------------------------------
# Figures 5.2 / 5.4 — |P_r| vs k
# ---------------------------------------------------------------------------

@register_result_type
@dataclass
class PrCurve(EvalResultBase):
    topology: str
    protocol: str  # "pi2" | "pik2"
    series: Dict[int, Dict[str, float]] = field(default_factory=dict)

    def rows(self) -> List[Tuple[int, float, float, float]]:
        return [(k, s["max"], s["mean"], s["median"])
                for k, s in sorted(self.series.items())]

    def to_dict(self) -> dict:
        return {
            "topology": self.topology,
            "protocol": self.protocol,
            "series": {str(k): dict(s) for k, s in sorted(self.series.items())},
        }

    @classmethod
    def from_dict(cls, data: dict) -> "PrCurve":
        return cls(topology=data["topology"], protocol=data["protocol"],
                   series={int(k): dict(s)
                           for k, s in data["series"].items()})


def fig5_2_pr_pi2(topology: str = "sprintlink",
                  ks: Sequence[int] = range(1, 9)) -> PrCurve:
    """Fig 5.2: segments monitored per router under Π2."""
    topo = _topology(topology)
    paths = all_routing_paths(topo)
    curve = PrCurve(topology=topology, protocol="pi2")
    for k in ks:
        by_router = monitored_segments_pi2(paths, k)
        curve.series[k] = pr_statistics(by_router, topo.routers)
    return curve


def fig5_4_pr_pik2(topology: str = "sprintlink",
                   ks: Sequence[int] = range(1, 9)) -> PrCurve:
    """Fig 5.4: segments monitored per router under Πk+2."""
    topo = _topology(topology)
    paths = all_routing_paths(topo)
    curve = PrCurve(topology=topology, protocol="pik2")
    for k in ks:
        by_router = monitored_segments_pik2(paths, k)
        curve.series[k] = pr_statistics(by_router, topo.routers)
    return curve


@register_result_type
@dataclass
class StateOverheadResult(EvalResultBase):
    topology: str
    watchers_mean: float
    watchers_max: float
    pik2_counters: Dict[int, Dict[str, float]]  # k -> mean/max counters

    def rows(self) -> List[str]:
        out = [f"WATCHERS: mean {self.watchers_mean:.0f} max {self.watchers_max:.0f}"]
        for k, stats in sorted(self.pik2_counters.items()):
            out.append(
                f"Πk+2 AdjacentFault({k}): mean {stats['mean']:.0f} "
                f"max {stats['max']:.0f}"
            )
        return out

    def to_dict(self) -> dict:
        return {
            "topology": self.topology,
            "watchers_mean": self.watchers_mean,
            "watchers_max": self.watchers_max,
            "pik2_counters": {str(k): dict(s)
                              for k, s in sorted(self.pik2_counters.items())},
        }

    @classmethod
    def from_dict(cls, data: dict) -> "StateOverheadResult":
        return cls(
            topology=data["topology"],
            watchers_mean=data["watchers_mean"],
            watchers_max=data["watchers_max"],
            pik2_counters={int(k): dict(s)
                           for k, s in data["pik2_counters"].items()},
        )


def state_overhead(topology: str = "sprintlink",
                   ks: Sequence[int] = (2, 7)) -> StateOverheadResult:
    """§5.1.1/§5.2.1: per-router counter state, WATCHERS vs Πk+2."""
    topo = _topology(topology)
    paths = all_routing_paths(topo)
    watchers = watchers_counter_count(topo)
    values = list(watchers.values())
    pik2: Dict[int, Dict[str, float]] = {}
    for k in ks:
        by_router = monitored_segments_pik2(paths, k)
        counts = pik2_counter_count(by_router, topo)
        counter_values = list(counts.values())
        pik2[k] = {
            "mean": sum(counter_values) / len(counter_values),
            "max": float(max(counter_values)),
        }
    return StateOverheadResult(
        topology=topology,
        watchers_mean=sum(values) / len(values),
        watchers_max=float(max(values)),
        pik2_counters=pik2,
    )


# ---------------------------------------------------------------------------
# Fig 5.7 — Fatih in progress
# ---------------------------------------------------------------------------

@register_result_type
@dataclass
class FatihTimelineResult(EvalResultBase):
    convergence_time: Optional[float]
    attack_time: float
    first_detection: Optional[float]
    reroute_time: Optional[float]
    rtt_before: Optional[float]
    rtt_after: Optional[float]
    suspected_segments: List[Tuple[str, ...]]
    probes_lost: int

    @property
    def detection_latency(self) -> Optional[float]:
        if self.first_detection is None:
            return None
        return self.first_detection - self.attack_time

    @property
    def response_latency(self) -> Optional[float]:
        if self.reroute_time is None:
            return None
        return self.reroute_time - self.attack_time

    def to_dict(self) -> dict:
        return {
            "convergence_time": self.convergence_time,
            "attack_time": self.attack_time,
            "first_detection": self.first_detection,
            "reroute_time": self.reroute_time,
            "rtt_before": self.rtt_before,
            "rtt_after": self.rtt_after,
            "suspected_segments": [list(s) for s in self.suspected_segments],
            "probes_lost": self.probes_lost,
            "detection_latency": self.detection_latency,
            "response_latency": self.response_latency,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "FatihTimelineResult":
        return cls(
            convergence_time=data["convergence_time"],
            attack_time=data["attack_time"],
            first_detection=data["first_detection"],
            reroute_time=data["reroute_time"],
            rtt_before=data["rtt_before"],
            rtt_after=data["rtt_after"],
            suspected_segments=[tuple(s)
                                for s in data["suspected_segments"]],
            probes_lost=data["probes_lost"],
        )


def fig5_7_fatih(
    attack_time: float = 117.0,
    attack_fraction: float = 0.2,
    end_time: float = 220.0,
    monitor_start: float = 60.0,
) -> FatihTimelineResult:
    """Fig 5.7: OSPF convergence, attack at Kansas City, detection,
    alert flooding, SPF delay+hold, rerouting; New York <-> Sunnyvale RTT
    goes from ~50 ms to ~56 ms."""
    from repro.net import DropFractionAttack

    topo = abilene(bandwidth=10 * MBPS)
    net = Network(topo, proc_jitter=0.0002)
    routing = LinkStateRouting(net, spf_delay=5.0, spf_hold=10.0,
                               hello_interval=10.0, boot_spread=30.0)
    routing.start()
    fatih = FatihSystem(net, routing,
                        config=FatihConfig(tau=5.0, threshold=2))
    fatih.start_monitoring(at=monitor_start, until=end_time)

    # Background load crossing Kansas City (and elsewhere).
    flows = [
        ("Sunnyvale", "NewYork"), ("NewYork", "Sunnyvale"),
        ("LosAngeles", "Chicago"), ("Seattle", "WashingtonDC"),
        ("Denver", "Indianapolis"), ("Houston", "Chicago"),
        ("Atlanta", "Seattle"),
    ]
    sources = []
    for i, (src, dst) in enumerate(flows):
        sources.append(CBRSource(net, src, dst, f"bg{i}",
                                 rate_bps=80_000, start=58.0 + 0.01 * i))
    rtt = RTTMonitor(net, "NewYork", "Sunnyvale", interval=1.0, start=60.0,
                     stop=end_time - 5)

    net.run(attack_time)
    attack = DropFractionAttack(attack_fraction, seed=11)
    net.routers["KansasCity"].compromise = attack
    net.run(end_time)

    detection = fatih.first_detection_time()
    reroute = None
    for when, _name in routing.spf_runs:
        if detection is not None and when > detection:
            reroute = when
            break
    return FatihTimelineResult(
        convergence_time=routing.convergence_time(),
        attack_time=attack_time,
        first_detection=detection,
        reroute_time=reroute,
        rtt_before=rtt.mean_rtt(monitor_start + 5, attack_time),
        rtt_after=rtt.mean_rtt((reroute or end_time) + 5, end_time),
        suspected_segments=sorted(fatih.suspected_segments()),
        probes_lost=rtt.lost,
    )


# ---------------------------------------------------------------------------
# Fig 6.2 — single-loss confidence curve
# ---------------------------------------------------------------------------

@register_result_type
@dataclass
class ConfidenceCurve(EvalResultBase):
    q_limit: float
    mu: float
    sigma: float
    points: List[Tuple[float, float]]  # (q_pred, confidence)

    def to_dict(self) -> dict:
        return {
            "q_limit": self.q_limit,
            "mu": self.mu,
            "sigma": self.sigma,
            "points": [list(p) for p in self.points],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ConfidenceCurve":
        return cls(q_limit=data["q_limit"], mu=data["mu"],
                   sigma=data["sigma"],
                   points=[tuple(p) for p in data["points"]])


def fig6_2_confidence_curve(q_limit: float = 30_000.0,
                            packet_size: float = 1_000.0,
                            mu: float = 0.0, sigma: float = 1_000.0,
                            steps: int = 60) -> ConfidenceCurve:
    """Fig 6.2: c_single as the predicted queue approaches the limit."""
    points = []
    for i in range(steps + 1):
        q_pred = q_limit * i / steps
        conf = single_loss_confidence(q_limit, q_pred, packet_size, mu, sigma)
        points.append((q_pred, conf))
    return ConfidenceCurve(q_limit, mu, sigma, points)


# ---------------------------------------------------------------------------
# Droptail scenarios — Figs 6.3, 6.5-6.9 + χ vs static threshold
# ---------------------------------------------------------------------------

@register_result_type
@dataclass
class ScenarioResult(EvalResultBase):
    name: str
    metrics: DetectionMetrics
    total_drops: int
    congestive_drops: int
    malicious_drops_truth: int
    candidate_drops: int
    rounds: List[Tuple[int, int, int, float, bool]] = field(default_factory=list)
    # rows: (round, drops, candidates, max confidence, alarmed)
    malicious_by_round: Dict[int, int] = field(default_factory=dict)
    extra: Dict[str, float] = field(default_factory=dict)

    @property
    def detected(self) -> bool:
        return self.metrics.detected

    @property
    def false_positives(self) -> int:
        return self.metrics.false_positive_rounds

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "metrics": self.metrics.to_dict(),
            "total_drops": self.total_drops,
            "congestive_drops": self.congestive_drops,
            "malicious_drops_truth": self.malicious_drops_truth,
            "candidate_drops": self.candidate_drops,
            "rounds": [list(r) for r in self.rounds],
            "malicious_by_round": {str(k): v for k, v
                                   in sorted(self.malicious_by_round.items())},
            "extra": dict(self.extra),
            "detected": self.detected,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ScenarioResult":
        return cls(
            name=data["name"],
            metrics=DetectionMetrics.from_dict(data["metrics"]),
            total_drops=data["total_drops"],
            congestive_drops=data["congestive_drops"],
            malicious_drops_truth=data["malicious_drops_truth"],
            candidate_drops=data["candidate_drops"],
            rounds=[tuple(r) for r in data["rounds"]],
            malicious_by_round={int(k): v for k, v
                                in data["malicious_by_round"].items()},
            extra=dict(data["extra"]),
        )


def _run_droptail(name: str, attack_factory, *,
                  learning_until: float = 20.0,
                  monitor_rounds: Tuple[int, int] = (10, 44),
                  attack_at: float = 50.0,
                  end: float = 110.0,
                  with_connector: bool = False,
                  tau: float = 2.0,
                  n_sources: int = 3,
                  seed: int = 0) -> ScenarioResult:
    scenario = _droptail_scenario(tau=tau, seed=seed,
                                  n_sources=n_sources,
                                  with_connector=with_connector)
    net = scenario.network
    chi = scenario.chi
    net.run(learning_until)
    chi.calibrate(scenario.target)
    chi.schedule_rounds(*monitor_rounds)
    net.run(attack_at)
    attack = None
    if attack_factory is not None:
        attack = attack_factory(scenario)
        net.routers["r"].compromise = attack
    net.run(end)
    attack_first = (int(attack_at / tau) if attack_factory is not None
                    else None)
    metrics = score_round_findings(chi.findings, attack_first)
    rounds = [(f.round_index, len(f.drops), f.candidate_drops,
               f.max_single_confidence, f.alarmed) for f in chi.findings]
    by_round: Dict[int, int] = {}
    if attack is not None:
        for when in attack.drop_times:
            by_round[int(when / tau)] = by_round.get(int(when / tau), 0) + 1
    result = ScenarioResult(
        name=name,
        metrics=metrics,
        total_drops=sum(len(f.drops) for f in chi.findings),
        congestive_drops=sum(f.congestive_drops for f in chi.findings),
        malicious_drops_truth=(len(attack.dropped) if attack else 0),
        candidate_drops=sum(f.candidate_drops for f in chi.findings),
        rounds=rounds,
        malicious_by_round=by_round,
    )
    if scenario.connector is not None:
        result.extra["syn_retries"] = float(scenario.connector.syn_retry_count())
        setup = scenario.connector.setup_times()
        if setup:
            result.extra["mean_setup_time"] = sum(setup) / len(setup)
    # Attack damage, the paper's motivation: victim vs bystander goodput.
    victim = scenario.flows.get("tcp1")
    bystanders = [f for fid, f in scenario.flows.items() if fid != "tcp1"]
    if victim is not None:
        result.extra["victim_goodput_pps"] = victim.goodput_pps()
    if bystanders:
        result.extra["bystander_goodput_pps"] = (
            sum(f.goodput_pps() for f in bystanders) / len(bystanders))
    return result


def fig6_5_no_attack(seed: int = 0, tau: float = 2.0,
                     n_sources: int = 3) -> ScenarioResult:
    """Fig 6.5: pure congestion — χ must stay silent."""
    return _run_droptail("no-attack", None, seed=seed, tau=tau,
                         n_sources=n_sources)


def fig6_6_attack1(seed: int = 0, fraction: float = 0.2, tau: float = 2.0,
                   n_sources: int = 3) -> ScenarioResult:
    """Fig 6.6: drop 20% of the selected flow."""
    return _run_droptail(
        "attack1-drop20pct",
        lambda s: DropFlowAttack(["tcp1"], fraction=fraction, seed=seed + 1),
        seed=seed, tau=tau, n_sources=n_sources,
    )


def chi_detection_bench(seed: int = 0, fraction: float = 0.2,
                        tau: float = 2.0,
                        n_sources: int = 2) -> ScenarioResult:
    """A small, fast χ detection scenario for benchmarks and CI smoke.

    The Fig 6.6 attack on a reduced source count (~2 s per run), sized
    so a ``repro sweep chi --seeds 3`` with tracing and profiling fits
    in a CI smoke job while still exercising the full attack →
    monitor → detect pipeline.
    """
    return _run_droptail(
        "chi-bench",
        lambda s: DropFlowAttack(["tcp1"], fraction=fraction, seed=seed + 1),
        seed=seed, tau=tau, n_sources=n_sources,
    )


def fig6_7_attack2(seed: int = 0, fill_threshold: float = 0.90,
                   tau: float = 2.0, n_sources: int = 3) -> ScenarioResult:
    """Fig 6.7: drop the selected flow only when the queue is 90% full."""
    return _run_droptail(
        "attack2-queue90",
        lambda s: QueueConditionalDropAttack(["tcp1"],
                                             fill_threshold=fill_threshold,
                                             seed=seed + 1),
        seed=seed, tau=tau, n_sources=n_sources,
    )


def fig6_8_attack3(seed: int = 0, fill_threshold: float = 0.95,
                   tau: float = 2.0, n_sources: int = 3) -> ScenarioResult:
    """Fig 6.8: drop the selected flow only when the queue is 95% full."""
    return _run_droptail(
        "attack3-queue95",
        lambda s: QueueConditionalDropAttack(["tcp1"],
                                             fill_threshold=fill_threshold,
                                             seed=seed + 1),
        seed=seed, tau=tau, n_sources=n_sources,
    )


def fig6_9_attack4(seed: int = 0, tau: float = 2.0,
                   n_sources: int = 3) -> ScenarioResult:
    """Fig 6.9: SYN-drop a host trying to open connections."""
    return _run_droptail(
        "attack4-syn",
        lambda s: SynDropAttack("vsink", seed=seed + 1),
        with_connector=True,
        seed=seed, tau=tau, n_sources=n_sources,
    )


@register_result_type
@dataclass
class NsSimPoint(EvalResultBase):
    drop_rate: float
    detected: bool
    detection_latency_rounds: Optional[int]
    false_positive_rounds: int
    malicious_drops: int

    def to_dict(self) -> dict:
        return {
            "drop_rate": self.drop_rate,
            "detected": self.detected,
            "detection_latency_rounds": self.detection_latency_rounds,
            "false_positive_rounds": self.false_positive_rounds,
            "malicious_drops": self.malicious_drops,
        }


def fig6_3_ns_simulation(
    rates: Sequence[float] = (0.0, 0.01, 0.02, 0.05, 0.1, 0.2, 0.5),
    seed: int = 0,
) -> List[NsSimPoint]:
    """Fig 6.3: χ detection across attack intensities (NS-style sweep)."""
    points = []
    for rate in rates:
        factory = (None if rate == 0.0 else
                   (lambda s, r=rate: DropFlowAttack(["tcp1"], fraction=r,
                                                     seed=seed + 7)))
        result = _run_droptail(f"ns-{rate}", factory, seed=seed)
        points.append(NsSimPoint(
            drop_rate=rate,
            detected=result.detected,
            detection_latency_rounds=result.metrics.detection_latency_rounds,
            false_positive_rounds=result.metrics.false_positive_rounds,
            malicious_drops=result.malicious_drops_truth,
        ))
    return points


@register_result_type
@dataclass
class ThresholdComparison(EvalResultBase):
    """§6.4.3: χ vs static thresholds on the same pair of traces.

    The paper's argument is quantified two ways: a threshold low enough
    to catch anything false-positives on the pure-congestion trace, and
    any threshold grants the attacker all the drops it lands in rounds
    whose total stays at or below it (``static_free_drops``) — χ grants
    none while raising no false alarm.
    """

    thresholds: List[int]
    static_fp_rounds: Dict[int, int]  # benign-trace alarms per threshold
    static_detected: Dict[int, bool]  # subtle-attack trace detection
    static_free_drops: Dict[int, int]  # malicious drops below the radar
    chi_fp_rounds: int
    chi_detected: bool
    total_malicious_drops: int
    benign_max_losses: int
    attack_mean_losses: float

    def unsound_thresholds(self) -> List[int]:
        """Thresholds that false-positive, miss, or grant free drops."""
        return [t for t in self.thresholds
                if self.static_fp_rounds[t] > 0
                or not self.static_detected[t]
                or self.static_free_drops[t] > 0]

    def to_dict(self) -> dict:
        return {
            "thresholds": list(self.thresholds),
            "static_fp_rounds": {str(k): v for k, v
                                 in self.static_fp_rounds.items()},
            "static_detected": {str(k): v for k, v
                                in self.static_detected.items()},
            "static_free_drops": {str(k): v for k, v
                                  in self.static_free_drops.items()},
            "chi_fp_rounds": self.chi_fp_rounds,
            "chi_detected": self.chi_detected,
            "total_malicious_drops": self.total_malicious_drops,
            "benign_max_losses": self.benign_max_losses,
            "attack_mean_losses": self.attack_mean_losses,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ThresholdComparison":
        return cls(
            thresholds=list(data["thresholds"]),
            static_fp_rounds={int(k): v for k, v
                              in data["static_fp_rounds"].items()},
            static_detected={int(k): v for k, v
                             in data["static_detected"].items()},
            static_free_drops={int(k): v for k, v
                               in data["static_free_drops"].items()},
            chi_fp_rounds=data["chi_fp_rounds"],
            chi_detected=data["chi_detected"],
            total_malicious_drops=data["total_malicious_drops"],
            benign_max_losses=data["benign_max_losses"],
            attack_mean_losses=data["attack_mean_losses"],
        )


def chi_vs_static_threshold(
    thresholds: Sequence[int] = (1, 2, 5, 10, 15, 20, 30, 50),
    seed: int = 0,
) -> ThresholdComparison:
    """Run a congestion-only trace and a subtle-attack trace; score both
    χ and per-round static loss thresholds on each."""
    attack_at, tau = 50.0, 2.0
    first_attack_round = int(attack_at / tau)
    benign = _run_droptail("benign", None, seed=seed,
                           attack_at=attack_at, tau=tau)
    attack = _run_droptail(
        "subtle",
        lambda s: QueueConditionalDropAttack(["tcp1"], fill_threshold=0.90,
                                             seed=seed + 1),
        seed=seed, attack_at=attack_at, tau=tau,
    )
    benign_losses = [drops for (_r, drops, _c, _conf, _a) in benign.rounds]
    attack_losses = {r: drops for (r, drops, _c, _conf, _a) in attack.rounds}
    attack_round_losses = [d for r, d in attack_losses.items()
                           if r >= first_attack_round]
    static_fp: Dict[int, int] = {}
    static_det: Dict[int, bool] = {}
    static_free: Dict[int, int] = {}
    for t in thresholds:
        static_fp[t] = sum(1 for losses in benign_losses if losses > t)
        static_det[t] = any(d > t for d in attack_round_losses)
        static_free[t] = sum(
            attack.malicious_by_round.get(r, 0)
            for r, total in attack_losses.items()
            if r >= first_attack_round and total <= t
        )
    return ThresholdComparison(
        thresholds=list(thresholds),
        static_fp_rounds=static_fp,
        static_detected=static_det,
        static_free_drops=static_free,
        chi_fp_rounds=(benign.false_positives
                       + attack.metrics.false_positive_rounds),
        chi_detected=attack.detected,
        total_malicious_drops=attack.malicious_drops_truth,
        benign_max_losses=max(benign_losses) if benign_losses else 0,
        attack_mean_losses=(sum(attack_round_losses) / len(attack_round_losses)
                            if attack_round_losses else 0.0),
    )


# ---------------------------------------------------------------------------
# RED scenarios — Figs 6.11-6.16
# ---------------------------------------------------------------------------

def _run_red(name: str, attack_factory, *,
             monitor_rounds: Tuple[int, int] = (1, 59),
             attack_at: float = 50.0,
             end: float = 300.0,
             with_connector: bool = False,
             tau: float = 5.0,
             n_sources: int = 8,
             seed: int = 0) -> ScenarioResult:
    scenario = _red_scenario(tau=tau, seed=seed, n_sources=n_sources,
                             with_connector=with_connector)
    net = scenario.network
    chi = scenario.chi
    chi.schedule_rounds(*monitor_rounds)
    net.run(attack_at)
    attack = None
    if attack_factory is not None:
        attack = attack_factory(scenario)
        net.routers["r"].compromise = attack
    net.run(end)
    attack_first = (int(attack_at / tau) if attack_factory is not None
                    else None)
    metrics = score_round_findings(chi.findings, attack_first)
    rounds = [(f.round_index, len(f.drops), f.candidate_drops,
               f.combined_confidence, f.alarmed) for f in chi.findings]
    by_round: Dict[int, int] = {}
    if attack is not None:
        for when in attack.drop_times:
            by_round[int(when / tau)] = by_round.get(int(when / tau), 0) + 1
    result = ScenarioResult(
        name=name,
        metrics=metrics,
        total_drops=sum(len(f.drops) for f in chi.findings),
        congestive_drops=sum(f.congestive_drops for f in chi.findings),
        malicious_drops_truth=(len(attack.dropped) if attack else 0),
        candidate_drops=sum(f.candidate_drops for f in chi.findings),
        rounds=rounds,
        malicious_by_round=by_round,
    )
    if scenario.connector is not None:
        result.extra["syn_retries"] = float(scenario.connector.syn_retry_count())
    return result


def fig6_11_red_no_attack(seed: int = 0, tau: float = 5.0,
                          n_sources: int = 8) -> ScenarioResult:
    """Fig 6.11: RED losses only — χ must stay silent."""
    return _run_red("red-no-attack", None, seed=seed, tau=tau,
                    n_sources=n_sources)


def fig6_12_red_attack1(seed: int = 0, avg_threshold: float = 45_000,
                        n_sources: int = 8) -> ScenarioResult:
    """Fig 6.12: drop the selected flows when avg queue > 45,000 bytes."""
    return _run_red(
        "red-attack1-45k",
        lambda s: REDAverageConditionalDropAttack(["tcp1", "tcp2"],
                                                  avg_threshold=avg_threshold,
                                                  seed=seed + 1),
        seed=seed, n_sources=n_sources,
    )


def fig6_13_red_attack2(seed: int = 0, avg_threshold: float = 54_000,
                        n_sources: int = 12) -> ScenarioResult:
    """Fig 6.13: drop the selected flows when avg queue > 54,000 bytes."""
    return _run_red(
        "red-attack2-54k",
        lambda s: REDAverageConditionalDropAttack(["tcp1", "tcp2"],
                                                  avg_threshold=avg_threshold,
                                                  seed=seed + 1),
        n_sources=n_sources, end=600.0, monitor_rounds=(1, 119),
        seed=seed,
    )


def fig6_14_red_attack3(seed: int = 0, fraction: float = 0.10,
                        avg_threshold: float = 45_000) -> ScenarioResult:
    """Fig 6.14: drop 10% of the selected flows above 45,000 bytes."""
    return _run_red(
        "red-attack3-10pct",
        lambda s: REDAverageConditionalDropAttack(["tcp1", "tcp2"],
                                                  avg_threshold=avg_threshold,
                                                  fraction=fraction,
                                                  seed=seed + 1),
        end=500.0, monitor_rounds=(1, 99),
        seed=seed,
    )


def fig6_15_red_attack4(seed: int = 0, fraction: float = 0.05,
                        avg_threshold: float = 45_000) -> ScenarioResult:
    """Fig 6.15: drop 5% of the selected flows above 45,000 bytes."""
    return _run_red(
        "red-attack4-5pct",
        lambda s: REDAverageConditionalDropAttack(["tcp1", "tcp2"],
                                                  avg_threshold=avg_threshold,
                                                  fraction=fraction,
                                                  seed=seed + 1),
        end=700.0, monitor_rounds=(1, 139),
        seed=seed,
    )


def fig6_16_red_attack5(seed: int = 0) -> ScenarioResult:
    """Fig 6.16: SYN-drop a host behind the RED bottleneck."""
    return _run_red(
        "red-attack5-syn",
        lambda s: SynDropAttack("vsink", seed=seed + 1),
        with_connector=True,
        seed=seed,
    )


# ---------------------------------------------------------------------------
# Packet-plane protocol benches — Π2 / Πk+2 / tcp-heavy / adversary-heavy
# ---------------------------------------------------------------------------

@register_result_type
@dataclass
class ProtocolBenchResult(EvalResultBase):
    """Result of a seeded packet-plane protocol run (Π2 / Πk+2).

    Unlike the analytic ``fig5_2``/``fig5_4`` path-enumeration curves,
    these runs drive the full simulator — sources, queues, monitor taps,
    summary exchange and detector — so they double as sweepable golden
    workloads for the bench suite.
    """

    name: str
    protocol: str  # "pi2" | "pik2"
    bad_router: str
    total_suspicions: int
    accurate: bool
    complete: bool
    precision: int
    sim_events: int
    extra: Dict[str, float] = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "protocol": self.protocol,
            "bad_router": self.bad_router,
            "total_suspicions": self.total_suspicions,
            "accurate": self.accurate,
            "complete": self.complete,
            "precision": self.precision,
            "sim_events": self.sim_events,
            "extra": dict(self.extra),
        }


def _run_protocol_bench(name: str, protocol_name: str, *,
                        seed: int = 0,
                        bad_router: str = "r3",
                        fraction: float = 0.5,
                        rate_bps: int = 600_000,
                        duration: float = 4.0,
                        end: float = 7.0) -> ProtocolBenchResult:
    net = Network(chain(6, bandwidth=10 * MBPS, delay=0.001))
    paths = install_static_routes(net)
    oracle = PathOracle(paths)
    schedule = RoundSchedule(tau=1.0)
    keys = KeyInfrastructure()
    monitor = SegmentMonitor(net, oracle, schedule,
                             policy=SummaryPolicy.CONTENT)
    net.add_tap(monitor)
    enum = (monitored_segments_pi2 if protocol_name == "pi2"
            else monitored_segments_pik2)
    segments: Set[Tuple[str, ...]] = set()
    for segs in enum([tuple(p) for p in paths.values()], k=1).values():
        segments |= segs
    if protocol_name == "pi2":
        protocol = ProtocolPi2(net, monitor, segments, keys, schedule,
                               config=Pi2Config(k=1))
        max_precision = 2
    else:
        protocol = ProtocolPiK2(net, monitor, segments, keys, schedule,
                                config=PiK2Config(k=1))
        max_precision = 3
    protocol.schedule_rounds(0, 3)
    net.routers[bad_router].compromise = DropFlowAttack(
        ["f1", "f2"], fraction=fraction, seed=seed + 1)
    CBRSource(net, "r1", "r6", "f1", rate_bps=rate_bps, duration=duration)
    CBRSource(net, "r6", "r1", "f2", rate_bps=rate_bps, duration=duration)
    net.run(end)
    acc = accuracy_report(protocol.states, {bad_router},
                          max_precision=max_precision)
    comp = completeness_report(protocol.states, {bad_router}, mode="FI")
    return ProtocolBenchResult(
        name=name,
        protocol=protocol_name,
        bad_router=bad_router,
        total_suspicions=acc.total_suspicions,
        accurate=acc.accurate,
        complete=comp.complete,
        precision=acc.precision,
        sim_events=net.sim.events_dispatched,
    )


def pi2_bench(seed: int = 0, bad_router: str = "r3",
              fraction: float = 0.5,
              rate_bps: int = 600_000) -> ProtocolBenchResult:
    """Seeded Π2 packet-plane run on a 6-router chain (Appendix B)."""
    return _run_protocol_bench("pi2-bench", "pi2", seed=seed,
                               bad_router=bad_router, fraction=fraction,
                               rate_bps=rate_bps)


def pik2_bench(seed: int = 0, bad_router: str = "r3",
               fraction: float = 0.5,
               rate_bps: int = 600_000) -> ProtocolBenchResult:
    """Seeded Πk+2 packet-plane run on a 6-router chain (Appendix B)."""
    return _run_protocol_bench("pik2-bench", "pik2", seed=seed,
                               bad_router=bad_router, fraction=fraction,
                               rate_bps=rate_bps)


def tcp_heavy_bench(seed: int = 0, n_sources: int = 6,
                    tau: float = 2.0) -> ScenarioResult:
    """TCP-heavy droptail workload: many sources + connection setup,
    congestion only — stresses queues and the χ monitor with no attack."""
    return _run_droptail("tcp-heavy", None, seed=seed, tau=tau,
                         n_sources=n_sources, with_connector=True)


def adversary_heavy_bench(seed: int = 0, n_sources: int = 8,
                          avg_threshold: float = 45_000) -> ScenarioResult:
    """Adversary-heavy RED workload: a combined RED-conditional dropper
    plus SYN-dropper — stresses the attack hooks on every packet."""
    return _run_red(
        "adversary-heavy",
        lambda s: CombinedCompromise(
            REDAverageConditionalDropAttack(["tcp1", "tcp2"],
                                            avg_threshold=avg_threshold,
                                            seed=seed + 1),
            SynDropAttack("vsink", seed=seed + 2),
        ),
        with_connector=True,
        end=200.0, monitor_rounds=(1, 39),
        seed=seed,
    )


# ---------------------------------------------------------------------------
# Attack matrices — topology x placement x behavior x rate grid cells
# ---------------------------------------------------------------------------

@register_result_type
@dataclass
class AttackMatrixResult(EvalResultBase):
    """One attack-matrix cell: Π2 detection scored against ground truth.

    ``precision`` is the fraction of suspicions (across correct routers)
    that actually cover the compromised router; ``recall`` the fraction
    of correct routers whose detector caught it (FI completeness);
    ``latency`` the virtual seconds from adversary activation to the end
    of the first covering suspicion interval, ``None`` when undetected
    (the sweep aggregator skips None, so its ``n`` records coverage).
    For ``behavior="none"`` control cells ground truth is empty, so
    precision 1.0 means "no false alarms" and recall is trivially 1.0.
    """

    topology: str
    behavior: str
    placement_strategy: str
    adversary_router: str
    rate: float
    detected: bool
    precision: float
    recall: float
    latency: Optional[float]
    total_suspicions: int
    false_suspicions: int
    segment_precision: int
    sim_events: int

    def to_dict(self) -> dict:
        return {
            "topology": self.topology,
            "behavior": self.behavior,
            "placement_strategy": self.placement_strategy,
            "adversary_router": self.adversary_router,
            "rate": self.rate,
            "detected": self.detected,
            "precision": self.precision,
            "recall": self.recall,
            "latency": self.latency,
            "total_suspicions": self.total_suspicions,
            "false_suspicions": self.false_suspicions,
            "segment_precision": self.segment_precision,
            "sim_events": self.sim_events,
        }


def attack_matrix(topology: str = "abilene",
                  adversary: Optional[dict] = None,
                  placement: Optional[dict] = None,
                  traffic: Optional[dict] = None,
                  tau: float = 1.0,
                  rounds: int = 3,
                  seed: int = 0) -> AttackMatrixResult:
    """One cell of the WedgeTail-style per-topology attack matrix.

    Builds the :class:`~repro.eval.specs.ScenarioSpec` the parameters
    describe (nested dicts arrive from dotted ``--grid`` keys such as
    ``adversary.rate``), runs the armed Π2 detector and scores
    detection precision/recall/latency against the placed adversary.
    """
    spec = ScenarioSpec(
        topology=(TopologySpec(name=topology)
                  if isinstance(topology, str) else topology),
        adversary=adversary, placement=placement, traffic=traffic,
        tau=tau, rounds=rounds, seed=seed)
    scenario = build_scenario(spec)
    if not isinstance(scenario, AttackScenario):
        raise ValueError(
            "attack_matrix needs a routed catalogue topology; the "
            "'simple' emulation testbed has its own experiments")
    scenario.run()

    states = scenario.protocol.states
    bad = scenario.adversary_router
    truth = set() if spec.adversary.behavior == "none" else {bad}
    acc = accuracy_report(states, truth, max_precision=2)
    comp = completeness_report(states, truth, mode="FI")

    total = acc.total_suspicions
    precision = (acc.accurate_suspicions / total) if total else 1.0
    if truth:
        correct = [router for router in states if router != bad]
        hits = sum(1 for router in correct
                   if bad in comp.per_router_detected.get(router, set()))
        recall = (hits / len(correct)) if correct else 0.0
        detected = bad in comp.detected
    else:
        recall = 1.0
        detected = False

    latency: Optional[float] = None
    if truth:
        covering = [s.interval[1]
                    for state in states.values()
                    for s in state.suspicions if s.contains(bad)]
        if covering:
            latency = min(covering) - scenario.attack_at

    return AttackMatrixResult(
        topology=spec.topology.name,
        behavior=spec.adversary.behavior,
        placement_strategy=spec.placement.strategy,
        adversary_router=bad,
        rate=spec.adversary.rate,
        detected=detected,
        precision=precision,
        recall=recall,
        latency=latency,
        total_suspicions=total,
        false_suspicions=total - acc.accurate_suspicions,
        segment_precision=acc.precision,
        sim_events=scenario.network.sim.events_dispatched,
    )


# ---------------------------------------------------------------------------
# Baseline demonstrations (Ch. 3 figures)
# ---------------------------------------------------------------------------

@register_result_type
@dataclass
class BaselineDemo(EvalResultBase):
    name: str
    description: str
    values: Dict[str, object] = field(default_factory=dict)

    def to_dict(self) -> dict:
        def jsonable(value):
            if isinstance(value, (list, tuple)):
                return [jsonable(v) for v in value]
            if isinstance(value, dict):
                return {str(k): jsonable(v) for k, v in value.items()}
            return value
        return {
            "name": self.name,
            "description": self.description,
            "values": {k: jsonable(v) for k, v in self.values.items()},
        }


def watchers_flaw_demo() -> BaselineDemo:
    """Fig 3.3: consorting routers evade WATCHERS; the fix catches them."""
    topo = chain(5)
    flows = [WatchersFlow(("r1", "r2", "r3", "r4", "r5"), 10_000.0)]

    def inflate(claims):
        return {key: (value * 2 if key[1] == "r3" and key[2] == "r4"
                      else value)
                for key, value in claims.items()}

    consorting = {
        "r3": WatchersFault(drop_fraction=lambda f: 0.5, misreport=inflate),
        "r4": WatchersFault(),
    }
    plain = WatchersProtocol(topo, flows, consorting).run_round()
    fixed = WatchersProtocol(topo, flows, consorting, improved=True).run_round()
    return BaselineDemo(
        name="watchers-consorting",
        description="consorting c,d evade original WATCHERS; fix detects",
        values={
            "original_detections": sorted(plain.detected_links()),
            "original_detects_attacker": plain.detects_router("r3"),
            "fixed_detections": sorted(fixed.detected_links()),
            "fixed_detects_attacker": fixed.detects_router("r3"),
        },
    )


def perlman_collusion_demo() -> BaselineDemo:
    """Fig 3.8: colluding b, e frame the correct link ⟨c, d⟩ in PERLMANd."""
    path = ["a", "b", "c", "d", "e", "f"]
    faulty = {
        # e drops the data packet so it never reaches f.
        "e": FaultyNode(drop_data=lambda r, p: True),
        # b suppresses acks from routers beyond c.
        "b": FaultyNode(drop_protocol=lambda r, origin, kind:
                        origin in ("d", "e", "f")),
    }
    model = PathModel(path, faulty)
    outcome = perlman_per_hop_acks(model)
    robust = perlman_route_setup(model)
    return BaselineDemo(
        name="perlman-collusion",
        description="PERLMANd frames ⟨c,d⟩; route-setup variant suspects "
                    "the whole path (low precision, but accurate)",
        values={
            "perlmand_suspected": outcome.suspected,
            "perlmand_framed_correct_link": outcome.framing,
            "route_setup_suspected": robust.suspected,
        },
    )


def sectrace_framing_demo() -> BaselineDemo:
    """Fig 3.7: b attacks only after being validated, framing ⟨c, d⟩."""
    path = ["a", "b", "c", "d", "e"]
    faulty = {
        # b is validated in round 1 (its own validation round) and begins
        # dropping afterwards — the framing scenario of §3.6.
        "b": FaultyNode(drop_data=lambda r, p: True, active_from_round=3),
    }
    outcome = secure_traceroute(PathModel(path, faulty))
    return BaselineDemo(
        name="sectrace-framing",
        description="late-activating b makes SecTrace blame ⟨c,d⟩",
        values={
            "detected": outcome.detected_link,
            "framed_correct_link": outcome.framing,
            "rounds": outcome.rounds,
        },
    )


def awerbuch_localization_demo(path_length: int = 9) -> BaselineDemo:
    """§3.5: binary search localizes a persistent dropper in log M rounds."""
    path = [f"n{i}" for i in range(path_length)]
    bad = path[path_length // 2 + 1]
    model = PathModel(path, {bad: FaultyNode(drop_data=lambda r, p: True)})
    outcome = awerbuch_binary_search(model)
    return BaselineDemo(
        name="awerbuch-binary-search",
        description="adaptive probing pins the dropper's link",
        values={
            "detected": outcome.detected_link,
            "rounds": outcome.rounds,
            "log2_bound": math.ceil(math.log2(path_length)),
            "contains_attacker": (outcome.detected_link is not None
                                  and bad in outcome.detected_link),
        },
    )


# ---------------------------------------------------------------------------
# §6.1.2 — why traffic modeling is not enough
# ---------------------------------------------------------------------------

@register_result_type
@dataclass
class ModelingComparison(EvalResultBase):
    predicted_loss_prob: float
    observed_loss_rate: float
    relative_error: float

    def to_dict(self) -> dict:
        return {
            "predicted_loss_prob": self.predicted_loss_prob,
            "observed_loss_rate": self.observed_loss_rate,
            "relative_error": self.relative_error,
        }


def traffic_modeling_comparison(seed: int = 0) -> ModelingComparison:
    """Compare Appenzeller-model loss predictions with simulated reality.

    The paper verified Q's normality but found (µ, σ) predictions too
    rough for detection; this experiment quantifies the gap on our
    testbed."""
    scenario = _droptail_scenario(n_sources=3, seed=seed)
    net = scenario.network
    net.run(120.0)
    queue = scenario.bottleneck_queue
    offered = queue.enqueues + queue.drops
    observed = queue.drops / offered if offered else 0.0
    capacity_pps = (1.0 * MBPS) / 1000.0
    sigma = appenzeller_sigma(propagation_delay=0.009,
                              capacity_pps=capacity_pps,
                              buffer_packets=30.0, n_flows=3)
    predicted = appenzeller_loss_probability(30.0, sigma)
    rel = (abs(predicted - observed) / observed) if observed else float("inf")
    return ModelingComparison(predicted_loss_prob=predicted,
                              observed_loss_rate=observed,
                              relative_error=rel)


# ---------------------------------------------------------------------------
# §2.4.3 — response strategy ablation
# ---------------------------------------------------------------------------

@register_result_type
@dataclass
class ResponseImpact(EvalResultBase):
    strategy: str  # "segment" | "router"
    unreachable_pairs: int
    mean_stretch: float  # constrained/unconstrained shortest-path cost
    max_stretch: float

    def to_dict(self) -> dict:
        return {
            "strategy": self.strategy,
            "unreachable_pairs": self.unreachable_pairs,
            "mean_stretch": self.mean_stretch,
            "max_stretch": self.max_stretch,
        }


def response_strategy_ablation(
    topology_name: str = "abilene",
    suspicions: Sequence[Tuple[str, ...]] = (
        ("Denver", "KansasCity", "Indianapolis"),
        ("Houston", "KansasCity", "Indianapolis"),
        ("Denver", "KansasCity", "Houston"),
    ),
) -> Dict[str, ResponseImpact]:
    """Compare the paper's two countermeasures (§2.4.3).

    * **segment** — remove only the suspected path-segments from the
      routing fabric (the paper's choice: "less disruptive").
    * **router** — remove every suspected router entirely.

    Returns per-strategy reachability and path-stretch impact.
    """
    from repro.net.routing import compute_all_paths, shortest_path_avoiding

    topo = _topology(topology_name)
    base = compute_all_paths(topo)

    def cost(path) -> float:
        return sum(topo.link(a, b).metric for a, b in zip(path, path[1:]))

    results: Dict[str, ResponseImpact] = {}
    for strategy in ("segment", "router"):
        if strategy == "segment":
            constraints = list(suspicions)
        else:
            bad_routers = sorted({r for seg in suspicions for r in seg[1:-1]}
                                 or {r for seg in suspicions for r in seg})
            # Removing a router = excluding every link incident to it.
            constraints = []
            for r in bad_routers:
                for nbr in topo.neighbors(r):
                    constraints.append((r, nbr))
                    constraints.append((nbr, r))
        unreachable = 0
        stretches: List[float] = []
        for (src, dst), path in base.items():
            if strategy == "router" and (
                    src in {r for c in constraints for r in c}
                    and topo.degree(src) == 0):
                continue
            constrained = shortest_path_avoiding(topo, src, dst, constraints)
            if constrained is None:
                unreachable += 1
                continue
            stretches.append(cost(constrained) / max(cost(path), 1e-12))
        results[strategy] = ResponseImpact(
            strategy=strategy,
            unreachable_pairs=unreachable,
            mean_stretch=(sum(stretches) / len(stretches)
                          if stretches else float("inf")),
            max_stretch=max(stretches) if stretches else float("inf"),
        )
    return results
