"""Run-grid expansion and deterministic per-run seed derivation.

A sweep is the cartesian product of a parameter grid times ``n_seeds``
Monte-Carlo replicates.  Every run gets a :class:`RunSpec` whose seed is
derived as ``sha256(root_seed | run_key)`` — so the same root seed always
expands to the same per-run seeds, regardless of worker count or
completion order, and adding a grid axis never perturbs the seeds of
existing points.
"""

from __future__ import annotations

import ast
import hashlib
import json
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

Params = Tuple[Tuple[str, object], ...]


def canonical_params(params: Mapping[str, object]) -> Params:
    """Sort parameters into a hashable, order-independent form."""
    return tuple(sorted(params.items()))


def params_token(params: Mapping[str, object]) -> str:
    """A canonical JSON string of a parameter mapping (dict-order free)."""
    return json.dumps(dict(params), sort_keys=True, separators=(",", ":"),
                      default=str)


def derive_seed(root_seed: int, run_key: str) -> int:
    """Deterministically derive a per-run seed from the sweep's root seed."""
    digest = hashlib.sha256(f"{root_seed}|{run_key}".encode()).digest()
    return int.from_bytes(digest[:8], "big") % (2 ** 31)


@dataclass(frozen=True)
class RunSpec:
    """One cell of a sweep: an experiment, a grid point, one derived seed."""

    experiment: str
    params: Params  # grid-point parameters, sorted, never includes "seed"
    seed_index: int
    seed: Optional[int]  # derived seed; None for seedless experiments

    @property
    def run_key(self) -> str:
        return (f"{self.experiment}|{params_token(dict(self.params))}"
                f"|seed{self.seed_index}")

    def call_params(self) -> Dict[str, object]:
        """The kwargs actually passed to the experiment function.

        Dotted grid keys (``adversary.rate``) stay flat in
        :attr:`params` — they are part of the cell's cache/run identity —
        but are folded into nested dicts here, at the call boundary.
        """
        merged = fold_dotted_params(dict(self.params))
        if self.seed is not None:
            merged["seed"] = self.seed
        return merged

    def payload(self) -> dict:
        """A plain-dict form safe to ship across a process boundary."""
        return {
            "experiment": self.experiment,
            "params": [list(kv) for kv in self.params],
            "seed_index": self.seed_index,
            "seed": self.seed,
        }


def shard_specs(specs: Sequence[RunSpec], index: int,
                count: int) -> List[RunSpec]:
    """Deterministically partition a run list across ``count`` shards.

    Spec *j* of the expanded list belongs to shard ``j % count`` — a
    pure function of the sweep coordinates, so every host that expands
    the same (experiment, params, grid, seeds, root_seed) agrees on the
    partition without coordination, and striding balances slow grid
    points across shards.
    """
    if count < 1:
        raise ValueError("shard count must be >= 1")
    if not 0 <= index < count:
        raise ValueError(f"shard index {index} out of range for "
                         f"{count} shard(s); expected 0..{count - 1}")
    return [spec for j, spec in enumerate(specs) if j % count == index]


def parse_shard(text: str) -> Tuple[int, int]:
    """Parse a ``--shard i/n`` argument into ``(index, count)``."""
    index_text, sep, count_text = text.partition("/")
    try:
        if not sep:
            raise ValueError
        index, count = int(index_text), int(count_text)
    except ValueError:
        raise ValueError(
            f"bad --shard {text!r}; expected i/n, e.g. 0/4") from None
    if count < 1 or not 0 <= index < count:
        raise ValueError(
            f"bad --shard {text!r}; need 0 <= i < n")
    return index, count


def expand_grid(
    experiment: str,
    base_params: Optional[Mapping[str, object]] = None,
    grid: Optional[Mapping[str, Sequence[object]]] = None,
    n_seeds: int = 1,
    root_seed: int = 0,
    accepts_seed: bool = True,
) -> List[RunSpec]:
    """Expand (grid axes) x (seed replicates) into an ordered run list."""
    if n_seeds < 1:
        raise ValueError("n_seeds must be >= 1")
    points: List[Dict[str, object]] = [dict(base_params or {})]
    for key, values in sorted((grid or {}).items()):
        if not values:
            raise ValueError(f"grid axis {key!r} has no values")
        points = [dict(point, **{key: value})
                  for point in points for value in values]
    specs: List[RunSpec] = []
    for point in points:
        params = canonical_params(point)
        if accepts_seed:
            for index in range(n_seeds):
                spec = RunSpec(experiment, params, index, None)
                specs.append(RunSpec(experiment, params, index,
                                     derive_seed(root_seed, spec.run_key)))
        else:
            specs.append(RunSpec(experiment, params, 0, None))
    return specs


def fold_dotted_params(params: Mapping[str, object]) -> Dict[str, object]:
    """Fold dotted keys into nested dicts: ``a.b=1`` -> ``{"a": {"b": 1}}``.

    Plain keys pass through (mapping values are copied one level deep so
    callers can mutate the result safely).  A dotted path that collides
    with a scalar plain key, or two paths where one is a prefix of the
    other, is an error — the caller said two contradictory things.
    """
    folded: Dict[str, object] = {}
    for key in sorted(params):
        value = params[key]
        if "." not in key:
            if key in folded and isinstance(folded[key], dict):
                if not isinstance(value, Mapping):
                    raise ValueError(
                        f"parameter {key!r} conflicts with dotted "
                        f"{key}.* parameters")
                folded[key].update(value)  # type: ignore[attr-defined]
            else:
                folded[key] = dict(value) if isinstance(value, Mapping) \
                    else value
            continue
        parts = key.split(".")
        if any(not part for part in parts):
            raise ValueError(f"bad dotted parameter name {key!r}")
        cursor = folded
        for depth, part in enumerate(parts[:-1]):
            node = cursor.setdefault(part, {})
            if not isinstance(node, dict):
                raise ValueError(
                    f"parameter {'.'.join(parts[:depth + 1])!r} is a "
                    f"scalar; cannot also set {key!r}")
            cursor = node
        leaf = parts[-1]
        if isinstance(cursor.get(leaf), dict):
            raise ValueError(
                f"parameter {key!r} is a scalar but {key}.* parameters "
                f"were also given")
        cursor[leaf] = value
    return folded


# ---------------------------------------------------------------------------
# CLI value parsing
# ---------------------------------------------------------------------------

def coerce_value(text: str) -> object:
    """Best-effort literal coercion: int/float/bool/None, else string."""
    lowered = text.lower()
    if lowered in ("true", "false"):
        return lowered == "true"
    if lowered in ("none", "null"):
        return None
    try:
        return ast.literal_eval(text)
    except (ValueError, SyntaxError):
        return text


def parse_param_assignments(assignments: Sequence[str]) -> Dict[str, object]:
    """Parse repeated ``--param key=value`` options."""
    params: Dict[str, object] = {}
    for assignment in assignments:
        key, sep, value = assignment.partition("=")
        if not sep or not key:
            raise ValueError(f"bad --param {assignment!r}; expected key=value")
        params[key] = coerce_value(value)
    return params


def parse_grid_assignments(
        assignments: Sequence[str]) -> Dict[str, List[object]]:
    """Parse repeated ``--grid key=v1,v2,...`` options."""
    grid: Dict[str, List[object]] = {}
    for assignment in assignments:
        key, sep, values = assignment.partition("=")
        if not sep or not key or not values:
            raise ValueError(
                f"bad --grid {assignment!r}; expected key=v1,v2,...")
        grid[key] = [coerce_value(v) for v in values.split(",")]
    return grid
