"""Cross-run statistics: flatten per-run records, compute mean/median/CI.

Each run's serialized result is flattened to dotted numeric leaves
(``metrics.false_positive_rounds``, ``extra.victim_goodput_pps``, ...);
booleans count as 0/1 so "fraction of seeds detected" falls out of the
same machinery.  Fields missing from some runs are aggregated over the
runs that have them (``n`` records how many).
"""

from __future__ import annotations

import math
from typing import Dict, List, Mapping, Sequence


def flatten_numeric(record, prefix: str = "") -> Dict[str, float]:
    """Extract dotted-path numeric (and boolean) leaves from a record."""
    flat: Dict[str, float] = {}
    if not isinstance(record, Mapping):
        # List- or scalar-shaped results have no named numeric fields.
        return flat
    for key, value in record.items():
        path = f"{prefix}.{key}" if prefix else str(key)
        if isinstance(value, bool):
            flat[path] = 1.0 if value else 0.0
        elif isinstance(value, (int, float)):
            if isinstance(value, float) and not math.isfinite(value):
                continue
            flat[path] = float(value)
        elif isinstance(value, Mapping):
            flat.update(flatten_numeric(value, path))
        # lists/strings/None are per-run detail, not aggregable series
    return flat


def _median(values: Sequence[float]) -> float:
    ordered = sorted(values)
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[mid]
    return (ordered[mid - 1] + ordered[mid]) / 2.0


def summarize(values: Sequence[float]) -> Dict[str, float]:
    """n/mean/median/std/min/max plus a normal-approximation 95% CI."""
    n = len(values)
    mean = sum(values) / n
    variance = (sum((v - mean) ** 2 for v in values) / (n - 1)
                if n > 1 else 0.0)
    std = math.sqrt(variance)
    ci95 = 1.96 * std / math.sqrt(n) if n > 1 else 0.0
    return {
        "n": n,
        "mean": mean,
        "median": _median(values),
        "std": std,
        "min": min(values),
        "max": max(values),
        "ci95": ci95,
    }


def aggregate_records(
        results: Sequence[Mapping]) -> Dict[str, Dict[str, float]]:
    """Aggregate the flattened numeric fields of many run results."""
    series: Dict[str, List[float]] = {}
    for result in results:
        for path, value in flatten_numeric(result).items():
            series.setdefault(path, []).append(value)
    return {path: summarize(values)
            for path, values in sorted(series.items())}
