"""Fault-tolerant parallel Monte-Carlo sweep engine with result caching.

``python -m repro sweep <experiment> --seeds N --jobs J`` fans any
registered experiment across a process pool — seeds derived
deterministically from a root seed, finished runs cached on disk under
``.repro-cache/`` (LRU size-capped via ``--cache-max-mb``), failed or
timed-out runs retried with exponential backoff and worker crashes
survived, per-sweep JSON/CSV artifacts plus mean/median/CI aggregates
emitted per sweep.  ``--shard i/n`` runs one deterministic slice of the
run list; ``python -m repro merge`` unions shard outputs back into one
aggregate identical to an unsharded run.  See the "Sweeps" sections of
README.md and EXPERIMENTS.md.
"""

from repro.sweep.aggregate import aggregate_records, flatten_numeric, summarize
from repro.sweep.artifacts import result_to_dict, write_sweep_artifacts
from repro.sweep.cache import DEFAULT_CACHE_DIR, ResultCache, code_version
from repro.sweep.grid import (
    RunSpec,
    derive_seed,
    expand_grid,
    parse_grid_assignments,
    parse_param_assignments,
    parse_shard,
    shard_specs,
)
from repro.sweep.merge import (
    MergeError,
    load_manifest,
    merge_manifests,
    merge_sweep_dirs,
)
from repro.sweep.retry import RetryPolicy, RunTimeoutError, SweepError
from repro.sweep.runner import SweepResult, execute_spec, run_sweep

__all__ = [
    "DEFAULT_CACHE_DIR",
    "MergeError",
    "ResultCache",
    "RetryPolicy",
    "RunSpec",
    "RunTimeoutError",
    "SweepError",
    "SweepResult",
    "aggregate_records",
    "code_version",
    "derive_seed",
    "execute_spec",
    "expand_grid",
    "flatten_numeric",
    "load_manifest",
    "merge_manifests",
    "merge_sweep_dirs",
    "parse_grid_assignments",
    "parse_param_assignments",
    "parse_shard",
    "result_to_dict",
    "run_sweep",
    "shard_specs",
    "summarize",
    "write_sweep_artifacts",
]
