"""Fault-tolerant parallel Monte-Carlo sweep engine with result caching.

``python -m repro sweep <experiment> --seeds N --jobs J`` fans any
registered experiment across a process pool — seeds derived
deterministically from a root seed, finished runs cached on disk under
``.repro-cache/`` (LRU size-capped via ``--cache-max-mb``), failed or
timed-out runs retried with exponential backoff and worker crashes
survived, per-sweep JSON/CSV artifacts plus mean/median/CI aggregates
emitted per sweep.  ``--shard i/n`` runs one deterministic slice of the
run list; ``--executor {local,subprocess,ssh}`` dispatches the shards
(same machine, supervised child processes, or remote hosts) and
auto-merges them; ``python -m repro merge`` unions shard outputs back
into one aggregate identical to an unsharded run.  See the "Sweeps"
sections of README.md and EXPERIMENTS.md.

The public surface is intentionally small: :func:`run_sweep` driven by
a :class:`SweepConfig`, the :class:`SweepResult` it returns, the
:class:`Executor` protocol with its three backends, and
:func:`merge_sweeps`.  Everything else (grid expansion, the result
cache, retry classification, artifact writers) is an implementation
detail — reachable under its submodule for tests and power users, but
not part of the supported API.
"""

from repro.sweep.executors import (
    Executor,
    LocalPoolExecutor,
    SSHExecutor,
    SubprocessShardExecutor,
)
from repro.sweep.merge import merge_sweeps
from repro.sweep.runner import SweepConfig, SweepResult, run_sweep

__all__ = [
    "Executor",
    "LocalPoolExecutor",
    "SSHExecutor",
    "SubprocessShardExecutor",
    "SweepConfig",
    "SweepResult",
    "merge_sweeps",
    "run_sweep",
]
