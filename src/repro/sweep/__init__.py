"""Parallel Monte-Carlo sweep engine with result caching.

``python -m repro sweep <experiment> --seeds N --jobs J`` fans any
registered experiment across a process pool — seeds derived
deterministically from a root seed, finished runs cached on disk under
``.repro-cache/``, per-sweep JSON/CSV artifacts plus mean/median/CI
aggregates emitted per sweep.  See the "Sweeps" sections of README.md
and EXPERIMENTS.md.
"""

from repro.sweep.aggregate import aggregate_records, flatten_numeric, summarize
from repro.sweep.artifacts import result_to_dict, write_sweep_artifacts
from repro.sweep.cache import DEFAULT_CACHE_DIR, ResultCache, code_version
from repro.sweep.grid import (
    RunSpec,
    derive_seed,
    expand_grid,
    parse_grid_assignments,
    parse_param_assignments,
)
from repro.sweep.runner import SweepResult, execute_spec, run_sweep

__all__ = [
    "DEFAULT_CACHE_DIR",
    "ResultCache",
    "RunSpec",
    "SweepResult",
    "aggregate_records",
    "code_version",
    "derive_seed",
    "execute_spec",
    "expand_grid",
    "flatten_numeric",
    "parse_grid_assignments",
    "parse_param_assignments",
    "result_to_dict",
    "run_sweep",
    "summarize",
    "write_sweep_artifacts",
]
