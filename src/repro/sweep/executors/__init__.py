"""Pluggable shard-dispatch backends for ``repro.sweep``.

The :class:`~repro.sweep.executors.base.Executor` protocol turns a
sweep's deterministic ``--shard i/n`` slices into running shards and
collects their artifact directories for the merge path; see
``base.py`` for the contract and EXPERIMENTS.md ("Distributed sweeps")
for usage.  Three backends ship:

* :class:`LocalPoolExecutor` — shards run in this process on the
  classic pool (``--executor local``);
* :class:`SubprocessShardExecutor` — shards are supervised child
  ``python -m repro sweep`` processes with heartbeat/timeout kill
  detection (``--executor subprocess``);
* :class:`SSHExecutor` — shards run on remote hosts over
  ``ssh``/``scp`` or any injected transport (``--executor ssh``).
"""

from repro.sweep.executors.base import Executor, ShardHandle, ShardSpec
from repro.sweep.executors.local import LocalPoolExecutor
from repro.sweep.executors.ssh import (
    CommandTransport,
    Host,
    LocalCommandTransport,
    SSHCommandTransport,
    SSHExecutor,
    load_hostfile,
    parse_hosts,
)
from repro.sweep.executors.subprocess_shard import SubprocessShardExecutor

__all__ = [
    "CommandTransport",
    "Executor",
    "Host",
    "LocalCommandTransport",
    "LocalPoolExecutor",
    "SSHCommandTransport",
    "SSHExecutor",
    "ShardHandle",
    "ShardSpec",
    "SubprocessShardExecutor",
    "load_hostfile",
    "parse_hosts",
]
