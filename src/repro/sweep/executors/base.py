"""The executor protocol: how a sweep's shards are dispatched and tracked.

A dispatched sweep is split into ``n`` deterministic ``--shard i/n``
slices (the same partition :func:`repro.sweep.grid.shard_specs`
computes everywhere).  Each slice becomes a :class:`ShardSpec`; an
:class:`Executor` turns specs into running shards and reports on them
through :class:`ShardHandle` objects:

* ``submit(spec) -> ShardHandle`` — start one shard (may block for
  in-process executors, must not for remote ones);
* ``poll() -> [ShardHandle]`` — refresh and return every live handle's
  status (``running`` / ``ok`` / ``failed`` / ``lost``);
* ``collect() -> [artifact dir]`` — the per-shard artifact directories,
  in shard-index order, once every shard is ``ok``;
* ``cancel()`` — best-effort teardown of everything still running.

``failed`` means the shard exited deterministically (bad config,
``--strict`` abort) and re-dispatching it cannot help; ``lost`` means
the shard's process or host died (SIGKILL, OOM, network, stale
heartbeat) and the driver may re-dispatch it via :meth:`Executor.
resubmit` — on a different host when the executor has one.
"""

from __future__ import annotations

import sys
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, List, Optional, Tuple

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.sweep.runner import SweepConfig

#: Shard lifecycle states recorded in the ``repro.sweep/v4`` manifest.
SHARD_RUNNING = "running"
SHARD_OK = "ok"
SHARD_FAILED = "failed"  # deterministic failure; never re-dispatched
SHARD_LOST = "lost"      # process/host death; eligible for re-dispatch


@dataclass(frozen=True)
class ShardSpec:
    """One dispatchable slice of a sweep: shard ``index`` of ``count``.

    ``config`` is the child's :class:`~repro.sweep.runner.SweepConfig`
    (shard-free — the shard slice lives here); ``out_dir`` is where the
    shard's artifacts must end up on *this* host; ``heartbeat`` names a
    file the shard process keeps touching so a supervisor can tell a
    wedged shard from a slow one (None disables the heartbeat).
    """

    experiment: str
    config: "SweepConfig"
    index: int
    count: int
    out_dir: str
    heartbeat: Optional[str] = None

    def command(self, python: str = sys.executable, *,
                out_dir: Optional[str] = None,
                heartbeat: Optional[str] = None) -> List[str]:
        """The ``python -m repro sweep`` argv that runs this shard.

        ``out_dir``/``heartbeat`` override the spec's local paths for
        executors whose shard runs on another filesystem (ssh) and is
        fetched back afterwards.
        """
        cfg = self.config
        argv = [python, "-m", "repro", "sweep", self.experiment,
                "--seeds", str(cfg.seeds),
                "--jobs", str(cfg.jobs),
                "--root-seed", str(cfg.root_seed),
                "--shard", f"{self.index}/{self.count}",
                "--out", out_dir or self.out_dir,
                "--quiet"]
        for key, value in sorted((cfg.params or {}).items()):
            argv += ["--param", f"{key}={_cli_value(key, value)}"]
        for key, values in sorted((cfg.grid or {}).items()):
            argv += ["--grid", f"{key}=" + ",".join(
                _cli_value(key, value) for value in values)]
        retry = cfg.retry
        if retry is not None:
            argv += ["--retries", str(retry.max_attempts - 1),
                     "--retry-backoff", str(retry.backoff_s)]
            if retry.timeout_s is not None:
                argv += ["--timeout", str(retry.timeout_s)]
        if cfg.strict:
            argv += ["--strict"]
        if cfg.trace_dir is not None:
            # Bare flag: the child traces into its own <out>/traces, so
            # remote shard traces come back with the artifact fetch.
            argv += ["--trace"]
        if not cfg.use_cache:
            argv += ["--no-cache"]
        else:
            argv += ["--cache-dir", cfg.cache_dir]
            if cfg.cache_max_bytes is not None:
                argv += ["--cache-max-mb",
                         str(cfg.cache_max_bytes / (1024 * 1024))]
        beat = heartbeat if heartbeat is not None else self.heartbeat
        if beat:
            argv += ["--heartbeat", beat]
        return argv


def _cli_value(key: str, value: object) -> str:
    """Render one parameter value so the shard CLI re-parses it exactly."""
    text = str(value)
    if "," in text or "=" in text or "\n" in text or text != text.strip():
        raise ValueError(
            f"parameter {key}={value!r} cannot be round-tripped on a "
            f"shard command line (contains ',', '=', or edge whitespace)")
    return text


@dataclass
class ShardHandle:
    """The driver's view of one dispatched shard attempt."""

    spec: ShardSpec
    status: str = SHARD_RUNNING
    attempts: int = 1
    host: str = "local"
    pid: Optional[int] = None
    error: Optional[str] = None
    #: Hosts that already lost this shard; resubmit avoids them.
    excluded_hosts: Tuple[str, ...] = ()
    #: Wall-clock seconds of the successful attempt (telemetry).
    wall_s: Optional[float] = None
    #: Executor-private worker state (process, thread, ...).
    worker: object = field(default=None, repr=False, compare=False)

    @property
    def index(self) -> int:
        return self.spec.index

    def describe(self) -> dict:
        """The manifest row for this shard (``repro.sweep/v4``)."""
        return {
            "index": self.index,
            "status": self.status,
            "attempts": self.attempts,
            "host": self.host,
            "error": self.error,
            "wall_s": self.wall_s,
        }


class Executor:
    """Pluggable shard dispatch backend (see module docstring)."""

    #: Backend name recorded in the manifest's ``dispatch`` section.
    name = "abstract"
    #: Whether shards should maintain a heartbeat file for supervision.
    wants_heartbeat = False

    @property
    def n_shards(self) -> int:
        raise NotImplementedError

    def submit(self, spec: ShardSpec, *,
               excluded_hosts: Tuple[str, ...] = ()) -> ShardHandle:
        raise NotImplementedError

    def poll(self) -> List[ShardHandle]:
        raise NotImplementedError

    def collect(self) -> List[str]:
        raise NotImplementedError

    def cancel(self) -> None:
        raise NotImplementedError

    def resubmit(self, handle: ShardHandle) -> ShardHandle:
        """Re-dispatch a lost shard, avoiding hosts that lost it before."""
        excluded = handle.excluded_hosts + (handle.host,)
        fresh = self.submit(handle.spec, excluded_hosts=excluded)
        fresh.attempts = handle.attempts + 1
        fresh.excluded_hosts = excluded
        return fresh


class _HandleRegistry:
    """Shared bookkeeping: the latest handle per shard index."""

    def __init__(self) -> None:
        self.handles: dict = {}

    def track(self, handle: ShardHandle) -> ShardHandle:
        self.handles[handle.index] = handle
        return handle

    def ordered(self) -> List[ShardHandle]:
        return [self.handles[index] for index in sorted(self.handles)]
