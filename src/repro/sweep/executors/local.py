"""In-process execution: the cell engine and :class:`LocalPoolExecutor`.

Two layers live here.  The *cell engine* (:func:`_run_cells`) is the
round-based retry loop over a ``ProcessPoolExecutor`` that every
single-process sweep uses — it was ``runner._execute_pending`` before
the executor API existed.  :class:`LocalPoolExecutor` is the shard-level
backend built on it: ``submit`` runs the shard's slice in this process
through :func:`repro.sweep.runner.run_sweep` (so ``--executor local``
artifacts are byte-identical to a plain sweep of the same slice) and
writes its artifact directory, synchronously.

Worker payloads are split into an invariant *context* (experiment name,
timeout, the parameters every cell shares) shipped once per worker via
the pool initializer, and a per-cell *delta* (seed, seed index, the
cell's own grid point) pickled per task — so a sweep with megabytes of
fixed parameters no longer re-pickles them for every run.
"""

from __future__ import annotations

import os
import time
import warnings
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import replace
from typing import Callable, Dict, List, Optional, Sequence

from repro.sweep.cache import ResultCache
from repro.sweep.grid import RunSpec
from repro.sweep.retry import (
    KIND_CRASH,
    RetryPolicy,
    SweepError,
    classify_error,
    error_summary,
    run_deadline,
)
from repro.sweep.executors.base import (
    SHARD_FAILED,
    SHARD_OK,
    Executor,
    ShardHandle,
    ShardSpec,
    _HandleRegistry,
)

# ---------------------------------------------------------------------------
# Worker-side cell execution
# ---------------------------------------------------------------------------

#: Per-worker invariant context, installed once by the pool initializer.
_WORKER_CONTEXT: dict = {}


def _init_worker(context: dict) -> None:
    _WORKER_CONTEXT.clear()
    _WORKER_CONTEXT.update(context)


def _shared_context(specs: Sequence[RunSpec],
                    timeout_s: Optional[float],
                    trace_dir: Optional[str] = None) -> dict:
    """The invariant payload parts: experiment, timeout, common params."""
    first = specs[0].params
    rest = specs[1:]
    common = tuple(kv for kv in first
                   if all(kv in spec.params for spec in rest))
    return {
        "experiment": specs[0].experiment,
        "timeout_s": timeout_s,
        "trace_dir": trace_dir,
        "common_params": [list(kv) for kv in common],
    }


def _cell_delta(spec: RunSpec, context: dict) -> dict:
    """The per-cell payload: seed coordinates plus non-shared params."""
    common = [tuple(kv) for kv in context["common_params"]]
    return {
        "seed_index": spec.seed_index,
        "seed": spec.seed,
        "params": [list(kv) for kv in spec.params if kv not in common],
    }


def _payload_from(context: dict, delta: dict) -> dict:
    """Reassemble the full cell payload a worker executes."""
    params = {key: value for key, value in context["common_params"]}
    params.update({key: value for key, value in delta["params"]})
    payload = {
        "experiment": context["experiment"],
        "params": sorted(params.items()),
        "seed_index": delta["seed_index"],
        "seed": delta["seed"],
    }
    if context.get("timeout_s") is not None:
        payload["timeout_s"] = context["timeout_s"]
    if context.get("trace_dir") is not None:
        payload["trace_dir"] = context["trace_dir"]
    return payload


def _run_cell(delta: dict) -> dict:
    """Pool task entry point: context comes from the worker initializer."""
    return _execute_cell(_payload_from(_WORKER_CONTEXT, delta))


def _trace_filename(payload: dict) -> str:
    """Deterministic per-cell trace filename (from the cell identity)."""
    import hashlib
    import json as json_module

    digest = hashlib.sha256(json_module.dumps({
        "experiment": payload["experiment"],
        "params": payload["params"],
        "seed_index": payload["seed_index"],
        "seed": payload.get("seed"),
    }, sort_keys=True, default=str).encode()).hexdigest()[:10]
    return (f"{payload['experiment']}-s{payload['seed_index']}"
            f"-{digest}.jsonl")


def _execute_cell(payload: dict) -> dict:
    """Run one sweep cell and return its serialized run record."""
    from repro.eval import registry, result_type_name, serialize_result

    try:
        spec = registry.get(payload["experiment"])
    except KeyError as error:
        # In a shard child the likeliest cause is a plugin module that
        # is not on REPRO_PLUGINS (or failed to import there); say so
        # instead of leaving a bare KeyError traceback in shard.log.
        raise LookupError(
            f"{error.args[0]} (out-of-tree experiments must be "
            f"importable via the REPRO_PLUGINS environment variable in "
            f"every worker/shard process)") from None
    params = {key: value for key, value in payload["params"]}
    call_params = dict(params)
    seed = payload.get("seed")
    if seed is not None:
        if spec.accepts_seed:
            call_params["seed"] = seed
        else:
            warnings.warn(
                f"experiment {payload['experiment']!r} "
                f"(module {spec.fn.__module__}) takes no seed "
                f"parameter; derived seed {seed} ignored (run is "
                f"deterministic)", RuntimeWarning, stacklevel=2)
    trace_name = None
    rec = None
    if payload.get("trace_dir"):
        from repro.obs import JsonlSink, recorder

        rec = recorder()
        if rec.active:
            rec = None  # an outer scope (repro run --trace) owns it
        else:
            trace_name = _trace_filename(payload)
            rec.enable(JsonlSink(
                os.path.join(payload["trace_dir"], trace_name)))
    started = time.perf_counter()
    try:
        with run_deadline(payload.get("timeout_s")):
            result = spec.run(**call_params)
    finally:
        if rec is not None:
            rec.disable()
    elapsed = time.perf_counter() - started
    record = {
        "experiment": payload["experiment"],
        "seed_index": payload["seed_index"],
        "seed": payload["seed"],
        "params": params,
        "elapsed_s": elapsed,
        "status": "ok",
        "result_type": result_type_name(result),
        "result": serialize_result(result),
    }
    if trace_name is not None:
        record["trace"] = trace_name
    return record


def _failed_record(spec: RunSpec, error: BaseException,
                   attempts: int) -> dict:
    """The run record for a cell whose every attempt failed."""
    return {
        "experiment": spec.experiment,
        "seed_index": spec.seed_index,
        "seed": spec.seed,
        "params": dict(spec.params),
        "elapsed_s": 0.0,
        "status": "failed",
        "attempts": attempts,
        "error": error_summary(error),
        "result_type": "",
        "result": None,
    }


# ---------------------------------------------------------------------------
# The round-based retry engine (formerly runner._execute_pending)
# ---------------------------------------------------------------------------

def _run_cells(
    specs: Sequence[RunSpec],
    pending: Sequence[int],
    *,
    jobs: int,
    policy: RetryPolicy,
    strict: bool,
    cache: ResultCache,
    progress: Optional[Callable[[str], None]],
    trace_dir: Optional[str] = None,
) -> Dict[int, dict]:
    """Round-based execution with retry: cell index -> final record."""
    results: Dict[int, dict] = {}
    attempts: Dict[int, int] = {index: 0 for index in pending}
    queue: List[int] = list(pending)
    total = len(pending)
    completed = 0
    retry_round = 0
    isolate = False  # after a crash round: one single-worker pool per cell

    context = _shared_context([specs[index] for index in pending],
                              policy.timeout_s, trace_dir)
    deltas = {index: _cell_delta(specs[index], context)
              for index in pending}

    while queue:
        if retry_round:
            delay = policy.backoff_delay(retry_round)
            if delay:
                time.sleep(delay)
        failures: Dict[int, BaseException] = {}
        fresh: Dict[int, dict] = {}
        if jobs <= 1:
            # Inline: no worker to crash, but also no crash isolation —
            # a cell that kills its process kills the sweep (jobs>=2
            # exists precisely to contain that).
            for index in queue:
                attempts[index] += 1
                try:
                    fresh[index] = _execute_cell(
                        _payload_from(context, deltas[index]))
                except Exception as error:
                    failures[index] = error
        elif isolate:
            # A worker crash breaks its whole pool, failing every cell
            # in flight with it.  Rerun each suspect in its own
            # single-worker pool so a poisoned cell exhausts only its
            # own attempts and collateral cells complete normally.
            for index in queue:
                attempts[index] += 1
                with ProcessPoolExecutor(
                        max_workers=1, initializer=_init_worker,
                        initargs=(context,)) as pool:
                    try:
                        fresh[index] = pool.submit(
                            _run_cell, deltas[index]).result()
                    except Exception as error:
                        failures[index] = error
        else:
            # One pool per round: a crash poisons the pool, so
            # surviving cells get a clean pool on the retry round.
            with ProcessPoolExecutor(
                    max_workers=min(jobs, len(queue)),
                    initializer=_init_worker,
                    initargs=(context,)) as pool:
                futures = {}
                for index in queue:
                    attempts[index] += 1
                    futures[pool.submit(_run_cell, deltas[index])] = index
                for future in as_completed(futures):
                    index = futures[future]
                    try:
                        fresh[index] = future.result()
                    except Exception as error:
                        failures[index] = error
        isolate = any(classify_error(error) == KIND_CRASH
                      for error in failures.values())

        for index in sorted(fresh):
            record = fresh[index]
            record["attempts"] = attempts[index]
            cache.store(specs[index], record)
            results[index] = record
            completed += 1
            if progress is not None:
                progress(
                    f"run {completed}/{total}: seed_index="
                    f"{specs[index].seed_index} seed={specs[index].seed} "
                    f"({record['elapsed_s']:.2f} s)")

        retry_queue: List[int] = []
        for index in sorted(failures):
            error = failures[index]
            spec = specs[index]
            if strict:
                raise SweepError(
                    f"run seed_index={spec.seed_index} "
                    f"seed={spec.seed} of {spec.experiment!r} failed "
                    f"({error_summary(error)['kind']}): {error}"
                ) from error
            if policy.allows_retry(attempts[index]):
                retry_queue.append(index)
                if progress is not None:
                    progress(
                        f"retrying seed_index={spec.seed_index} "
                        f"seed={spec.seed} (attempt "
                        f"{attempts[index]}/{policy.max_attempts} "
                        f"{error_summary(error)['kind']}: {error})")
            else:
                results[index] = _failed_record(spec, error,
                                                attempts[index])
                completed += 1
                if progress is not None:
                    progress(
                        f"run {completed}/{total}: seed_index="
                        f"{spec.seed_index} seed={spec.seed} FAILED "
                        f"after {attempts[index]} attempt(s) "
                        f"({error_summary(error)['kind']}: {error})")
        queue = retry_queue
        retry_round += 1
    return results


# ---------------------------------------------------------------------------
# Shard-level backend
# ---------------------------------------------------------------------------

class LocalPoolExecutor(Executor):
    """Run every shard in this process, on the classic process pool.

    ``submit`` is synchronous: the shard's slice runs to completion via
    :func:`repro.sweep.runner.run_sweep` before the handle is returned,
    so artifacts are byte-identical to running the same ``--shard i/n``
    command by hand.  ``shards=1`` makes the dispatched sweep equivalent
    to an undispatched one.
    """

    name = "local"

    def __init__(self, shards: int = 1) -> None:
        if shards < 1:
            raise ValueError("shards must be >= 1")
        self._n_shards = shards
        self._registry = _HandleRegistry()

    @property
    def n_shards(self) -> int:
        return self._n_shards

    def submit(self, spec: ShardSpec, *, excluded_hosts=()) -> ShardHandle:
        from repro.sweep.artifacts import write_sweep_artifacts
        from repro.sweep.runner import run_sweep

        handle = ShardHandle(spec, host="inprocess")
        started = time.perf_counter()
        try:
            config = replace(spec.config,
                             shard=(spec.index, spec.count))
            if config.trace_dir is not None:
                config = replace(config, trace_dir=os.path.join(
                    spec.out_dir, "traces"))
            sweep = run_sweep(spec.experiment, config)
            write_sweep_artifacts(sweep, spec.out_dir)
            handle.status = SHARD_OK
        except Exception as error:  # deterministic: never re-dispatch
            handle.status = SHARD_FAILED
            handle.error = f"{type(error).__name__}: {error}"
        handle.wall_s = time.perf_counter() - started
        return self._registry.track(handle)

    def poll(self) -> List[ShardHandle]:
        return self._registry.ordered()

    def collect(self) -> List[str]:
        return [handle.spec.out_dir for handle in self._registry.ordered()
                if handle.status == SHARD_OK]

    def cancel(self) -> None:  # nothing asynchronous to stop
        pass
